//! Smoke test: every example must build, run to completion, and print
//! something. `cargo test` already compiles the example targets; this
//! suite executes the compiled binaries so examples can't silently rot
//! into code that builds but crashes. Every surface-language program
//! embedded in an example must additionally pass the static
//! verification tier with zero diagnostics (the same gate `irlint`
//! enforces in CI).

use std::path::PathBuf;
use std::process::Command;

/// Every example under `examples/`, kept in sync by
/// [`example_list_is_exhaustive`].
const EXAMPLES: &[&str] = &[
    "adaptive_ode",
    "batch_divergent_workload",
    "binomial_reuse",
    "eight_schools",
    "fibonacci_trace",
    "ingress_demo",
    "nuts_gaussian",
    "nuts_logistic",
    "quickstart",
];

/// The directory the current profile's example binaries land in:
/// `target/<profile>/examples`, two levels up from this test binary
/// (`target/<profile>/deps/examples_smoke-<hash>`).
fn examples_dir() -> PathBuf {
    let exe = std::env::current_exe().expect("test binary path");
    exe.parent()
        .and_then(|deps| deps.parent())
        .expect("target profile dir")
        .join("examples")
}

#[test]
fn example_list_is_exhaustive() {
    let src = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut found: Vec<String> = std::fs::read_dir(&src)
        .expect("examples dir")
        .filter_map(|e| {
            let p = e.expect("dir entry").path();
            (p.extension().is_some_and(|x| x == "rs"))
                .then(|| p.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    found.sort();
    let expected: Vec<String> = EXAMPLES.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        found, expected,
        "examples/ and the EXAMPLES list disagree; update tests/examples_smoke.rs"
    );
}

#[test]
fn every_embedded_example_program_verifies() {
    use autobatch::core::{lower, LoweringOptions};
    use autobatch::ir::analysis::{analyze_lsab, analyze_pcab};
    let src = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut checked = 0usize;
    let mut failures = Vec::new();
    for name in EXAMPLES {
        let rust = std::fs::read_to_string(src.join(format!("{name}.rs"))).expect("example source");
        for embedded in autobatch::lang::embedded_sources(&rust) {
            let module = autobatch::lang::parse(&embedded).expect("embedded program parses");
            for f in &module.fns {
                let program = match autobatch::lang::compile_module(&module, &f.name) {
                    Ok(p) => p,
                    Err(e) => {
                        failures.push(format!("{name}::{}: compile: {e}", f.name));
                        continue;
                    }
                };
                checked += 1;
                let report = analyze_lsab(&program);
                for d in &report.diagnostics {
                    failures.push(format!("{name}::{} (lsab): {d}", f.name));
                }
                if !report.ok() {
                    continue;
                }
                match lower(&program, LoweringOptions::default()) {
                    Ok((pc, _)) => {
                        for d in &analyze_pcab(&pc).diagnostics {
                            failures.push(format!("{name}::{} (pcab): {d}", f.name));
                        }
                    }
                    Err(e) => failures.push(format!("{name}::{} (lowering): {e}", f.name)),
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "embedded example programs fail static verification:\n{}",
        failures.join("\n")
    );
    assert!(
        checked >= 5,
        "only {checked} embedded programs found — the extraction scanner \
         or the examples changed; update this test's expectation"
    );
}

#[test]
fn every_example_runs() {
    let dir = examples_dir();
    let src_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut failures = Vec::new();
    for name in EXAMPLES {
        let bin = dir.join(name);
        if !bin.exists() {
            failures.push(format!(
                "{name}: binary missing at {} — examples are only (re)built by a \
                 full `cargo test`, not by `cargo test --test examples_smoke`",
                bin.display()
            ));
            continue;
        }
        // Guard against silently executing a stale binary: a filtered
        // `cargo test --test examples_smoke` does not rebuild examples,
        // so an edited example must fail here, not pass on old code.
        let newer_than_source = (|| {
            let src_t = std::fs::metadata(src_dir.join(format!("{name}.rs")))?.modified()?;
            let bin_t = std::fs::metadata(&bin)?.modified()?;
            Ok::<bool, std::io::Error>(bin_t >= src_t)
        })();
        match newer_than_source {
            Ok(true) => {}
            Ok(false) => {
                failures.push(format!(
                    "{name}: compiled binary is older than examples/{name}.rs — \
                     run a full `cargo test` to rebuild examples"
                ));
                continue;
            }
            Err(e) => {
                failures.push(format!("{name}: cannot compare mtimes: {e}"));
                continue;
            }
        }
        match Command::new(&bin).output() {
            Ok(out) if out.status.success() => {
                if out.stdout.is_empty() {
                    failures.push(format!("{name}: ran but printed nothing"));
                }
            }
            Ok(out) => failures.push(format!(
                "{name}: exited {:?}\nstderr:\n{}",
                out.status.code(),
                String::from_utf8_lossy(&out.stderr)
            )),
            Err(e) => failures.push(format!("{name}: failed to spawn: {e}")),
        }
    }
    assert!(
        failures.is_empty(),
        "example failures:\n{}",
        failures.join("\n")
    );
}
