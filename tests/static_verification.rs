//! Differential soundness test of the static verification tier.
//!
//! Randomly generated control-flow programs (straight-line arithmetic,
//! if/else, bounded loops, cross-function calls — and, for a quarter of
//! seeds, a deliberately injected type error) are pushed through the
//! verifier and then executed on all three VMs under every primitive
//! execution strategy. The soundness contract under test:
//!
//! - a program carrying an injected type error is rejected statically —
//!   by program-level analysis or by signature inference against its
//!   concrete input specs — before any VM sees it;
//! - a verifier-accepted program never raises a statically-excluded
//!   error class at runtime (`VmError::Tensor`, `VmError::Unbound`, or
//!   `VmError::StackOverflow` when the reported stack bounds fit the
//!   configured limit), on any VM, under any strategy;
//! - every successful run's outputs match the inferred signature's
//!   dtypes and shapes exactly, and all VMs agree bit-for-bit.
//!
//! Cases are deterministic: the vendored proptest harness derives seeds
//! from `(PROPTEST_SEED, test name, case index)` and the program
//! generator (`autobatch_lang::genprog`) is a pure function of its seed.

use autobatch::core::{
    lower, DynSchedule, DynamicVm, ExecOptions, ExecStrategy, KernelRegistry, LocalStaticVm,
    LoweringOptions, PcVm, VmError,
};
use autobatch::ir::analysis::{
    analyze_lsab, analyze_pcab, infer_lsab_signature, AbsDType, AbsShape, TensorSpec,
};
use autobatch::lang::gen_program;
use autobatch::tensor::{DType, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Batch members per run.
const Z: usize = 3;

/// Materialize a concrete batch for the generated program's input
/// specs: shape `[Z] ++ elem_shape`, values drawn deterministically
/// from the seed.
fn materialize(specs: &[TensorSpec], seed: u64) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    specs
        .iter()
        .map(|s| {
            let volume = Z * s.elem_shape.iter().product::<usize>();
            let mut shape = vec![Z];
            shape.extend_from_slice(&s.elem_shape);
            match s.dtype {
                AbsDType::F64 => {
                    let v: Vec<f64> = (0..volume).map(|_| rng.gen_range(-2.0..2.0)).collect();
                    Tensor::from_f64(&v, &shape).expect("f64 input")
                }
                AbsDType::I64 => {
                    let v: Vec<i64> = (0..volume).map(|_| rng.gen_range(0..5i64)).collect();
                    Tensor::from_i64(&v, &shape).expect("i64 input")
                }
                _ => unreachable!("the generator only emits f64/i64 inputs"),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn verifier_accepted_programs_run_clean_on_every_vm(seed in any::<u64>()) {
        let g = gen_program(seed);
        let report = analyze_lsab(&g.program);
        let concrete = infer_lsab_signature(&g.program, &g.inputs);
        let accepted = report.ok() && concrete.is_ok();
        if g.expect_reject {
            // Ill-typedness can be *relative* to the input specs (an
            // error on concrete inputs may be a mere inferred
            // constraint at program level), so rejection means either
            // gate refusing.
            prop_assert!(
                !accepted,
                "program with an injected type error escaped both static gates"
            );
            return;
        }
        prop_assert!(
            accepted,
            "well-typed generated program rejected statically: {:?}",
            report
                .diagnostics
                .first()
                .cloned()
                .or_else(|| concrete.as_ref().err().cloned())
        );
        let sig = concrete.expect("accepted above");
        // The signature of an accepted program on concrete inputs is
        // fully concrete — that is what makes the runtime comparison
        // exact rather than best-effort.
        for out in &sig.outputs {
            prop_assert!(
                !matches!(out.dtype, AbsDType::Any),
                "signature output dtype not concrete: {}",
                out
            );
            prop_assert!(
                matches!(out.shape, AbsShape::Elem(_)),
                "signature output shape not concrete: {}",
                out
            );
        }

        let (lowered, _) =
            lower(&g.program, LoweringOptions::default()).expect("accepted program lowers");
        let pc_report = analyze_pcab(&lowered);
        prop_assert!(
            pc_report.ok(),
            "lowering an accepted program produced a diagnostic: {:?}",
            pc_report.diagnostics.first()
        );

        let inputs = materialize(&g.inputs, seed);
        let defaults = ExecOptions::default();
        let mut runs: Vec<(String, Result<Vec<Tensor>, VmError>)> = Vec::new();
        for strategy in [ExecStrategy::Masking, ExecStrategy::GatherScatter] {
            let opts = ExecOptions { strategy, ..ExecOptions::default() };
            runs.push((
                format!("lsab/{strategy:?}"),
                LocalStaticVm::new(&g.program, KernelRegistry::new(), opts).run(&inputs, None),
            ));
            runs.push((
                format!("pc/{strategy:?}"),
                PcVm::new(&lowered, KernelRegistry::new(), opts).run(&inputs, None),
            ));
        }
        for schedule in [DynSchedule::Agenda, DynSchedule::Breadth] {
            let opts = ExecOptions { dyn_schedule: schedule, ..ExecOptions::default() };
            runs.push((
                format!("dynamic/{schedule:?}"),
                DynamicVm::new(&g.program, KernelRegistry::new(), opts).run(&inputs, None),
            ));
        }

        let mut agreed: Option<(&str, &Vec<Tensor>)> = None;
        for (vm, res) in &runs {
            match res {
                Ok(outs) => {
                    prop_assert_eq!(outs.len(), sig.outputs.len(), "{}: arity drift", vm);
                    for (i, (got, want)) in outs.iter().zip(&sig.outputs).enumerate() {
                        let want_dtype = match want.dtype {
                            AbsDType::F64 => DType::F64,
                            AbsDType::I64 => DType::I64,
                            AbsDType::Bool => DType::Bool,
                            AbsDType::Any => unreachable!("checked concrete above"),
                        };
                        prop_assert_eq!(
                            got.dtype(),
                            want_dtype,
                            "{}: output {} dtype drifts from the signature",
                            vm,
                            i
                        );
                        let AbsShape::Elem(elem) = &want.shape else {
                            unreachable!("checked concrete above")
                        };
                        let mut want_shape = vec![Z];
                        want_shape.extend_from_slice(elem);
                        prop_assert_eq!(
                            got.shape(),
                            &want_shape[..],
                            "{}: output {} shape drifts from the signature",
                            vm,
                            i
                        );
                    }
                    match &agreed {
                        None => agreed = Some((vm, outs)),
                        Some((first_vm, first)) => prop_assert_eq!(
                            &outs,
                            first,
                            "{} and {} disagree bit-for-bit",
                            vm,
                            first_vm
                        ),
                    }
                }
                Err(e) => {
                    prop_assert!(
                        !matches!(e, VmError::Tensor(_) | VmError::Unbound { .. }),
                        "{}: statically-excluded error class raised at runtime: {}",
                        vm,
                        e
                    );
                    if matches!(e, VmError::StackOverflow { .. }) {
                        prop_assert!(
                            !pc_report.overflow_excluded(defaults.stack_depth),
                            "{}: stack overflow despite static bounds (pc {}, data {}) \
                             fitting limit {}",
                            vm,
                            pc_report.pc_depth,
                            pc_report.data_depth,
                            defaults.stack_depth
                        );
                    }
                }
            }
        }
        // The generator only emits terminating, recursion-free,
        // RNG-free programs: at least one VM must actually have
        // produced outputs, or the comparisons above were all vacuous.
        prop_assert!(
            agreed.is_some(),
            "no VM completed an accepted program: {:?}",
            runs.iter().map(|(vm, r)| (vm, r.is_ok())).collect::<Vec<_>>()
        );
    }
}
