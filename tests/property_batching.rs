//! Property tests of the central correctness claim (paper §2): running a
//! batch is indistinguishable, member by member, from running each
//! member alone — for *arbitrary* control flow, under both autobatching
//! strategies, every lowering configuration, and both primitive
//! execution strategies.
//!
//! Programs are generated randomly at the IR-builder level: straight-line
//! arithmetic over a growing variable pool, nested conditionals, bounded
//! while loops, and a terminating recursive helper with data-dependent
//! branching. RNG primitives are excluded here because their draws are
//! keyed by batch-member id (their member-consistency is covered by the
//! NUTS native-vs-batched tests).
//!
//! Determinism: the `seed` strategy below, like every proptest input, is
//! drawn from the vendored deterministic proptest harness — cases are a
//! pure function of `(PROPTEST_SEED, test name, case index)`, and the
//! program generator itself derives everything from `seed` through
//! `StdRng::seed_from_u64`. A failing case therefore reproduces bit-for-
//! bit on any machine with the same `PROPTEST_SEED` (default 0); set
//! `PROPTEST_CASES` to widen or narrow the sweep.

use autobatch::accel::{Backend, Trace};
use autobatch::core::{
    lower, BlockHeuristic, DynSchedule, DynamicVm, ExecOptions, ExecStrategy, KernelRegistry,
    LocalStaticVm, LoweringOptions, PcVm,
};
use autobatch::ir::build::ProgramBuilder;
use autobatch::ir::{lsab, Prim, Var};
use autobatch::serve::{AdmissionPolicy, BatchServer, Request, ShardedServer};
use autobatch::tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate a random, well-formed, terminating program.
///
/// Structure: a recursive helper `g(n, acc) -> r` whose branching
/// depends on both `n` and `acc`, and an entry `main(x, n) -> y` mixing
/// straight-line float arithmetic, an `if`, a bounded `while`, and a
/// call to the helper with a clamped depth argument.
fn random_program(seed: u64) -> lsab::Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pb = ProgramBuilder::new();
    let helper = pb.declare("g", &["n", "acc"], &["r"]);
    let main = pb.declare("main", &["x", "n0"], &["y"]);

    // Safe float ops only: no div (NaN poisons comparisons), exp clamped
    // by construction of small operands.
    let bin_ops = [Prim::Add, Prim::Sub, Prim::Mul, Prim::Min2, Prim::Max2];
    let un_ops = [Prim::Neg, Prim::Abs, Prim::Tanh, Prim::Sin];

    let double_recursion = rng.gen_bool(0.4);
    let helper_branch_on_acc = rng.gen_bool(0.5);
    let h_expr_ops: Vec<usize> = (0..rng.gen_range(1..4))
        .map(|_| rng.gen_range(0..bin_ops.len()))
        .collect();

    pb.define(helper, |fb| {
        let n = fb.param(0);
        let _acc = fb.param(1);
        let zero = fb.const_i64(0);
        let base = fb.emit(Prim::Le, &[n.clone(), zero]);
        fb.if_else(
            &base,
            |fb| {
                fb.copy(&fb.output(0), &fb.param(1));
            },
            |fb| {
                // A value whose computation depends on the random ops.
                let mut t = fb.param(1);
                for &oi in &h_expr_ops {
                    let c = fb.const_f64(0.25 + oi as f64 * 0.5);
                    t = fb.emit(bin_ops[oi].clone(), &[t, c]);
                }
                let one = fb.const_i64(1);
                let n1 = fb.emit(Prim::Sub, &[fb.param(0), one]);
                if helper_branch_on_acc {
                    // Branch on the float state: divergent recursion.
                    let thr = fb.const_f64(0.0);
                    let pos = fb.emit(Prim::Gt, &[t.clone(), thr]);
                    let flipped = fb.emit(Prim::Neg, &[t.clone()]);
                    let sel = fb.emit(Prim::Select, &[pos, t.clone(), flipped]);
                    let r1 = fb.call(helper, &[n1.clone(), sel], 1);
                    fb.copy(&fb.output(0), &r1[0]);
                } else {
                    let r1 = fb.call(helper, &[n1.clone(), t.clone()], 1);
                    if double_recursion {
                        let two = fb.const_i64(2);
                        let n2 = fb.emit(Prim::Sub, &[fb.param(0), two]);
                        let half = fb.const_f64(0.5);
                        let t2 = fb.emit(Prim::Mul, &[t, half]);
                        let r2 = fb.call(helper, &[n2, t2], 1);
                        fb.assign(&fb.output(0), Prim::Add, &[r1[0].clone(), r2[0].clone()]);
                    } else {
                        fb.copy(&fb.output(0), &r1[0]);
                    }
                }
            },
        );
        fb.ret();
    });

    let n_straight = rng.gen_range(1..6);
    let straight: Vec<(usize, usize, bool)> = (0..n_straight)
        .map(|_| {
            (
                rng.gen_range(0..bin_ops.len()),
                rng.gen_range(0..un_ops.len()),
                rng.gen_bool(0.5),
            )
        })
        .collect();
    let with_if = rng.gen_bool(0.7);
    let with_loop = rng.gen_bool(0.7);
    let loop_trips = rng.gen_range(1..4);
    let depth_mod = rng.gen_range(2..5);

    pb.define(main, |fb| {
        let x = fb.param(0);
        let pool = Var::new("pool");
        fb.copy(&pool, &x);
        for &(bi, ui, unary_first) in &straight {
            if unary_first {
                let u = fb.emit(un_ops[ui].clone(), std::slice::from_ref(&pool));
                let c = fb.const_f64(0.75);
                fb.assign(&pool, bin_ops[bi].clone(), &[u, c]);
            } else {
                let c = fb.const_f64(-0.5);
                let b = fb.emit(bin_ops[bi].clone(), &[pool.clone(), c]);
                fb.assign(&pool, un_ops[ui].clone(), &[b]);
            }
        }
        if with_if {
            let zero = fb.const_f64(0.0);
            let c = fb.emit(Prim::Lt, &[pool.clone(), zero]);
            fb.if_else(
                &c,
                |fb| {
                    let k = fb.const_f64(1.5);
                    fb.assign(&Var::new("pool"), Prim::Add, &[Var::new("pool"), k]);
                },
                |fb| {
                    let k = fb.const_f64(0.25);
                    fb.assign(&Var::new("pool"), Prim::Mul, &[Var::new("pool"), k]);
                },
            );
        }
        if with_loop {
            let i = Var::new("i");
            let zero = fb.const_i64(0);
            fb.copy(&i, &zero);
            let trips = fb.const_i64(loop_trips);
            fb.while_loop(
                |fb| fb.emit(Prim::Lt, &[Var::new("i"), trips.clone()]),
                |fb| {
                    let half = fb.const_f64(0.5);
                    let s = fb.emit(Prim::Sin, &[Var::new("pool")]);
                    let sc = fb.emit(Prim::Mul, &[s, half]);
                    fb.assign(&Var::new("pool"), Prim::Add, &[Var::new("pool"), sc]);
                    let one = fb.const_i64(1);
                    fb.assign(&Var::new("i"), Prim::Add, &[Var::new("i"), one]);
                },
            );
        }
        // Clamped recursion depth: n0 is bounded by the test harness, but
        // clamp again via min to stay within host limits.
        let cap = fb.const_i64(depth_mod);
        let n0 = fb.param(1);
        let depth = fb.emit(Prim::Min2, &[n0, cap]);
        let r = fb.call(helper, &[depth, pool.clone()], 1);
        fb.copy(&fb.output(0), &r[0]);
        fb.ret();
    });
    pb.finish(main).expect("generated program is well-formed")
}

fn run_lsab(p: &lsab::Program, inputs: &[Tensor], strategy: ExecStrategy) -> Vec<Tensor> {
    let opts = ExecOptions {
        strategy,
        ..ExecOptions::default()
    };
    LocalStaticVm::new(p, KernelRegistry::new(), opts)
        .run(inputs, None)
        .expect("lsab runs")
}

fn run_pc(
    p: &lsab::Program,
    inputs: &[Tensor],
    lopts: LoweringOptions,
    cache: bool,
) -> Vec<Tensor> {
    let (lowered, _) = lower(p, lopts).expect("lowers");
    let opts = ExecOptions {
        cache_stack_tops: cache,
        ..ExecOptions::default()
    };
    PcVm::new(&lowered, KernelRegistry::new(), opts)
        .run(inputs, None)
        .expect("pc runs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batch_equals_singles_and_all_runtimes_agree(
        seed in any::<u64>(),
        xs in proptest::collection::vec(-2.0f64..2.0, 1..5),
        ns in proptest::collection::vec(0i64..6, 1..5),
    ) {
        let z = xs.len().min(ns.len());
        let xs = &xs[..z];
        let ns = &ns[..z];
        let p = random_program(seed);
        let inputs = vec![
            Tensor::from_f64(xs, &[z]).expect("x input"),
            Tensor::from_i64(ns, &[z]).expect("n input"),
        ];

        // Reference: each member alone through the local-static runtime.
        let mut singles = Vec::with_capacity(z);
        for b in 0..z {
            let one = vec![
                Tensor::from_f64(&[xs[b]], &[1]).expect("x"),
                Tensor::from_i64(&[ns[b]], &[1]).expect("n"),
            ];
            let out = run_lsab(&p, &one, ExecStrategy::Masking);
            singles.push(out[0].as_f64().expect("f64 out")[0]);
        }

        // Batch under local static autobatching (both strategies).
        let batch = run_lsab(&p, &inputs, ExecStrategy::Masking);
        let batch_v = batch[0].as_f64().expect("f64 out");
        for b in 0..z {
            prop_assert_eq!(batch_v[b], singles[b], "lsab member {}", b);
        }
        let gather = run_lsab(&p, &inputs, ExecStrategy::GatherScatter);
        prop_assert_eq!(&batch, &gather, "gather/scatter strategy agrees");

        // Program-counter autobatching under every lowering config.
        for lopts in [
            LoweringOptions::default(),
            LoweringOptions { pop_push_elimination: false, ..LoweringOptions::default() },
            LoweringOptions { demote_registers: false, ..LoweringOptions::default() },
            LoweringOptions::unoptimized(),
        ] {
            let pc = run_pc(&p, &inputs, lopts, true);
            prop_assert_eq!(&batch, &pc, "pc agrees under {:?}", lopts);
        }
        // Top-caching off (runtime ablation).
        let pc_nocache = run_pc(&p, &inputs, LoweringOptions::default(), false);
        prop_assert_eq!(&batch, &pc_nocache, "pc agrees without top caching");

        // Dynamic (on-the-fly) batching, both agenda policies (paper §5's
        // related-work architecture must compute the same answers).
        for schedule in [DynSchedule::Agenda, DynSchedule::Breadth] {
            let opts = ExecOptions { dyn_schedule: schedule, ..ExecOptions::default() };
            let dy = DynamicVm::new(&p, KernelRegistry::new(), opts)
                .run(&inputs, None)
                .expect("dynamic runs");
            prop_assert_eq!(&batch, &dy, "dynamic agrees under {:?}", schedule);
        }
    }

    #[test]
    fn pc_results_bit_identical_across_heuristics_and_strategies(
        seed in any::<u64>(),
        xs in proptest::collection::vec(-2.0f64..2.0, 2..5),
        ns in proptest::collection::vec(0i64..6, 2..5),
    ) {
        // The paper's §2 claim: any non-starving block-selection
        // heuristic is correct, under either primitive execution
        // strategy — and not just "correct" but bit-identical, because
        // each member's per-lane computation is untouched by scheduling.
        let z = xs.len().min(ns.len());
        let xs = &xs[..z];
        let ns = &ns[..z];
        let p = random_program(seed);
        let (lowered, _) = lower(&p, LoweringOptions::default()).expect("lowers");
        let inputs = vec![
            Tensor::from_f64(xs, &[z]).expect("x input"),
            Tensor::from_i64(ns, &[z]).expect("n input"),
        ];
        let mut outs = Vec::new();
        for heuristic in [BlockHeuristic::EarliestBlock, BlockHeuristic::MostActive] {
            for strategy in [ExecStrategy::Masking, ExecStrategy::GatherScatter] {
                let opts = ExecOptions { heuristic, strategy, ..ExecOptions::default() };
                let out = PcVm::new(&lowered, KernelRegistry::new(), opts)
                    .run(&inputs, None)
                    .expect("pc runs");
                outs.push(((heuristic, strategy), out));
            }
        }
        let (_, reference) = &outs[0];
        for (combo, out) in &outs[1..] {
            prop_assert_eq!(reference, out, "divergence under {:?}", combo);
        }
    }

    #[test]
    fn admission_order_cannot_perturb_results(
        seed in any::<u64>(),
        xs in proptest::collection::vec(-2.0f64..2.0, 3..6),
        ns in proptest::collection::vec(0i64..6, 3..6),
        order_seed in any::<u64>(),
    ) {
        // Dynamic batch admission: each request's outputs are
        // bit-identical whether it is served alone, in a one-shot batch,
        // or admitted into an in-flight batch in any order.
        let z = xs.len().min(ns.len());
        let xs = &xs[..z];
        let ns = &ns[..z];
        let p = random_program(seed);
        let (lowered, _) = lower(&p, LoweringOptions::default()).expect("lowers");

        // Reference: the one-shot batch.
        let inputs = vec![
            Tensor::from_f64(xs, &[z]).expect("x input"),
            Tensor::from_i64(ns, &[z]).expect("n input"),
        ];
        let reference = PcVm::new(&lowered, KernelRegistry::new(), ExecOptions::default())
            .run(&inputs, None)
            .expect("pc runs");

        // A shuffled submission order with a tight batch capacity, so
        // later requests join mid-flight.
        let mut order: Vec<usize> = (0..z).collect();
        let mut orng = StdRng::seed_from_u64(order_seed);
        for i in (1..z).rev() {
            order.swap(i, orng.gen_range(0..i + 1));
        }
        let policy = AdmissionPolicy::JoinAtEntry { max_batch: 2, min_utilization: 1.0 };
        let mut server =
            BatchServer::new(&lowered, KernelRegistry::new(), ExecOptions::default(), policy)
                .expect("server");
        for &b in &order {
            server
                .submit(Request {
                    id: b as u64,
                    inputs: vec![
                        Tensor::from_f64(&[xs[b]], &[1]).expect("x"),
                        Tensor::from_i64(&[ns[b]], &[1]).expect("n"),
                    ],
                    seed: b as u64,
                })
                .expect("submit");
        }
        let mut served = server.run_until_idle(None).expect("serve");
        served.sort_by_key(|r| r.id);
        for (b, r) in served.iter().enumerate() {
            let want = reference[0].gather_rows(&[b]).expect("row");
            prop_assert_eq!(
                &r.outputs[0],
                &want,
                "member {} perturbed by admission order {:?}",
                b,
                &order
            );
        }
    }

    #[test]
    fn sharding_and_routing_cannot_perturb_results(
        seed in any::<u64>(),
        xs in proptest::collection::vec(-2.0f64..2.0, 3..8),
        ns in proptest::collection::vec(0i64..6, 3..8),
        workers in 1usize..5,
        shard_batch in 1usize..4,
        order_seed in any::<u64>(),
    ) {
        // Sharded serving: however the request stream is partitioned
        // across worker threads (worker count, per-shard batch width,
        // submission order — and therefore least-loaded routing), every
        // request's outputs are bit-identical to the unsharded server's,
        // and aggregation returns them in submission order.
        let z = xs.len().min(ns.len());
        let xs = &xs[..z];
        let ns = &ns[..z];
        let p = random_program(seed);
        let (lowered, _) = lower(&p, LoweringOptions::default()).expect("lowers");
        let request = |b: usize| Request {
            id: b as u64,
            inputs: vec![
                Tensor::from_f64(&[xs[b]], &[1]).expect("x"),
                Tensor::from_i64(&[ns[b]], &[1]).expect("n"),
            ],
            seed: b as u64,
        };

        // Reference: the single-server run, in submission order.
        let policy = AdmissionPolicy::JoinAtEntry { max_batch: 2, min_utilization: 1.0 };
        let mut single =
            BatchServer::new(&lowered, KernelRegistry::new(), ExecOptions::default(), policy)
                .expect("server");
        for b in 0..z {
            single.submit(request(b)).expect("submit");
        }
        let mut reference = single.run_until_idle(None).expect("serve");
        reference.sort_by_key(|r| r.id);

        // Sharded run under a shuffled submission order.
        let mut order: Vec<usize> = (0..z).collect();
        let mut orng = StdRng::seed_from_u64(order_seed);
        for i in (1..z).rev() {
            order.swap(i, orng.gen_range(0..i + 1));
        }
        let policy = AdmissionPolicy::JoinAtEntry {
            max_batch: shard_batch,
            min_utilization: 1.0,
        };
        let mut sharded = ShardedServer::new(
            &lowered,
            KernelRegistry::new(),
            ExecOptions::default(),
            policy,
            workers,
            Backend::hybrid_cpu(),
        )
        .expect("sharded server");
        for &b in &order {
            sharded.submit(request(b)).expect("submit");
        }
        let served = sharded.run_until_idle().expect("serve");
        // Aggregation preserves the (shuffled) submission order.
        let got_ids: Vec<u64> = served.iter().map(|r| r.id).collect();
        let want_ids: Vec<u64> = order.iter().map(|&b| b as u64).collect();
        prop_assert_eq!(got_ids, want_ids, "aggregation broke submission order");
        for r in &served {
            let want = &reference[r.id as usize];
            prop_assert_eq!(
                &r.outputs,
                &want.outputs,
                "request {} perturbed by sharding ({} workers, batch {}, order {:?})",
                r.id,
                workers,
                shard_batch,
                &order
            );
        }
    }

    #[test]
    fn deadline_admission_cannot_perturb_results(
        seed in any::<u64>(),
        xs in proptest::collection::vec(-2.0f64..2.0, 3..7),
        ns in proptest::collection::vec(0i64..6, 3..7),
        gaps in proptest::collection::vec(0u64..500, 3..7),
        max_batch in 1usize..4,
        max_wait in 1u64..400,
        poll_seed in any::<u64>(),
    ) {
        // Deadline-driven admission: a batch may launch because it
        // filled *or* because the oldest request's wait hit `max_wait`
        // on the virtual clock. Whichever way each batch launches — for
        // any arrival interleaving, deadline, and capacity — every
        // request's outputs are bit-identical to utilization-driven
        // admission of the same stream, because admission timing is
        // pure scheduling and per-lane computation never observes it.
        let z = xs.len().min(ns.len()).min(gaps.len());
        let xs = &xs[..z];
        let ns = &ns[..z];
        let p = random_program(seed);
        let (lowered, _) = lower(&p, LoweringOptions::default()).expect("lowers");
        let request = |b: usize| Request {
            id: b as u64,
            inputs: vec![
                Tensor::from_f64(&[xs[b]], &[1]).expect("x"),
                Tensor::from_i64(&[ns[b]], &[1]).expect("n"),
            ],
            seed: b as u64,
        };

        // Reference: utilization-driven admission, all queued up front.
        let policy = AdmissionPolicy::JoinAtEntry { max_batch, min_utilization: 1.0 };
        let mut single =
            BatchServer::new(&lowered, KernelRegistry::new(), ExecOptions::default(), policy)
                .expect("server");
        for b in 0..z {
            single.submit(request(b)).expect("submit");
        }
        let mut reference = single.run_until_idle(None).expect("serve");
        reference.sort_by_key(|r| r.id);
        prop_assert_eq!(reference.len(), z);

        // Deadline-driven server fed the same stream at staggered
        // virtual arrival times, polled a random number of iterations
        // between arrivals — so some batches fill, others launch from
        // the deadline mid-stream, and stragglers join in-flight.
        let policy = AdmissionPolicy::Deadline { max_batch, max_wait };
        let mut server =
            BatchServer::new(&lowered, KernelRegistry::new(), ExecOptions::default(), policy)
                .expect("server");
        let mut prng = StdRng::seed_from_u64(poll_seed);
        let mut now = 0u64;
        for (b, gap) in gaps.iter().enumerate().take(z) {
            now = now.max(server.clock()) + gap;
            server.set_clock(now);
            server.submit(request(b)).expect("submit");
            for _ in 0..prng.gen_range(0..6usize) {
                if !server.poll(None).expect("poll") {
                    // Machine idle with the queue held back: only the
                    // deadline can admit, so model the wait.
                    match server.next_deadline() {
                        Some(d) => server.set_clock(d),
                        None => break,
                    }
                }
            }
        }
        let mut served = server.run_until_idle(None).expect("serve");
        served.sort_by_key(|r| r.id);
        prop_assert_eq!(served.len(), z);

        for (want, got) in reference.iter().zip(&served) {
            prop_assert_eq!(want.id, got.id);
            prop_assert_eq!(
                &want.outputs,
                &got.outputs,
                "request {} perturbed by deadline admission (batch {}, wait {}, gaps {:?})",
                got.id,
                max_batch,
                max_wait,
                &gaps[..z]
            );
        }
    }

    #[test]
    fn elementwise_fusion_cannot_perturb_results(
        seed in any::<u64>(),
        xs in proptest::collection::vec(-2.0f64..2.0, 2..5),
        ns in proptest::collection::vec(0i64..6, 2..5),
    ) {
        // The fused fast path must be invisible: bit-identical outputs
        // under every strategy × heuristic, and under eager dispatch it
        // may only ever *remove* timed launches.
        let z = xs.len().min(ns.len());
        let p = random_program(seed);
        let inputs = vec![
            Tensor::from_f64(&xs[..z], &[z]).expect("x input"),
            Tensor::from_i64(&ns[..z], &[z]).expect("n input"),
        ];
        let (lowered, _) = lower(&p, LoweringOptions::default()).expect("lowers");
        for strategy in [ExecStrategy::Masking, ExecStrategy::GatherScatter] {
            for heuristic in [BlockHeuristic::EarliestBlock, BlockHeuristic::MostActive] {
                let run = |fuse: bool| {
                    let opts = ExecOptions {
                        strategy,
                        heuristic,
                        fuse_elementwise: fuse,
                        ..ExecOptions::default()
                    };
                    let mut tr = Trace::new(Backend::eager_cpu());
                    let out = PcVm::new(&lowered, KernelRegistry::new(), opts)
                        .run(&inputs, Some(&mut tr))
                        .expect("pc runs");
                    (out, tr.launches(), tr.supersteps())
                };
                let (fused_out, fused_launches, fused_steps) = run(true);
                let (plain_out, plain_launches, plain_steps) = run(false);
                prop_assert_eq!(&fused_out, &plain_out, "outputs drift under fusion");
                prop_assert_eq!(fused_steps, plain_steps, "fusion altered scheduling");
                prop_assert!(
                    fused_launches <= plain_launches,
                    "fusion added launches: {} > {}",
                    fused_launches,
                    plain_launches
                );
            }
        }
    }

    #[test]
    fn generated_programs_always_validate_and_lower(seed in any::<u64>()) {
        let p = random_program(seed);
        p.validate().expect("valid");
        let (pc, _) = lower(&p, LoweringOptions::default()).expect("lowers");
        pc.validate().expect("lowered form valid");
    }
}
