//! End-to-end integration: surface source text → parser → type checker →
//! CFG lowering → both autobatching runtimes → simulated accelerator
//! pricing, across crates.

use std::sync::Arc;

use autobatch::accel::{Backend, Trace};
use autobatch::core::Autobatcher;
use autobatch::lang::compile;
use autobatch::models::{model_registry, StdNormal};
use autobatch::nuts::{BatchNuts, NativeNuts, NutsConfig};
use autobatch::tensor::{DType, Tensor};

#[test]
fn surface_source_to_both_runtimes() {
    // Ackermann-lite: nested recursion with two parameters.
    let source = "
        fn ack(m: int, n: int) -> (out: int) {
            if m <= 0 {
                out = n + 1;
            } else if n <= 0 {
                out = ack(m - 1, 1);
            } else {
                let inner = ack(m, n - 1);
                out = ack(m - 1, inner);
            }
        }
    ";
    let ab = Autobatcher::new(compile(source, "ack").expect("compiles")).expect("lowers");
    let ms = Tensor::from_i64(&[0, 1, 2, 1, 2], &[5]).unwrap();
    let ns = Tensor::from_i64(&[3, 3, 2, 0, 3], &[5]).unwrap();
    let local = ab.run_local(&[ms.clone(), ns.clone()], None).unwrap();
    let pc = ab.run_pc(&[ms, ns], None).unwrap();
    assert_eq!(local, pc);
    // ack(0,3)=4, ack(1,3)=5, ack(2,2)=7, ack(1,0)=2, ack(2,3)=9.
    assert_eq!(local[0].as_i64().unwrap(), &[4, 5, 7, 2, 9]);
}

#[test]
fn extern_kernels_flow_through_the_pipeline() {
    let source = "
        extern grad(vec) -> (vec);
        fn ascend(q: vec, steps: int, lr: float) -> (out: vec) {
            out = q;
            let i = 0;
            while i < steps {
                out = out + lr * grad(out);
                i = i + 1;
            }
        }
    ";
    let program = compile(source, "ascend").expect("compiles");
    let registry = model_registry(Arc::new(StdNormal::new(3)));
    let ab = Autobatcher::with_options(
        program,
        registry,
        autobatch::core::ExecOptions::default(),
        autobatch::core::LoweringOptions::default(),
    )
    .expect("builds");
    // Gradient ascent on N(0, I) log-density walks toward the origin.
    let q0 = Tensor::from_f64(&[4.0, -4.0, 2.0, 8.0, 0.0, -8.0], &[2, 3]).unwrap();
    let steps = Tensor::from_i64(&[10, 20], &[2]).unwrap();
    let lr = Tensor::from_f64(&[0.1, 0.1], &[2]).unwrap();
    let out = ab.run_pc(&[q0, steps, lr], None).unwrap();
    let v = out[0].as_f64().unwrap();
    for (i, &x) in v.iter().enumerate() {
        let start: f64 = [4.0, -4.0, 2.0, 8.0, 0.0, -8.0][i];
        assert!(
            x.abs() <= start.abs() + 1e-12,
            "moved toward 0: {x} from {start}"
        );
    }
    // Member 1 took twice the steps: strictly closer to the origin.
    assert!(v[3].abs() < 8.0 * 0.9f64.powi(10));
}

#[test]
fn nuts_small_run_agrees_everywhere_and_prices() {
    let model = StdNormal::new(2);
    let cfg = NutsConfig {
        step_size: 0.3,
        n_trajectories: 4,
        max_depth: 4,
        leapfrog_steps: 2,
        seed: 21,
    };
    let nuts = BatchNuts::new(Arc::new(model.clone()), cfg).expect("builds");
    let q0 = Tensor::zeros(DType::F64, &[4, 2]);

    let mut tr = Trace::new(Backend::xla_cpu());
    let pc = nuts.run_pc(&q0, Some(&mut tr)).expect("pc runs");
    let local = nuts.run_local(&q0, None).expect("lsab runs");
    assert_eq!(pc, local);

    let native = NativeNuts::new(&model, cfg);
    let (nat, stats) = native.run_chains(&q0, None).expect("native runs");
    let (a, b) = (pc.as_f64().unwrap(), nat.as_f64().unwrap());
    for (x, y) in a.iter().zip(b) {
        assert!((x - y).abs() < 1e-12, "batched {x} vs native {y}");
    }
    // The trace accounts exactly the native sampler's useful gradients.
    assert_eq!(tr.useful_count("grad"), stats.grads);
    assert!(tr.sim_time() > 0.0);
}

#[test]
fn type_errors_surface_with_positions() {
    let bad = "fn f(x: int) -> (y: float) {\n    y = x + 1.0;\n}";
    let err = compile(bad, "f").unwrap_err();
    assert_eq!(err.pos.line, 2);
    assert!(err.message.contains("cast"));
}

#[test]
fn runtime_errors_are_reported_not_panicked() {
    // Stack overflow from deep recursion under a tiny depth limit.
    let source = "
        fn down(n: int) -> (out: int) {
            if n <= 0 { out = 0; }
            else { let r = down(n - 1); out = r + 1; }
        }
    ";
    let program = compile(source, "down").expect("compiles");
    let opts = autobatch::core::ExecOptions {
        stack_depth: 4,
        ..Default::default()
    };
    let ab = Autobatcher::with_options(
        program,
        autobatch::core::KernelRegistry::new(),
        opts,
        autobatch::core::LoweringOptions::default(),
    )
    .expect("builds");
    let deep = Tensor::from_i64(&[100], &[1]).unwrap();
    let err = ab.run_pc(&[deep], None).unwrap_err();
    assert!(matches!(
        err,
        autobatch::core::VmError::StackOverflow { .. }
    ));
    // Shallow input still fine under the same limit.
    let ok = ab
        .run_pc(&[Tensor::from_i64(&[3], &[1]).unwrap()], None)
        .unwrap();
    assert_eq!(ok[0].as_i64().unwrap(), &[3]);
}
