//! Shape assertions for the paper's evaluation figures (DESIGN.md §4):
//! small-scale versions of the Figure 5/6 experiments whose *qualitative*
//! conclusions must hold for the reproduction to count. These are the
//! regression tests behind EXPERIMENTS.md.

use std::sync::Arc;

use autobatch::accel::{Backend, Trace};
use autobatch::models::{CorrelatedGaussian, LogisticRegression, Model, PricedAs};
use autobatch::nuts::{BatchNuts, NativeNuts, NutsConfig};
use autobatch::tensor::CounterRng;

fn nuts_fixture() -> (BatchNuts, Arc<dyn Model>) {
    // Scaled-down posterior priced at the paper's 10,000 × 100 size.
    let model: Arc<dyn Model> = Arc::new(PricedAs::as_paper_logistic(
        LogisticRegression::synthetic(120, 8, 3),
    ));
    let cfg = NutsConfig {
        step_size: 0.08,
        n_trajectories: 2,
        max_depth: 5,
        leapfrog_steps: 4,
        seed: 19,
    };
    (BatchNuts::new(model.clone(), cfg).expect("builds"), model)
}

fn starts(z: usize, d: usize) -> autobatch::tensor::Tensor {
    CounterRng::new(55).normal_batch(&(0..z as i64).collect::<Vec<_>>(), &[d])
}

fn pc_rate(nuts: &BatchNuts, backend: Backend, z: usize, d: usize) -> f64 {
    let mut tr = Trace::new(backend);
    let mut opts = nuts.exec_options();
    opts.stack_depth = 64;
    nuts.run_pc_opts(&starts(z, d), Some(&mut tr), opts)
        .expect("runs");
    tr.useful_count("grad") as f64 / tr.sim_time()
}

fn lsab_rate(nuts: &BatchNuts, backend: Backend, z: usize, d: usize) -> f64 {
    let mut tr = Trace::new(backend);
    nuts.run_local(&starts(z, d), Some(&mut tr)).expect("runs");
    tr.useful_count("grad") as f64 / tr.sim_time()
}

#[test]
fn fig5_batching_scales_and_baselines_are_flat() {
    let (nuts, model) = nuts_fixture();
    let d = model.dim();

    // Batched throughput grows strongly with batch size (Figure 5's
    // headline). Scaling is sub-linear because utilization decays with
    // divergence, but a 16× batch must still deliver several times the
    // throughput.
    let r1 = pc_rate(&nuts, Backend::xla_cpu(), 1, d);
    let r16 = pc_rate(&nuts, Backend::xla_cpu(), 16, d);
    assert!(
        r16 > 2.5 * r1,
        "pc-xla-cpu scales with batch: {r1} -> {r16}"
    );

    // The native (Stan-like) baseline is flat per construction; the
    // batched run at a modest batch already beats the eager-unbatched
    // baseline by a wide margin.
    let native = NativeNuts::new(model.as_ref(), nuts.config());
    let mut tr = Trace::new(Backend::native_cpu());
    let (_, stats) = native
        .run_chains(&starts(4, d), Some(&mut tr))
        .expect("native");
    let stan = stats.grads as f64 / tr.sim_time();
    let unbatched = lsab_rate(&nuts, Backend::eager_cpu(), 1, d);
    assert!(
        stan > 20.0 * unbatched,
        "native beats unbatched eager: {stan} vs {unbatched}"
    );
}

#[test]
fn fig5_crossovers_match_paper_bands() {
    let (nuts, model) = nuts_fixture();
    let d = model.dim();
    let native = NativeNuts::new(model.as_ref(), nuts.config());
    let mut tr = Trace::new(Backend::native_cpu());
    let (_, stats) = native
        .run_chains(&starts(4, d), Some(&mut tr))
        .expect("native");
    let stan = stats.grads as f64 / tr.sim_time();

    // The paper: fully XLA-compiled autobatching matches Stan at a batch
    // of "just ten". Accept a band of [2, 64].
    let below = pc_rate(&nuts, Backend::xla_cpu(), 2, d);
    let above = pc_rate(&nuts, Backend::xla_cpu(), 64, d);
    assert!(
        below < stan,
        "pc-xla-cpu below Stan at Z=2: {below} vs {stan}"
    );
    assert!(
        above > stan,
        "pc-xla-cpu above Stan by Z=64: {above} vs {stan}"
    );

    // Eager local-static autobatching crosses much later ("a few
    // hundred"): still below Stan at Z=32.
    let eager32 = lsab_rate(&nuts, Backend::eager_cpu(), 32, d);
    assert!(
        eager32 < stan,
        "eager still below Stan at Z=32: {eager32} vs {stan}"
    );
}

#[test]
fn fig5_gpu_dominates_at_large_batch_and_hybrid_wins_asymptotically() {
    // Use a wider parameter vector so stack traffic is paper-scale
    // relative to gradient compute.
    let model: Arc<dyn Model> = Arc::new(PricedAs::as_paper_logistic(
        LogisticRegression::synthetic(120, 64, 3),
    ));
    let cfg = NutsConfig {
        step_size: 0.05,
        n_trajectories: 2,
        max_depth: 5,
        leapfrog_steps: 4,
        seed: 19,
    };
    let nuts = BatchNuts::new(model.clone(), cfg).expect("builds");
    let d = model.dim();

    let pc_cpu = pc_rate(&nuts, Backend::xla_cpu(), 128, d);
    let pc_gpu = pc_rate(&nuts, Backend::xla_gpu(), 128, d);
    assert!(
        pc_gpu >= pc_cpu,
        "GPU at least matches CPU at Z=128: {pc_gpu} vs {pc_cpu}"
    );

    // §4.1's surprise: at very large batch the hybrid (in-place stacks,
    // fused blocks) overtakes fully compiled program-counter autobatching
    // on CPU. The crossover sits beyond what a unit test can run
    // (Z ≳ 4k, where fixed per-superstep overheads amortize away), so we
    // assert the *asymptote* directly: re-price each recorded run with
    // dispatch and superstep overheads zeroed, leaving exactly the costs
    // that scale with batch size — compute (including masked-lane waste)
    // and memory traffic (including the compiled form's functional
    // whole-buffer stack updates, the paper's hypothesis 2).
    let z = 192;
    let asymptotic_rate = |tr: &Trace, base: Backend| {
        let zeroed = Backend {
            launch_overhead: 0.0,
            superstep_overhead: 0.0,
            ..base
        };
        let priced = tr.replay_as(zeroed);
        priced.useful_count("grad") as f64 / priced.sim_time()
    };
    let mut tr_pc = Trace::recording(Backend::xla_cpu());
    let mut opts = nuts.exec_options();
    opts.stack_depth = 64;
    nuts.run_pc_opts(&starts(z, d), Some(&mut tr_pc), opts)
        .expect("runs");
    let mut tr_hy = Trace::recording(Backend::hybrid_cpu());
    nuts.run_local(&starts(z, d), Some(&mut tr_hy))
        .expect("runs");

    let pc_asym = asymptotic_rate(&tr_pc, Backend::xla_cpu());
    let hy_asym = asymptotic_rate(&tr_hy, Backend::hybrid_cpu());
    assert!(
        hy_asym > pc_asym,
        "hybrid's asymptotic throughput beats pc-xla on CPU: \
         {hy_asym:.3e} vs {pc_asym:.3e} grads/s"
    );
}

#[test]
fn fig6_pc_utilization_dominates_lsab() {
    let model = Arc::new(CorrelatedGaussian::new(24, 0.9));
    let cfg = NutsConfig {
        step_size: 0.15,
        n_trajectories: 6,
        max_depth: 6,
        leapfrog_steps: 4,
        seed: 29,
    };
    let nuts = BatchNuts::new(model, cfg).expect("builds");
    for z in [4usize, 16, 48] {
        let q0 = starts(z, 24);
        let mut tr_local = Trace::new(Backend::eager_cpu());
        nuts.run_local(&q0, Some(&mut tr_local)).expect("lsab");
        let mut tr_pc = Trace::new(Backend::xla_cpu());
        nuts.run_pc(&q0, Some(&mut tr_pc)).expect("pc");
        let (ul, up) = (tr_local.utilization("grad"), tr_pc.utilization("grad"));
        assert!(
            up > ul,
            "pc utilization beats local-static at Z={z}: {up:.3} vs {ul:.3}"
        );
        assert!(ul > 0.0 && up <= 1.0);
    }
}

#[test]
fn fig6_long_chain_utilization_depends_on_block_heuristic() {
    // §4.2 predicts gradient utilization approaches 1 for long chains.
    // In this runtime the outcome hinges on the §2 "free choice" of
    // block-selection heuristic (deviation D2 in EXPERIMENTS.md): the
    // paper's earliest-block default lets members disperse over long
    // horizons, so utilization *drifts down* with chain length; the
    // most-active heuristic coheres members and recovers the paper's
    // upward trend. Pin both so scheduler changes surface here.
    let cfg = |n_traj| NutsConfig {
        step_size: 0.15,
        n_trajectories: n_traj,
        max_depth: 5,
        leapfrog_steps: 4,
        seed: 29,
    };
    let q0 = starts(16, 16);
    let util = |n_traj: usize, heuristic| {
        let model = Arc::new(CorrelatedGaussian::new(16, 0.8));
        let nuts = BatchNuts::new(model, cfg(n_traj)).expect("builds");
        let mut tr = Trace::new(Backend::xla_cpu());
        let opts = autobatch::core::ExecOptions {
            heuristic,
            ..nuts.exec_options()
        };
        nuts.run_pc_opts(&q0, Some(&mut tr), opts).expect("pc");
        tr.utilization("grad")
    };
    use autobatch::core::BlockHeuristic;
    let (e_short, e_long) = (
        util(2, BlockHeuristic::EarliestBlock),
        util(16, BlockHeuristic::EarliestBlock),
    );
    let (m_short, m_long) = (
        util(2, BlockHeuristic::MostActive),
        util(16, BlockHeuristic::MostActive),
    );
    assert!(
        m_long > m_short,
        "most-active recovers the paper's trend: {m_short:.3} -> {m_long:.3}"
    );
    assert!(
        e_long < e_short,
        "earliest-block disperses instead: {e_short:.3} -> {e_long:.3}"
    );
    // Neither collapses: long-chain utilization stays above a floor.
    assert!(e_long > 0.1 && m_long > 0.1);
}

#[test]
fn ablation_dynamic_recovers_more_batching_than_lsab() {
    // The §5 related-work architecture: dynamic (agenda) batching merges
    // gradient calls across trajectory and call boundaries
    // opportunistically, so on identical NUTS workloads it needs fewer
    // gradient launches than local static autobatching — while computing
    // the exact same answers. (Its structural drawback — no graph
    // compilation — is a property, not a measurement.)
    let model = Arc::new(CorrelatedGaussian::new(25, 0.8));
    let cfg = NutsConfig {
        step_size: 0.2,
        n_trajectories: 3,
        max_depth: 6,
        leapfrog_steps: 2,
        seed: 57,
    };
    let nuts = BatchNuts::new(model, cfg).expect("builds");
    let q0 = starts(16, 25);
    let mut tr_local = Trace::new(Backend::eager_cpu());
    let out_local = nuts.run_local(&q0, Some(&mut tr_local)).expect("lsab");
    let mut tr_dyn = Trace::new(Backend::eager_cpu());
    let out_dyn = nuts.run_dynamic(&q0, Some(&mut tr_dyn)).expect("dynamic");
    assert_eq!(out_local, out_dyn, "architectures agree exactly");
    let l_lsab = tr_local.logical_stats("grad").expect("lsab grads").launches;
    let l_dyn = tr_dyn.logical_stats("grad").expect("dyn grads").launches;
    assert!(
        l_dyn < l_lsab,
        "dynamic batches gradients harder: {l_dyn} vs {l_lsab} launches"
    );
}

#[test]
fn fig6_utilization_decays_from_one() {
    let model = Arc::new(CorrelatedGaussian::new(24, 0.9));
    let cfg = NutsConfig {
        step_size: 0.15,
        n_trajectories: 6,
        max_depth: 6,
        leapfrog_steps: 4,
        seed: 29,
    };
    let nuts = BatchNuts::new(model, cfg).expect("builds");
    let mut last = f64::INFINITY;
    for z in [1usize, 8, 32] {
        let mut tr = Trace::new(Backend::xla_cpu());
        nuts.run_pc(&starts(z, 24), Some(&mut tr)).expect("pc");
        let u = tr.utilization("grad");
        if z == 1 {
            assert!((u - 1.0).abs() < 1e-12, "single member wastes nothing");
        }
        assert!(u <= last + 1e-9, "utilization decays with batch size");
        last = u;
    }
}
