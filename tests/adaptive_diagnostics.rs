//! Cross-crate integration: dual-averaging warmup (nuts::adapt) feeding
//! a batched sampling phase (nuts::BatchNuts) whose draws are judged by
//! the convergence diagnostics (diagnostics) — the full "many chains"
//! workflow the paper motivates, end to end.

use std::sync::Arc;

use autobatch::diagnostics::{ess, split_rhat, summarize};
use autobatch::models::StdNormal;
use autobatch::nuts::{AdaptiveNuts, BatchNuts, NutsConfig};
use autobatch::tensor::{DType, Tensor};

fn cfg() -> NutsConfig {
    NutsConfig {
        step_size: 0.5,
        n_trajectories: 1,
        max_depth: 5,
        leapfrog_steps: 1,
        seed: 33,
    }
}

#[test]
fn warmup_then_batched_draws_pass_diagnostics_on_std_normal() {
    let model = StdNormal::new(3);
    let chains = 4;
    let draws = 60;
    let adapter = AdaptiveNuts::new(&model, cfg(), 0.8);
    let q0 = Tensor::zeros(DType::F64, &[chains, 3]);
    let adapted = adapter.warmup_chains(&q0, 40).expect("warmup");

    let nuts = BatchNuts::new(Arc::new(model), cfg()).expect("compiles");
    let mut q = Tensor::concat_rows(
        &adapted
            .iter()
            .map(|c| c.state.position().unwrap().reshape(&[1, 3]).unwrap())
            .collect::<Vec<_>>(),
    )
    .expect("stack positions");
    let eps = Tensor::from_f64(
        &adapted.iter().map(|c| c.step_size).collect::<Vec<_>>(),
        &[chains],
    )
    .expect("eps");
    let mut counters = Tensor::from_i64(
        &adapted
            .iter()
            .map(|c| c.state.counter())
            .collect::<Vec<_>>(),
        &[chains],
    )
    .expect("counters");

    // Collect the coordinate-0 series per chain from batched draws.
    let mut series: Vec<Vec<f64>> = (0..chains).map(|_| Vec::with_capacity(draws)).collect();
    for _ in 0..draws {
        let (q2, c2) = nuts
            .run_pc_with(&q, &eps, 1, &counters, None)
            .expect("draw");
        q = q2;
        counters = c2;
        let v = q.as_f64().expect("f64");
        for b in 0..chains {
            series[b].push(v[b * 3]);
        }
    }

    // On an isotropic normal with adapted step sizes the chains must look
    // healthy: R̂ close to 1, non-degenerate ESS, correct center/spread.
    let rhat = split_rhat(&series).expect("rhat");
    assert!(rhat < 1.25, "rhat = {rhat}");
    let e = ess(&series).expect("ess");
    assert!(e > 25.0, "ess = {e}");
    let s = summarize(&series).expect("summary");
    assert!(s.mean.abs() < 0.6, "mean = {}", s.mean);
    assert!(s.sd > 0.5 && s.sd < 2.0, "sd = {}", s.sd);
}

#[test]
fn adapted_step_sizes_track_target_geometry() {
    // On a wider Gaussian (sd 1) vs the same model scaled implicitly by
    // adaptation target: tighter targets need smaller steps. Here we just
    // assert adaptation produced per-chain step sizes in a sane band and
    // *different* chains adapted to *similar* values (same geometry).
    let model = StdNormal::new(6);
    let adapter = AdaptiveNuts::new(&model, cfg(), 0.8);
    let q0 = Tensor::zeros(DType::F64, &[3, 6]);
    let adapted = adapter.warmup_chains(&q0, 60).expect("warmup");
    let eps: Vec<f64> = adapted.iter().map(|c| c.step_size).collect();
    for &e in &eps {
        assert!(e > 0.05 && e < 5.0, "eps = {e}");
    }
    let spread = eps.iter().cloned().fold(0.0f64, f64::max)
        / eps.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 6.0, "chains disagree wildly: {eps:?}");
}
