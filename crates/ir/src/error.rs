//! Error type for IR construction and validation.

use std::fmt;

use crate::var::{BlockId, FuncId, Var};

/// Errors detected while constructing or validating IR programs.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// A block index referred to a block that does not exist.
    BadBlock {
        /// The function containing the reference (if applicable).
        func: Option<FuncId>,
        /// The offending block id.
        block: BlockId,
        /// Number of blocks actually present.
        len: usize,
    },
    /// A function index referred to a function that does not exist.
    BadFunc {
        /// The offending function id.
        func: FuncId,
        /// Number of functions actually present.
        len: usize,
    },
    /// An op's operand count disagreed with its primitive's arity.
    BadArity {
        /// Description of the op.
        what: String,
        /// Expected count.
        expected: usize,
        /// Provided count.
        got: usize,
    },
    /// A call's argument or result count disagreed with the callee.
    BadCall {
        /// The callee.
        callee: FuncId,
        /// Description of the mismatch.
        what: String,
    },
    /// A variable may be read before it is ever assigned.
    UnassignedRead {
        /// The variable.
        var: Var,
        /// The function in which the read occurs.
        func: Option<FuncId>,
        /// The block in which the read occurs.
        block: BlockId,
    },
    /// A function has no blocks.
    EmptyFunction {
        /// The function.
        func: FuncId,
    },
    /// The program has no functions or no entry point.
    NoEntry,
    /// A `Pop` or stacked `Push` targets a variable classified as a
    /// register (no stack), or vice versa.
    BadVarClass {
        /// The variable.
        var: Var,
        /// Description of the violation.
        what: String,
    },
    /// A name was duplicated where uniqueness is required.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// Static verification proved an op must (or could not be proven
    /// not to) raise a dtype or shape error at runtime.
    TypeError {
        /// The function containing the op (`None` for pcab programs).
        func: Option<FuncId>,
        /// The block containing the op.
        block: BlockId,
        /// Index of the op within the block, or `None` when the error
        /// is at the block's terminator.
        op: Option<usize>,
        /// Human-readable description of the violation.
        what: String,
    },
    /// A concrete input does not satisfy the program's inferred
    /// signature (wrong dtype or element shape).
    BadSignature {
        /// Index of the offending input.
        input: usize,
        /// Description of the mismatch.
        what: String,
    },
    /// No `Return` is reachable from the entry along statically-feasible
    /// edges: the program can never produce outputs.
    NoReachableReturn {
        /// The entry function (`None` for pcab programs).
        func: Option<FuncId>,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::BadBlock { func, block, len } => match func {
                Some(fid) => write!(f, "{fid}: block {block} out of range ({len} blocks)"),
                None => write!(f, "block {block} out of range ({len} blocks)"),
            },
            IrError::BadFunc { func, len } => {
                write!(f, "function {func} out of range ({len} functions)")
            }
            IrError::BadArity {
                what,
                expected,
                got,
            } => {
                write!(
                    f,
                    "arity mismatch in {what}: expected {expected}, got {got}"
                )
            }
            IrError::BadCall { callee, what } => write!(f, "bad call to {callee}: {what}"),
            IrError::UnassignedRead { var, func, block } => match func {
                Some(fid) => {
                    write!(
                        f,
                        "variable `{var}` may be read before assignment in {fid}/{block}"
                    )
                }
                None => write!(
                    f,
                    "variable `{var}` may be read before assignment in {block}"
                ),
            },
            IrError::EmptyFunction { func } => write!(f, "function {func} has no blocks"),
            IrError::NoEntry => write!(f, "program has no entry function"),
            IrError::BadVarClass { var, what } => {
                write!(
                    f,
                    "variable `{var}` used inconsistently with its class: {what}"
                )
            }
            IrError::DuplicateName { name } => write!(f, "duplicate name `{name}`"),
            IrError::TypeError {
                func,
                block,
                op,
                what,
            } => {
                match func {
                    Some(fid) => write!(f, "type error in {fid}/{block}")?,
                    None => write!(f, "type error in {block}")?,
                }
                match op {
                    Some(i) => write!(f, " op {i}: {what}"),
                    None => write!(f, " terminator: {what}"),
                }
            }
            IrError::BadSignature { input, what } => {
                write!(f, "input {input} violates the program signature: {what}")
            }
            IrError::NoReachableReturn { func } => match func {
                Some(fid) => write!(f, "no return is statically reachable in {fid}"),
                None => write!(f, "no return is statically reachable"),
            },
        }
    }
}

impl std::error::Error for IrError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, IrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_entities() {
        let e = IrError::UnassignedRead {
            var: Var::new("left"),
            func: Some(FuncId(0)),
            block: BlockId(2),
        };
        let s = e.to_string();
        assert!(s.contains("left") && s.contains("f0") && s.contains("b2"));
    }
}
