//! Static verification of [`lsab`](crate::lsab) programs: an
//! interprocedural forward abstract interpretation over the
//! [`absint`](super::absint) lattice.
//!
//! The engine runs one monovariant summary per function (arguments are
//! joined over every call site; recursive functions reach a fixpoint
//! from an empty summary) and tracks, per block, the environment at
//! block entry. Branch edges whose condition is a known boolean
//! constant are pruned, so reachability is computed over
//! *statically-feasible* edges only.
//!
//! # Soundness invariant
//!
//! If [`analyze_lsab`] reports no diagnostics and
//! [`infer_lsab_signature`] accepts a set of concrete input specs, then
//! executing the program on batched inputs matching those specs cannot
//! raise a dtype/shape (`VmError::Tensor`) or uninitialized-variable
//! (`VmError::Unbound`) error on any VM, and every produced output has
//! exactly the inferred dtype and element shape. If additionally the
//! [`call depth`](LsabReport::call_depth) (and the lowered program's
//! stack bounds) fit the configured stack limit, `VmError::StackOverflow`
//! is excluded too. The `static_verification` differential proptest
//! pins this invariant against all three VMs. The guarantee is
//! conditional on `External` kernels honoring their registry contract —
//! their outputs are assumed well-formed but unknown.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::error::IrError;
use crate::lsab::{Op, Program, Terminator};
use crate::var::{BlockId, FuncId, Var};

use super::absint::{transfer, AbsDType, AbsShape, AbsValue, Constraints, DepthBound, TensorSpec};
use super::CallGraph;

/// The environment at a program point: every definitely-assigned
/// variable's abstract value. Joining intersects the key sets (a
/// variable assigned on only one incoming path is not definitely
/// assigned) and joins the values pointwise.
type Env = BTreeMap<Var, AbsValue>;

fn join_env(a: &Env, b: &Env) -> Env {
    a.iter()
        .filter_map(|(k, va)| b.get(k).map(|vb| (k.clone(), va.join(vb))))
        .collect()
}

/// The inferred signature of a program for one concrete input
/// specification.
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    /// The input specs the signature was inferred for.
    pub inputs: Vec<TensorSpec>,
    /// Abstract output values. Concrete unless an output flows from an
    /// `External` kernel.
    pub outputs: Vec<AbsValue>,
}

impl Signature {
    /// True when output `i` has a fully-concrete dtype and shape.
    pub fn output_concrete(&self, i: usize) -> bool {
        self.outputs[i].dtype.is_concrete() && self.outputs[i].shape.as_elem().is_some()
    }
}

/// The result of program-level verification of an lsab program.
#[derive(Debug, Clone)]
pub struct LsabReport {
    /// Inferred per-input dtype constraints (`Any` = unconstrained).
    pub input_dtypes: Vec<AbsDType>,
    /// Abstract values of the program outputs (joined over all returns).
    pub outputs: Vec<AbsValue>,
    /// Static bound on the deepest chain of nested calls
    /// (`Unbounded` when any reachable function is recursive).
    pub call_depth: DepthBound,
    /// Blocks unreachable along statically-feasible edges (includes all
    /// blocks of functions that are never called).
    pub unreachable: Vec<(FuncId, BlockId)>,
    /// Branches whose condition may differ across batch members: the
    /// sites where lanes can split (the input to PC-affinity
    /// scheduling).
    pub divergent_branches: Vec<(FuncId, BlockId)>,
    /// Verification failures. Empty means the program is accepted.
    pub diagnostics: Vec<IrError>,
}

impl LsabReport {
    /// True when verification succeeded (no diagnostics).
    pub fn ok(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

struct Engine<'p> {
    p: &'p Program,
    /// Env at each function's entry (params only), joined over call
    /// sites. `None` = never called.
    entry_env: Vec<Option<Env>>,
    /// Env at each block's entry. `None` = not yet reached.
    block_in: Vec<Vec<Option<Env>>>,
    /// Per-function output summary, joined over reachable returns.
    summaries: Vec<Option<Vec<AbsValue>>>,
    /// Blocks containing calls to each function (for requeueing when a
    /// summary changes).
    call_sites: Vec<Vec<(usize, usize)>>,
    cons: Constraints,
    diags: Vec<IrError>,
    divergent: BTreeSet<(usize, usize)>,
    work: VecDeque<(usize, usize)>,
    queued: BTreeSet<(usize, usize)>,
}

impl<'p> Engine<'p> {
    fn new(p: &'p Program, entry_values: Vec<AbsValue>) -> Engine<'p> {
        let nf = p.funcs.len();
        let mut call_sites = vec![Vec::new(); nf];
        for (fi, f) in p.funcs.iter().enumerate() {
            for (bi, b) in f.blocks.iter().enumerate() {
                for op in &b.ops {
                    if let Op::Call { callee, .. } = op {
                        call_sites[callee.0].push((fi, bi));
                    }
                }
            }
        }
        let entry = p.entry.0;
        let entry_fn = &p.funcs[entry];
        let env: Env = entry_fn.params.iter().cloned().zip(entry_values).collect();
        let mut eng = Engine {
            p,
            entry_env: vec![None; nf],
            block_in: p.funcs.iter().map(|f| vec![None; f.blocks.len()]).collect(),
            summaries: vec![None; nf],
            call_sites,
            cons: Constraints::none(entry_fn.params.len()),
            diags: Vec::new(),
            divergent: BTreeSet::new(),
            work: VecDeque::new(),
            queued: BTreeSet::new(),
        };
        eng.entry_env[entry] = Some(env.clone());
        eng.propagate(entry, 0, env);
        eng
    }

    fn queue(&mut self, f: usize, b: usize) {
        if self.queued.insert((f, b)) {
            self.work.push_back((f, b));
        }
    }

    fn propagate(&mut self, f: usize, b: usize, env: Env) {
        let slot = &mut self.block_in[f][b];
        let next = match slot {
            Some(old) => {
                let joined = join_env(old, &env);
                if joined == *old {
                    return;
                }
                joined
            }
            None => env,
        };
        *slot = Some(next);
        self.queue(f, b);
    }

    fn diag(&mut self, e: IrError) {
        if !self.diags.contains(&e) {
            self.diags.push(e);
        }
    }

    fn read(&mut self, env: &Env, var: &Var, f: usize, b: usize) -> Option<AbsValue> {
        match env.get(var) {
            Some(v) => Some(v.clone()),
            None => {
                self.diag(IrError::UnassignedRead {
                    var: var.clone(),
                    func: Some(FuncId(f)),
                    block: BlockId(b),
                });
                None
            }
        }
    }

    fn run(&mut self) {
        // Each (func, block) pair can be requeued only when some lattice
        // component moves up; the domain height is finite, so this
        // terminates. The explicit cap is a defensive backstop.
        let mut budget = 64
            * 1024
            * self
                .p
                .funcs
                .iter()
                .map(|f| f.blocks.len())
                .sum::<usize>()
                .max(1);
        while let Some((f, b)) = self.work.pop_front() {
            self.queued.remove(&(f, b));
            if budget == 0 {
                break;
            }
            budget -= 1;
            self.process(f, b);
        }
    }

    fn process(&mut self, f: usize, b: usize) {
        let p = self.p;
        let mut env = match &self.block_in[f][b] {
            Some(e) => e.clone(),
            None => return,
        };
        let block = &p.funcs[f].blocks[b];
        for (i, op) in block.ops.iter().enumerate() {
            match op {
                Op::Prim { outs, prim, ins } => {
                    let mut vals = Vec::with_capacity(ins.len());
                    for v in ins {
                        match self.read(&env, v, f, b) {
                            Some(av) => vals.push(av),
                            None => return,
                        }
                    }
                    match transfer(prim, &vals, outs.len(), &mut self.cons) {
                        Ok(res) => {
                            for (o, r) in outs.iter().zip(res) {
                                env.insert(o.clone(), r);
                            }
                        }
                        Err(what) => {
                            self.diag(IrError::TypeError {
                                func: Some(FuncId(f)),
                                block: BlockId(b),
                                op: Some(i),
                                what,
                            });
                            return;
                        }
                    }
                }
                Op::Call { outs, callee, ins } => {
                    let mut args = Vec::with_capacity(ins.len());
                    for v in ins {
                        match self.read(&env, v, f, b) {
                            Some(av) => args.push(av),
                            None => return,
                        }
                    }
                    let c = callee.0;
                    let callee_fn = &p.funcs[c];
                    let arg_env: Env = callee_fn.params.iter().cloned().zip(args).collect();
                    let next = match &self.entry_env[c] {
                        Some(old) => {
                            let joined = join_env(old, &arg_env);
                            (joined != *old).then_some(joined)
                        }
                        None => Some(arg_env),
                    };
                    if let Some(e) = next {
                        self.entry_env[c] = Some(e.clone());
                        self.propagate(c, 0, e);
                        // Re-seed the callee's entry even if block 0's
                        // env was already at the join.
                        self.queue(c, 0);
                    }
                    match &self.summaries[c] {
                        Some(rets) => {
                            for (o, r) in outs.iter().zip(rets.clone()) {
                                env.insert(o.clone(), r);
                            }
                        }
                        // Callee has no summary yet: this block is
                        // requeued when the summary first appears.
                        None => return,
                    }
                }
            }
        }
        match &block.term {
            Terminator::Jump(t) => self.propagate(f, t.0, env),
            Terminator::Branch { cond, then_, else_ } => {
                let cv = match self.read(&env, cond, f, b) {
                    Some(v) => v,
                    None => return,
                };
                match cv.dtype {
                    AbsDType::Bool => {}
                    AbsDType::Any => {
                        if let Some(idx) = cv.origin {
                            if let Err(what) = self.cons.require(idx, AbsDType::Bool) {
                                self.diag(IrError::TypeError {
                                    func: Some(FuncId(f)),
                                    block: BlockId(b),
                                    op: None,
                                    what,
                                });
                                return;
                            }
                        }
                    }
                    other => {
                        self.diag(IrError::TypeError {
                            func: Some(FuncId(f)),
                            block: BlockId(b),
                            op: None,
                            what: format!("branch condition must be bool, got {other}"),
                        });
                        return;
                    }
                }
                // Per-member branching indexes the condition by member,
                // so the element must be a scalar.
                if let AbsShape::Elem(s) = &cv.shape {
                    if !s.is_empty() {
                        self.diag(IrError::TypeError {
                            func: Some(FuncId(f)),
                            block: BlockId(b),
                            op: None,
                            what: format!(
                                "branch condition must be a per-member scalar, got element shape {}",
                                cv.shape
                            ),
                        });
                        return;
                    }
                }
                let (then_live, else_live) = match cv.known_cond {
                    Some(true) => (true, false),
                    Some(false) => (false, true),
                    None => (true, true),
                };
                if then_live && else_live && cv.divergent {
                    self.divergent.insert((f, b));
                }
                if then_live {
                    self.propagate(f, then_.0, env.clone());
                }
                if else_live {
                    self.propagate(f, else_.0, env);
                }
            }
            Terminator::Return => {
                let outputs = &p.funcs[f].outputs;
                let mut rets = Vec::with_capacity(outputs.len());
                for v in outputs.iter() {
                    match self.read(&env, v, f, b) {
                        Some(av) => rets.push(av),
                        None => return,
                    }
                }
                let next = match &self.summaries[f] {
                    Some(old) => {
                        let joined: Vec<AbsValue> =
                            old.iter().zip(&rets).map(|(a, c)| a.join(c)).collect();
                        (joined != *old).then_some(joined)
                    }
                    None => Some(rets),
                };
                if let Some(s) = next {
                    self.summaries[f] = Some(s);
                    for (cf, cb) in self.call_sites[f].clone() {
                        self.queue(cf, cb);
                    }
                }
            }
        }
    }

    fn unreachable(&self) -> Vec<(FuncId, BlockId)> {
        let mut out = Vec::new();
        for (fi, blocks) in self.block_in.iter().enumerate() {
            for (bi, env) in blocks.iter().enumerate() {
                if env.is_none() {
                    out.push((FuncId(fi), BlockId(bi)));
                }
            }
        }
        out
    }

    fn call_depth(&self) -> DepthBound {
        let cg = CallGraph::new(self.p);
        let reachable: Vec<bool> = self.entry_env.iter().map(|e| e.is_some()).collect();
        if (0..self.p.funcs.len()).any(|f| reachable[f] && cg.is_recursive_func(FuncId(f))) {
            return DepthBound::Unbounded;
        }
        fn depth(cg: &CallGraph, f: usize, memo: &mut [Option<usize>]) -> usize {
            if let Some(d) = memo[f] {
                return d;
            }
            // Acyclic (checked above), so plain recursion terminates.
            let d = cg
                .callees(FuncId(f))
                .map(|c| 1 + depth(cg, c.0, memo))
                .max()
                .unwrap_or(0);
            memo[f] = Some(d);
            d
        }
        let mut memo = vec![None; self.p.funcs.len()];
        DepthBound::Bounded(depth(&cg, self.p.entry.0, &mut memo))
    }
}

/// Program-level verification: abstract-interpret the program with
/// fully-unknown inputs, inferring input dtype constraints, output
/// values, reachability, divergence, and the static call-depth bound.
///
/// A structurally-invalid program (failed `validate`) yields a report
/// whose diagnostics carry the validation error.
pub fn analyze_lsab(p: &Program) -> LsabReport {
    let n_inputs = p.funcs.get(p.entry.0).map(|f| f.params.len()).unwrap_or(0);
    let n_outputs = p.funcs.get(p.entry.0).map(|f| f.outputs.len()).unwrap_or(0);
    if let Err(e) = p.validate() {
        return LsabReport {
            input_dtypes: vec![AbsDType::Any; n_inputs],
            outputs: vec![AbsValue::any(); n_outputs],
            call_depth: DepthBound::Unbounded,
            unreachable: Vec::new(),
            divergent_branches: Vec::new(),
            diagnostics: vec![e],
        };
    }
    let entry_values = (0..n_inputs).map(AbsValue::input).collect();
    let mut eng = Engine::new(p, entry_values);
    eng.run();
    let mut diags = std::mem::take(&mut eng.diags);
    let outputs = match &eng.summaries[p.entry.0] {
        Some(outs) => outs.clone(),
        None => {
            let e = IrError::NoReachableReturn {
                func: Some(p.entry),
            };
            if !diags.contains(&e) {
                diags.push(e);
            }
            vec![AbsValue::any(); n_outputs]
        }
    };
    LsabReport {
        input_dtypes: eng.cons.dtypes.clone(),
        outputs,
        call_depth: eng.call_depth(),
        unreachable: eng.unreachable(),
        divergent_branches: eng
            .divergent
            .iter()
            .map(|&(f, b)| (FuncId(f), BlockId(b)))
            .collect(),
        diagnostics: diags,
    }
}

/// Concrete signature inference: abstract-interpret the program with
/// the given concrete input specs and return the inferred output
/// signature.
///
/// # Errors
///
/// Returns the first diagnostic when the program is structurally
/// invalid, ill-typed for these inputs, or can never return.
pub fn infer_lsab_signature(p: &Program, inputs: &[TensorSpec]) -> Result<Signature, IrError> {
    p.validate()?;
    let entry_fn = &p.funcs[p.entry.0];
    if inputs.len() != entry_fn.params.len() {
        return Err(IrError::BadArity {
            what: format!("program inputs for `{}`", entry_fn.name),
            expected: entry_fn.params.len(),
            got: inputs.len(),
        });
    }
    let entry_values = inputs
        .iter()
        .enumerate()
        .map(|(i, s)| s.abs_value(i))
        .collect();
    let mut eng = Engine::new(p, entry_values);
    eng.run();
    if let Some(e) = eng.diags.first() {
        return Err(e.clone());
    }
    match &eng.summaries[p.entry.0] {
        Some(outs) => Ok(Signature {
            inputs: inputs.to_vec(),
            outputs: outs.clone(),
        }),
        None => Err(IrError::NoReachableReturn {
            func: Some(p.entry),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{fibonacci_program, ProgramBuilder};
    use crate::prim::Prim;

    #[test]
    fn fibonacci_verifies_with_integer_signature() {
        let p = fibonacci_program();
        let report = analyze_lsab(&p);
        assert!(report.ok(), "diagnostics: {:?}", report.diagnostics);
        // `n` feeds `n <= 1` and `n - 2`, so it must be an integer.
        assert_eq!(report.input_dtypes, vec![AbsDType::I64]);
        assert_eq!(report.call_depth, DepthBound::Unbounded);
        assert!(!report.divergent_branches.is_empty());
        assert!(report.unreachable.is_empty());

        let sig = infer_lsab_signature(&p, &[TensorSpec::new(AbsDType::I64, vec![])]).unwrap();
        assert_eq!(sig.outputs.len(), 1);
        assert_eq!(sig.outputs[0].dtype, AbsDType::I64);
        assert_eq!(sig.outputs[0].shape.as_elem(), Some(&[][..]));
    }

    #[test]
    fn fibonacci_rejects_float_inputs() {
        let p = fibonacci_program();
        assert!(infer_lsab_signature(&p, &[TensorSpec::new(AbsDType::F64, vec![])]).is_err());
    }

    #[test]
    fn ill_typed_program_is_rejected() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("bad", &["x"], &["y"]);
        pb.define(f, |fb| {
            let one = fb.const_f64(1.0);
            let flag = fb.const_bool(true);
            let y = fb.output(0);
            fb.assign(&y, Prim::Add, &[one, flag]);
            fb.ret();
        });
        let p = pb.finish(f).unwrap();
        let report = analyze_lsab(&p);
        assert!(!report.ok());
        assert!(matches!(
            report.diagnostics[0],
            IrError::TypeError { op: Some(_), .. }
        ));
    }

    #[test]
    fn dead_branch_is_pruned_and_reported_unreachable() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("deadarm", &["x"], &["y"]);
        pb.define(f, |fb| {
            let t = fb.const_bool(true);
            let live = fb.new_block();
            let dead = fb.new_block();
            fb.branch(&t, live, dead);
            fb.switch_to(dead);
            // Would be ill-typed if analyzed: the verifier must prune it.
            let y = fb.output(0);
            let x = fb.param(0);
            fb.assign(&y, Prim::Add, &[x.clone(), t.clone()]);
            fb.ret();
            fb.switch_to(live);
            fb.copy(&y, &x);
            fb.ret();
        });
        let p = pb.finish(f).unwrap();
        let report = analyze_lsab(&p);
        assert!(report.ok(), "diagnostics: {:?}", report.diagnostics);
        assert_eq!(report.unreachable.len(), 1);
        // The branch is on a constant: not member-divergent.
        assert!(report.divergent_branches.is_empty());
    }

    #[test]
    fn empty_function_is_a_diagnostic() {
        // The builder refuses to emit a block-less function, so construct
        // the program by hand to reach the analyzer.
        let p = crate::lsab::Program {
            funcs: vec![crate::lsab::Function {
                name: "empty".to_string(),
                params: vec![Var::new("x")],
                blocks: vec![],
                outputs: vec![Var::new("y")],
            }],
            entry: FuncId(0),
        };
        let report = analyze_lsab(&p);
        assert!(matches!(
            report.diagnostics[0],
            IrError::EmptyFunction { .. }
        ));
    }

    #[test]
    fn zero_op_blocks_flow_through() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("hops", &["x"], &["y"]);
        pb.define(f, |fb| {
            let y = fb.output(0);
            let x = fb.param(0);
            fb.copy(&y, &x);
            let hop1 = fb.new_block();
            let hop2 = fb.new_block();
            fb.jump(hop1);
            fb.switch_to(hop1);
            fb.jump(hop2); // zero ops
            fb.switch_to(hop2);
            fb.ret(); // zero ops
        });
        let p = pb.finish(f).unwrap();
        let report = analyze_lsab(&p);
        assert!(report.ok(), "diagnostics: {:?}", report.diagnostics);
        assert_eq!(report.call_depth, DepthBound::Bounded(0));
        assert!(report.unreachable.is_empty());
    }

    #[test]
    fn mutual_recursion_is_unbounded_but_verifies() {
        let mut pb = ProgramBuilder::new();
        let even = pb.declare("even", &["n"], &["r"]);
        let odd = pb.declare("odd", &["n"], &["r"]);
        for (me, other) in [(even, odd), (odd, even)] {
            pb.define(me, |fb| {
                let n = fb.param(0);
                let r = fb.output(0);
                let zero = fb.const_i64(0);
                let one = fb.const_i64(1);
                let is_zero = fb.emit(Prim::Le, &[n.clone(), zero]);
                let base = fb.new_block();
                let rec = fb.new_block();
                fb.branch(&is_zero, base, rec);
                fb.switch_to(base);
                fb.copy(&r, &one);
                fb.ret();
                fb.switch_to(rec);
                let m = fb.emit(Prim::Sub, &[n, one.clone()]);
                fb.call_into(std::slice::from_ref(&r), other, &[m]);
                fb.ret();
            });
        }
        let p = pb.finish(even).unwrap();
        let report = analyze_lsab(&p);
        assert!(report.ok(), "diagnostics: {:?}", report.diagnostics);
        assert_eq!(report.call_depth, DepthBound::Unbounded);
        assert_eq!(report.input_dtypes, vec![AbsDType::I64]);
        let sig = infer_lsab_signature(&p, &[TensorSpec::new(AbsDType::I64, vec![])]).unwrap();
        assert_eq!(sig.outputs[0].dtype, AbsDType::I64);
    }

    #[test]
    fn only_dead_path_to_exit_is_a_diagnostic() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("noexit", &["x"], &["y"]);
        pb.define(f, |fb| {
            let fcond = fb.const_bool(false);
            let ret = fb.new_block();
            let spin = fb.new_block();
            let y = fb.output(0);
            let x = fb.param(0);
            fb.copy(&y, &x);
            fb.branch(&fcond, ret, spin);
            fb.switch_to(ret);
            fb.ret();
            fb.switch_to(spin);
            fb.jump(spin);
        });
        let p = pb.finish(f).unwrap();
        let report = analyze_lsab(&p);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| matches!(d, IrError::NoReachableReturn { .. })));
    }
}
