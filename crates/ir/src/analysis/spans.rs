//! Static fusion legality: the elementwise-run plan of a pcab program,
//! computed once from the IR instead of per execution by the runtime
//! planner.
//!
//! A *run* is a maximal sequence of ≥ 2 consecutive single-output
//! `Compute` ops whose primitives the fused fast path can compile to a
//! scalar table, with at least one dtype table viable across the whole
//! run. This mirrors, prim for prim, the run-growing loop of
//! `autobatch-core`'s `fusion::plan_block`; a cross-check test in that
//! crate keeps the two from drifting.

use crate::pcab::{Op, Program};
use crate::prim::Prim;

/// Scalar-table availability of a primitive in the fused fast path:
/// `Some((has_f64_table, has_i64_table))`, or `None` when the primitive
/// cannot be compiled into a fused run at all.
fn tables(prim: &Prim) -> Option<(bool, bool)> {
    use Prim::*;
    match prim {
        ConstF64(_) => Some((true, false)),
        ConstI64(_) => Some((false, true)),
        Id => Some((true, true)),
        Neg | Abs | Exp | Ln | Sqrt | Square | Sigmoid | Softplus | Floor | Sin | Cos | Tanh => {
            Some((true, false))
        }
        NegI => Some((false, true)),
        Add | Sub | Mul | Div | Min2 | Max2 | Pow => Some((true, true)),
        _ => None,
    }
}

/// Compute the per-block elementwise runs of a pcab program as
/// `(start, len)` op-index spans, `len >= 2`, sorted and
/// non-overlapping. Index `b` of the result describes block `b`.
pub fn elementwise_spans(p: &Program) -> Vec<Vec<(usize, usize)>> {
    p.blocks
        .iter()
        .map(|block| {
            let ops = &block.ops;
            let mut spans = Vec::new();
            let mut i = 0;
            while i < ops.len() {
                let (mut f_ok, mut i_ok) = (true, true);
                let mut j = i;
                while j < ops.len() {
                    let Op::Compute { outs, prim, .. } = &ops[j] else {
                        break;
                    };
                    if outs.len() != 1 {
                        break;
                    }
                    let Some((has_f, has_i)) = tables(prim) else {
                        break;
                    };
                    let nf = f_ok && has_f;
                    let ni = i_ok && has_i;
                    if !nf && !ni {
                        break;
                    }
                    f_ok = nf;
                    i_ok = ni;
                    j += 1;
                }
                if j - i >= 2 {
                    spans.push((i, j - i));
                    i = j;
                } else {
                    i += 1;
                }
            }
            spans
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcab::{Block, Terminator, WriteKind};
    use crate::var::{BlockId, Var};
    use std::collections::BTreeMap;

    fn compute(out: &str, prim: Prim, ins: &[&str]) -> Op {
        Op::Compute {
            outs: vec![(Var::new(out), WriteKind::Update)],
            prim,
            ins: ins.iter().map(Var::new).collect(),
        }
    }

    #[test]
    fn runs_break_on_dtype_table_conflicts_and_unfusable_ops() {
        let p = Program {
            blocks: vec![Block {
                ops: vec![
                    // f64-only run of 2.
                    compute("a", Prim::Exp, &["x"]),
                    compute("b", Prim::Mul, &["a", "x"]),
                    // i64-only op: joint viability breaks the run here.
                    compute("c", Prim::NegI, &["n"]),
                    compute("d", Prim::Id, &["c"]),
                    // Non-fusable op terminates any run.
                    compute("e", Prim::SumElems, &["v"]),
                ],
                term: Terminator::Return,
            }],
            entry: BlockId(0),
            inputs: vec![Var::new("x"), Var::new("n"), Var::new("v")],
            outputs: vec![Var::new("b")],
            classes: BTreeMap::new(),
        };
        let spans = elementwise_spans(&p);
        assert_eq!(spans, vec![vec![(0, 2), (2, 2)]]);
    }

    #[test]
    fn single_fusable_ops_do_not_form_runs() {
        let p = Program {
            blocks: vec![Block {
                ops: vec![
                    compute("a", Prim::Exp, &["x"]),
                    compute("b", Prim::SumElems, &["a"]),
                    compute("c", Prim::Exp, &["b"]),
                ],
                term: Terminator::Return,
            }],
            entry: BlockId(0),
            inputs: vec![Var::new("x")],
            outputs: vec![Var::new("c")],
            classes: BTreeMap::new(),
        };
        assert_eq!(elementwise_spans(&p), vec![Vec::<(usize, usize)>::new()]);
    }
}
