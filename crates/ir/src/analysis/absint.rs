//! The abstract domain of the static verifier: a dtype × element-shape
//! lattice with divergence and constant-condition tracking.
//!
//! # The lattice
//!
//! Each program variable is mapped to an [`AbsValue`], the product of
//! four component lattices:
//!
//! - **dtype** ([`AbsDType`]): `F64 | I64 | Bool`, with `Any` as top.
//!   There is no bottom — an unanalyzed variable is simply absent from
//!   the environment.
//! - **element shape** ([`AbsShape`]): the per-member shape with the
//!   batch axis stripped (a `[Z, 3, 2]` batched tensor has element shape
//!   `[3, 2]`), with `Any` as top. Joining two distinct concrete shapes
//!   goes straight to `Any`.
//! - **divergence**: a boolean, `true` when the value may differ across
//!   batch members (it depends on program inputs or on sampled
//!   randomness). Joins are disjunction. A branch whose condition is
//!   divergent is a *member-divergent* branch: the static signal that
//!   lanes will split there.
//! - **known condition**: `Option<bool>`, tracking boolean constants so
//!   statically-dead branch edges can be pruned. Joining two different
//!   constants gives `None` (unknown).
//!
//! All components only ever move up, and every chain is finite, so the
//! dataflow fixpoints in the verifiers terminate.
//!
//! # Transfer functions
//!
//! [`transfer`] mirrors, primitive by primitive, the dynamic semantics
//! of `autobatch-core`'s `eval_prim` / `autobatch-tensor`'s elementwise
//! kernels: arithmetic requires both operands `F64` or both `I64`,
//! comparisons produce `Bool` and reject `Bool` operands, logic requires
//! `Bool`, casts never fail, broadcasting pads the lower-rank element
//! shape with trailing ones (exactly `align_pair` + `broadcast_shapes`),
//! and reductions drop the trailing element axis. `External` primitives
//! are trusted: their outputs are `Any` and their inputs are not
//! checked, so the verifier's guarantees are conditional on registered
//! kernels honoring their registry contract.
//!
//! When an operand's dtype is `Any` *because it flows unmodified from a
//! program input*, a failed requirement is not an error: it is recorded
//! as an inferred constraint on that input (see
//! [`Constraints`]), refining the program's signature instead of
//! rejecting the program.

use std::fmt;

use crate::prim::Prim;

/// Abstract dtype lattice: three concrete points plus top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AbsDType {
    /// Unknown / any dtype (top).
    Any,
    /// 64-bit float.
    F64,
    /// 64-bit integer.
    I64,
    /// Boolean.
    Bool,
}

impl AbsDType {
    /// Least upper bound.
    pub fn join(self, other: AbsDType) -> AbsDType {
        if self == other {
            self
        } else {
            AbsDType::Any
        }
    }

    /// True when this dtype is a concrete point (not `Any`).
    pub fn is_concrete(self) -> bool {
        self != AbsDType::Any
    }
}

impl fmt::Display for AbsDType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsDType::Any => write!(f, "any"),
            AbsDType::F64 => write!(f, "f64"),
            AbsDType::I64 => write!(f, "i64"),
            AbsDType::Bool => write!(f, "bool"),
        }
    }
}

/// Abstract per-member element shape: a concrete shape or top.
///
/// The batch axis is excluded throughout: a batched `[Z, 3]` tensor has
/// element shape `[3]`, and a batched scalar has element shape `[]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbsShape {
    /// Unknown shape (top).
    Any,
    /// A concrete element shape.
    Elem(Vec<usize>),
}

impl AbsShape {
    /// Scalar element shape `[]`.
    pub fn scalar() -> AbsShape {
        AbsShape::Elem(Vec::new())
    }

    /// Least upper bound: distinct concrete shapes join to `Any`.
    pub fn join(&self, other: &AbsShape) -> AbsShape {
        match (self, other) {
            (AbsShape::Elem(a), AbsShape::Elem(b)) if a == b => AbsShape::Elem(a.clone()),
            _ => AbsShape::Any,
        }
    }

    /// The concrete element shape, if known.
    pub fn as_elem(&self) -> Option<&[usize]> {
        match self {
            AbsShape::Elem(s) => Some(s),
            AbsShape::Any => None,
        }
    }

    /// Abstract broadcast, mirroring the runtime's `align_pair` +
    /// `broadcast_shapes`: the lower-rank element shape is padded with
    /// *trailing* ones, then dimensions must agree or be one.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch when two concrete shapes
    /// cannot broadcast.
    pub fn broadcast(&self, other: &AbsShape) -> Result<AbsShape, String> {
        let (a, b) = match (self, other) {
            (AbsShape::Elem(a), AbsShape::Elem(b)) => (a, b),
            _ => return Ok(AbsShape::Any),
        };
        let rank = a.len().max(b.len());
        let dim = |s: &[usize], i: usize| if i < s.len() { s[i] } else { 1 };
        let mut out = Vec::with_capacity(rank);
        for i in 0..rank {
            let (x, y) = (dim(a, i), dim(b, i));
            if x == y || y == 1 {
                out.push(x);
            } else if x == 1 {
                out.push(y);
            } else {
                return Err(format!(
                    "element shapes {a:?} and {b:?} do not broadcast (dim {i}: {x} vs {y})"
                ));
            }
        }
        Ok(AbsShape::Elem(out))
    }
}

impl fmt::Display for AbsShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsShape::Any => write!(f, "[?]"),
            AbsShape::Elem(s) => {
                write!(f, "[")?;
                for (i, d) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{d}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// An abstract value: one point of the product lattice described in the
/// [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct AbsValue {
    /// Abstract dtype.
    pub dtype: AbsDType,
    /// Abstract per-member element shape.
    pub shape: AbsShape,
    /// May the value differ across batch members?
    pub divergent: bool,
    /// Statically-known boolean value, when the value is a constant
    /// condition (used to prune dead branch edges).
    pub known_cond: Option<bool>,
    /// When the value is an unmodified copy of program input `i`,
    /// `Some(i)`: dtype requirements on it become inferred input
    /// constraints rather than errors.
    pub origin: Option<usize>,
}

impl AbsValue {
    /// A fully-unknown, possibly-divergent value (top).
    pub fn any() -> AbsValue {
        AbsValue {
            dtype: AbsDType::Any,
            shape: AbsShape::Any,
            divergent: true,
            known_cond: None,
            origin: None,
        }
    }

    /// The abstract value of program input `index` before anything is
    /// known about it.
    pub fn input(index: usize) -> AbsValue {
        AbsValue {
            origin: Some(index),
            ..AbsValue::any()
        }
    }

    /// A non-divergent value of the given dtype and shape (constants).
    pub fn uniform(dtype: AbsDType, shape: AbsShape) -> AbsValue {
        AbsValue {
            dtype,
            shape,
            divergent: false,
            known_cond: None,
            origin: None,
        }
    }

    /// Least upper bound of every component.
    pub fn join(&self, other: &AbsValue) -> AbsValue {
        AbsValue {
            dtype: self.dtype.join(other.dtype),
            shape: self.shape.join(&other.shape),
            divergent: self.divergent || other.divergent,
            known_cond: match (self.known_cond, other.known_cond) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
            origin: match (self.origin, other.origin) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
        }
    }
}

impl fmt::Display for AbsValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.dtype, self.shape)?;
        if self.divergent {
            write!(f, " div")?;
        }
        Ok(())
    }
}

/// A concrete tensor specification: the per-request form of an
/// [`AbsValue`], used when checking admitted inputs against a program's
/// inferred signature.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TensorSpec {
    /// Concrete dtype.
    pub dtype: AbsDType,
    /// Concrete per-member element shape (batch axis excluded).
    pub elem_shape: Vec<usize>,
}

impl TensorSpec {
    /// Build a spec.
    pub fn new(dtype: AbsDType, elem_shape: impl Into<Vec<usize>>) -> TensorSpec {
        TensorSpec {
            dtype,
            elem_shape: elem_shape.into(),
        }
    }

    /// The abstract value admitting exactly this spec (divergent, since
    /// every member carries its own data).
    pub fn abs_value(&self, origin: usize) -> AbsValue {
        AbsValue {
            dtype: self.dtype,
            shape: AbsShape::Elem(self.elem_shape.clone()),
            divergent: true,
            known_cond: None,
            origin: Some(origin),
        }
    }
}

impl fmt::Display for TensorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:?}", self.dtype, self.elem_shape)
    }
}

/// Dtype constraints inferred for the program inputs: requirements that
/// `Any`-dtype values flowing unmodified from an input ran into.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraints {
    /// Per-input required dtype (`Any` = unconstrained).
    pub dtypes: Vec<AbsDType>,
}

impl Constraints {
    /// Unconstrained over `n` inputs.
    pub fn none(n: usize) -> Constraints {
        Constraints {
            dtypes: vec![AbsDType::Any; n],
        }
    }

    /// Record that input `index` must have dtype `want`.
    ///
    /// # Errors
    ///
    /// Returns a description when the input was already constrained to a
    /// different concrete dtype.
    pub fn require(&mut self, index: usize, want: AbsDType) -> Result<(), String> {
        let slot = &mut self.dtypes[index];
        if *slot == AbsDType::Any {
            *slot = want;
            Ok(())
        } else if *slot == want {
            Ok(())
        } else {
            Err(format!(
                "input {index} is used both as {slot} and as {want}"
            ))
        }
    }
}

/// A failed transfer: the op would raise a dtype/shape error at runtime.
/// The verifiers wrap this with block/op provenance into
/// [`IrError::TypeError`](crate::IrError::TypeError).
pub type TransferError = String;

fn require_dtype(
    v: &AbsValue,
    want: AbsDType,
    what: &str,
    cons: &mut Constraints,
) -> Result<(), TransferError> {
    if v.dtype == want {
        return Ok(());
    }
    if v.dtype == AbsDType::Any {
        if let Some(i) = v.origin {
            cons.require(i, want)?;
        }
        // Unknown non-input values (e.g. external-kernel outputs) pass
        // optimistically; concrete signature inference re-checks them.
        return Ok(());
    }
    Err(format!("{what}: expected {want}, got {}", v.dtype))
}

fn numeric_pair(
    a: &AbsValue,
    b: &AbsValue,
    what: &str,
    cons: &mut Constraints,
) -> Result<AbsDType, TransferError> {
    use AbsDType::*;
    match (a.dtype, b.dtype) {
        (Bool, _) | (_, Bool) => Err(format!("{what}: boolean operand")),
        (F64, F64) => Ok(F64),
        (I64, I64) => Ok(I64),
        (F64, I64) | (I64, F64) => Err(format!("{what}: mixed f64/i64 operands")),
        (Any, d @ (F64 | I64)) => {
            require_dtype(a, d, what, cons)?;
            Ok(d)
        }
        (d @ (F64 | I64), Any) => {
            require_dtype(b, d, what, cons)?;
            Ok(d)
        }
        (Any, Any) => Ok(Any),
    }
}

fn out1(dtype: AbsDType, shape: AbsShape, divergent: bool) -> Vec<AbsValue> {
    vec![AbsValue {
        dtype,
        shape,
        divergent,
        known_cond: None,
        origin: None,
    }]
}

fn drop_last_axis(shape: &AbsShape, what: &str) -> Result<AbsShape, TransferError> {
    match shape {
        AbsShape::Any => Ok(AbsShape::Any),
        AbsShape::Elem(s) => {
            if s.is_empty() {
                Err(format!(
                    "{what}: element shape is scalar; reducing would consume the batch axis"
                ))
            } else {
                Ok(AbsShape::Elem(s[..s.len() - 1].to_vec()))
            }
        }
    }
}

fn rng_counter(v: &AbsValue, what: &str, cons: &mut Constraints) -> Result<(), TransferError> {
    require_dtype(v, AbsDType::I64, what, cons)?;
    if let Some(s) = v.shape.as_elem() {
        if !s.is_empty() {
            return Err(format!("{what}: counter must be scalar, got {:?}", s));
        }
    }
    Ok(())
}

/// Abstract transfer function for one primitive application.
///
/// `ins` are the operands' abstract values; `n_outs` is the op's
/// declared output count (already arity-checked by `validate`). Dtype
/// requirements hitting `Any` values that originate from program inputs
/// are recorded into `cons` instead of failing.
///
/// # Errors
///
/// Returns a [`TransferError`] when the op is guaranteed (or unable to
/// be proven safe) to raise a dtype/shape error at runtime on some
/// input matching the abstract operands.
pub fn transfer(
    prim: &Prim,
    ins: &[AbsValue],
    n_outs: usize,
    cons: &mut Constraints,
) -> Result<Vec<AbsValue>, TransferError> {
    use AbsDType::*;
    use Prim::*;
    let div = |vs: &[AbsValue]| vs.iter().any(|v| v.divergent);
    match prim {
        ConstF64(_) => Ok(vec![AbsValue::uniform(F64, AbsShape::scalar())]),
        ConstI64(_) => Ok(vec![AbsValue::uniform(I64, AbsShape::scalar())]),
        ConstBool(b) => Ok(vec![AbsValue {
            known_cond: Some(*b),
            ..AbsValue::uniform(Bool, AbsShape::scalar())
        }]),
        // fill_like produces the same constant in every member; only the
        // shape is taken from the operand.
        FillLike(_) => Ok(out1(F64, ins[0].shape.clone(), false)),
        Id => Ok(vec![ins[0].clone()]),
        Neg | Abs | Exp | Ln | Sqrt | Square | Sigmoid | Softplus | Floor | Sin | Cos | Tanh => {
            require_dtype(&ins[0], F64, &format!("{prim}"), cons)?;
            Ok(out1(F64, ins[0].shape.clone(), ins[0].divergent))
        }
        NegI => {
            require_dtype(&ins[0], I64, "negi", cons)?;
            Ok(out1(I64, ins[0].shape.clone(), ins[0].divergent))
        }
        Not => {
            require_dtype(&ins[0], Bool, "not", cons)?;
            Ok(vec![AbsValue {
                dtype: Bool,
                shape: ins[0].shape.clone(),
                divergent: ins[0].divergent,
                known_cond: ins[0].known_cond.map(|b| !b),
                origin: None,
            }])
        }
        Add | Sub | Mul | Div | Pow | Min2 | Max2 => {
            let d = numeric_pair(&ins[0], &ins[1], &format!("{prim}"), cons)?;
            let s = ins[0].shape.broadcast(&ins[1].shape)?;
            Ok(out1(d, s, div(ins)))
        }
        Lt | Le | Gt | Ge | EqE | NeE => {
            numeric_pair(&ins[0], &ins[1], &format!("{prim}"), cons)?;
            let s = ins[0].shape.broadcast(&ins[1].shape)?;
            Ok(out1(Bool, s, div(ins)))
        }
        And | Or | Xor => {
            require_dtype(&ins[0], Bool, &format!("{prim}"), cons)?;
            require_dtype(&ins[1], Bool, &format!("{prim}"), cons)?;
            let s = ins[0].shape.broadcast(&ins[1].shape)?;
            Ok(out1(Bool, s, div(ins)))
        }
        Select => {
            require_dtype(&ins[0], Bool, "select condition", cons)?;
            let d = match (ins[1].dtype, ins[2].dtype) {
                (a, b) if a == b => a,
                (Any, b) => b,
                (a, Any) => a,
                (a, b) => {
                    return Err(format!("select: branch dtypes differ ({a} vs {b})"));
                }
            };
            let s = ins[0]
                .shape
                .broadcast(&ins[1].shape.broadcast(&ins[2].shape)?)?;
            Ok(out1(d, s, div(ins)))
        }
        ToF64 => Ok(out1(F64, ins[0].shape.clone(), ins[0].divergent)),
        ToI64 => Ok(out1(I64, ins[0].shape.clone(), ins[0].divergent)),
        ToBool => Ok(out1(Bool, ins[0].shape.clone(), ins[0].divergent)),
        SumElems => {
            require_dtype(&ins[0], F64, "sum_elems", cons)?;
            let s = drop_last_axis(&ins[0].shape, "sum_elems")?;
            Ok(out1(F64, s, ins[0].divergent))
        }
        Dot => {
            require_dtype(&ins[0], F64, "dot", cons)?;
            require_dtype(&ins[1], F64, "dot", cons)?;
            let s = drop_last_axis(&ins[0].shape.broadcast(&ins[1].shape)?, "dot")?;
            Ok(out1(F64, s, div(ins)))
        }
        RandUniform | RandNormal | RandExponential => {
            rng_counter(&ins[0], &format!("{prim}"), cons)?;
            Ok(vec![
                AbsValue {
                    dtype: F64,
                    shape: AbsShape::scalar(),
                    divergent: true,
                    known_cond: None,
                    origin: None,
                },
                AbsValue {
                    dtype: I64,
                    shape: AbsShape::scalar(),
                    divergent: ins[0].divergent,
                    known_cond: None,
                    origin: None,
                },
            ])
        }
        RandNormalLike => {
            rng_counter(&ins[0], "rand_normal_like", cons)?;
            Ok(vec![
                AbsValue {
                    dtype: F64,
                    shape: ins[1].shape.clone(),
                    divergent: true,
                    known_cond: None,
                    origin: None,
                },
                AbsValue {
                    dtype: I64,
                    shape: AbsShape::scalar(),
                    divergent: ins[0].divergent,
                    known_cond: None,
                    origin: None,
                },
            ])
        }
        // Registered kernels are trusted: outputs unknown, inputs
        // unchecked. The soundness guarantee is conditional on external
        // kernels honoring their registry contract.
        External(_) => Ok(vec![AbsValue::any(); n_outs]),
    }
}

/// A static bound on a stack's depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepthBound {
    /// The stack never exceeds this many frames.
    Bounded(usize),
    /// No static bound (the program is recursive, or pushes inside a
    /// loop).
    Unbounded,
}

impl DepthBound {
    /// True when the bound is known and at most `limit`.
    pub fn fits(self, limit: usize) -> bool {
        match self {
            DepthBound::Bounded(n) => n <= limit,
            DepthBound::Unbounded => false,
        }
    }

    /// Pointwise maximum.
    pub fn max(self, other: DepthBound) -> DepthBound {
        match (self, other) {
            (DepthBound::Bounded(a), DepthBound::Bounded(b)) => DepthBound::Bounded(a.max(b)),
            _ => DepthBound::Unbounded,
        }
    }

    /// Add a known increment (saturating on `Unbounded`).
    pub fn plus(self, n: usize) -> DepthBound {
        match self {
            DepthBound::Bounded(a) => DepthBound::Bounded(a + n),
            DepthBound::Unbounded => DepthBound::Unbounded,
        }
    }
}

impl fmt::Display for DepthBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepthBound::Bounded(n) => write!(f, "{n}"),
            DepthBound::Unbounded => write!(f, "unbounded"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(dtype: AbsDType, shape: &[usize]) -> AbsValue {
        AbsValue {
            dtype,
            shape: AbsShape::Elem(shape.to_vec()),
            divergent: true,
            known_cond: None,
            origin: None,
        }
    }

    #[test]
    fn broadcast_pads_trailing() {
        let a = AbsShape::Elem(vec![3]);
        let b = AbsShape::Elem(vec![3, 4]);
        assert_eq!(a.broadcast(&b).unwrap(), AbsShape::Elem(vec![3, 4]));
        let c = AbsShape::Elem(vec![2]);
        assert!(a.broadcast(&c).is_err());
    }

    #[test]
    fn arith_rejects_mixed_and_bool() {
        let mut cons = Constraints::none(0);
        assert!(transfer(
            &Prim::Add,
            &[v(AbsDType::F64, &[]), v(AbsDType::I64, &[])],
            1,
            &mut cons
        )
        .is_err());
        assert!(transfer(
            &Prim::Add,
            &[v(AbsDType::Bool, &[]), v(AbsDType::Bool, &[])],
            1,
            &mut cons
        )
        .is_err());
        let out = transfer(
            &Prim::Add,
            &[v(AbsDType::I64, &[]), v(AbsDType::I64, &[])],
            1,
            &mut cons,
        )
        .unwrap();
        assert_eq!(out[0].dtype, AbsDType::I64);
    }

    #[test]
    fn comparisons_produce_bool() {
        let mut cons = Constraints::none(0);
        let out = transfer(
            &Prim::Le,
            &[v(AbsDType::I64, &[]), v(AbsDType::I64, &[])],
            1,
            &mut cons,
        )
        .unwrap();
        assert_eq!(out[0].dtype, AbsDType::Bool);
        assert!(transfer(
            &Prim::Lt,
            &[v(AbsDType::Bool, &[]), v(AbsDType::Bool, &[])],
            1,
            &mut cons
        )
        .is_err());
    }

    #[test]
    fn input_requirements_become_constraints() {
        let mut cons = Constraints::none(1);
        let input = AbsValue::input(0);
        let out = transfer(&Prim::Exp, &[input], 1, &mut cons).unwrap();
        assert_eq!(out[0].dtype, AbsDType::F64);
        assert_eq!(cons.dtypes[0], AbsDType::F64);
    }

    #[test]
    fn conflicting_input_uses_error() {
        let mut cons = Constraints::none(1);
        let input = AbsValue::input(0);
        transfer(&Prim::Exp, std::slice::from_ref(&input), 1, &mut cons).unwrap();
        assert!(transfer(&Prim::NegI, &[input], 1, &mut cons).is_err());
    }

    #[test]
    fn sum_elems_rejects_scalar_elements() {
        let mut cons = Constraints::none(0);
        assert!(transfer(&Prim::SumElems, &[v(AbsDType::F64, &[])], 1, &mut cons).is_err());
        let out = transfer(&Prim::SumElems, &[v(AbsDType::F64, &[4])], 1, &mut cons).unwrap();
        assert_eq!(out[0].shape, AbsShape::scalar());
    }

    #[test]
    fn constants_are_uniform_and_known() {
        let mut cons = Constraints::none(0);
        let out = transfer(&Prim::ConstBool(true), &[], 1, &mut cons).unwrap();
        assert_eq!(out[0].known_cond, Some(true));
        assert!(!out[0].divergent);
        let neg = transfer(&Prim::Not, &out, 1, &mut cons).unwrap();
        assert_eq!(neg[0].known_cond, Some(false));
    }

    #[test]
    fn depth_bound_algebra() {
        assert!(DepthBound::Bounded(3).fits(3));
        assert!(!DepthBound::Bounded(4).fits(3));
        assert!(!DepthBound::Unbounded.fits(usize::MAX));
        assert_eq!(
            DepthBound::Bounded(2).plus(1).max(DepthBound::Bounded(1)),
            DepthBound::Bounded(3)
        );
    }
}
