//! Call-graph construction and strongly-connected components.
//!
//! The lowering uses SCCs to decide which calls are *recursive*: a call
//! `F → G` can re-enter `F` (and therefore clobber `F`'s variables at a
//! deeper stack depth) exactly when `F` and `G` belong to the same SCC of
//! the call graph. Self-loops count.

use std::collections::BTreeSet;

use crate::lsab::{Op, Program};
use crate::var::FuncId;

/// Call graph with SCC decomposition (Tarjan's algorithm).
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// `edges[f]` = set of callees of function `f`.
    edges: Vec<BTreeSet<usize>>,
    /// `scc_of[f]` = SCC index of function `f`.
    scc_of: Vec<usize>,
    /// For each function, whether its SCC contains a cycle (size > 1 or a
    /// self-loop).
    in_cycle: Vec<bool>,
}

impl CallGraph {
    /// Build the call graph of `program` and run Tarjan's SCC algorithm.
    pub fn new(program: &Program) -> CallGraph {
        let n = program.funcs.len();
        let mut edges = vec![BTreeSet::new(); n];
        for (fi, f) in program.funcs.iter().enumerate() {
            for b in &f.blocks {
                for op in &b.ops {
                    if let Op::Call { callee, .. } = op {
                        edges[fi].insert(callee.0);
                    }
                }
            }
        }
        let scc_of = tarjan(&edges);
        let n_sccs = scc_of.iter().copied().max().map_or(0, |m| m + 1);
        let mut size = vec![0usize; n_sccs];
        for &s in &scc_of {
            size[s] += 1;
        }
        let in_cycle = (0..n)
            .map(|f| size[scc_of[f]] > 1 || edges[f].contains(&f))
            .collect();
        CallGraph {
            edges,
            scc_of,
            in_cycle,
        }
    }

    /// Whether the call edge `caller → callee` is recursive, i.e. the
    /// callee can (transitively) re-enter the caller.
    pub fn is_recursive_call(&self, caller: FuncId, callee: FuncId) -> bool {
        self.scc_of[caller.0] == self.scc_of[callee.0] && self.in_cycle[caller.0]
    }

    /// Whether a function participates in any recursion.
    pub fn is_recursive_func(&self, func: FuncId) -> bool {
        self.in_cycle[func.0]
    }

    /// SCC index of a function.
    pub fn scc_of(&self, func: FuncId) -> usize {
        self.scc_of[func.0]
    }

    /// Direct callees of a function.
    pub fn callees(&self, func: FuncId) -> impl Iterator<Item = FuncId> + '_ {
        self.edges[func.0].iter().map(|&c| FuncId(c))
    }
}

/// Iterative Tarjan SCC; returns the SCC index of each node. Shared
/// with the pcab stack-depth analysis, which runs it over the recovered
/// push-jump call graph.
pub(crate) fn tarjan(edges: &[BTreeSet<usize>]) -> Vec<usize> {
    let n = edges.len();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut next_scc = 0usize;

    // Explicit DFS state: (node, iterator position over its callees).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call_stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let succs: Vec<usize> = edges[root].iter().copied().collect();
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        call_stack.push((root, succs, 0));
        while let Some((v, succs, mut i)) = call_stack.pop() {
            let mut descended = false;
            while i < succs.len() {
                let w = succs[i];
                i += 1;
                if index[w] == usize::MAX {
                    // Descend into w.
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    let wsuccs: Vec<usize> = edges[w].iter().copied().collect();
                    call_stack.push((v, succs, i));
                    call_stack.push((w, wsuccs, 0));
                    descended = true;
                    break;
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            }
            if descended {
                continue;
            }
            // v finished.
            if lowlink[v] == index[v] {
                loop {
                    let w = stack.pop().expect("SCC stack underflow");
                    on_stack[w] = false;
                    scc_of[w] = next_scc;
                    if w == v {
                        break;
                    }
                }
                next_scc += 1;
            }
            if let Some((parent, _, _)) = call_stack.last() {
                let p = *parent;
                lowlink[p] = lowlink[p].min(lowlink[v]);
            }
        }
    }
    scc_of
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{fibonacci_program, ProgramBuilder};
    use crate::prim::Prim;

    #[test]
    fn fibonacci_is_self_recursive() {
        let p = fibonacci_program();
        let cg = CallGraph::new(&p);
        assert!(cg.is_recursive_func(FuncId(0)));
        assert!(cg.is_recursive_call(FuncId(0), FuncId(0)));
    }

    #[test]
    fn straightline_not_recursive() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("f", &["x"], &["y"]);
        pb.define(f, |fb| {
            let x = fb.param(0);
            fb.assign(&fb.output(0), Prim::Neg, &[x]);
            fb.ret();
        });
        let p = pb.finish(f).unwrap();
        let cg = CallGraph::new(&p);
        assert!(!cg.is_recursive_func(FuncId(0)));
    }

    #[test]
    fn nonrecursive_call_chain() {
        // main -> helper, no cycle.
        let mut pb = ProgramBuilder::new();
        let helper = pb.declare("helper", &["x"], &["y"]);
        let main = pb.declare("main", &["x"], &["y"]);
        pb.define(helper, |fb| {
            let x = fb.param(0);
            fb.assign(&fb.output(0), Prim::Neg, &[x]);
            fb.ret();
        });
        pb.define(main, |fb| {
            let x = fb.param(0);
            let r = fb.call(helper, &[x], 1);
            fb.copy(&fb.output(0), &r[0]);
            fb.ret();
        });
        let p = pb.finish(main).unwrap();
        let cg = CallGraph::new(&p);
        assert!(!cg.is_recursive_call(FuncId(1), FuncId(0)));
        assert!(!cg.is_recursive_func(FuncId(0)));
        assert!(!cg.is_recursive_func(FuncId(1)));
        assert_ne!(cg.scc_of(FuncId(0)), cg.scc_of(FuncId(1)));
        assert_eq!(cg.callees(FuncId(1)).collect::<Vec<_>>(), vec![FuncId(0)]);
    }

    #[test]
    fn mutual_recursion_shares_scc() {
        let mut pb = ProgramBuilder::new();
        let even = pb.declare("even", &["n"], &["r"]);
        let odd = pb.declare("odd", &["n"], &["r"]);
        for (me, other) in [(even, odd), (odd, even)] {
            pb.define(me, |fb| {
                let n = fb.param(0);
                let zero = fb.const_i64(0);
                let base = fb.emit(Prim::EqE, &[n, zero]);
                fb.if_else(
                    &base,
                    |fb| {
                        let t = fb.const_bool(true);
                        fb.copy(&fb.output(0), &t);
                    },
                    |fb| {
                        let one = fb.const_i64(1);
                        let m = fb.emit(Prim::Sub, &[fb.param(0), one]);
                        let r = fb.call(other, &[m], 1);
                        fb.copy(&fb.output(0), &r[0]);
                    },
                );
                fb.ret();
            });
        }
        let p = pb.finish(even).unwrap();
        let cg = CallGraph::new(&p);
        assert_eq!(cg.scc_of(FuncId(0)), cg.scc_of(FuncId(1)));
        assert!(cg.is_recursive_call(FuncId(0), FuncId(1)));
        assert!(cg.is_recursive_call(FuncId(1), FuncId(0)));
    }

    #[test]
    fn recursive_callee_from_nonrecursive_caller() {
        // main -> fib (recursive): the main -> fib edge is NOT recursive
        // (fib can never re-enter main), but fib -> fib is.
        let mut pb = ProgramBuilder::new();
        let fib_src = fibonacci_program();
        let fib = pb.declare("fib", &["n"], &["out"]);
        let main = pb.declare("main", &["n"], &["out"]);
        pb.define(main, |fb| {
            let n = fb.param(0);
            let r = fb.call(fib, &[n], 1);
            fb.copy(&fb.output(0), &r[0]);
            fb.ret();
        });
        // Splice in the real fib body.
        let mut p = {
            pb.define(fib, |fb| {
                let n = fb.param(0);
                fb.copy(&fb.output(0), &n);
                fb.ret();
            });
            pb.finish(main).unwrap()
        };
        p.funcs[0] = fib_src.funcs[0].clone();
        let cg = CallGraph::new(&p);
        assert!(!cg.is_recursive_call(FuncId(1), FuncId(0)));
        assert!(cg.is_recursive_call(FuncId(0), FuncId(0)));
    }
}
