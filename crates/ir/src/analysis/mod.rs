//! Static analyses over the [`lsab`](crate::lsab) IR used by the
//! batching transformations: call-graph SCCs (which calls are recursive)
//! and backward liveness (which variables must be saved across them).

mod callgraph;
mod liveness;

pub use callgraph::CallGraph;
pub use liveness::Liveness;
