//! Static analyses over the IRs: call-graph SCCs, liveness, and the
//! static verification tier.
//!
//! The verification tier is an abstract interpreter over both IRs (see
//! [`absint`] for the lattice) that computes, without executing anything:
//!
//! - per-variable **dtype and element-shape** facts, yielding an inferred
//!   program signature ([`infer_lsab_signature`] /
//!   [`infer_pcab_signature`]);
//! - static **stack-depth bounds** from call-graph / push-jump SCCs
//!   ([`DepthBound`]): exact for non-recursive call chains, `Unbounded`
//!   for recursive SCCs, so `StackOverflow` can be excluded up front for
//!   bounded programs;
//! - **definite initialization** and **unreachable blocks** along
//!   statically-feasible edges;
//! - **member divergence**: which branches can split batch members
//!   (the static signal for PC-affinity scheduling);
//! - the **elementwise fusion plan** ([`elementwise_spans`]) that the
//!   runtime otherwise derives per execution.
//!
//! # Soundness invariant
//!
//! For a program accepted by the verifier and inputs accepted by its
//! inferred signature, execution on any VM cannot raise
//! `VmError::Tensor`, `VmError::Unbound`, or (when the reported stack
//! bounds fit the configured limit) `VmError::StackOverflow`; and every
//! output's dtype and shape equal the signature's, bit for bit. The
//! `static_verification` differential proptest enforces exactly this
//! invariant over randomly generated programs on all three VMs.
//! External kernels are trusted: the guarantee is conditional on
//! registered kernels honoring their registry arity/shape contract.

pub mod absint;
mod callgraph;
mod liveness;
mod spans;
mod verified;
mod verify_lsab;
mod verify_pcab;

pub use absint::{AbsDType, AbsShape, AbsValue, DepthBound, TensorSpec};
pub use callgraph::CallGraph;
pub use liveness::Liveness;
pub use spans::elementwise_spans;
pub use verified::{Verifiable, Verified};
pub use verify_lsab::{analyze_lsab, infer_lsab_signature, LsabReport, Signature};
pub use verify_pcab::{analyze_pcab, infer_pcab_signature, PcabReport};
