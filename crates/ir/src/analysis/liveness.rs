//! Backward live-variable analysis over one function's CFG.
//!
//! The lowering (paper §3, optimizations 2–3) needs two liveness facts:
//!
//! - which variables are live *after* each call site (those are the ones
//!   a recursive call must not clobber, so the caller saves them);
//! - which variables are ever live across a block boundary at all
//!   (variables that are not are block-local temporaries and bypass the
//!   batching machinery entirely).
//!
//! A function's `outputs` are treated as read by every `Return`
//! terminator, and a `Branch` condition as read at the end of its block.

use std::collections::BTreeSet;

use crate::lsab::{Function, Terminator};
use crate::var::Var;

/// Liveness facts for one function.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// `live_in[b]`: variables live at entry of block `b`.
    live_in: Vec<BTreeSet<Var>>,
    /// `live_out[b]`: variables live at exit of block `b` (before the
    /// terminator's own reads are added back in).
    live_out: Vec<BTreeSet<Var>>,
    /// `live_after[b][i]`: variables live immediately after op `i` of
    /// block `b`, precomputed so call-site save-set queries are O(1)
    /// borrows instead of a backward re-walk per query.
    live_after: Vec<Vec<BTreeSet<Var>>>,
}

impl Liveness {
    /// Run the analysis to a fixed point.
    pub fn new(f: &Function) -> Liveness {
        let n = f.blocks.len();
        let mut live_in: Vec<BTreeSet<Var>> = vec![BTreeSet::new(); n];
        let mut live_out: Vec<BTreeSet<Var>> = vec![BTreeSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for b in (0..n).rev() {
                let block = &f.blocks[b];
                // live_out = union of successors' live_in.
                let mut out: BTreeSet<Var> = BTreeSet::new();
                for s in block.term.successors() {
                    out.extend(live_in[s.0].iter().cloned());
                }
                // Terminator reads.
                let mut cur = out.clone();
                match &block.term {
                    Terminator::Branch { cond, .. } => {
                        cur.insert(cond.clone());
                    }
                    Terminator::Return => {
                        cur.extend(f.outputs.iter().cloned());
                    }
                    Terminator::Jump(_) => {}
                }
                // Ops in reverse.
                for op in block.ops.iter().rev() {
                    for w in op.writes() {
                        cur.remove(w);
                    }
                    for r in op.reads() {
                        cur.insert(r.clone());
                    }
                }
                if out != live_out[b] {
                    live_out[b] = out;
                    changed = true;
                }
                if cur != live_in[b] {
                    live_in[b] = cur;
                    changed = true;
                }
            }
        }
        // One final backward walk per block records the live set after
        // every op, so `live_after_op` never re-walks.
        let mut live_after: Vec<Vec<BTreeSet<Var>>> = Vec::with_capacity(n);
        for (block, out) in f.blocks.iter().zip(&live_out) {
            let mut cur = out.clone();
            match &block.term {
                Terminator::Branch { cond, .. } => {
                    cur.insert(cond.clone());
                }
                Terminator::Return => {
                    cur.extend(f.outputs.iter().cloned());
                }
                Terminator::Jump(_) => {}
            }
            let mut after: Vec<BTreeSet<Var>> = vec![BTreeSet::new(); block.ops.len()];
            for (i, op) in block.ops.iter().enumerate().rev() {
                after[i] = cur.clone();
                for w in op.writes() {
                    cur.remove(w);
                }
                for r in op.reads() {
                    cur.insert(r.clone());
                }
            }
            live_after.push(after);
        }
        Liveness {
            live_in,
            live_out,
            live_after,
        }
    }

    /// Variables live at entry of block `b`.
    pub fn live_in(&self, b: usize) -> &BTreeSet<Var> {
        &self.live_in[b]
    }

    /// Variables live at exit of block `b` (successors' needs only).
    pub fn live_out(&self, b: usize) -> &BTreeSet<Var> {
        &self.live_out[b]
    }

    /// Variables live immediately *after* op `op_index` of block `b`
    /// (i.e. what the rest of the block and all successors may still
    /// read). This is the save set query for call sites; the sets are
    /// precomputed in [`Liveness::new`], so this is a borrow.
    pub fn live_after_op(&self, b: usize, op_index: usize) -> &BTreeSet<Var> {
        &self.live_after[b][op_index]
    }

    /// Variables that cross a block boundary anywhere in the function:
    /// the union of all blocks' live-in sets. Variables *not* in this set
    /// (and not params/outputs) are block-local temporaries.
    pub fn cross_block_vars(&self) -> BTreeSet<Var> {
        let mut s = BTreeSet::new();
        for li in &self.live_in {
            s.extend(li.iter().cloned());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{fibonacci_program, ProgramBuilder};
    use crate::lsab::Op;
    use crate::prim::Prim;

    #[test]
    fn fib_n_live_across_first_call_only() {
        let p = fibonacci_program();
        let f = &p.funcs[0];
        let lv = Liveness::new(f);
        // Find the two call sites.
        let mut calls = Vec::new();
        for (bi, b) in f.blocks.iter().enumerate() {
            for (oi, op) in b.ops.iter().enumerate() {
                if matches!(op, Op::Call { .. }) {
                    calls.push((bi, oi));
                }
            }
        }
        assert_eq!(calls.len(), 2);
        let n = Var::new("n");
        let left = Var::new("left");
        // After the first call, n is still needed (n1 = n - 1) and so is left.
        let after_first = lv.live_after_op(calls[0].0, calls[0].1);
        assert!(after_first.contains(&n), "n live after first call");
        // After the second call, n is dead but left is live (left + right).
        let after_second = lv.live_after_op(calls[1].0, calls[1].1);
        assert!(!after_second.contains(&n), "n dead after second call");
        assert!(after_second.contains(&left), "left live after second call");
    }

    /// The precomputed `live_after` tables must agree with the original
    /// per-query backward walk, on every op, across repeated queries.
    #[test]
    fn precomputed_live_after_matches_rewalk() {
        fn rewalk(lv: &Liveness, f: &Function, b: usize, op_index: usize) -> BTreeSet<Var> {
            let block = &f.blocks[b];
            let mut cur = lv.live_out(b).clone();
            match &block.term {
                Terminator::Branch { cond, .. } => {
                    cur.insert(cond.clone());
                }
                Terminator::Return => {
                    cur.extend(f.outputs.iter().cloned());
                }
                Terminator::Jump(_) => {}
            }
            for (i, op) in block.ops.iter().enumerate().rev() {
                if i == op_index {
                    break;
                }
                for w in op.writes() {
                    cur.remove(w);
                }
                for r in op.reads() {
                    cur.insert(r.clone());
                }
            }
            cur
        }
        let p = fibonacci_program();
        let f = &p.funcs[0];
        let lv = Liveness::new(f);
        for _ in 0..2 {
            for (bi, b) in f.blocks.iter().enumerate() {
                for oi in 0..b.ops.len() {
                    assert_eq!(
                        *lv.live_after_op(bi, oi),
                        rewalk(&lv, f, bi, oi),
                        "mismatch at block {bi} op {oi}"
                    );
                }
            }
        }
    }

    #[test]
    fn outputs_live_at_return() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("f", &["x"], &["y"]);
        pb.define(f, |fb| {
            let x = fb.param(0);
            fb.assign(&fb.output(0), Prim::Neg, &[x]);
            fb.ret();
        });
        let p = pb.finish(f).unwrap();
        let lv = Liveness::new(&p.funcs[0]);
        // x is live at entry (read by the op); y is not (written first).
        assert!(lv.live_in(0).contains(&Var::new("x")));
        assert!(!lv.live_in(0).contains(&Var::new("y")));
    }

    #[test]
    fn loop_carried_variable_is_live_around_the_loop() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("count", &["n"], &["i"]);
        pb.define(f, |fb| {
            let zero = fb.const_i64(0);
            fb.copy(&fb.output(0), &zero);
            fb.while_loop(
                |fb| fb.emit(Prim::Lt, &[fb.output(0), fb.param(0)]),
                |fb| {
                    let one = fb.const_i64(1);
                    fb.assign(&fb.output(0), Prim::Add, &[fb.output(0), one]);
                },
            );
            fb.ret();
        });
        let p = pb.finish(f).unwrap();
        let lv = Liveness::new(&p.funcs[0]);
        let i = Var::new("i");
        let n = Var::new("n");
        // Header block (index 1) must see both i and n live at entry.
        assert!(lv.live_in(1).contains(&i));
        assert!(lv.live_in(1).contains(&n));
        assert!(lv.cross_block_vars().contains(&i));
    }

    #[test]
    fn temporaries_do_not_cross_blocks() {
        let p = fibonacci_program();
        let lv = Liveness::new(&p.funcs[0]);
        let crossing = lv.cross_block_vars();
        // All builder temporaries (names starting with '%') in fibonacci
        // are defined and consumed within a single block — including the
        // branch condition, which its own block's terminator reads.
        for v in &crossing {
            assert!(!v.name().starts_with('%'), "unexpected crossing temp {v}");
        }
        // The named variables do cross blocks.
        assert!(crossing.contains(&Var::new("n")));
    }
}
