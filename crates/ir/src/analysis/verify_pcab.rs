//! Static verification of [`pcab`](crate::pcab) programs: forward
//! abstract interpretation over the merged, stack-explicit CFG, plus
//! static pc- and data-stack depth bounds via subroutine recovery.
//!
//! # CFG over-approximation
//!
//! The pcab form has no explicit call graph, so the analysis recovers
//! *subroutines*: the program entry plus every `PushJump` enter target,
//! each owning the blocks reachable from it through `Jump`/`Branch`
//! edges and `PushJump` *resume* continuations (a `Return` leaves the
//! subroutine). Dataflow treats a resume point as receiving the join of
//! the machine state at **every** reachable `Return` — a sound
//! over-approximation of "some callee returned here".
//!
//! # Stacked variables and `Pop`
//!
//! After a `Pop`, the value at a variable's new top is some value pushed
//! earlier; the analysis conservatively uses the join of *every* value
//! ever written to that variable, and keeps the variable
//! definitely-initialized. The latter relies on the balanced push/pop
//! discipline the lowering emits; hand-written pcab that underflows a
//! stack still fails at runtime with `StackUnderflow`, which is not one
//! of the statically-excluded error classes.
//!
//! # Stack bounds
//!
//! The recovered subroutine call graph goes through Tarjan SCC: any
//! reachable cycle means `Unbounded`; otherwise the pc bound is one
//! (exit sentinel) plus the longest call chain, and each stacked
//! variable's data bound is the chain-maximal sum of its static push
//! counts (a push inside an intra-subroutine loop is `Unbounded`).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::error::IrError;
use crate::pcab::{Op, Program, Terminator, WriteKind};
use crate::var::{BlockId, Var};

use super::absint::{transfer, AbsDType, AbsValue, Constraints, DepthBound, TensorSpec};
use super::callgraph::tarjan;
use super::verify_lsab::Signature;

type Env = BTreeMap<Var, AbsValue>;

fn join_env(a: &Env, b: &Env) -> Env {
    a.iter()
        .filter_map(|(k, va)| b.get(k).map(|vb| (k.clone(), va.join(vb))))
        .collect()
}

fn join_env_opt(slot: &mut Option<Env>, env: &Env) -> bool {
    match slot {
        Some(old) => {
            let joined = join_env(old, env);
            if joined == *old {
                false
            } else {
                *slot = Some(joined);
                true
            }
        }
        None => {
            *slot = Some(env.clone());
            true
        }
    }
}

/// The recovered subroutine structure of a pcab program.
#[derive(Debug)]
struct Subroutines {
    /// Entry block of each subroutine; index 0 is the program entry.
    entries: Vec<usize>,
    /// Blocks belonging to each subroutine (possibly overlapping).
    members: Vec<BTreeSet<usize>>,
    /// Call edges between subroutines.
    calls: Vec<BTreeSet<usize>>,
    /// Blocks lying on an intra-subroutine cycle, per subroutine.
    on_cycle: Vec<BTreeSet<usize>>,
}

impl Subroutines {
    fn recover(p: &Program) -> Subroutines {
        let mut entries = vec![p.entry.0];
        let mut entry_index: BTreeMap<usize, usize> = BTreeMap::new();
        entry_index.insert(p.entry.0, 0);
        for b in &p.blocks {
            if let Terminator::PushJump { enter, .. } = b.term {
                entry_index.entry(enter.0).or_insert_with(|| {
                    entries.push(enter.0);
                    entries.len() - 1
                });
            }
        }
        let n = entries.len();
        let mut members = vec![BTreeSet::new(); n];
        let mut calls = vec![BTreeSet::new(); n];
        let mut on_cycle = vec![BTreeSet::new(); n];
        for s in 0..n {
            // Blocks reachable from the subroutine entry without
            // following a call's enter edge (resume continues locally).
            let mut stack = vec![entries[s]];
            while let Some(b) = stack.pop() {
                if b >= p.blocks.len() || !members[s].insert(b) {
                    continue;
                }
                match &p.blocks[b].term {
                    Terminator::Jump(t) => stack.push(t.0),
                    Terminator::Branch { then_, else_, .. } => {
                        stack.push(then_.0);
                        stack.push(else_.0);
                    }
                    Terminator::PushJump { enter, resume } => {
                        if let Some(&c) = entry_index.get(&enter.0) {
                            calls[s].insert(c);
                        }
                        stack.push(resume.0);
                    }
                    Terminator::Return => {}
                }
            }
            // Intra-subroutine cycles: SCC over the local edges.
            let ids: Vec<usize> = members[s].iter().copied().collect();
            let idx: BTreeMap<usize, usize> =
                ids.iter().enumerate().map(|(i, &b)| (b, i)).collect();
            let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); ids.len()];
            for (&b, &i) in &idx {
                let succs: Vec<usize> = match &p.blocks[b].term {
                    Terminator::Jump(t) => vec![t.0],
                    Terminator::Branch { then_, else_, .. } => vec![then_.0, else_.0],
                    Terminator::PushJump { resume, .. } => vec![resume.0],
                    Terminator::Return => vec![],
                };
                for t in succs {
                    if let Some(&j) = idx.get(&t) {
                        edges[i].insert(j);
                    }
                }
            }
            let scc = tarjan(&edges);
            let mut scc_size: BTreeMap<usize, usize> = BTreeMap::new();
            for &c in &scc {
                *scc_size.entry(c).or_insert(0) += 1;
            }
            for (i, &b) in ids.iter().enumerate() {
                let cyclic = scc_size[&scc[i]] > 1 || edges[i].contains(&i);
                if cyclic {
                    on_cycle[s].insert(b);
                }
            }
        }
        Subroutines {
            entries,
            members,
            calls,
            on_cycle,
        }
    }

    /// Subroutines reachable from the program entry in the call graph.
    fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.entries.len()];
        let mut stack = vec![0usize];
        while let Some(s) = stack.pop() {
            if seen[s] {
                continue;
            }
            seen[s] = true;
            stack.extend(self.calls[s].iter().copied());
        }
        seen
    }

    /// True when the reachable part of the call graph has a cycle.
    fn recursive(&self) -> bool {
        let reach = self.reachable();
        let scc = tarjan(&self.calls);
        let mut size: BTreeMap<usize, usize> = BTreeMap::new();
        for (s, &c) in scc.iter().enumerate() {
            if reach[s] {
                *size.entry(c).or_insert(0) += 1;
            }
        }
        (0..self.entries.len()).any(|s| {
            reach[s] && (size.get(&scc[s]).copied().unwrap_or(0) > 1 || self.calls[s].contains(&s))
        })
    }

    /// Longest weighted path from subroutine 0 over the (acyclic) call
    /// graph, where `weight(s)` is the per-activation cost of `s`.
    fn longest_path(&self, weight: &dyn Fn(usize) -> usize) -> usize {
        fn go(
            sub: &Subroutines,
            s: usize,
            weight: &dyn Fn(usize) -> usize,
            memo: &mut [Option<usize>],
        ) -> usize {
            if let Some(d) = memo[s] {
                return d;
            }
            let d = weight(s)
                + sub.calls[s]
                    .iter()
                    .map(|&c| go(sub, c, weight, memo))
                    .max()
                    .unwrap_or(0);
            memo[s] = Some(d);
            d
        }
        let mut memo = vec![None; self.entries.len()];
        go(self, 0, weight, &mut memo)
    }
}

/// The result of program-level verification of a pcab program.
#[derive(Debug, Clone)]
pub struct PcabReport {
    /// Inferred per-input dtype constraints (`Any` = unconstrained).
    pub input_dtypes: Vec<AbsDType>,
    /// Abstract values of the program outputs (joined over the entry
    /// subroutine's returns).
    pub outputs: Vec<AbsValue>,
    /// Bound on the pc stack length, counting the exit sentinel.
    pub pc_depth: DepthBound,
    /// Bound on any single variable's data-stack depth, counting the
    /// admission frame.
    pub data_depth: DepthBound,
    /// Blocks unreachable along statically-feasible edges.
    pub unreachable: Vec<BlockId>,
    /// Branches whose condition may differ across batch members.
    pub divergent_branches: Vec<BlockId>,
    /// Per-block elementwise fusion runs (see
    /// [`elementwise_spans`](super::elementwise_spans)).
    pub elementwise_spans: Vec<Vec<(usize, usize)>>,
    /// Verification failures. Empty means the program is accepted.
    pub diagnostics: Vec<IrError>,
}

impl PcabReport {
    /// True when verification succeeded (no diagnostics).
    pub fn ok(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when `StackOverflow` is statically excluded under the given
    /// machine stack limit.
    pub fn overflow_excluded(&self, stack_depth: usize) -> bool {
        self.pc_depth.fits(stack_depth) && self.data_depth.fits(stack_depth)
    }

    /// Check concrete input specs against the inferred dtype
    /// constraints.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::BadSignature`] on the first mismatching input,
    /// or [`IrError::BadArity`] on a count mismatch.
    pub fn check_inputs(&self, specs: &[TensorSpec]) -> Result<(), IrError> {
        if specs.len() != self.input_dtypes.len() {
            return Err(IrError::BadArity {
                what: "program inputs".to_string(),
                expected: self.input_dtypes.len(),
                got: specs.len(),
            });
        }
        for (i, (spec, want)) in specs.iter().zip(&self.input_dtypes).enumerate() {
            if want.is_concrete() && spec.dtype != *want {
                return Err(IrError::BadSignature {
                    input: i,
                    what: format!("expected dtype {want}, got {}", spec.dtype),
                });
            }
        }
        Ok(())
    }
}

struct Engine<'p> {
    p: &'p Program,
    block_in: Vec<Option<Env>>,
    /// Per-subroutine join of the machine state at its reachable
    /// `Return`s. Index 0 (the entry subroutine) is the program exit.
    return_envs: Vec<Option<Env>>,
    /// Subroutine index of each entry block.
    sub_of_entry: BTreeMap<usize, usize>,
    /// Subroutines whose member set contains each block.
    containing: Vec<Vec<usize>>,
    /// Transitive may-write variable set of each subroutine (its own
    /// blocks plus everything it can call).
    writes: Vec<BTreeSet<Var>>,
    /// Join of every value ever written to each variable (what a `Pop`
    /// may uncover).
    anyval: Env,
    cons: Constraints,
    diags: Vec<IrError>,
    divergent: BTreeSet<usize>,
    work: VecDeque<usize>,
    queued: BTreeSet<usize>,
}

/// Transitive may-write sets: the variables a subroutine's own blocks
/// write (`Compute` outs and `Pop` targets), closed over its calls.
fn write_sets(p: &Program, sub: &Subroutines) -> Vec<BTreeSet<Var>> {
    let mut w: Vec<BTreeSet<Var>> = sub
        .members
        .iter()
        .map(|ms| {
            let mut s = BTreeSet::new();
            for &b in ms {
                for op in &p.blocks[b].ops {
                    match op {
                        Op::Compute { outs, .. } => {
                            s.extend(outs.iter().map(|(o, _)| o.clone()));
                        }
                        Op::Pop { var } => {
                            s.insert(var.clone());
                        }
                    }
                }
            }
            s
        })
        .collect();
    loop {
        let mut changed = false;
        for s in 0..w.len() {
            for &c in &sub.calls[s] {
                let add: Vec<Var> = w[c].difference(&w[s]).cloned().collect();
                if !add.is_empty() {
                    changed = true;
                    w[s].extend(add);
                }
            }
        }
        if !changed {
            break;
        }
    }
    w
}

impl<'p> Engine<'p> {
    fn new(p: &'p Program, sub: &'p Subroutines, entry_values: Vec<AbsValue>) -> Engine<'p> {
        let env: Env = p.inputs.iter().cloned().zip(entry_values).collect();
        let mut containing: Vec<Vec<usize>> = vec![Vec::new(); p.blocks.len()];
        for (s, ms) in sub.members.iter().enumerate() {
            for &b in ms {
                containing[b].push(s);
            }
        }
        let mut eng = Engine {
            p,
            block_in: vec![None; p.blocks.len()],
            return_envs: vec![None; sub.entries.len()],
            sub_of_entry: sub
                .entries
                .iter()
                .enumerate()
                .map(|(s, &b)| (b, s))
                .collect(),
            containing,
            writes: write_sets(p, sub),
            anyval: env.clone(),
            cons: Constraints::none(p.inputs.len()),
            diags: Vec::new(),
            divergent: BTreeSet::new(),
            work: VecDeque::new(),
            queued: BTreeSet::new(),
        };
        eng.propagate(p.entry.0, &env);
        eng
    }

    fn queue(&mut self, b: usize) {
        if self.queued.insert(b) {
            self.work.push_back(b);
        }
    }

    fn propagate(&mut self, b: usize, env: &Env) {
        if join_env_opt(&mut self.block_in[b], env) {
            self.queue(b);
        }
    }

    fn diag(&mut self, e: IrError) {
        if !self.diags.contains(&e) {
            self.diags.push(e);
        }
    }

    /// The abstract state at a call's resume point: the callee's return
    /// env, widened with the caller's state for variables the callee
    /// leaves untouched. A variable definitely assigned at the call
    /// site stays definitely assigned across the call (writes never
    /// unassign; a `Pop` uncovers an earlier write).
    fn merge_resume(&self, caller: &Env, ret: &Env, s: usize) -> Env {
        let mut out = ret.clone();
        for (v, cv) in caller {
            match out.get_mut(v) {
                Some(rv) => *rv = rv.join(cv),
                None => {
                    if !self.writes[s].contains(v) {
                        out.insert(v.clone(), cv.clone());
                    } else {
                        // The callee may write `v` but its return env
                        // dropped it (assigned on only some paths from
                        // only some callers): the runtime value is the
                        // caller's or one of the callee's writes.
                        let widened = match self.anyval.get(v) {
                            Some(av) => cv.join(av),
                            None => cv.clone(),
                        };
                        out.insert(v.clone(), widened);
                    }
                }
            }
        }
        out
    }

    fn record_write(&mut self, var: &Var, val: &AbsValue) {
        match self.anyval.get_mut(var) {
            Some(old) => *old = old.join(val),
            None => {
                self.anyval.insert(var.clone(), val.clone());
            }
        }
    }

    fn run(&mut self) {
        let mut budget = 64 * 1024 * self.p.blocks.len().max(1);
        while let Some(b) = self.work.pop_front() {
            self.queued.remove(&b);
            if budget == 0 {
                break;
            }
            budget -= 1;
            self.process(b);
        }
    }

    fn process(&mut self, b: usize) {
        let p = self.p;
        let mut env = match &self.block_in[b] {
            Some(e) => e.clone(),
            None => return,
        };
        let block = &p.blocks[b];
        for (i, op) in block.ops.iter().enumerate() {
            match op {
                Op::Compute { outs, prim, ins } => {
                    let mut vals = Vec::with_capacity(ins.len());
                    for v in ins {
                        match env.get(v) {
                            Some(av) => vals.push(av.clone()),
                            None => {
                                self.diag(IrError::UnassignedRead {
                                    var: v.clone(),
                                    func: None,
                                    block: BlockId(b),
                                });
                                return;
                            }
                        }
                    }
                    match transfer(prim, &vals, outs.len(), &mut self.cons) {
                        Ok(res) => {
                            for ((o, _kind), r) in outs.iter().zip(res) {
                                self.record_write(o, &r);
                                env.insert(o.clone(), r);
                            }
                        }
                        Err(what) => {
                            self.diag(IrError::TypeError {
                                func: None,
                                block: BlockId(b),
                                op: Some(i),
                                what,
                            });
                            return;
                        }
                    }
                }
                Op::Pop { var } => {
                    // The uncovered top is some earlier write; stay
                    // initialized (balanced-lowering assumption, see
                    // module docs).
                    if let Some(join_of_writes) = self.anyval.get(var) {
                        env.insert(var.clone(), join_of_writes.clone());
                    }
                }
            }
        }
        match &block.term {
            Terminator::Jump(t) => self.propagate(t.0, &env),
            Terminator::Branch { cond, then_, else_ } => {
                let cv = match env.get(cond) {
                    Some(v) => v.clone(),
                    None => {
                        self.diag(IrError::UnassignedRead {
                            var: cond.clone(),
                            func: None,
                            block: BlockId(b),
                        });
                        return;
                    }
                };
                match cv.dtype {
                    AbsDType::Bool => {}
                    AbsDType::Any => {
                        if let Some(idx) = cv.origin {
                            if let Err(what) = self.cons.require(idx, AbsDType::Bool) {
                                self.diag(IrError::TypeError {
                                    func: None,
                                    block: BlockId(b),
                                    op: None,
                                    what,
                                });
                                return;
                            }
                        }
                    }
                    other => {
                        self.diag(IrError::TypeError {
                            func: None,
                            block: BlockId(b),
                            op: None,
                            what: format!("branch condition must be bool, got {other}"),
                        });
                        return;
                    }
                }
                // Per-member branching indexes the condition by member,
                // so the element must be a scalar.
                if let super::absint::AbsShape::Elem(s) = &cv.shape {
                    if !s.is_empty() {
                        self.diag(IrError::TypeError {
                            func: None,
                            block: BlockId(b),
                            op: None,
                            what: format!(
                                "branch condition must be a per-member scalar, got element shape {}",
                                cv.shape
                            ),
                        });
                        return;
                    }
                }
                let (then_live, else_live) = match cv.known_cond {
                    Some(true) => (true, false),
                    Some(false) => (false, true),
                    None => (true, true),
                };
                if then_live && else_live && cv.divergent {
                    self.divergent.insert(b);
                }
                if then_live {
                    self.propagate(then_.0, &env);
                }
                if else_live {
                    self.propagate(else_.0, &env);
                }
            }
            Terminator::PushJump { enter, resume } => {
                self.propagate(enter.0, &env);
                // The state at `resume` is the callee's state at one of
                // its `Return`s. Variables the callee can never write
                // keep the caller's value exactly; variables it may
                // write take the callee's return-time value (falling
                // back to the join of all writes when the return env
                // dropped them at a join). When the callee has not
                // reached a `Return` yet, this block is re-queued by the
                // `Return` arm once its return env first forms.
                if let Some(&s) = self.sub_of_entry.get(&enter.0) {
                    if let Some(re) = self.return_envs[s].clone() {
                        let merged = self.merge_resume(&env, &re, s);
                        self.propagate(resume.0, &merged);
                    }
                } else if let Some(re) = self.return_envs.iter().flatten().next().cloned() {
                    // Defensive: an enter target the recovery did not
                    // classify (cannot happen for recovered programs).
                    self.propagate(resume.0, &re);
                }
            }
            Terminator::Return => {
                // A block may belong to several subroutines (shared
                // tails); its return state joins into each.
                let changed: Vec<usize> = self.containing[b]
                    .clone()
                    .into_iter()
                    .filter(|&s| join_env_opt(&mut self.return_envs[s], &env))
                    .collect();
                for s in changed {
                    // Re-run every reached call site of `s` so its
                    // resume block observes the new return state.
                    for pb in 0..p.blocks.len() {
                        if self.block_in[pb].is_none() {
                            continue;
                        }
                        if let Terminator::PushJump { enter, .. } = &p.blocks[pb].term {
                            if self.sub_of_entry.get(&enter.0) == Some(&s) {
                                self.queue(pb);
                            }
                        }
                    }
                }
            }
        }
    }
}

fn stack_bounds(p: &Program, sub: &Subroutines) -> (DepthBound, DepthBound) {
    if sub.recursive() {
        return (DepthBound::Unbounded, DepthBound::Unbounded);
    }
    // pc: exit sentinel + one frame per nested call = the node count of
    // the longest call chain (the entry runs on the sentinel frame).
    let pc = DepthBound::Bounded(sub.longest_path(&|_| 1));
    // data: per stacked variable, chain-maximal sum of static push
    // counts, plus the admission frame.
    let mut data = DepthBound::Bounded(0);
    for var in p.stacked_vars() {
        let mut unbounded = false;
        let per_sub: Vec<usize> = (0..sub.entries.len())
            .map(|s| {
                let mut count = 0;
                for &b in &sub.members[s] {
                    let pushes = p.blocks[b]
                        .ops
                        .iter()
                        .filter(|op| match op {
                            Op::Compute { outs, .. } => {
                                outs.iter().any(|(o, k)| *o == var && *k == WriteKind::Push)
                            }
                            Op::Pop { .. } => false,
                        })
                        .count();
                    if pushes > 0 && sub.on_cycle[s].contains(&b) {
                        unbounded = true;
                    }
                    count += pushes;
                }
                count
            })
            .collect();
        if unbounded {
            return (pc, DepthBound::Unbounded);
        }
        let bound = sub.longest_path(&|s| per_sub[s]);
        data = data.max(DepthBound::Bounded(1 + bound));
    }
    (pc, data)
}

fn finish(p: &Program, sub: &Subroutines, mut eng: Engine<'_>) -> PcabReport {
    let mut diags = std::mem::take(&mut eng.diags);
    // The program exits from the entry subroutine's returns.
    let outputs = match &eng.return_envs[0] {
        Some(env) => {
            let mut outs = Vec::with_capacity(p.outputs.len());
            for v in &p.outputs {
                match env.get(v) {
                    Some(av) => outs.push(av.clone()),
                    None => {
                        let e = IrError::UnassignedRead {
                            var: v.clone(),
                            func: None,
                            block: p.exit_sentinel(),
                        };
                        if !diags.contains(&e) {
                            diags.push(e);
                        }
                        outs.push(AbsValue::any());
                    }
                }
            }
            outs
        }
        None => {
            let e = IrError::NoReachableReturn { func: None };
            if !diags.contains(&e) {
                diags.push(e);
            }
            vec![AbsValue::any(); p.outputs.len()]
        }
    };
    let (pc_depth, data_depth) = stack_bounds(p, sub);
    PcabReport {
        input_dtypes: eng.cons.dtypes.clone(),
        outputs,
        pc_depth,
        data_depth,
        unreachable: (0..p.blocks.len())
            .filter(|&b| eng.block_in[b].is_none())
            .map(BlockId)
            .collect(),
        divergent_branches: eng.divergent.iter().map(|&b| BlockId(b)).collect(),
        elementwise_spans: super::spans::elementwise_spans(p),
        diagnostics: diags,
    }
}

/// Program-level verification of a pcab program with fully-unknown
/// inputs. See the module-level docs for the approximations used.
pub fn analyze_pcab(p: &Program) -> PcabReport {
    if let Err(e) = p.validate() {
        return PcabReport {
            input_dtypes: vec![AbsDType::Any; p.inputs.len()],
            outputs: vec![AbsValue::any(); p.outputs.len()],
            pc_depth: DepthBound::Unbounded,
            data_depth: DepthBound::Unbounded,
            unreachable: Vec::new(),
            divergent_branches: Vec::new(),
            elementwise_spans: Vec::new(),
            diagnostics: vec![e],
        };
    }
    let sub = Subroutines::recover(p);
    let entry_values = (0..p.inputs.len()).map(AbsValue::input).collect();
    let mut eng = Engine::new(p, &sub, entry_values);
    eng.run();
    finish(p, &sub, eng)
}

/// Concrete signature inference for a pcab program.
///
/// # Errors
///
/// Returns the first diagnostic when the program is invalid or
/// ill-typed for these inputs, or can never reach the exit.
pub fn infer_pcab_signature(p: &Program, inputs: &[TensorSpec]) -> Result<Signature, IrError> {
    p.validate()?;
    if inputs.len() != p.inputs.len() {
        return Err(IrError::BadArity {
            what: "program inputs".to_string(),
            expected: p.inputs.len(),
            got: inputs.len(),
        });
    }
    let sub = Subroutines::recover(p);
    let entry_values = inputs
        .iter()
        .enumerate()
        .map(|(i, s)| s.abs_value(i))
        .collect();
    let mut eng = Engine::new(p, &sub, entry_values);
    eng.run();
    let report = finish(p, &sub, eng);
    if let Some(e) = report.diagnostics.first() {
        return Err(e.clone());
    }
    Ok(Signature {
        inputs: inputs.to_vec(),
        outputs: report.outputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::pcab::{Block, VarClass};
    use crate::prim::Prim;

    fn var(s: &str) -> Var {
        Var::new(s)
    }

    /// A two-block straight-line program: entry computes, returns.
    fn straightline() -> Program {
        let x = var("x");
        let y = var("y");
        let mut classes = BTreeMap::new();
        classes.insert(x.clone(), VarClass::Register);
        classes.insert(y.clone(), VarClass::Register);
        Program {
            blocks: vec![Block {
                ops: vec![Op::Compute {
                    outs: vec![(y.clone(), WriteKind::Update)],
                    prim: Prim::Exp,
                    ins: vec![x.clone()],
                }],
                term: Terminator::Return,
            }],
            entry: BlockId(0),
            inputs: vec![x],
            outputs: vec![y],
            classes,
        }
    }

    #[test]
    fn straightline_is_bounded_and_typed() {
        let p = straightline();
        let report = analyze_pcab(&p);
        assert!(report.ok(), "diagnostics: {:?}", report.diagnostics);
        assert_eq!(report.input_dtypes, vec![AbsDType::F64]);
        assert_eq!(report.pc_depth, DepthBound::Bounded(1));
        assert!(report.overflow_excluded(64));
        let sig = infer_pcab_signature(&p, &[TensorSpec::new(AbsDType::F64, vec![])]).unwrap();
        assert_eq!(sig.outputs[0].dtype, AbsDType::F64);
    }

    #[test]
    fn wrong_dtype_inputs_are_rejected() {
        let p = straightline();
        assert!(infer_pcab_signature(&p, &[TensorSpec::new(AbsDType::Bool, vec![])]).is_err());
        let report = analyze_pcab(&p);
        assert!(report
            .check_inputs(&[TensorSpec::new(AbsDType::Bool, vec![])])
            .is_err());
        assert!(report
            .check_inputs(&[TensorSpec::new(AbsDType::F64, vec![2])])
            .is_ok());
    }
}
