//! The [`Verified`] witness: a program that passed static verification,
//! carried together with its report.
//!
//! Holding a `Verified<P>` is proof that program-level verification ran
//! and produced zero diagnostics; downstream consumers (the serving
//! stack, the `irlint` tool) can rely on the report's inferred
//! signature and stack bounds without re-running the analysis.

use std::fmt;

use crate::error::IrError;
use crate::{lsab, pcab};

use super::verify_lsab::{analyze_lsab, LsabReport};
use super::verify_pcab::{analyze_pcab, PcabReport};

/// A program form that the static verifier knows how to analyze.
pub trait Verifiable: Sized {
    /// The report produced by program-level verification.
    type Report;
    /// Run program-level verification.
    fn analyze(&self) -> Self::Report;
    /// The diagnostics of a report (empty means accepted).
    fn diagnostics(report: &Self::Report) -> &[IrError];
}

impl Verifiable for lsab::Program {
    type Report = LsabReport;
    fn analyze(&self) -> LsabReport {
        analyze_lsab(self)
    }
    fn diagnostics(report: &LsabReport) -> &[IrError] {
        &report.diagnostics
    }
}

impl Verifiable for pcab::Program {
    type Report = PcabReport;
    fn analyze(&self) -> PcabReport {
        analyze_pcab(self)
    }
    fn diagnostics(report: &PcabReport) -> &[IrError] {
        &report.diagnostics
    }
}

/// A statically-verified program plus the verification report.
pub struct Verified<P: Verifiable> {
    program: P,
    report: P::Report,
}

impl<P: Verifiable> Verified<P> {
    /// Verify `program`, returning the witness on success.
    ///
    /// # Errors
    ///
    /// Returns the first diagnostic when verification fails.
    pub fn new(program: P) -> Result<Verified<P>, IrError> {
        let report = program.analyze();
        if let Some(e) = P::diagnostics(&report).first() {
            return Err(e.clone());
        }
        Ok(Verified { program, report })
    }

    /// The verified program.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// The verification report.
    pub fn report(&self) -> &P::Report {
        &self.report
    }

    /// Unwrap the program, discarding the witness.
    pub fn into_program(self) -> P {
        self.program
    }
}

impl<P: Verifiable + fmt::Debug> fmt::Debug for Verified<P>
where
    P::Report: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Verified")
            .field("program", &self.program)
            .field("report", &self.report)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::fibonacci_program;

    #[test]
    fn fibonacci_earns_a_witness() {
        let v = Verified::new(fibonacci_program()).unwrap();
        assert!(v.report().diagnostics.is_empty());
        let n = v.program().funcs.len();
        assert_eq!(v.into_program().funcs.len(), n);
    }

    #[test]
    fn invalid_programs_are_refused() {
        let mut p = fibonacci_program();
        p.funcs[0].blocks.clear();
        assert!(Verified::new(p).is_err());
    }
}
