//! The primitive operation vocabulary.
//!
//! Primitives are the `f ::= sin | cos | ...` leaves of the paper's
//! Figures 2 and 4: opaque batched kernels the autobatching runtimes
//! invoke but never look inside. The set here is the n-ary
//! generalization the paper alludes to, extended with the kernels the
//! NUTS evaluation needs (per-member reductions, counter-based RNG, and
//! externally registered model kernels such as the target-density
//! gradient).

use std::fmt;
use std::sync::Arc;

/// A primitive operation.
///
/// Each primitive has a fixed number of input and output operands
/// (see [`Prim::arity`]), except [`Prim::External`], whose arity is
/// declared by the kernel registered under that name in the runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum Prim {
    // --- constants (per batch member scalars) ---------------------------
    /// Constant `f64` scalar.
    ConstF64(f64),
    /// Constant `i64` scalar.
    ConstI64(i64),
    /// Constant `bool` scalar.
    ConstBool(bool),
    /// Unary: a tensor shaped like the input, filled with the constant.
    FillLike(f64),

    // --- data movement ---------------------------------------------------
    /// Unary identity (copy).
    Id,

    // --- unary float math ------------------------------------------------
    /// Negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Exponential.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Square root.
    Sqrt,
    /// Square.
    Square,
    /// Logistic sigmoid.
    Sigmoid,
    /// Stable `log(1+exp(x))`.
    Softplus,
    /// Floor.
    Floor,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Hyperbolic tangent.
    Tanh,
    /// Integer negation.
    NegI,
    /// Boolean NOT.
    Not,

    // --- binary math (same-dtype, broadcasting) --------------------------
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Power.
    Pow,
    /// Elementwise minimum.
    Min2,
    /// Elementwise maximum.
    Max2,

    // --- comparisons (result bool) ----------------------------------------
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Equality.
    EqE,
    /// Inequality.
    NeE,

    // --- boolean ----------------------------------------------------------
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
    /// Logical XOR.
    Xor,

    // --- ternary ----------------------------------------------------------
    /// `select(cond, a, b)`.
    Select,

    // --- casts ------------------------------------------------------------
    /// Cast to `f64`.
    ToF64,
    /// Cast to `i64`.
    ToI64,
    /// Cast to `bool`.
    ToBool,

    // --- per-member reductions over the element axis ----------------------
    /// `[Z, d] → [Z]` sum of each member's elements.
    SumElems,
    /// Binary dot product over the element axis: `[Z, d] × [Z, d] → [Z]`.
    Dot,

    // --- counter-based RNG -------------------------------------------------
    /// `(rng: i64) → (u: f64, rng': i64)` with `u ~ Uniform[0, 1)`.
    RandUniform,
    /// `(rng: i64) → (x: f64, rng': i64)` with `x ~ Normal(0, 1)`.
    RandNormal,
    /// `(rng: i64) → (e: f64, rng': i64)` with `e ~ Exponential(1)`.
    RandExponential,
    /// `(rng: i64, template) → (x, rng': i64)` with `x` shaped like
    /// `template`, i.i.d. standard normal entries.
    RandNormalLike,

    // --- externally registered kernels --------------------------------------
    /// A kernel registered in the runtime's kernel registry under this
    /// name (e.g. the model gradient `"grad"`). The registry declares its
    /// arity and flop cost.
    External(Arc<str>),
}

/// Input/output arity of a primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arity {
    /// Number of input operands.
    pub ins: usize,
    /// Number of output operands.
    pub outs: usize,
}

impl Prim {
    /// An [`Prim::External`] primitive by kernel name.
    pub fn external(name: impl AsRef<str>) -> Prim {
        Prim::External(Arc::from(name.as_ref()))
    }

    /// The fixed arity of the primitive, or `None` for
    /// [`Prim::External`] (whose arity the kernel registry declares).
    pub fn arity(&self) -> Option<Arity> {
        use Prim::*;
        let (i, o) = match self {
            ConstF64(_) | ConstI64(_) | ConstBool(_) => (0, 1),
            FillLike(_) | Id | Neg | Abs | Exp | Ln | Sqrt | Square | Sigmoid | Softplus
            | Floor | Sin | Cos | Tanh | NegI | Not | ToF64 | ToI64 | ToBool | SumElems => (1, 1),
            Add | Sub | Mul | Div | Pow | Min2 | Max2 | Lt | Le | Gt | Ge | EqE | NeE | And
            | Or | Xor | Dot => (2, 1),
            Select => (3, 1),
            RandUniform | RandNormal | RandExponential => (1, 2),
            RandNormalLike => (2, 2),
            External(_) => return None,
        };
        Some(Arity { ins: i, outs: o })
    }

    /// A short kernel tag for tracing (externals use their registry name,
    /// so e.g. gradient utilization can be measured under `"grad"`).
    pub fn kernel_tag(&self) -> String {
        match self {
            Prim::External(name) => name.to_string(),
            Prim::ConstF64(_) | Prim::ConstI64(_) | Prim::ConstBool(_) => "const".to_string(),
            Prim::FillLike(_) => "fill".to_string(),
            other => format!("{other}").to_ascii_lowercase(),
        }
    }

    /// True when the primitive is a pure elementwise map: every output
    /// element depends only on the same-index input elements (after
    /// broadcasting), with no internal state, randomness, or
    /// cross-element reduction. Constants count — they broadcast one
    /// scalar over the batch. This is the legality condition for the
    /// runtime's fused fast path: any straight-line run of elementwise
    /// primitives may execute as a single loop without changing a bit
    /// of any output.
    pub fn is_elementwise(&self) -> bool {
        use Prim::*;
        matches!(
            self,
            ConstF64(_)
                | ConstI64(_)
                | ConstBool(_)
                | FillLike(_)
                | Id
                | Neg
                | Abs
                | Exp
                | Ln
                | Sqrt
                | Square
                | Sigmoid
                | Softplus
                | Floor
                | Sin
                | Cos
                | Tanh
                | NegI
                | Not
                | Add
                | Sub
                | Mul
                | Div
                | Pow
                | Min2
                | Max2
                | Lt
                | Le
                | Gt
                | Ge
                | EqE
                | NeE
                | And
                | Or
                | Xor
                | Select
                | ToF64
                | ToI64
                | ToBool
        )
    }

    /// Approximate floating-point cost per output element, used by the
    /// cost model for non-external kernels. Transcendentals are priced
    /// as a handful of flops, matching throughput-optimized vector math
    /// libraries.
    pub fn flops_per_element(&self) -> f64 {
        use Prim::*;
        match self {
            ConstF64(_) | ConstI64(_) | ConstBool(_) | FillLike(_) | Id | ToF64 | ToI64
            | ToBool => 0.0,
            Neg | Abs | NegI | Not | Floor | Square => 1.0,
            Add | Sub | Mul | Min2 | Max2 | Lt | Le | Gt | Ge | EqE | NeE | And | Or | Xor
            | Select => 1.0,
            Div => 4.0,
            Sqrt => 6.0,
            Exp | Ln | Sigmoid | Softplus | Sin | Cos | Tanh | Pow => 10.0,
            SumElems | Dot => 2.0,
            RandUniform => 10.0,
            RandNormal | RandExponential | RandNormalLike => 30.0,
            External(_) => 0.0, // priced by the registered kernel instead
        }
    }
}

impl fmt::Display for Prim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prim::ConstF64(c) => write!(f, "const({c})"),
            Prim::ConstI64(c) => write!(f, "const({c}i)"),
            Prim::ConstBool(c) => write!(f, "const({c})"),
            Prim::FillLike(c) => write!(f, "fill_like({c})"),
            Prim::External(name) => write!(f, "ext:{name}"),
            other => {
                let s = format!("{other:?}");
                write!(f, "{}", s.to_ascii_lowercase())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arities() {
        assert_eq!(Prim::Add.arity(), Some(Arity { ins: 2, outs: 1 }));
        assert_eq!(Prim::ConstF64(1.0).arity(), Some(Arity { ins: 0, outs: 1 }));
        assert_eq!(Prim::Select.arity(), Some(Arity { ins: 3, outs: 1 }));
        assert_eq!(Prim::RandNormal.arity(), Some(Arity { ins: 1, outs: 2 }));
        assert_eq!(Prim::external("grad").arity(), None);
    }

    #[test]
    fn display_and_tags() {
        assert_eq!(Prim::Add.to_string(), "add");
        assert_eq!(Prim::ConstF64(2.5).to_string(), "const(2.5)");
        assert_eq!(Prim::external("grad").to_string(), "ext:grad");
        assert_eq!(Prim::external("grad").kernel_tag(), "grad");
        assert_eq!(Prim::ConstI64(1).kernel_tag(), "const");
    }

    #[test]
    fn flop_costs_are_nonnegative() {
        for p in [
            Prim::Add,
            Prim::Exp,
            Prim::Dot,
            Prim::RandNormal,
            Prim::external("x"),
        ] {
            assert!(p.flops_per_element() >= 0.0);
        }
    }

    #[test]
    fn external_equality_by_name() {
        assert_eq!(Prim::external("grad"), Prim::external("grad"));
        assert_ne!(Prim::external("grad"), Prim::external("logp"));
    }
}
