//! The program-counter-batchable language (paper Figure 4).
//!
//! All function control-flow graphs are merged into one flat list of
//! blocks; calls become explicit stack manipulation: data stacks via
//! [`WriteKind::Push`]/[`Op::Pop`], and the program counter via
//! [`Terminator::PushJump`]/[`Terminator::Return`]. The paper's
//! optimization 5 adds an in-place [`WriteKind::Update`] for cancelled
//! pop/push pairs; optimizations 2–3 classify variables so that
//! temporaries bypass the machinery entirely and non-recursive variables
//! need no stack ([`VarClass::Register`]).

use std::collections::{BTreeMap, BTreeSet};

use crate::error::{IrError, Result};
use crate::prim::Prim;
use crate::var::{BlockId, Var};

/// How a computed output is written to a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// Push a new frame holding the value onto the variable's stack
    /// (stacked variables only).
    Push,
    /// Overwrite the variable's current top value in place, masked to the
    /// active members (registers, stacked tops, and temporaries).
    Update,
}

/// Storage class of a program variable (paper optimizations 2–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarClass {
    /// Live across blocks but never across a recursive call: a masked
    /// flat value, no stack, no stack pointer.
    Register,
    /// Live across a recursive call: full `[D, Z, ..]` stack plus
    /// per-member stack pointers.
    Stacked,
}

/// An operation within a block.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `outs = prim(ins)`, with a per-output write kind.
    Compute {
        /// Output variables with their write kinds.
        outs: Vec<(Var, WriteKind)>,
        /// The primitive.
        prim: Prim,
        /// Input variables (always read at their current top value).
        ins: Vec<Var>,
    },
    /// Pop the top frame of a stacked variable (masked to active members).
    Pop {
        /// The stacked variable.
        var: Var,
    },
}

/// How a block ends.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on a boolean scalar variable.
    Branch {
        /// Condition variable.
        cond: Var,
        /// Target when true.
        then_: BlockId,
        /// Target when false.
        else_: BlockId,
    },
    /// Function call: write `resume` into the current program-counter
    /// frame, then push `enter` as the new pc top (Algorithm 2's
    /// `PushJump j k`).
    PushJump {
        /// The callee's entry block (becomes the new pc top).
        enter: BlockId,
        /// The block to resume at after the callee returns (stored in the
        /// caller's pc frame).
        resume: BlockId,
    },
    /// Pop the program counter, resuming the caller (or reaching the exit
    /// sentinel at the bottom of the pc stack).
    Return,
}

impl Terminator {
    /// Blocks this terminator can transfer control to directly.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch { then_, else_, .. } => vec![*then_, *else_],
            Terminator::PushJump { enter, resume } => vec![*enter, *resume],
            Terminator::Return => vec![],
        }
    }
}

/// A basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The ops, executed in order.
    pub ops: Vec<Op>,
    /// The terminator.
    pub term: Terminator,
}

/// A merged, stack-explicit program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The blocks; `entry` is the initial pc top.
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
    /// Input variables (assigned from the batch inputs before the run).
    pub inputs: Vec<Var>,
    /// Output variables (read when all members reach the exit sentinel).
    pub outputs: Vec<Var>,
    /// Storage class of every persistent variable. Variables that appear
    /// in ops but not here are block-local temporaries (optimization 2).
    pub classes: BTreeMap<Var, VarClass>,
}

impl Program {
    /// The exit-sentinel block index (one past the last block).
    pub fn exit_sentinel(&self) -> BlockId {
        BlockId(self.blocks.len())
    }

    /// The storage class of a variable, or `None` for temporaries.
    pub fn class_of(&self, var: &Var) -> Option<VarClass> {
        self.classes.get(var).copied()
    }

    /// All stacked variables, in sorted order.
    pub fn stacked_vars(&self) -> Vec<Var> {
        self.classes
            .iter()
            .filter(|(_, c)| **c == VarClass::Stacked)
            .map(|(v, _)| v.clone())
            .collect()
    }

    /// All register variables, in sorted order.
    pub fn register_vars(&self) -> Vec<Var> {
        self.classes
            .iter()
            .filter(|(_, c)| **c == VarClass::Register)
            .map(|(v, _)| v.clone())
            .collect()
    }

    /// Total op count across blocks (for compile statistics).
    pub fn op_count(&self) -> usize {
        self.blocks.iter().map(|b| b.ops.len()).sum()
    }

    /// Count of stack-touching operations: pushes plus pops. The
    /// lowering-ablation bench uses this to quantify optimization 5.
    pub fn stack_op_count(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| &b.ops)
            .map(|op| match op {
                Op::Pop { .. } => 1,
                Op::Compute { outs, .. } => {
                    outs.iter().filter(|(_, k)| *k == WriteKind::Push).count()
                }
            })
            .sum()
    }

    /// Validate structural well-formedness:
    ///
    /// - entry and all block targets are in range;
    /// - primitive arities match operand counts;
    /// - `Push`/`Pop` only target stacked variables;
    /// - register and temporary variables are only written with `Update`;
    /// - temporaries (variables absent from `classes`) never escape the
    ///   block they are written in;
    /// - inputs and outputs are classified (persistent) variables.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<()> {
        if self.blocks.is_empty() {
            return Err(IrError::NoEntry);
        }
        if self.entry.0 >= self.blocks.len() {
            return Err(IrError::BadBlock {
                func: None,
                block: self.entry,
                len: self.blocks.len(),
            });
        }
        for v in self.inputs.iter().chain(&self.outputs) {
            if self.class_of(v).is_none() {
                return Err(IrError::BadVarClass {
                    var: v.clone(),
                    what: "program inputs/outputs must be persistent variables".into(),
                });
            }
        }
        for (bi, b) in self.blocks.iter().enumerate() {
            let bid = BlockId(bi);
            let mut local_temps: BTreeSet<Var> = BTreeSet::new();
            for op in &b.ops {
                match op {
                    Op::Compute { outs, prim, ins } => {
                        if let Some(a) = prim.arity() {
                            if ins.len() != a.ins {
                                return Err(IrError::BadArity {
                                    what: format!("{bid}: inputs of `{prim}`"),
                                    expected: a.ins,
                                    got: ins.len(),
                                });
                            }
                            if outs.len() != a.outs {
                                return Err(IrError::BadArity {
                                    what: format!("{bid}: outputs of `{prim}`"),
                                    expected: a.outs,
                                    got: outs.len(),
                                });
                            }
                        }
                        for r in ins {
                            if self.class_of(r).is_none() && !local_temps.contains(r) {
                                return Err(IrError::UnassignedRead {
                                    var: r.clone(),
                                    func: None,
                                    block: bid,
                                });
                            }
                        }
                        for (w, kind) in outs {
                            match (self.class_of(w), kind) {
                                (Some(VarClass::Stacked), _) => {}
                                (Some(VarClass::Register), WriteKind::Update) => {}
                                (Some(VarClass::Register), WriteKind::Push) => {
                                    return Err(IrError::BadVarClass {
                                        var: w.clone(),
                                        what: "push to register variable".into(),
                                    });
                                }
                                (None, WriteKind::Update) => {
                                    local_temps.insert(w.clone());
                                }
                                (None, WriteKind::Push) => {
                                    return Err(IrError::BadVarClass {
                                        var: w.clone(),
                                        what: "push to temporary variable".into(),
                                    });
                                }
                            }
                        }
                    }
                    Op::Pop { var } => {
                        if self.class_of(var) != Some(VarClass::Stacked) {
                            return Err(IrError::BadVarClass {
                                var: var.clone(),
                                what: "pop of non-stacked variable".into(),
                            });
                        }
                    }
                }
            }
            if let Terminator::Branch { cond, .. } = &b.term {
                if self.class_of(cond).is_none() && !local_temps.contains(cond) {
                    return Err(IrError::UnassignedRead {
                        var: cond.clone(),
                        func: None,
                        block: bid,
                    });
                }
            }
            for s in b.term.successors() {
                if s.0 >= self.blocks.len() {
                    return Err(IrError::BadBlock {
                        func: None,
                        block: s,
                        len: self.blocks.len(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Var {
        Var::new(s)
    }

    /// A single-block program: y = x + x; return.
    fn tiny() -> Program {
        let mut classes = BTreeMap::new();
        classes.insert(v("x"), VarClass::Register);
        classes.insert(v("y"), VarClass::Register);
        Program {
            blocks: vec![Block {
                ops: vec![Op::Compute {
                    outs: vec![(v("y"), WriteKind::Update)],
                    prim: Prim::Add,
                    ins: vec![v("x"), v("x")],
                }],
                term: Terminator::Return,
            }],
            entry: BlockId(0),
            inputs: vec![v("x")],
            outputs: vec![v("y")],
            classes,
        }
    }

    #[test]
    fn tiny_validates() {
        tiny().validate().unwrap();
    }

    #[test]
    fn exit_sentinel_is_block_count() {
        assert_eq!(tiny().exit_sentinel(), BlockId(1));
    }

    #[test]
    fn push_to_register_rejected() {
        let mut p = tiny();
        if let Op::Compute { outs, .. } = &mut p.blocks[0].ops[0] {
            outs[0].1 = WriteKind::Push;
        }
        assert!(matches!(p.validate(), Err(IrError::BadVarClass { .. })));
    }

    #[test]
    fn pop_of_register_rejected() {
        let mut p = tiny();
        p.blocks[0].ops.push(Op::Pop { var: v("x") });
        assert!(matches!(p.validate(), Err(IrError::BadVarClass { .. })));
    }

    #[test]
    fn temp_read_before_write_rejected() {
        let mut p = tiny();
        // `t` is not classified, so it is a temp; reading it without a
        // prior write in the same block is an error.
        p.blocks[0].ops.insert(
            0,
            Op::Compute {
                outs: vec![(v("y"), WriteKind::Update)],
                prim: Prim::Id,
                ins: vec![v("t")],
            },
        );
        assert!(matches!(p.validate(), Err(IrError::UnassignedRead { .. })));
    }

    #[test]
    fn temp_write_then_read_ok() {
        let mut p = tiny();
        p.blocks[0].ops.insert(
            0,
            Op::Compute {
                outs: vec![(v("t"), WriteKind::Update)],
                prim: Prim::ConstF64(1.0),
                ins: vec![],
            },
        );
        p.blocks[0].ops.insert(
            1,
            Op::Compute {
                outs: vec![(v("x"), WriteKind::Update)],
                prim: Prim::Id,
                ins: vec![v("t")],
            },
        );
        p.validate().unwrap();
    }

    #[test]
    fn unclassified_output_rejected() {
        let mut p = tiny();
        p.outputs = vec![v("ghost")];
        assert!(matches!(p.validate(), Err(IrError::BadVarClass { .. })));
    }

    #[test]
    fn pushjump_targets_checked() {
        let mut p = tiny();
        p.blocks[0].term = Terminator::PushJump {
            enter: BlockId(9),
            resume: BlockId(0),
        };
        assert!(matches!(p.validate(), Err(IrError::BadBlock { .. })));
    }

    #[test]
    fn stack_op_count_counts_push_and_pop() {
        let mut classes = BTreeMap::new();
        classes.insert(v("s"), VarClass::Stacked);
        let p = Program {
            blocks: vec![Block {
                ops: vec![
                    Op::Compute {
                        outs: vec![(v("s"), WriteKind::Push)],
                        prim: Prim::ConstF64(0.0),
                        ins: vec![],
                    },
                    Op::Pop { var: v("s") },
                ],
                term: Terminator::Return,
            }],
            entry: BlockId(0),
            inputs: vec![v("s")],
            outputs: vec![v("s")],
            classes,
        };
        assert_eq!(p.stack_op_count(), 2);
        assert_eq!(p.op_count(), 2);
    }
}
