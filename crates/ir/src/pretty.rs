//! Human-readable listings and Graphviz DOT export for both IRs.

use std::fmt::Write as _;

use crate::lsab;
use crate::pcab;
use crate::var::FuncId;

/// Render an [`lsab::Program`] as a textual listing.
pub fn lsab_listing(p: &lsab::Program) -> String {
    let mut s = String::new();
    for (fi, f) in p.funcs.iter().enumerate() {
        let marker = if FuncId(fi) == p.entry {
            " (entry)"
        } else {
            ""
        };
        let params: Vec<String> = f.params.iter().map(|v| v.to_string()).collect();
        let outs: Vec<String> = f.outputs.iter().map(|v| v.to_string()).collect();
        let _ = writeln!(
            s,
            "fn f{fi} {}({}) -> ({}){marker} {{",
            f.name,
            params.join(", "),
            outs.join(", ")
        );
        for (bi, b) in f.blocks.iter().enumerate() {
            let _ = writeln!(s, "  b{bi}:");
            for op in &b.ops {
                match op {
                    lsab::Op::Prim { outs, prim, ins } => {
                        let _ = writeln!(s, "    {} = {prim}({})", join(outs), join(ins));
                    }
                    lsab::Op::Call { outs, callee, ins } => {
                        let name = &p.funcs[callee.0].name;
                        let _ = writeln!(s, "    {} = call {name}({})", join(outs), join(ins));
                    }
                }
            }
            match &b.term {
                lsab::Terminator::Jump(t) => {
                    let _ = writeln!(s, "    jump {t}");
                }
                lsab::Terminator::Branch { cond, then_, else_ } => {
                    let _ = writeln!(s, "    branch {cond} ? {then_} : {else_}");
                }
                lsab::Terminator::Return => {
                    let _ = writeln!(s, "    return");
                }
            }
        }
        let _ = writeln!(s, "}}");
    }
    s
}

/// Render a [`pcab::Program`] as a textual listing.
pub fn pcab_listing(p: &pcab::Program) -> String {
    let mut s = String::new();
    let ins: Vec<String> = p.inputs.iter().map(|v| v.to_string()).collect();
    let outs: Vec<String> = p.outputs.iter().map(|v| v.to_string()).collect();
    let _ = writeln!(
        s,
        "program entry={} inputs=({}) outputs=({})",
        p.entry,
        ins.join(", "),
        outs.join(", ")
    );
    let stacked = p.stacked_vars();
    let regs = p.register_vars();
    let _ = writeln!(s, "stacked: {}", join(&stacked));
    let _ = writeln!(s, "registers: {}", join(&regs));
    for (bi, b) in p.blocks.iter().enumerate() {
        let _ = writeln!(s, "b{bi}:");
        for op in &b.ops {
            match op {
                pcab::Op::Compute { outs, prim, ins } => {
                    let outs_s: Vec<String> = outs
                        .iter()
                        .map(|(v, k)| match k {
                            pcab::WriteKind::Push => format!("push {v}"),
                            pcab::WriteKind::Update => format!("{v}"),
                        })
                        .collect();
                    let _ = writeln!(s, "  {} = {prim}({})", outs_s.join(", "), join(ins));
                }
                pcab::Op::Pop { var } => {
                    let _ = writeln!(s, "  pop {var}");
                }
            }
        }
        match &b.term {
            pcab::Terminator::Jump(t) => {
                let _ = writeln!(s, "  jump {t}");
            }
            pcab::Terminator::Branch { cond, then_, else_ } => {
                let _ = writeln!(s, "  branch {cond} ? {then_} : {else_}");
            }
            pcab::Terminator::PushJump { enter, resume } => {
                let _ = writeln!(s, "  pushjump enter={enter} resume={resume}");
            }
            pcab::Terminator::Return => {
                let _ = writeln!(s, "  return");
            }
        }
    }
    s
}

/// Render an [`lsab::Program`]'s control-flow graphs as Graphviz DOT.
pub fn lsab_dot(p: &lsab::Program) -> String {
    let mut s = String::from("digraph lsab {\n  node [shape=box fontname=monospace];\n");
    for (fi, f) in p.funcs.iter().enumerate() {
        let _ = writeln!(s, "  subgraph cluster_{fi} {{ label=\"{}\";", f.name);
        for (bi, b) in f.blocks.iter().enumerate() {
            let mut label = format!("{}:b{bi}\\n", f.name);
            for op in &b.ops {
                match op {
                    lsab::Op::Prim { outs, prim, ins } => {
                        let _ = write!(label, "{} = {prim}({})\\l", join(outs), join(ins));
                    }
                    lsab::Op::Call { outs, callee, ins } => {
                        let _ = write!(
                            label,
                            "{} = call {}({})\\l",
                            join(outs),
                            p.funcs[callee.0].name,
                            join(ins)
                        );
                    }
                }
            }
            let _ = writeln!(s, "    n{fi}_{bi} [label=\"{label}\"];");
        }
        for (bi, b) in f.blocks.iter().enumerate() {
            match &b.term {
                lsab::Terminator::Jump(t) => {
                    let _ = writeln!(s, "    n{fi}_{bi} -> n{fi}_{};", t.0);
                }
                lsab::Terminator::Branch { then_, else_, .. } => {
                    let _ = writeln!(s, "    n{fi}_{bi} -> n{fi}_{} [label=T];", then_.0);
                    let _ = writeln!(s, "    n{fi}_{bi} -> n{fi}_{} [label=F];", else_.0);
                }
                lsab::Terminator::Return => {}
            }
        }
        let _ = writeln!(s, "  }}");
    }
    s.push_str("}\n");
    s
}

/// Render a [`pcab::Program`]'s merged control-flow graph as Graphviz
/// DOT. `PushJump` edges show the call edge solid and the resume edge
/// dashed, which makes the materialized call structure visible.
pub fn pcab_dot(p: &pcab::Program) -> String {
    let mut s = String::from("digraph pcab {\n  node [shape=box fontname=monospace];\n");
    for (bi, b) in p.blocks.iter().enumerate() {
        let mut label = format!("b{bi}\\n");
        for op in &b.ops {
            match op {
                pcab::Op::Compute { outs, prim, ins } => {
                    let outs_s: Vec<String> = outs
                        .iter()
                        .map(|(v, k)| match k {
                            pcab::WriteKind::Push => format!("push {v}"),
                            pcab::WriteKind::Update => v.to_string(),
                        })
                        .collect();
                    let _ = write!(label, "{} = {prim}({})\\l", outs_s.join(", "), join(ins));
                }
                pcab::Op::Pop { var } => {
                    let _ = write!(label, "pop {var}\\l");
                }
            }
        }
        let _ = writeln!(s, "  n{bi} [label=\"{label}\"];");
    }
    for (bi, b) in p.blocks.iter().enumerate() {
        match &b.term {
            pcab::Terminator::Jump(t) => {
                let _ = writeln!(s, "  n{bi} -> n{};", t.0);
            }
            pcab::Terminator::Branch { then_, else_, .. } => {
                let _ = writeln!(s, "  n{bi} -> n{} [label=T];", then_.0);
                let _ = writeln!(s, "  n{bi} -> n{} [label=F];", else_.0);
            }
            pcab::Terminator::PushJump { enter, resume } => {
                let _ = writeln!(s, "  n{bi} -> n{} [label=call];", enter.0);
                let _ = writeln!(s, "  n{bi} -> n{} [style=dashed label=resume];", resume.0);
            }
            pcab::Terminator::Return => {}
        }
    }
    s.push_str("}\n");
    s
}

fn join(vars: &[crate::var::Var]) -> String {
    vars.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::fibonacci_program;

    #[test]
    fn lsab_listing_mentions_everything() {
        let p = fibonacci_program();
        let s = lsab_listing(&p);
        assert!(s.contains("fibonacci"));
        assert!(s.contains("call fibonacci"));
        assert!(s.contains("branch"));
        assert!(s.contains("return"));
    }

    #[test]
    fn dot_is_structurally_plausible() {
        let p = fibonacci_program();
        let d = lsab_dot(&p);
        assert!(d.starts_with("digraph"));
        assert!(d.contains("cluster_0"));
        assert!(d.trim_end().ends_with('}'));
    }

    #[test]
    fn pcab_dot_shows_call_edges() {
        use crate::pcab;
        use crate::var::BlockId;
        use std::collections::BTreeMap;
        let mut classes = BTreeMap::new();
        classes.insert(crate::var::Var::new("x"), pcab::VarClass::Stacked);
        let p = pcab::Program {
            blocks: vec![
                pcab::Block {
                    ops: vec![pcab::Op::Compute {
                        outs: vec![(crate::var::Var::new("x"), pcab::WriteKind::Push)],
                        prim: crate::prim::Prim::ConstF64(1.0),
                        ins: vec![],
                    }],
                    term: pcab::Terminator::PushJump {
                        enter: BlockId(1),
                        resume: BlockId(1),
                    },
                },
                pcab::Block {
                    ops: vec![pcab::Op::Pop {
                        var: crate::var::Var::new("x"),
                    }],
                    term: pcab::Terminator::Return,
                },
            ],
            entry: BlockId(0),
            inputs: vec![crate::var::Var::new("x")],
            outputs: vec![crate::var::Var::new("x")],
            classes,
        };
        let d = pcab_dot(&p);
        assert!(d.contains("label=call"));
        assert!(d.contains("label=resume"));
        assert!(d.contains("push x"));
        assert!(d.contains("pop x"));
    }
}
