//! # autobatch-ir
//!
//! The two intermediate representations of
//! [Radul et al., MLSys 2020](https://arxiv.org/abs/1910.11141):
//!
//! - [`lsab`]: the *locally batchable* language of Figure 2 — per-function
//!   control-flow graphs whose ops are opaque batched primitives and
//!   (possibly recursive) calls;
//! - [`pcab`]: the *program-counter batchable* language of Figure 4 — all
//!   CFGs merged, calls replaced by explicit per-variable stack operations
//!   (`Push`/`Pop`/`Update`) and pc stack operations
//!   (`PushJump`/`Return`).
//!
//! Plus the supporting cast: the primitive vocabulary ([`Prim`]),
//! ergonomic [`build`]ers (the "frontend output stage"), structural
//! validation on both IRs, the static [`analysis`] passes the batching
//! transformation needs (call-graph SCCs, liveness), and [`pretty`]
//! printers / DOT export.
//!
//! The IRs themselves are execution-agnostic: the virtual machines that
//! interpret them live in `autobatch-core`.
//!
//! # Examples
//!
//! ```
//! use autobatch_ir::build::fibonacci_program;
//! use autobatch_ir::analysis::CallGraph;
//! use autobatch_ir::FuncId;
//!
//! let program = fibonacci_program();
//! program.validate()?;
//! let cg = CallGraph::new(&program);
//! assert!(cg.is_recursive_func(FuncId(0)));
//! # Ok::<(), autobatch_ir::IrError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod build;
mod error;
pub mod lsab;
pub mod pcab;
pub mod pretty;
mod prim;
mod var;

pub use error::{IrError, Result};
pub use prim::{Arity, Prim};
pub use var::{BlockId, FuncId, Var};
