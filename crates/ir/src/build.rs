//! Ergonomic builders for [`lsab`](crate::lsab) programs.
//!
//! The builders play the role of the paper's AutoGraph frontend output
//! stage: they let a compiler (or a test) assemble the Figure 2 CFG
//! language without manual block bookkeeping, including structured
//! `if`/`while` helpers that encode the standard lowering of those
//! constructs into `Jump`/`Branch` terminators.
//!
//! Builder methods panic on structural misuse (emitting into a terminated
//! block, finishing with unterminated blocks); [`ProgramBuilder::finish`]
//! additionally runs full [`Program::validate`](crate::lsab::Program::validate).

use crate::error::{IrError, Result};
use crate::lsab::{Block, Function, Op, Program, Terminator};
use crate::prim::Prim;
use crate::var::{BlockId, FuncId, Var};

/// Builds a whole multi-function program.
///
/// Functions are first declared (so mutually recursive calls can refer to
/// each other), then defined.
///
/// # Examples
///
/// ```
/// use autobatch_ir::build::ProgramBuilder;
/// use autobatch_ir::Prim;
///
/// let mut pb = ProgramBuilder::new();
/// let double = pb.declare("double", &["x"], &["y"]);
/// pb.define(double, |f| {
///     let x = f.param(0);
///     f.assign(&f.output(0), Prim::Add, &[x.clone(), x]);
///     f.ret();
/// });
/// let program = pb.finish(double)?;
/// assert_eq!(program.funcs.len(), 1);
/// # Ok::<(), autobatch_ir::IrError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    funcs: Vec<Option<Function>>,
    sigs: Vec<(String, Vec<Var>, Vec<Var>)>,
}

impl ProgramBuilder {
    /// Create an empty program builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Declare a function signature, returning its id.
    ///
    /// Parameter and output variable names are local to the function.
    pub fn declare(&mut self, name: &str, params: &[&str], outputs: &[&str]) -> FuncId {
        let id = FuncId(self.funcs.len());
        self.funcs.push(None);
        self.sigs.push((
            name.to_string(),
            params.iter().map(Var::new).collect(),
            outputs.iter().map(Var::new).collect(),
        ));
        id
    }

    /// Define the body of a previously declared function.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not declared, was already defined, or if the
    /// body leaves unterminated blocks.
    pub fn define<F: FnOnce(&mut FunctionBuilder)>(&mut self, id: FuncId, build: F) {
        let (name, params, outputs) = self.sigs[id.0].clone();
        assert!(self.funcs[id.0].is_none(), "function {name} defined twice");
        let mut fb = FunctionBuilder::new(name, params, outputs);
        build(&mut fb);
        self.funcs[id.0] = Some(fb.into_function());
    }

    /// Signature of a declared function: `(params, outputs)` counts.
    pub fn signature(&self, id: FuncId) -> (usize, usize) {
        let (_, p, o) = &self.sigs[id.0];
        (p.len(), o.len())
    }

    /// Assemble and validate the program.
    ///
    /// # Errors
    ///
    /// Returns an error if any declared function lacks a definition or if
    /// the assembled program fails validation.
    pub fn finish(self, entry: FuncId) -> Result<Program> {
        let mut funcs = Vec::with_capacity(self.funcs.len());
        for (i, f) in self.funcs.into_iter().enumerate() {
            match f {
                Some(f) => funcs.push(f),
                None => {
                    return Err(IrError::BadFunc {
                        func: FuncId(i),
                        len: i,
                    })
                }
            }
        }
        let p = Program { funcs, entry };
        p.validate()?;
        Ok(p)
    }
}

/// Builds one function's CFG.
///
/// The builder maintains a *current block*; op-emitting methods append to
/// it and terminator methods seal it. Fresh temporaries are named
/// `%t0, %t1, …` — the `%` prefix cannot collide with surface-language
/// identifiers.
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    params: Vec<Var>,
    outputs: Vec<Var>,
    blocks: Vec<(Vec<Op>, Option<Terminator>)>,
    current: usize,
    next_temp: usize,
}

impl FunctionBuilder {
    fn new(name: String, params: Vec<Var>, outputs: Vec<Var>) -> FunctionBuilder {
        FunctionBuilder {
            name,
            params,
            outputs,
            blocks: vec![(Vec::new(), None)],
            current: 0,
            next_temp: 0,
        }
    }

    /// The `i`-th parameter variable.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> Var {
        self.params[i].clone()
    }

    /// The `i`-th output variable.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn output(&self, i: usize) -> Var {
        self.outputs[i].clone()
    }

    /// A fresh uniquely named variable (usable as an ordinary local).
    pub fn fresh(&mut self, hint: &str) -> Var {
        let v = Var::new(format!("%{hint}{}", self.next_temp));
        self.next_temp += 1;
        v
    }

    /// The current block.
    pub fn current_block(&self) -> BlockId {
        BlockId(self.current)
    }

    /// Create a new, initially empty block (does not switch to it).
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push((Vec::new(), None));
        BlockId(self.blocks.len() - 1)
    }

    /// Switch op emission to `block`.
    ///
    /// # Panics
    ///
    /// Panics if the block is already terminated.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            self.blocks[block.0].1.is_none(),
            "switching to terminated block {block}"
        );
        self.current = block.0;
    }

    fn emit_op(&mut self, op: Op) {
        let (ops, term) = &mut self.blocks[self.current];
        assert!(
            term.is_none(),
            "emitting into terminated block b{}",
            self.current
        );
        ops.push(op);
    }

    /// Emit `var = prim(ins)` into the current block.
    ///
    /// # Panics
    ///
    /// Panics if the current block is terminated.
    pub fn assign(&mut self, var: &Var, prim: Prim, ins: &[Var]) {
        self.emit_op(Op::Prim {
            outs: vec![var.clone()],
            prim,
            ins: ins.to_vec(),
        });
    }

    /// Emit a multi-output primitive `outs = prim(ins)`.
    ///
    /// # Panics
    ///
    /// Panics if the current block is terminated.
    pub fn assign_multi(&mut self, outs: &[Var], prim: Prim, ins: &[Var]) {
        self.emit_op(Op::Prim {
            outs: outs.to_vec(),
            prim,
            ins: ins.to_vec(),
        });
    }

    /// Emit `fresh = prim(ins)` and return the fresh variable.
    pub fn emit(&mut self, prim: Prim, ins: &[Var]) -> Var {
        let v = self.fresh("t");
        self.assign(&v, prim, ins);
        v
    }

    /// Emit a copy `dst = src`.
    pub fn copy(&mut self, dst: &Var, src: &Var) {
        self.assign(dst, Prim::Id, std::slice::from_ref(src));
    }

    /// Emit a constant `f64`.
    pub fn const_f64(&mut self, c: f64) -> Var {
        self.emit(Prim::ConstF64(c), &[])
    }

    /// Emit a constant `i64`.
    pub fn const_i64(&mut self, c: i64) -> Var {
        self.emit(Prim::ConstI64(c), &[])
    }

    /// Emit a constant `bool`.
    pub fn const_bool(&mut self, c: bool) -> Var {
        self.emit(Prim::ConstBool(c), &[])
    }

    /// Emit a call `outs = callee(ins)` into named output variables.
    pub fn call_into(&mut self, outs: &[Var], callee: FuncId, ins: &[Var]) {
        self.emit_op(Op::Call {
            outs: outs.to_vec(),
            callee,
            ins: ins.to_vec(),
        });
    }

    /// Emit a call returning `n_outs` fresh variables.
    pub fn call(&mut self, callee: FuncId, ins: &[Var], n_outs: usize) -> Vec<Var> {
        let outs: Vec<Var> = (0..n_outs).map(|_| self.fresh("r")).collect();
        self.call_into(&outs, callee, ins);
        outs
    }

    fn terminate(&mut self, t: Terminator) {
        let (_, term) = &mut self.blocks[self.current];
        assert!(term.is_none(), "block b{} already terminated", self.current);
        *term = Some(t);
    }

    /// Terminate the current block with an unconditional jump.
    ///
    /// # Panics
    ///
    /// Panics if the current block is already terminated.
    pub fn jump(&mut self, target: BlockId) {
        self.terminate(Terminator::Jump(target));
    }

    /// Terminate the current block with a branch.
    ///
    /// # Panics
    ///
    /// Panics if the current block is already terminated.
    pub fn branch(&mut self, cond: &Var, then_: BlockId, else_: BlockId) {
        self.terminate(Terminator::Branch {
            cond: cond.clone(),
            then_,
            else_,
        });
    }

    /// Terminate the current block with a return.
    ///
    /// # Panics
    ///
    /// Panics if the current block is already terminated.
    pub fn ret(&mut self) {
        self.terminate(Terminator::Return);
    }

    /// Structured two-armed conditional. Both arms run with the builder
    /// positioned in a fresh block and must *not* terminate it themselves;
    /// control re-converges in a fresh join block, which becomes current.
    pub fn if_else(
        &mut self,
        cond: &Var,
        then_arm: impl FnOnce(&mut FunctionBuilder),
        else_arm: impl FnOnce(&mut FunctionBuilder),
    ) {
        let tb = self.new_block();
        let eb = self.new_block();
        let join = self.new_block();
        self.branch(cond, tb, eb);
        self.switch_to(tb);
        then_arm(self);
        self.jump(join);
        self.switch_to(eb);
        else_arm(self);
        self.jump(join);
        self.switch_to(join);
    }

    /// Structured while loop. `header` computes and returns the loop
    /// condition (re-evaluated each iteration); `body` is the loop body.
    /// Neither closure may terminate its block. After the call the builder
    /// is positioned in the loop-exit block.
    pub fn while_loop(
        &mut self,
        header: impl FnOnce(&mut FunctionBuilder) -> Var,
        body: impl FnOnce(&mut FunctionBuilder),
    ) {
        let hb = self.new_block();
        let bb = self.new_block();
        let xb = self.new_block();
        self.jump(hb);
        self.switch_to(hb);
        let cond = header(self);
        self.branch(&cond, bb, xb);
        self.switch_to(bb);
        body(self);
        self.jump(hb);
        self.switch_to(xb);
    }

    fn into_function(self) -> Function {
        let blocks: Vec<Block> = self
            .blocks
            .into_iter()
            .enumerate()
            .map(|(i, (ops, term))| Block {
                ops,
                term: term.unwrap_or_else(|| panic!("block b{i} of `{}` unterminated", self.name)),
            })
            .collect();
        Function {
            name: self.name,
            params: self.params,
            blocks,
            outputs: self.outputs,
        }
    }
}

/// Build the recursive Fibonacci program of the paper's Figures 1 and 3:
///
/// ```text
/// def fibonacci(n):
///     if n <= 1: return 1
///     else: return fibonacci(n - 2) + fibonacci(n - 1)
/// ```
///
/// Used pervasively in tests and examples.
pub fn fibonacci_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let fib = pb.declare("fibonacci", &["n"], &["out"]);
    pb.define(fib, |f| {
        let n = f.param(0);
        let out = f.output(0);
        let one = f.const_i64(1);
        let cond = f.emit(Prim::Le, &[n.clone(), one.clone()]);
        f.if_else(
            &cond,
            |f| {
                let one = f.const_i64(1);
                f.copy(&f.output(0), &one);
            },
            |f| {
                let two = f.const_i64(2);
                let n2 = f.emit(Prim::Sub, &[n.clone(), two]);
                let left = Var::new("left");
                f.call_into(std::slice::from_ref(&left), fib, &[n2]);
                let one = f.const_i64(1);
                let n1 = f.emit(Prim::Sub, &[n.clone(), one]);
                let right = Var::new("right");
                f.call_into(std::slice::from_ref(&right), fib, &[n1]);
                f.assign(&f.output(0), Prim::Add, &[left, right]);
            },
        );
        let _ = out;
        f.ret();
    });
    pb.finish(fib).expect("fibonacci program is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_program() {
        let p = fibonacci_program();
        p.validate().unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert!(p.funcs[0].blocks.len() >= 4, "if/else produces blocks");
    }

    #[test]
    fn if_else_converges() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("abs", &["x"], &["y"]);
        pb.define(f, |fb| {
            let x = fb.param(0);
            let zero = fb.const_f64(0.0);
            let neg = fb.emit(Prim::Lt, &[x.clone(), zero]);
            fb.if_else(
                &neg,
                |fb| {
                    let x = fb.param(0);
                    fb.assign(&fb.output(0), Prim::Neg, &[x]);
                },
                |fb| {
                    let x = fb.param(0);
                    fb.copy(&fb.output(0), &x);
                },
            );
            fb.ret();
        });
        pb.finish(f).unwrap();
    }

    #[test]
    fn while_loop_builds_header_body_exit() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("count", &["n"], &["i"]);
        pb.define(f, |fb| {
            let n = fb.param(0);
            let i = fb.output(0);
            let zero = fb.const_i64(0);
            fb.copy(&i, &zero);
            fb.while_loop(
                |fb| fb.emit(Prim::Lt, &[fb.output(0), fb.param(0)]),
                |fb| {
                    let one = fb.const_i64(1);
                    fb.assign(&fb.output(0), Prim::Add, &[fb.output(0), one]);
                },
            );
            let _ = (n, i);
            fb.ret();
        });
        let p = pb.finish(f).unwrap();
        // Entry + header + body + exit.
        assert_eq!(p.funcs[0].blocks.len(), 4);
    }

    #[test]
    fn undeclared_definition_missing_is_error() {
        let mut pb = ProgramBuilder::new();
        let a = pb.declare("a", &[], &["x"]);
        let _b = pb.declare("b", &[], &["x"]);
        pb.define(a, |fb| {
            let c = fb.const_f64(0.0);
            fb.copy(&fb.output(0), &c);
            fb.ret();
        });
        assert!(pb.finish(a).is_err());
    }

    #[test]
    #[should_panic(expected = "terminated")]
    fn emitting_after_terminator_panics() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("f", &[], &["x"]);
        pb.define(f, |fb| {
            let c = fb.const_f64(0.0);
            fb.copy(&fb.output(0), &c);
            fb.ret();
            fb.const_f64(1.0); // after return: panic
        });
    }

    #[test]
    fn fresh_vars_are_unique() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("f", &[], &["x"]);
        pb.define(f, |fb| {
            let a = fb.fresh("v");
            let b = fb.fresh("v");
            assert_ne!(a, b);
            let c = fb.const_f64(0.0);
            fb.copy(&fb.output(0), &c);
            fb.ret();
        });
    }

    #[test]
    fn mutual_recursion_declares_before_define() {
        // is_even / is_odd on non-negative integers.
        let mut pb = ProgramBuilder::new();
        let even = pb.declare("is_even", &["n"], &["r"]);
        let odd = pb.declare("is_odd", &["n"], &["r"]);
        pb.define(even, |fb| {
            let n = fb.param(0);
            let zero = fb.const_i64(0);
            let base = fb.emit(Prim::EqE, &[n.clone(), zero]);
            fb.if_else(
                &base,
                |fb| {
                    let t = fb.const_bool(true);
                    fb.copy(&fb.output(0), &t);
                },
                |fb| {
                    let one = fb.const_i64(1);
                    let m = fb.emit(Prim::Sub, &[fb.param(0), one]);
                    let r = fb.call(odd, &[m], 1);
                    fb.copy(&fb.output(0), &r[0]);
                },
            );
            fb.ret();
        });
        pb.define(odd, |fb| {
            let n = fb.param(0);
            let zero = fb.const_i64(0);
            let base = fb.emit(Prim::EqE, &[n.clone(), zero]);
            fb.if_else(
                &base,
                |fb| {
                    let t = fb.const_bool(false);
                    fb.copy(&fb.output(0), &t);
                },
                |fb| {
                    let one = fb.const_i64(1);
                    let m = fb.emit(Prim::Sub, &[fb.param(0), one]);
                    let r = fb.call(even, &[m], 1);
                    fb.copy(&fb.output(0), &r[0]);
                },
            );
            fb.ret();
        });
        let p = pb.finish(even).unwrap();
        assert_eq!(p.funcs.len(), 2);
    }
}
