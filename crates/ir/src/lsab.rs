//! The locally-batchable control-flow-graph language (paper Figure 2).
//!
//! A [`Program`] is a list of [`Function`]s; each function is a list of
//! basic [`Block`]s of [`Op`]s ended by a [`Terminator`]. Ops are either
//! [`Op::Prim`] (an opaque batched kernel) or [`Op::Call`] (a possibly
//! recursive call to another function in the program). This is the n-ary
//! generalization of the paper's unary grammar.
//!
//! Functions return by `Return`; the values returned are the function's
//! declared `outputs` variables, read at the point of return.

use std::collections::BTreeSet;

use crate::error::{IrError, Result};
use crate::prim::Prim;
use crate::var::{BlockId, FuncId, Var};

/// An operation within a basic block.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `outs = prim(ins)` — an opaque batched kernel.
    Prim {
        /// Output variables, one per primitive output.
        outs: Vec<Var>,
        /// The primitive.
        prim: Prim,
        /// Input variables.
        ins: Vec<Var>,
    },
    /// `outs = callee(ins)` — a function call, batched by the runtime.
    Call {
        /// Output variables, one per callee output.
        outs: Vec<Var>,
        /// The function being called.
        callee: FuncId,
        /// Argument variables, one per callee parameter.
        ins: Vec<Var>,
    },
}

impl Op {
    /// Variables read by this op.
    pub fn reads(&self) -> &[Var] {
        match self {
            Op::Prim { ins, .. } | Op::Call { ins, .. } => ins,
        }
    }

    /// Variables written by this op.
    pub fn writes(&self) -> &[Var] {
        match self {
            Op::Prim { outs, .. } | Op::Call { outs, .. } => outs,
        }
    }
}

/// How a basic block ends.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump to a block of the same function.
    Jump(BlockId),
    /// Two-way branch on a boolean scalar variable.
    Branch {
        /// The condition variable (dtype `bool`, one scalar per member).
        cond: Var,
        /// Target when the condition is true.
        then_: BlockId,
        /// Target when the condition is false.
        else_: BlockId,
    },
    /// Return from the function (the function's `outputs` variables carry
    /// the results).
    Return,
}

impl Terminator {
    /// Blocks this terminator can transfer control to.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch { then_, else_, .. } => vec![*then_, *else_],
            Terminator::Return => vec![],
        }
    }
}

/// A basic block: straight-line ops plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The ops, executed in order.
    pub ops: Vec<Op>,
    /// The terminator.
    pub term: Terminator,
}

/// One function: parameters, body blocks (entry is block 0), outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (for diagnostics and variable mangling).
    pub name: String,
    /// Parameter variables, assigned on entry.
    pub params: Vec<Var>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Output variables, read at `Return`.
    pub outputs: Vec<Var>,
}

impl Function {
    /// All variables mentioned anywhere in the function (params, outputs,
    /// op operands, branch conditions), in sorted order.
    pub fn all_vars(&self) -> Vec<Var> {
        let mut set: BTreeSet<Var> = BTreeSet::new();
        set.extend(self.params.iter().cloned());
        set.extend(self.outputs.iter().cloned());
        for b in &self.blocks {
            for op in &b.ops {
                set.extend(op.reads().iter().cloned());
                set.extend(op.writes().iter().cloned());
            }
            if let Terminator::Branch { cond, .. } = &b.term {
                set.insert(cond.clone());
            }
        }
        set.into_iter().collect()
    }
}

/// A whole locally-batchable program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The functions. Calls refer to these by index.
    pub funcs: Vec<Function>,
    /// The entry function, invoked on the batch inputs.
    pub entry: FuncId,
}

impl Program {
    /// Look up a function.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::BadFunc`] if the id is out of range.
    pub fn func(&self, id: FuncId) -> Result<&Function> {
        self.funcs.get(id.0).ok_or(IrError::BadFunc {
            func: id,
            len: self.funcs.len(),
        })
    }

    /// Look up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<(FuncId, &Function)> {
        self.funcs
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i), f))
    }

    /// The entry function.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::BadFunc`] if the entry id is out of range.
    pub fn entry_func(&self) -> Result<&Function> {
        self.func(self.entry)
    }

    /// Validate structural well-formedness:
    ///
    /// - the entry id and all call targets are in range;
    /// - every function has at least one block;
    /// - all jump/branch targets are in range;
    /// - primitive arities match operand counts;
    /// - call argument/result counts match the callee's signature;
    /// - no variable is read before it is definitely assigned (forward
    ///   dataflow, parameters assigned on entry).
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<()> {
        if self.funcs.is_empty() {
            return Err(IrError::NoEntry);
        }
        self.func(self.entry)?;
        for (fi, f) in self.funcs.iter().enumerate() {
            let fid = FuncId(fi);
            if f.blocks.is_empty() {
                return Err(IrError::EmptyFunction { func: fid });
            }
            for (bi, b) in f.blocks.iter().enumerate() {
                for op in &b.ops {
                    self.validate_op(fid, BlockId(bi), op)?;
                }
                for s in b.term.successors() {
                    if s.0 >= f.blocks.len() {
                        return Err(IrError::BadBlock {
                            func: Some(fid),
                            block: s,
                            len: f.blocks.len(),
                        });
                    }
                }
            }
            self.validate_assignment(fid, f)?;
        }
        Ok(())
    }

    fn validate_op(&self, fid: FuncId, bid: BlockId, op: &Op) -> Result<()> {
        match op {
            Op::Prim { outs, prim, ins } => {
                if let Some(a) = prim.arity() {
                    if ins.len() != a.ins {
                        return Err(IrError::BadArity {
                            what: format!("{fid}/{bid}: inputs of `{prim}`"),
                            expected: a.ins,
                            got: ins.len(),
                        });
                    }
                    if outs.len() != a.outs {
                        return Err(IrError::BadArity {
                            what: format!("{fid}/{bid}: outputs of `{prim}`"),
                            expected: a.outs,
                            got: outs.len(),
                        });
                    }
                }
                Ok(())
            }
            Op::Call { outs, callee, ins } => {
                let g = self.func(*callee)?;
                if ins.len() != g.params.len() {
                    return Err(IrError::BadCall {
                        callee: *callee,
                        what: format!("expected {} arguments, got {}", g.params.len(), ins.len()),
                    });
                }
                if outs.len() != g.outputs.len() {
                    return Err(IrError::BadCall {
                        callee: *callee,
                        what: format!("expected {} results, got {}", g.outputs.len(), outs.len()),
                    });
                }
                Ok(())
            }
        }
    }

    /// Definite-assignment analysis: forward dataflow computing, for each
    /// block, the set of variables assigned on *every* path reaching it.
    fn validate_assignment(&self, fid: FuncId, f: &Function) -> Result<()> {
        let n = f.blocks.len();
        // assigned_in[b]: vars definitely assigned at entry of b.
        // None = unreached so far (top).
        let mut at_entry: Vec<Option<BTreeSet<Var>>> = vec![None; n];
        at_entry[0] = Some(f.params.iter().cloned().collect());
        let mut work = vec![BlockId(0)];
        while let Some(b) = work.pop() {
            let mut cur = at_entry[b.0].clone().expect("scheduled blocks are reached");
            let block = &f.blocks[b.0];
            for op in &block.ops {
                // Reads checked against the running set below (second pass);
                // here we just accumulate writes.
                cur.extend(op.writes().iter().cloned());
            }
            for s in block.term.successors() {
                let updated = match &at_entry[s.0] {
                    None => {
                        at_entry[s.0] = Some(cur.clone());
                        true
                    }
                    Some(prev) => {
                        let meet: BTreeSet<Var> = prev.intersection(&cur).cloned().collect();
                        if &meet != prev {
                            at_entry[s.0] = Some(meet);
                            true
                        } else {
                            false
                        }
                    }
                };
                if updated {
                    work.push(s);
                }
            }
        }
        // Second pass: check every read against the fixed point.
        for (bi, block) in f.blocks.iter().enumerate() {
            let Some(entry_set) = &at_entry[bi] else {
                continue; // unreachable block: reads are vacuously fine
            };
            let mut cur = entry_set.clone();
            for op in &block.ops {
                for r in op.reads() {
                    if !cur.contains(r) {
                        return Err(IrError::UnassignedRead {
                            var: r.clone(),
                            func: Some(fid),
                            block: BlockId(bi),
                        });
                    }
                }
                cur.extend(op.writes().iter().cloned());
            }
            if let Terminator::Branch { cond, .. } = &block.term {
                if !cur.contains(cond) {
                    return Err(IrError::UnassignedRead {
                        var: cond.clone(),
                        func: Some(fid),
                        block: BlockId(bi),
                    });
                }
            }
            if matches!(block.term, Terminator::Return) {
                for o in &f.outputs {
                    if !cur.contains(o) {
                        return Err(IrError::UnassignedRead {
                            var: o.clone(),
                            func: Some(fid),
                            block: BlockId(bi),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Var {
        Var::new(s)
    }

    /// fn double(x) { y = x + x; return y }
    fn double_program() -> Program {
        Program {
            funcs: vec![Function {
                name: "double".into(),
                params: vec![v("x")],
                blocks: vec![Block {
                    ops: vec![Op::Prim {
                        outs: vec![v("y")],
                        prim: Prim::Add,
                        ins: vec![v("x"), v("x")],
                    }],
                    term: Terminator::Return,
                }],
                outputs: vec![v("y")],
            }],
            entry: FuncId(0),
        }
    }

    #[test]
    fn valid_program_passes() {
        double_program().validate().unwrap();
    }

    #[test]
    fn empty_program_rejected() {
        let p = Program {
            funcs: vec![],
            entry: FuncId(0),
        };
        assert_eq!(p.validate(), Err(IrError::NoEntry));
    }

    #[test]
    fn bad_jump_target_rejected() {
        let mut p = double_program();
        p.funcs[0].blocks[0].term = Terminator::Jump(BlockId(5));
        assert!(matches!(p.validate(), Err(IrError::BadBlock { .. })));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut p = double_program();
        p.funcs[0].blocks[0].ops[0] = Op::Prim {
            outs: vec![v("y")],
            prim: Prim::Add,
            ins: vec![v("x")],
        };
        assert!(matches!(p.validate(), Err(IrError::BadArity { .. })));
    }

    #[test]
    fn unassigned_read_rejected() {
        let mut p = double_program();
        p.funcs[0].blocks[0].ops[0] = Op::Prim {
            outs: vec![v("y")],
            prim: Prim::Add,
            ins: vec![v("x"), v("z")],
        };
        assert!(matches!(p.validate(), Err(IrError::UnassignedRead { .. })));
    }

    #[test]
    fn unassigned_output_rejected() {
        let mut p = double_program();
        p.funcs[0].outputs = vec![v("missing")];
        assert!(matches!(p.validate(), Err(IrError::UnassignedRead { .. })));
    }

    #[test]
    fn branch_join_requires_both_paths_to_assign() {
        // b0: branch c -> b1 | b2 ; b1: y=1 jump b3 ; b2: jump b3 ; b3: return y.
        let f = Function {
            name: "partial".into(),
            params: vec![v("c")],
            blocks: vec![
                Block {
                    ops: vec![],
                    term: Terminator::Branch {
                        cond: v("c"),
                        then_: BlockId(1),
                        else_: BlockId(2),
                    },
                },
                Block {
                    ops: vec![Op::Prim {
                        outs: vec![v("y")],
                        prim: Prim::ConstF64(1.0),
                        ins: vec![],
                    }],
                    term: Terminator::Jump(BlockId(3)),
                },
                Block {
                    ops: vec![],
                    term: Terminator::Jump(BlockId(3)),
                },
                Block {
                    ops: vec![],
                    term: Terminator::Return,
                },
            ],
            outputs: vec![v("y")],
        };
        let p = Program {
            funcs: vec![f],
            entry: FuncId(0),
        };
        assert!(matches!(p.validate(), Err(IrError::UnassignedRead { .. })));
    }

    #[test]
    fn call_arity_checked() {
        let mut p = double_program();
        p.funcs.push(Function {
            name: "caller".into(),
            params: vec![v("a")],
            blocks: vec![Block {
                ops: vec![Op::Call {
                    outs: vec![v("r"), v("s")],
                    callee: FuncId(0),
                    ins: vec![v("a")],
                }],
                term: Terminator::Return,
            }],
            outputs: vec![v("r")],
        });
        assert!(matches!(p.validate(), Err(IrError::BadCall { .. })));
    }

    #[test]
    fn all_vars_collects_everything() {
        let p = double_program();
        let vars = p.funcs[0].all_vars();
        assert_eq!(vars, vec![v("x"), v("y")]);
    }

    #[test]
    fn func_by_name() {
        let p = double_program();
        assert_eq!(p.func_by_name("double").unwrap().0, FuncId(0));
        assert!(p.func_by_name("nope").is_none());
    }
}
