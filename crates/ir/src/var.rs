//! Variable names and program entity identifiers.

use std::fmt;
use std::sync::Arc;

/// A program variable name.
///
/// Variables are storage locations, not SSA values: the same `Var` may be
/// assigned on several control-flow paths (that is what lets divergent
/// branches re-converge without phi nodes, as in the paper's Figure 2
/// language). `Var` is a cheaply clonable interned string.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(Arc<str>);

impl Var {
    /// Create a variable with the given name.
    pub fn new(name: impl AsRef<str>) -> Var {
        Var(Arc::from(name.as_ref()))
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Var {
        Var::new(s)
    }
}

impl From<String> for Var {
    fn from(s: String) -> Var {
        Var::new(s)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Index of a basic block within a function (or within the merged
/// program-counter-batchable program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub usize);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Index of a function within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub usize);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn vars_compare_by_name() {
        let a = Var::new("x");
        let b = Var::from("x");
        let c = Var::from("y".to_string());
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&b));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Var::new("theta").to_string(), "theta");
        assert_eq!(BlockId(3).to_string(), "b3");
        assert_eq!(FuncId(0).to_string(), "f0");
    }
}
