//! The ingress wire protocol: length-prefixed frames carrying a tiny
//! binary request/response encoding.
//!
//! Everything is hand-rolled on `std` — no serde, no async runtime —
//! in the same spirit as the vendored crates.io stand-ins elsewhere in
//! this workspace. The protocol is deliberately minimal:
//!
//! ```text
//! frame    := len:u32le payload[len]          (len <= MAX_FRAME_LEN)
//! payload  := request | response | reject | cancel
//! request  := 0x01 id:u64le seed:u64le n:u16le tensor*n
//! response := 0x02 id:u64le queued_ticks:u64le n:u16le tensor*n
//! reject   := 0x03 id:u64le code:u8 a:u64le b:u64le mlen:u32le msg[mlen]
//! cancel   := 0x06 id:u64le
//! tensor   := dtype:u8 rank:u16le dim:u64le*rank elems
//! ```
//!
//! Tensor elements are little-endian: `f64` as IEEE-754 bit patterns,
//! `i64` two's-complement, `bool` one byte (`0`/`1`). Dtype tags are
//! `0 = f64`, `1 = i64`, `2 = bool`. For a reject, `a`/`b` are
//! code-specific operands (queue depth and budget for
//! [`RejectCode::Overloaded`], zero otherwise).
//!
//! Exact bit patterns on the wire are what make the golden digests of
//! the in-process path (`crates/serve/tests/golden_outputs.rs`) carry
//! over to the TCP route unchanged: encode/decode is a bijection on
//! tensor bits, so serving over ingress cannot perturb a single bit.

use std::fmt;
use std::io::{self, Read, Write};

use autobatch_tensor::{DType, Data, Tensor};

/// Hard cap on a single frame's payload, to bound what a malformed or
/// hostile length prefix can make the server allocate.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

const MSG_REQUEST: u8 = 0x01;
const MSG_RESPONSE: u8 = 0x02;
const MSG_REJECT: u8 = 0x03;
const MSG_CANCEL: u8 = 0x06;

const DT_F64: u8 = 0;
const DT_I64: u8 = 1;
const DT_BOOL: u8 = 2;

/// A malformed payload: bad tag, truncated field, oversized count, or
/// a tensor that fails shape validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

/// Why the server refused a request (the `code` byte of a reject
/// frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCode {
    /// Load shed: the ingress queue is at its budget. `a`/`b` carry the
    /// observed depth and the configured budget.
    Overloaded = 1,
    /// The request cannot be served (arity mismatch, undecodable
    /// payload, unexpected message type).
    BadRequest = 2,
    /// The request was accepted but lost to a server-side execution
    /// error.
    Internal = 3,
    /// The server is shutting down and will not serve this request.
    Shutdown = 4,
    /// The request decoded fine but violates the served program's
    /// statically inferred signature (wrong dtype or element shape):
    /// it could never execute, so it is refused before touching any
    /// machine state. Distinct from [`RejectCode::BadRequest`], which
    /// covers undecodable or structurally malformed traffic.
    Invalid = 5,
    /// The served program's quarantine breaker is open: its requests
    /// repeatedly blew their resource budgets, so the server
    /// fast-rejects at admission until the cooldown elapses and a
    /// half-open probe succeeds.
    Quarantined = 6,
    /// The request ran but exceeded a per-request resource ceiling
    /// (supersteps, deadline, or peak memory): its lane was evicted at
    /// a superstep boundary. `a`/`b` carry the spend and the limit.
    OverBudget = 7,
    /// The request was cancelled — by a `0x06` cancel frame or by its
    /// connection disconnecting — before it completed.
    Cancelled = 8,
}

impl RejectCode {
    fn from_u8(x: u8) -> Result<RejectCode, ProtocolError> {
        match x {
            1 => Ok(RejectCode::Overloaded),
            2 => Ok(RejectCode::BadRequest),
            3 => Ok(RejectCode::Internal),
            4 => Ok(RejectCode::Shutdown),
            5 => Ok(RejectCode::Invalid),
            6 => Ok(RejectCode::Quarantined),
            7 => Ok(RejectCode::OverBudget),
            8 => Ok(RejectCode::Cancelled),
            other => Err(ProtocolError(format!("unknown reject code {other}"))),
        }
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Caller-chosen request id, echoed on the response.
    pub id: u64,
    /// RNG seed for the request's lane (see `autobatch_serve::Request`).
    pub seed: u64,
    /// Program inputs.
    pub inputs: Vec<Tensor>,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResponse {
    /// The id of the request this answers.
    pub id: u64,
    /// Wall-clock nanoseconds the request spent queued at the ingress:
    /// from its arrival at the server to the moment its batch was
    /// handed to the execution fleet.
    pub queued_ticks: u64,
    /// Program outputs, bit-exact as computed.
    pub outputs: Vec<Tensor>,
}

/// A decoded reject frame: the typed refusal for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireReject {
    /// The id of the refused request (0 when no request was decodable).
    pub id: u64,
    /// Why it was refused.
    pub code: RejectCode,
    /// Queue depth at rejection ([`RejectCode::Overloaded`] only).
    pub depth: u64,
    /// Configured queue budget ([`RejectCode::Overloaded`] only).
    pub budget: u64,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for WireReject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.code {
            RejectCode::Overloaded => write!(
                f,
                "request {} overloaded: queue depth {} at budget {}",
                self.id, self.depth, self.budget
            ),
            RejectCode::BadRequest => {
                write!(f, "request {} rejected: {}", self.id, self.message)
            }
            RejectCode::Internal => {
                write!(
                    f,
                    "request {} failed server-side: {}",
                    self.id, self.message
                )
            }
            RejectCode::Shutdown => {
                write!(
                    f,
                    "request {} refused: server shutting down ({})",
                    self.id, self.message
                )
            }
            RejectCode::Invalid => {
                write!(
                    f,
                    "request {} statically invalid: {}",
                    self.id, self.message
                )
            }
            RejectCode::Quarantined => {
                write!(f, "request {} quarantined: {}", self.id, self.message)
            }
            RejectCode::OverBudget => {
                write!(
                    f,
                    "request {} over budget ({} against limit {}): {}",
                    self.id, self.depth, self.budget, self.message
                )
            }
            RejectCode::Cancelled => {
                write!(f, "request {} cancelled: {}", self.id, self.message)
            }
        }
    }
}

/// Any message the protocol can carry.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server.
    Request(WireRequest),
    /// Server → client, success.
    Response(WireResponse),
    /// Server → client, typed refusal.
    Reject(WireReject),
    /// Client → server: cooperatively cancel the named in-flight
    /// request. Acknowledged with a [`RejectCode::Cancelled`] reject
    /// once the lane is evicted (or ignored if the id already
    /// completed — the response wins the race).
    Cancel(u64),
}

/// Write one frame: a `u32` little-endian length prefix, then the
/// payload, then flush.
///
/// # Errors
///
/// `InvalidInput` if the payload exceeds [`MAX_FRAME_LEN`]; otherwise
/// whatever the underlying writer reports.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("frame of {} bytes exceeds MAX_FRAME_LEN", payload.len()),
            )
        })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Incremental frame reassembly over a byte stream.
///
/// TCP delivers bytes, not frames; a read can also time out mid-frame
/// when the socket has a read timeout (the ingress connection threads
/// use one to poll their stop flag). `FrameReader` buffers partial
/// input across calls so neither split writes nor timeouts lose bytes.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// A reader with no buffered input.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Block until one full frame is available and return its payload.
    ///
    /// Returns `Ok(None)` on clean EOF at a frame boundary. Timeouts
    /// (`WouldBlock` / `TimedOut`) propagate as errors with any partial
    /// input retained — call again to resume.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` if the stream ends mid-frame, `InvalidData` on
    /// an oversized length prefix, and any underlying I/O error.
    pub fn next_frame(&mut self, r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
        loop {
            if let Some(frame) = self.take_buffered()? {
                return Ok(Some(frame));
            }
            let mut chunk = [0u8; 16 * 1024];
            match r.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "stream ended mid-frame",
                        ))
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e),
            }
        }
    }

    fn take_buffered(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds MAX_FRAME_LEN"),
            ));
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let frame = self.buf[4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(frame))
    }
}

/// Encode a request payload (no frame prefix; pair with
/// [`write_frame`]).
///
/// # Errors
///
/// If the request has more than `u16::MAX` inputs or a tensor is not
/// encodable (rank over `u16::MAX`).
pub fn encode_request(id: u64, seed: u64, inputs: &[Tensor]) -> Result<Vec<u8>, ProtocolError> {
    let mut out = vec![MSG_REQUEST];
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&seed.to_le_bytes());
    put_tensor_list(&mut out, inputs)?;
    Ok(out)
}

/// Encode a response payload.
///
/// # Errors
///
/// As [`encode_request`].
pub fn encode_response(
    id: u64,
    queued_ticks: u64,
    outputs: &[Tensor],
) -> Result<Vec<u8>, ProtocolError> {
    let mut out = vec![MSG_RESPONSE];
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&queued_ticks.to_le_bytes());
    put_tensor_list(&mut out, outputs)?;
    Ok(out)
}

/// Encode a cancel payload: the client-side request to stop an
/// in-flight request's lane.
pub fn encode_cancel(id: u64) -> Vec<u8> {
    let mut out = vec![MSG_CANCEL];
    out.extend_from_slice(&id.to_le_bytes());
    out
}

/// Encode a reject payload. Always succeeds: the message is truncated
/// to `u32::MAX` bytes (in practice a sentence).
pub fn encode_reject(reject: &WireReject) -> Vec<u8> {
    let mut out = vec![MSG_REJECT];
    out.extend_from_slice(&reject.id.to_le_bytes());
    out.push(reject.code as u8);
    out.extend_from_slice(&reject.depth.to_le_bytes());
    out.extend_from_slice(&reject.budget.to_le_bytes());
    let msg = reject.message.as_bytes();
    let mlen = u32::try_from(msg.len()).unwrap_or(u32::MAX) as usize;
    out.extend_from_slice(&(mlen as u32).to_le_bytes());
    out.extend_from_slice(&msg[..mlen]);
    out
}

/// Decode one payload into a typed [`Message`].
///
/// # Errors
///
/// [`ProtocolError`] on any malformed input: unknown tag, truncated
/// field, trailing garbage, or an undecodable tensor.
pub fn decode(payload: &[u8]) -> Result<Message, ProtocolError> {
    let mut c = Cursor::new(payload);
    let tag = c.u8()?;
    let msg = match tag {
        MSG_REQUEST => {
            let id = c.u64()?;
            let seed = c.u64()?;
            let inputs = c.tensor_list()?;
            Message::Request(WireRequest { id, seed, inputs })
        }
        MSG_RESPONSE => {
            let id = c.u64()?;
            let queued_ticks = c.u64()?;
            let outputs = c.tensor_list()?;
            Message::Response(WireResponse {
                id,
                queued_ticks,
                outputs,
            })
        }
        MSG_REJECT => {
            let id = c.u64()?;
            let code = RejectCode::from_u8(c.u8()?)?;
            let depth = c.u64()?;
            let budget = c.u64()?;
            let mlen = c.u32()? as usize;
            let message = String::from_utf8(c.bytes(mlen)?.to_vec())
                .map_err(|_| ProtocolError("reject message is not UTF-8".into()))?;
            Message::Reject(WireReject {
                id,
                code,
                depth,
                budget,
                message,
            })
        }
        MSG_CANCEL => Message::Cancel(c.u64()?),
        other => return Err(ProtocolError(format!("unknown message tag {other:#04x}"))),
    };
    c.finish()?;
    Ok(msg)
}

fn put_tensor_list(out: &mut Vec<u8>, tensors: &[Tensor]) -> Result<(), ProtocolError> {
    let n = u16::try_from(tensors.len())
        .map_err(|_| ProtocolError(format!("{} tensors exceed the u16 count", tensors.len())))?;
    out.extend_from_slice(&n.to_le_bytes());
    for t in tensors {
        put_tensor(out, t)?;
    }
    Ok(())
}

fn put_tensor(out: &mut Vec<u8>, t: &Tensor) -> Result<(), ProtocolError> {
    out.push(match t.dtype() {
        DType::F64 => DT_F64,
        DType::I64 => DT_I64,
        DType::Bool => DT_BOOL,
    });
    let rank = u16::try_from(t.shape().len())
        .map_err(|_| ProtocolError(format!("rank {} exceeds u16", t.shape().len())))?;
    out.extend_from_slice(&rank.to_le_bytes());
    for &d in t.shape() {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    match t.data() {
        Data::F64(v) => v
            .iter()
            .for_each(|x| out.extend_from_slice(&x.to_bits().to_le_bytes())),
        Data::I64(v) => v
            .iter()
            .for_each(|x| out.extend_from_slice(&x.to_le_bytes())),
        Data::Bool(v) => v.iter().for_each(|&x| out.push(u8::from(x))),
    }
    Ok(())
}

/// A bounds-checked reader over a payload slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| ProtocolError("payload truncated".into()))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn tensor_list(&mut self) -> Result<Vec<Tensor>, ProtocolError> {
        let n = self.u16()? as usize;
        (0..n).map(|_| self.tensor()).collect()
    }

    fn tensor(&mut self) -> Result<Tensor, ProtocolError> {
        let dtype = match self.u8()? {
            DT_F64 => DType::F64,
            DT_I64 => DType::I64,
            DT_BOOL => DType::Bool,
            other => return Err(ProtocolError(format!("unknown dtype tag {other}"))),
        };
        let rank = self.u16()? as usize;
        let mut shape = Vec::with_capacity(rank);
        let mut volume: usize = 1;
        for _ in 0..rank {
            let d = usize::try_from(self.u64()?)
                .map_err(|_| ProtocolError("dimension exceeds usize".into()))?;
            volume = volume
                .checked_mul(d)
                .ok_or_else(|| ProtocolError("tensor volume overflows".into()))?;
            shape.push(d);
        }
        // The element payload must actually be present before any
        // allocation of `volume` elements is attempted.
        let elem = dtype.size_bytes();
        let need = volume
            .checked_mul(elem)
            .filter(|&n| n <= self.buf.len() - self.pos)
            .ok_or_else(|| ProtocolError("tensor data truncated".into()))?;
        let raw = self.bytes(need)?;
        let data = match dtype {
            DType::F64 => Data::F64(
                raw.chunks_exact(8)
                    .map(|b| {
                        f64::from_bits(u64::from_le_bytes([
                            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
                        ]))
                    })
                    .collect(),
            ),
            DType::I64 => Data::I64(
                raw.chunks_exact(8)
                    .map(|b| i64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
                    .collect(),
            ),
            DType::Bool => Data::Bool(raw.iter().map(|&b| b != 0).collect()),
        };
        Tensor::new(data, &shape).map_err(|e| ProtocolError(format!("bad tensor: {e}")))
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tensors() -> Vec<Tensor> {
        vec![
            Tensor::from_f64(&[1.5, -0.0, f64::INFINITY, 3.25e-300], &[2, 2]).unwrap(),
            Tensor::from_i64(&[i64::MIN, -1, 0, 7], &[4]).unwrap(),
            Tensor::from_bool(&[true, false, true], &[3]).unwrap(),
        ]
    }

    #[test]
    fn request_roundtrips_bit_exact() {
        let payload = encode_request(42, 0xdead_beef, &sample_tensors()).unwrap();
        match decode(&payload).unwrap() {
            Message::Request(r) => {
                assert_eq!(r.id, 42);
                assert_eq!(r.seed, 0xdead_beef);
                assert_eq!(r.inputs, sample_tensors());
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn response_roundtrips_including_nan_bits() {
        // A quiet NaN with a nonstandard payload must survive: the
        // encoding is on bit patterns, not float values.
        let nan = f64::from_bits(0x7ff8_0000_dead_beef);
        let t = Tensor::from_f64(&[nan], &[1]).unwrap();
        let payload = encode_response(7, 1234, std::slice::from_ref(&t)).unwrap();
        match decode(&payload).unwrap() {
            Message::Response(r) => {
                assert_eq!(r.id, 7);
                assert_eq!(r.queued_ticks, 1234);
                let got = r.outputs[0].as_f64().unwrap();
                assert_eq!(got[0].to_bits(), nan.to_bits());
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn reject_roundtrips() {
        let rej = WireReject {
            id: 9,
            code: RejectCode::Overloaded,
            depth: 12,
            budget: 8,
            message: "overloaded: queue depth 12 at budget 8".into(),
        };
        let payload = encode_reject(&rej);
        assert_eq!(decode(&payload).unwrap(), Message::Reject(rej));
    }

    #[test]
    fn cancel_roundtrips() {
        let payload = encode_cancel(0xfeed_f00d);
        assert_eq!(decode(&payload).unwrap(), Message::Cancel(0xfeed_f00d));
        // Truncated id and trailing garbage are typed errors.
        assert!(decode(&payload[..5]).is_err());
        let mut extended = payload;
        extended.push(0);
        assert!(decode(&extended).is_err());
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        // Unknown tag.
        assert!(decode(&[0x7f]).is_err());
        // Truncated request.
        let payload = encode_request(1, 2, &sample_tensors()).unwrap();
        assert!(decode(&payload[..payload.len() - 1]).is_err());
        // Trailing garbage.
        let mut extended = payload.clone();
        extended.push(0);
        assert!(decode(&extended).is_err());
        // Bad dtype tag inside a tensor.
        let mut bad = payload;
        // tag(1) + id(8) + seed(8) + count(2) = 19 → first dtype byte.
        bad[19] = 0x44;
        assert!(decode(&bad).is_err());
        // A huge claimed volume with no data behind it must not
        // allocate or panic.
        let mut huge = vec![MSG_REQUEST];
        huge.extend_from_slice(&1u64.to_le_bytes());
        huge.extend_from_slice(&1u64.to_le_bytes());
        huge.extend_from_slice(&1u16.to_le_bytes());
        huge.push(DT_F64);
        huge.extend_from_slice(&1u16.to_le_bytes());
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode(&huge).is_err());
    }

    #[test]
    fn frames_reassemble_across_split_reads() {
        let payload = encode_request(3, 4, &sample_tensors()).unwrap();
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        write_frame(&mut framed, &payload).unwrap();
        // Deliver the byte stream one byte at a time.
        struct Trickle<'a>(&'a [u8]);
        impl Read for Trickle<'_> {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if self.0.is_empty() || out.is_empty() {
                    return Ok(0);
                }
                out[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let mut r = FrameReader::new();
        let mut src = Trickle(&framed);
        assert_eq!(r.next_frame(&mut src).unwrap(), Some(payload.clone()));
        assert_eq!(r.next_frame(&mut src).unwrap(), Some(payload));
        assert_eq!(r.next_frame(&mut src).unwrap(), None);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let mut r = FrameReader::new();
        let err = r.next_frame(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let payload = encode_request(1, 1, &[]).unwrap();
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        framed.truncate(framed.len() - 1);
        let mut r = FrameReader::new();
        let err = r.next_frame(&mut framed.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
