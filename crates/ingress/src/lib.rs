//! A dependency-free TCP front door for the sharded autobatching
//! server: the "real ingress" that keeps the program-counter VM's
//! batches full while bounding how long any one request waits to join.
//!
//! # Architecture
//!
//! ```text
//! clients ──TCP──▶ connection threads ──mpsc──▶ engine thread
//!    ▲  (length-prefixed frames, wire.rs)          │ collect until the
//!    │                                             │ batch fills or the
//!    └───────────── response frames ◀──────────────┘ oldest request's
//!                                                    deadline expires,
//!                                                    then drive the
//!                                                    ShardedServer
//! ```
//!
//! - **Thread-per-connection** readers decode [`wire`] frames and
//!   forward requests to the engine over a channel. There is no async
//!   runtime: blocking reads with a short timeout double as the
//!   shutdown poll.
//! - The **engine thread** owns the program and a [`ShardedServer`]
//!   configured with
//!   [`AdmissionPolicy::Deadline`]: it collects arrivals until they can
//!   fill every lane (`workers × max_batch`) **or** the oldest arrival
//!   has waited [`IngressConfig::max_wait`] — OpenVINO-style auto-batch
//!   collection — then stamps the virtual clock from the real clock
//!   (nanosecond ticks) and runs the batch to completion.
//! - **Backpressure**: with [`IngressConfig::queue_budget`] set, a
//!   request arriving while `budget × workers` are already waiting is
//!   refused immediately with a typed
//!   [`Overloaded`](wire::RejectCode::Overloaded) reject frame carrying
//!   the observed depth and the budget — the wire image of
//!   `ServeError::Overloaded`. The budget is enforced at the
//!   *connection* threads through a shared counter covering both the
//!   channel and the engine's collection buffer, so a burst arriving
//!   while the engine is mid-flush is shed right away instead of piling
//!   up unboundedly in the channel until the flush returns.
//! - **Self-healing**: the engine drives the fleet through a
//!   [`Supervisor`]: a worker panic or injected execution fault poisons
//!   one shard, which is salvaged and respawned while its stranded work
//!   retries under a bounded budget. Requests that cannot be saved are
//!   answered with typed reject frames — a client never loses a request
//!   to a silent hang.
//! - **Chaos**: the [`autobatch_chaos::FaultPlan`] inside
//!   [`IngressConfig::opts`] also drives wire-level fault injection at
//!   the connection threads (corrupted bytes, truncated frames), keyed
//!   by a per-connection frame counter so every run replays exactly
//!   from the seed.
//!
//! Determinism note: batch composition depends on real arrival times,
//! but per-request results do not — lanes draw RNG under the request
//! seed, so responses are bit-identical to the in-process path however
//! arrivals interleave (the golden-digest tests pin this over TCP).

#![warn(missing_docs)]

pub mod wire;

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use autobatch_accel::Backend;
use autobatch_chaos::{FaultPlan, FaultPoint};
use autobatch_core::{ExecOptions, KernelRegistry, VmError};
use autobatch_ir::pcab::Program;
use autobatch_serve::{
    AdmissionPolicy, Outcome, Request, RequestBudget, Response, SchedulingPolicy, ServeError,
    ShardedServer, Supervisor, SupervisorConfig,
};
use autobatch_tensor::Tensor;

use wire::{
    FrameReader, Message, ProtocolError, RejectCode, WireReject, WireRequest, WireResponse,
};

/// How often blocked threads wake to poll the stop flag / deadline.
const POLL: Duration = Duration::from_millis(10);

/// Errors surfaced by the ingress client and server entry points.
#[derive(Debug)]
pub enum IngressError {
    /// Socket-level failure.
    Io(io::Error),
    /// The peer sent a malformed frame.
    Protocol(ProtocolError),
    /// The server refused the request (typed reject frame).
    Rejected(WireReject),
    /// The connection closed before a reply arrived.
    Closed,
    /// The server configuration is unusable.
    Config(String),
}

impl fmt::Display for IngressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngressError::Io(e) => write!(f, "io error: {e}"),
            IngressError::Protocol(e) => write!(f, "{e}"),
            IngressError::Rejected(r) => write!(f, "{r}"),
            IngressError::Closed => write!(f, "connection closed"),
            IngressError::Config(what) => write!(f, "bad ingress config: {what}"),
        }
    }
}

impl std::error::Error for IngressError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngressError::Io(e) => Some(e),
            IngressError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IngressError {
    fn from(e: io::Error) -> IngressError {
        IngressError::Io(e)
    }
}

impl From<ProtocolError> for IngressError {
    fn from(e: ProtocolError) -> IngressError {
        IngressError::Protocol(e)
    }
}

/// Configuration for [`IngressServer::start`].
#[derive(Debug, Clone)]
pub struct IngressConfig {
    /// Worker shards (each owns a `BatchServer` + `PcMachine`).
    pub workers: usize,
    /// Per-shard batch capacity (lanes).
    pub max_batch: usize,
    /// The latency SLO knob: a partially filled batch launches once its
    /// oldest request has waited this long.
    pub max_wait: Duration,
    /// Per-shard queue budget. When `workers × budget` requests are
    /// already waiting, new arrivals are shed with a typed
    /// [`Overloaded`](wire::RejectCode::Overloaded) reject instead of
    /// queueing unboundedly. `None` disables shedding.
    pub queue_budget: Option<usize>,
    /// Cost-model backend each shard's trace prices against.
    pub backend: Backend,
    /// VM execution options for every shard.
    pub opts: ExecOptions,
    /// Kernel registry for the served program.
    pub registry: KernelRegistry,
    /// How the fleet routes and rebalances work across shards. The
    /// default is least-loaded; [`SchedulingPolicy::PcAffinity`] packs
    /// shards by program counter, migrates stragglers, and steals work
    /// for idle shards — results and response order are unchanged
    /// either way.
    pub scheduling: SchedulingPolicy,
    /// Per-request resource ceilings enforced at every superstep
    /// boundary: max supersteps, virtual-clock deadline, peak lane
    /// bytes. An over-budget lane is evicted mid-flight and answered
    /// with a typed [`OverBudget`](wire::RejectCode::OverBudget)
    /// reject while its batchmates keep running bit-identically. The
    /// default is unlimited.
    pub budget: RequestBudget,
    /// Retry and quarantine discipline for the engine's [`Supervisor`]
    /// (repeated budget blowups trip the program's breaker, which
    /// fast-rejects with
    /// [`Quarantined`](wire::RejectCode::Quarantined)).
    pub supervisor: SupervisorConfig,
}

impl Default for IngressConfig {
    fn default() -> IngressConfig {
        IngressConfig {
            workers: 2,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_budget: None,
            backend: Backend::hybrid_cpu(),
            opts: ExecOptions::default(),
            registry: KernelRegistry::new(),
            scheduling: SchedulingPolicy::default(),
            budget: RequestBudget::unlimited(),
            supervisor: SupervisorConfig::default(),
        }
    }
}

/// Lifetime counters reported by [`IngressHandle::shutdown`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IngressStats {
    /// Responses delivered.
    pub completed: u64,
    /// Requests shed at the front door (queue budget).
    pub shed: u64,
    /// Requests refused for malformed or unservable content.
    pub rejected: u64,
    /// Accepted requests lost to server-side execution errors.
    pub failed: u64,
    /// Frames that arrived malformed (undecodable payloads and
    /// non-request messages), each answered with a typed
    /// [`BadRequest`](wire::RejectCode::BadRequest) reject.
    pub bad_frames: u64,
    /// Retry attempts the supervisor performed on behalf of accepted
    /// requests (stranded, lost, or admission-faulted work).
    pub retried: u64,
    /// Shards respawned after a poisoning error or worker panic.
    pub respawned: u64,
    /// Deepest the engine's collection buffer ever got.
    pub peak_buffered: usize,
    /// Deepest any shard's admission queue ever got.
    pub peak_queue: usize,
    /// Requests cancelled before completion — by a `0x06` cancel frame
    /// or a client disconnect — whether still buffered or already in
    /// flight (lane evicted at a superstep boundary).
    pub cancelled: u64,
    /// Requests evicted for blowing a per-request resource budget
    /// (supersteps, deadline, or peak memory), answered with
    /// [`OverBudget`](wire::RejectCode::OverBudget).
    pub over_budget: u64,
    /// Requests fast-rejected because the served program's quarantine
    /// breaker was open.
    pub quarantined: u64,
}

/// A running ingress server; dropping it (or calling
/// [`IngressHandle::shutdown`]) stops the listener, drains in-flight
/// work, and joins every thread.
#[derive(Debug)]
pub struct IngressHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    listener: Option<JoinHandle<()>>,
    engine: Option<JoinHandle<IngressStats>>,
}

impl IngressHandle {
    /// The bound address (useful with a `:0` ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain buffered work, join all threads, and
    /// return the lifetime counters.
    pub fn shutdown(mut self) -> IngressStats {
        self.join().unwrap_or_default()
    }

    fn join(&mut self) -> Option<IngressStats> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(l) = self.listener.take() {
            let _ = l.join();
        }
        self.engine.take().and_then(|e| e.join().ok())
    }
}

impl Drop for IngressHandle {
    fn drop(&mut self) {
        self.join();
    }
}

/// The fleet-wide admission gate shared by the connection threads and
/// the engine. It bounds how many decoded requests may wait anywhere
/// between a TCP reader and batch admission — the mpsc channel plus the
/// engine's collection buffer — so the configured budget holds even
/// while the engine is blocked inside a flush: excess arrivals are shed
/// at the connection instead of accumulating in the unbounded channel.
#[derive(Debug)]
struct Gate {
    /// Requests decoded but not yet handed to the batch server.
    queued: AtomicUsize,
    /// `queue_budget × workers`; `None` disables shedding.
    budget: Option<usize>,
    /// Requests shed at the front door, over the server's lifetime.
    shed: AtomicU64,
    /// Malformed frames refused at the connection threads.
    bad_frames: AtomicU64,
}

impl Gate {
    fn new(budget: Option<usize>) -> Gate {
        Gate {
            queued: AtomicUsize::new(0),
            budget,
            shed: AtomicU64::new(0),
            bad_frames: AtomicU64::new(0),
        }
    }

    /// Reserve a slot for one decoded request. `Err(depth)` means the
    /// budget is hit: the slot is not taken and the request must be
    /// shed. The reserve-then-check shape keeps the bound exact under
    /// concurrent connections.
    fn admit(&self) -> Result<(), usize> {
        let prev = self.queued.fetch_add(1, Ordering::SeqCst);
        match self.budget {
            Some(budget) if prev >= budget => {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                self.shed.fetch_add(1, Ordering::Relaxed);
                Err(prev)
            }
            _ => Ok(()),
        }
    }

    /// Give back `n` slots once their requests reach the batch server
    /// (or are refused at submission).
    fn release(&self, n: usize) {
        self.queued.fetch_sub(n, Ordering::SeqCst);
    }
}

/// The TCP front-end: binds a listener and serves `program` behind
/// deadline-driven batch admission.
#[derive(Debug)]
pub struct IngressServer;

impl IngressServer {
    /// Bind `addr` and start serving `program` under `config`.
    ///
    /// The returned handle owns three kinds of threads: one acceptor,
    /// one reader per connection, and one engine that owns the program
    /// and the [`ShardedServer`]. All are joined on shutdown/drop.
    ///
    /// # Errors
    ///
    /// [`IngressError::Config`] for unusable parameters (zero workers
    /// or batch, zero `max_wait`); [`IngressError::Io`] if the bind
    /// fails.
    pub fn start(
        program: Program,
        config: IngressConfig,
        addr: impl ToSocketAddrs,
    ) -> Result<IngressHandle, IngressError> {
        if config.workers == 0 {
            return Err(IngressError::Config("workers must be positive".into()));
        }
        if config.max_wait.is_zero() {
            return Err(IngressError::Config("max_wait must be positive".into()));
        }
        deadline_policy(&config)
            .validate()
            .map_err(|e| IngressError::Config(e.to_string()))?;
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(Gate::new(
            config
                .queue_budget
                .map(|b| b.saturating_mul(config.workers).max(1)),
        ));
        let (tx, rx) = std::sync::mpsc::channel::<Arrival>();
        let fault = config.opts.fault;
        let engine_cfg = config.clone();
        let engine_gate = Arc::clone(&gate);
        let engine_stop = Arc::clone(&stop);
        let engine = std::thread::spawn(move || {
            // Containment: an engine panic must not strand the listener
            // and its connections forever. Flag the stop so they wind
            // down; clients see closed sockets, not a hang.
            catch_unwind(AssertUnwindSafe(|| {
                engine_loop(&program, &engine_cfg, &rx, &engine_gate)
            }))
            .unwrap_or_else(|_| {
                engine_stop.store(true, Ordering::Relaxed);
                IngressStats::default()
            })
        });
        let stop2 = Arc::clone(&stop);
        let acceptor =
            std::thread::spawn(move || listener_loop(&listener, &tx, &stop2, &gate, fault));
        Ok(IngressHandle {
            addr: local,
            stop,
            listener: Some(acceptor),
            engine: Some(engine),
        })
    }
}

fn deadline_policy(config: &IngressConfig) -> AdmissionPolicy {
    AdmissionPolicy::Deadline {
        max_batch: config.max_batch,
        // Real time maps onto the virtual clock as nanosecond ticks.
        max_wait: u64::try_from(config.max_wait.as_nanos()).unwrap_or(u64::MAX),
    }
}

/// One event in flight from a connection thread to the engine.
enum Arrival {
    /// A decoded request.
    Request {
        conn: Arc<Mutex<TcpStream>>,
        request: WireRequest,
        at: Instant,
    },
    /// A `0x06` cancel frame: stop the named request, if this
    /// connection owns one by that id.
    Cancel { client_id: u64, token: usize },
    /// The connection died mid-conversation (EOF or socket error, not
    /// server shutdown): every request it still has pending is
    /// abandoned work — stop burning the fleet on it.
    Disconnect { token: usize },
}

/// Identity of one connection, for matching cancels and disconnects to
/// the requests that arrived on it. The `Arc` is per-connection and
/// outlives every use of the token (each pending request holds a
/// clone), so the pointer cannot be reused while a token is live.
fn conn_token(conn: &Arc<Mutex<TcpStream>>) -> usize {
    Arc::as_ptr(conn) as usize
}

/// A request admitted by the gate, waiting in the engine's collection
/// buffer for the next flush. Cancels and disconnects are resolved on
/// receipt, so only requests are ever buffered.
struct Buffered {
    conn: Arc<Mutex<TcpStream>>,
    request: WireRequest,
    at: Instant,
}

fn listener_loop(
    listener: &TcpListener,
    tx: &Sender<Arrival>,
    stop: &Arc<AtomicBool>,
    gate: &Arc<Gate>,
    fault: FaultPlan,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        // Reap finished connection threads as we go: a long-lived server
        // accepting many short connections must not grow `conns` (and
        // retain thread resources) without bound until shutdown.
        let mut i = 0;
        while i < conns.len() {
            if conns[i].is_finished() {
                let _ = conns.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let tx = tx.clone();
                let stop = Arc::clone(stop);
                let gate = Arc::clone(gate);
                conns.push(std::thread::spawn(move || {
                    connection_loop(stream, &tx, &stop, &gate, fault);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => break,
        }
    }
    for c in conns {
        let _ = c.join();
    }
    // `tx` (and every connection's clone) is dropped here; the engine
    // sees the channel disconnect, drains, and exits.
}

fn connection_loop(
    mut stream: TcpStream,
    tx: &Sender<Arrival>,
    stop: &Arc<AtomicBool>,
    gate: &Gate,
    fault: FaultPlan,
) {
    // The read timeout doubles as the stop-flag poll; FrameReader keeps
    // partial input across timeouts.
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    // A client that stops reading must not wedge the engine: replies go
    // out under a bounded write stall, after which that reply is the
    // slow reader's loss.
    if let Ok(w) = writer.lock() {
        let _ = w.set_write_timeout(Some(Duration::from_secs(1)));
    }
    // Containment: a panic in the read loop takes down this connection
    // only, never its siblings or the listener. The client gets a typed
    // refusal before the socket closes.
    let body = catch_unwind(AssertUnwindSafe(|| {
        connection_body(&mut stream, &writer, tx, stop, gate, fault)
    }));
    let client_gone = match body {
        Ok(gone) => gone,
        Err(_) => {
            send_reject(
                &writer,
                0,
                RejectCode::Internal,
                0,
                0,
                "connection handler panicked",
            );
            // The socket closes when this thread exits: the client
            // cannot receive anything further, so its pending work is
            // as abandoned as a disconnect's.
            true
        }
    };
    if client_gone {
        let _ = tx.send(Arrival::Disconnect {
            token: conn_token(&writer),
        });
    }
}

/// Returns whether the client went away mid-conversation (EOF, socket
/// error, injected truncation) — the cue to abandon its pending work.
fn connection_body(
    stream: &mut TcpStream,
    writer: &Arc<Mutex<TcpStream>>,
    tx: &Sender<Arrival>,
    stop: &Arc<AtomicBool>,
    gate: &Gate,
    fault: FaultPlan,
) -> bool {
    let mut reader = FrameReader::new();
    // Wire-level chaos is keyed by this connection's frame ordinal, so
    // a run replays bit-for-bit from the fault plan's seed.
    let mut frames: u64 = 0;
    while !stop.load(Ordering::Relaxed) {
        match reader.next_frame(stream) {
            Ok(Some(mut payload)) => {
                frames += 1;
                if fault.fires(FaultPoint::WireTruncate, frames) {
                    // The frame is cut off mid-stream: from the client's
                    // view the connection simply died.
                    return true;
                }
                if fault.fires(FaultPoint::WireCorrupt, frames) && !payload.is_empty() {
                    let at = fault.corrupt_offset(frames, payload.len());
                    payload[at] ^= 0x40;
                }
                match wire::decode(&payload) {
                    Ok(Message::Request(request)) => {
                        // Shed at the reader, before the channel: the budget
                        // must hold even while the engine is mid-flush.
                        if let Err(depth) = gate.admit() {
                            let budget = gate.budget.unwrap_or(0);
                            let e = ServeError::Overloaded { depth, budget };
                            send_reject(
                                writer,
                                request.id,
                                RejectCode::Overloaded,
                                depth as u64,
                                budget as u64,
                                &e.to_string(),
                            );
                            continue;
                        }
                        let arrival = Arrival::Request {
                            conn: Arc::clone(writer),
                            request,
                            at: Instant::now(),
                        };
                        if tx.send(arrival).is_err() {
                            return false; // engine is gone; nothing can be served
                        }
                    }
                    Ok(Message::Cancel(client_id)) => {
                        // Cancels bypass the gate (they free capacity,
                        // never consume it) and resolve at the engine:
                        // either a Cancelled reject or — if the request
                        // already completed — the response wins.
                        let cancel = Arrival::Cancel {
                            client_id,
                            token: conn_token(writer),
                        };
                        if tx.send(cancel).is_err() {
                            return false;
                        }
                    }
                    Ok(_) => {
                        gate.bad_frames.fetch_add(1, Ordering::Relaxed);
                        send_reject(
                            writer,
                            0,
                            RejectCode::BadRequest,
                            0,
                            0,
                            "clients may only send request or cancel frames",
                        );
                    }
                    // Framing is intact (the frame decoded as a unit), so
                    // the stream stays usable: refuse and keep reading.
                    Err(e) => {
                        gate.bad_frames.fetch_add(1, Ordering::Relaxed);
                        send_reject(writer, 0, RejectCode::BadRequest, 0, 0, &e.to_string());
                    }
                }
            }
            Ok(None) => return true, // clean EOF: the client hung up
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => return true,
        }
    }
    // Stop was requested. Frames already on the wire can no longer be
    // served: answer every decodable request with a typed Shutdown
    // reject before the socket closes, so a pipelining client gets a
    // definite refusal instead of a silent EOF.
    while let Ok(Some(payload)) = reader.next_frame(stream) {
        if let Ok(Message::Request(request)) = wire::decode(&payload) {
            send_reject(
                writer,
                request.id,
                RejectCode::Shutdown,
                0,
                0,
                "server stopped before this request could be admitted",
            );
        }
    }
    // A clean shutdown is the server's choice, not the client's exit:
    // pending work drains normally, so no disconnect is signalled.
    false
}

fn send_reject(
    conn: &Arc<Mutex<TcpStream>>,
    id: u64,
    code: RejectCode,
    depth: u64,
    budget: u64,
    message: &str,
) {
    let payload = wire::encode_reject(&WireReject {
        id,
        code,
        depth,
        budget,
        message: message.to_string(),
    });
    if let Ok(mut w) = conn.lock() {
        let _ = wire::write_frame(&mut *w, &payload);
    }
}

/// An accepted request waiting for its batch to complete.
struct Pending {
    conn: Arc<Mutex<TcpStream>>,
    client_id: u64,
    /// When the request arrived at its connection thread; the wall-clock
    /// epoch of the queue wait reported to the client.
    at: Instant,
}

fn engine_loop(
    program: &Program,
    config: &IngressConfig,
    rx: &Receiver<Arrival>,
    gate: &Gate,
) -> IngressStats {
    let mut fleet = ShardedServer::new(
        program,
        config.registry.clone(),
        config.opts,
        deadline_policy(config),
        config.workers,
        config.backend,
    )
    .expect("config validated by IngressServer::start");
    fleet.set_scheduling(config.scheduling);
    // The supervisor owns fault recovery: worker panics and injected
    // execution faults poison one shard, which is respawned and its
    // work retried — the flush below never sees a wedged fleet. It also
    // owns governance: per-request budgets bound every lane, and the
    // quarantine breaker fast-rejects programs that keep blowing them.
    let mut server = Supervisor::new(fleet, config.supervisor);
    server.set_budget(config.budget);
    let capacity = config.workers.saturating_mul(config.max_batch);
    let epoch = Instant::now();
    let ticks = |t: Instant| {
        u64::try_from(t.saturating_duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
    };

    let mut stats = IngressStats::default();
    let mut buf: VecDeque<Buffered> = VecDeque::new();
    let mut next_eid: u64 = 0;
    let mut disconnected = false;
    loop {
        if !disconnected {
            // Sleep until the next arrival, the head-of-line deadline,
            // or the poll tick, whichever is first.
            let timeout = buf
                .front()
                .map(|a| {
                    (a.at + config.max_wait)
                        .saturating_duration_since(Instant::now())
                        .min(POLL)
                })
                .unwrap_or(POLL);
            match rx.recv_timeout(timeout) {
                Ok(a) => accept(a, &mut buf, gate, &mut stats),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => disconnected = true,
            }
            while let Ok(a) = rx.try_recv() {
                accept(a, &mut buf, gate, &mut stats);
            }
        }
        let full = buf.len() >= capacity;
        let expired = buf
            .front()
            .is_some_and(|a| a.at.elapsed() >= config.max_wait);
        if !buf.is_empty() && (full || expired || disconnected) {
            flush(
                &mut server,
                &mut buf,
                rx,
                &mut next_eid,
                &ticks,
                gate,
                &mut stats,
            );
        }
        if disconnected && buf.is_empty() {
            break;
        }
    }
    stats.shed = gate.shed.load(Ordering::Relaxed);
    stats.bad_frames = gate.bad_frames.load(Ordering::Relaxed);
    stats.retried = server.retries();
    stats.respawned = server.respawns();
    stats.peak_queue = server.inner().peak_pending();
    stats
}

/// Fold one arrival into the collection buffer. Shedding already
/// happened at the connection thread ([`Gate::admit`]), so every
/// request that reaches the engine is within budget. Cancels and
/// disconnects resolve immediately against the buffer: a matched
/// request is answered with [`RejectCode::Cancelled`] and its gate slot
/// freed, while a cancel that matches nothing lost its race — the
/// request already flushed and has been (or will be) answered — and is
/// dropped. Per-connection channel FIFO guarantees a cancel is never
/// accepted before the request it names.
fn accept(arrival: Arrival, buf: &mut VecDeque<Buffered>, gate: &Gate, stats: &mut IngressStats) {
    match arrival {
        Arrival::Request { conn, request, at } => {
            buf.push_back(Buffered { conn, request, at });
            stats.peak_buffered = stats.peak_buffered.max(buf.len());
        }
        Arrival::Cancel { client_id, token } => {
            let hit = buf
                .iter()
                .position(|b| b.request.id == client_id && conn_token(&b.conn) == token);
            if let Some(i) = hit {
                let b = buf.remove(i).expect("position came from this buffer");
                gate.release(1);
                send_reject(
                    &b.conn,
                    client_id,
                    RejectCode::Cancelled,
                    0,
                    0,
                    "cancelled by the caller before admission",
                );
                stats.cancelled += 1;
            }
        }
        Arrival::Disconnect { token } => {
            // The client is gone: nobody will read these replies, so
            // the buffered requests are dropped without an answer.
            let before = buf.len();
            buf.retain(|b| conn_token(&b.conn) != token);
            let dropped = before - buf.len();
            gate.release(dropped);
            stats.cancelled += dropped as u64;
        }
    }
}

/// Submit everything collected so far and drive the supervised fleet to
/// quiescence, answering every request's terminal outcome on its
/// connection.
#[allow(clippy::too_many_arguments)]
fn flush(
    server: &mut Supervisor<'_>,
    buf: &mut VecDeque<Buffered>,
    rx: &Receiver<Arrival>,
    next_eid: &mut u64,
    ticks: &dyn Fn(Instant) -> u64,
    gate: &Gate,
    stats: &mut IngressStats,
) {
    // Requests are renumbered with engine-unique ids so ids chosen by
    // different connections cannot collide inside the server; the
    // client's id is restored on the reply.
    let mut outstanding: HashMap<u64, Pending> = HashMap::new();
    let drained = buf.len();
    for Buffered { conn, request, at } in buf.drain(..) {
        let eid = *next_eid;
        *next_eid += 1;
        // Stamp the queue entry at its real arrival time so the shards'
        // deadline admission sees the wait the client actually incurred.
        server.set_clock(ticks(at));
        let client_id = request.id;
        let submitted = server.submit(Request {
            id: eid,
            seed: request.seed,
            inputs: request.inputs,
        });
        match submitted {
            Ok(()) => {
                outstanding.insert(
                    eid,
                    Pending {
                        conn,
                        client_id,
                        at,
                    },
                );
            }
            Err(e) => {
                // The submission error is this request's terminal
                // outcome. Refusals map to their wire image; an
                // admission fault that outlasted the supervisor's retry
                // budget is the server's fault, not the request's. A
                // signature violation gets its own code: the frame was
                // well-formed, but the payload can never execute under
                // the served program's statically inferred signature.
                // A quarantined program is fast-rejected before it can
                // touch the fleet at all.
                let code = match &e {
                    ServeError::Overloaded { .. } => RejectCode::Overloaded,
                    ServeError::RetriesExhausted { .. } => RejectCode::Internal,
                    ServeError::InvalidRequest(_) => RejectCode::Invalid,
                    ServeError::Quarantined { .. } => RejectCode::Quarantined,
                    _ => RejectCode::BadRequest,
                };
                send_reject(&conn, client_id, code, 0, 0, &e.to_string());
                match code {
                    RejectCode::Internal => stats.failed += 1,
                    RejectCode::Quarantined => stats.quarantined += 1,
                    _ => stats.rejected += 1,
                }
            }
        }
    }
    gate.release(drained);
    server.set_clock(ticks(Instant::now()));
    // The instant the fleet takes over: the wall-clock end of every
    // request's queue wait (see `deliver`).
    let admitted = Instant::now();
    // The supervisor heals as it drives: poisoned shards are respawned,
    // their stranded and lost work retried under a bounded budget, and
    // every submitted request resolves to exactly one terminal outcome.
    // Arrivals landing while the fleet runs are folded in live through
    // the poll hook: a cancel or disconnect naming an in-flight request
    // evicts its lane at the next superstep boundary; everything else
    // is stashed and re-buffered after the run.
    let mut stash: Vec<Arrival> = Vec::new();
    let outcomes = {
        let mut hook =
            || -> Vec<u64> {
                let mut evict: Vec<u64> = Vec::new();
                while let Ok(a) = rx.try_recv() {
                    match a {
                        Arrival::Cancel { client_id, token } => {
                            let hit = outstanding.iter().find(|(_, p)| {
                                p.client_id == client_id && conn_token(&p.conn) == token
                            });
                            match hit {
                                Some((&eid, _)) => evict.push(eid),
                                // The named request is not in this flight:
                                // it may be sitting in the stash, so the
                                // cancel re-enters admission behind it.
                                None => stash.push(Arrival::Cancel { client_id, token }),
                            }
                        }
                        Arrival::Disconnect { token } => {
                            evict.extend(outstanding.iter().filter_map(|(&eid, p)| {
                                (conn_token(&p.conn) == token).then_some(eid)
                            }));
                            // Re-stashed so it also purges any requests the
                            // dead connection left in the stash.
                            stash.push(Arrival::Disconnect { token });
                        }
                        a @ Arrival::Request { .. } => stash.push(a),
                    }
                }
                evict
            };
        server.run_until_quiescent_with(&mut hook)
    };
    for outcome in outcomes {
        match outcome {
            Outcome::Done(r) => deliver(vec![r], &mut outstanding, admitted, stats),
            Outcome::Failed { id, error } => {
                let Some(p) = outstanding.remove(&id) else {
                    continue;
                };
                // Admission errors name the request as the offender,
                // and governance verdicts carry their spend/limit pair
                // onto the wire; anything else (step-limit exhaustion,
                // a retry budget burned on panics or exec faults) is
                // the server's fault, not the request's.
                let (code, a, b) = match &error {
                    ServeError::Vm(VmError::BadInputs { .. }) => (RejectCode::BadRequest, 0, 0),
                    ServeError::BudgetExceeded { spent, limit } => {
                        (RejectCode::OverBudget, *spent, *limit)
                    }
                    ServeError::DeadlineExceeded { elapsed, deadline } => {
                        (RejectCode::OverBudget, *elapsed, *deadline)
                    }
                    ServeError::MemoryExceeded { bytes, limit } => {
                        (RejectCode::OverBudget, *bytes, *limit)
                    }
                    ServeError::Cancelled => (RejectCode::Cancelled, 0, 0),
                    _ => (RejectCode::Internal, 0, 0),
                };
                send_reject(&p.conn, p.client_id, code, a, b, &error.to_string());
                match code {
                    RejectCode::BadRequest => stats.rejected += 1,
                    RejectCode::OverBudget => stats.over_budget += 1,
                    RejectCode::Cancelled => stats.cancelled += 1,
                    _ => stats.failed += 1,
                }
            }
        }
    }
    if !outstanding.is_empty() {
        // Unreachable under the supervisor's exactly-one-outcome
        // contract; answered defensively so no client ever hangs.
        for (_, p) in outstanding.drain() {
            send_reject(
                &p.conn,
                p.client_id,
                RejectCode::Internal,
                0,
                0,
                "request lost",
            );
            stats.failed += 1;
        }
    }
    // Re-admit what the hook stashed, in arrival order: a stashed
    // cancel lands after the stashed request it names (per-connection
    // FIFO), and a disconnect purges whatever its connection left
    // behind.
    for a in stash {
        accept(a, buf, gate, stats);
    }
}

fn deliver(
    responses: Vec<Response>,
    outstanding: &mut HashMap<u64, Pending>,
    admitted: Instant,
    stats: &mut IngressStats,
) {
    for r in responses {
        let Some(p) = outstanding.remove(&r.id) else {
            continue;
        };
        // The queue wait reported to the client is wall-clock: TCP
        // arrival to the instant this flush handed the batch to the
        // fleet. The server's own `queued_ticks` is not used here — its
        // virtual clock can run ahead of real time after a deadline
        // fast-forward, which would distort later stamps.
        let queued =
            u64::try_from(admitted.saturating_duration_since(p.at).as_nanos()).unwrap_or(u64::MAX);
        if let Ok(payload) = wire::encode_response(p.client_id, queued, &r.outputs) {
            if let Ok(mut w) = p.conn.lock() {
                // A vanished client is its own problem; the work is done.
                let _ = wire::write_frame(&mut *w, &payload);
            }
        }
        stats.completed += 1;
    }
}

/// A minimal blocking client for the ingress protocol.
///
/// Supports pipelining: [`IngressClient::send`] any number of requests,
/// then [`IngressClient::recv`] the replies (reply order follows batch
/// completion, not send order — match on [`WireResponse::id`]).
#[derive(Debug)]
pub struct IngressClient {
    stream: TcpStream,
    reader: FrameReader,
}

impl IngressClient {
    /// Connect to a running [`IngressServer`].
    ///
    /// # Errors
    ///
    /// Any socket-level connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<IngressClient, IngressError> {
        Ok(IngressClient {
            stream: TcpStream::connect(addr)?,
            reader: FrameReader::new(),
        })
    }

    /// Send one request frame without waiting for the reply.
    ///
    /// # Errors
    ///
    /// Encoding or socket failures.
    pub fn send(&mut self, id: u64, seed: u64, inputs: &[Tensor]) -> Result<(), IngressError> {
        let payload = wire::encode_request(id, seed, inputs)?;
        wire::write_frame(&mut self.stream, &payload)?;
        Ok(())
    }

    /// Block for the next reply frame.
    ///
    /// # Errors
    ///
    /// [`IngressError::Rejected`] when the server refused a request,
    /// [`IngressError::Closed`] on EOF, and protocol/socket failures.
    pub fn recv(&mut self) -> Result<WireResponse, IngressError> {
        let payload = self
            .reader
            .next_frame(&mut self.stream)?
            .ok_or(IngressError::Closed)?;
        match wire::decode(&payload)? {
            Message::Response(r) => Ok(r),
            Message::Reject(r) => Err(IngressError::Rejected(r)),
            Message::Request(_) | Message::Cancel(_) => Err(IngressError::Protocol(ProtocolError(
                "server sent a client-only frame".into(),
            ))),
        }
    }

    /// Ask the server to stop a previously sent request.
    /// Fire-and-forget: the eventual reply for `id` is either
    /// a [`RejectCode::Cancelled`] reject or — if the request finished
    /// first — its normal response; completion always wins the race.
    ///
    /// # Errors
    ///
    /// Socket failures.
    pub fn cancel(&mut self, id: u64) -> Result<(), IngressError> {
        let payload = wire::encode_cancel(id);
        wire::write_frame(&mut self.stream, &payload)?;
        Ok(())
    }

    /// Send one request and block for one reply — the simple RPC shape.
    ///
    /// # Errors
    ///
    /// As [`IngressClient::send`] and [`IngressClient::recv`].
    pub fn call(
        &mut self,
        id: u64,
        seed: u64,
        inputs: &[Tensor],
    ) -> Result<WireResponse, IngressError> {
        self.send(id, seed, inputs)?;
        self.recv()
    }
}
