//! End-to-end tests over real loopback TCP: correctness, pipelining,
//! deadline-bounded waits, load shedding, and malformed-input handling.

use std::time::{Duration, Instant};

use autobatch_core::{lower, LoweringOptions};
use autobatch_ingress::wire::{self, RejectCode};
use autobatch_ingress::{IngressClient, IngressConfig, IngressError, IngressServer};
use autobatch_ir::build::fibonacci_program;
use autobatch_tensor::Tensor;

fn fib_server(config: IngressConfig) -> autobatch_ingress::IngressHandle {
    let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
    IngressServer::start(pc, config, "127.0.0.1:0").unwrap()
}

const NS: [i64; 10] = [14, 2, 9, 1, 12, 5, 16, 3, 10, 7];
const FIB: [i64; 10] = [610, 2, 55, 1, 233, 8, 1597, 3, 89, 21];

#[test]
fn pipelined_requests_are_served_correctly_over_tcp() {
    let handle = fib_server(IngressConfig {
        workers: 2,
        max_batch: 4,
        max_wait: Duration::from_millis(5),
        ..IngressConfig::default()
    });
    let mut client = IngressClient::connect(handle.addr()).unwrap();
    for (id, &n) in NS.iter().enumerate() {
        client
            .send(
                id as u64,
                id as u64,
                &[Tensor::from_i64(&[n], &[1]).unwrap()],
            )
            .unwrap();
    }
    let mut got = vec![None; NS.len()];
    for _ in 0..NS.len() {
        let r = client.recv().unwrap();
        let out = r.outputs[0].as_i64().unwrap()[0];
        got[r.id as usize] = Some(out);
    }
    let got: Vec<i64> = got.into_iter().map(Option::unwrap).collect();
    assert_eq!(got, FIB);
    let stats = handle.shutdown();
    assert_eq!(stats.completed, NS.len() as u64);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.failed, 0);
}

#[test]
fn two_connections_with_colliding_ids_each_get_their_own_answers() {
    let handle = fib_server(IngressConfig {
        workers: 1,
        max_batch: 4,
        max_wait: Duration::from_millis(5),
        ..IngressConfig::default()
    });
    let mut a = IngressClient::connect(handle.addr()).unwrap();
    let mut b = IngressClient::connect(handle.addr()).unwrap();
    // Both connections use request id 0: the engine must pair replies
    // by connection, not by the caller-chosen id.
    a.send(0, 1, &[Tensor::from_i64(&[9], &[1]).unwrap()])
        .unwrap();
    b.send(0, 2, &[Tensor::from_i64(&[12], &[1]).unwrap()])
        .unwrap();
    let ra = a.recv().unwrap();
    let rb = b.recv().unwrap();
    assert_eq!(ra.id, 0);
    assert_eq!(rb.id, 0);
    assert_eq!(ra.outputs[0].as_i64().unwrap(), &[55]);
    assert_eq!(rb.outputs[0].as_i64().unwrap(), &[233]);
    drop((a, b));
    handle.shutdown();
}

#[test]
fn a_lone_request_launches_at_the_deadline_not_never() {
    // Arrival rate far below batch width: only the deadline can admit.
    let max_wait = Duration::from_millis(40);
    let handle = fib_server(IngressConfig {
        workers: 1,
        max_batch: 8,
        max_wait,
        ..IngressConfig::default()
    });
    let mut client = IngressClient::connect(handle.addr()).unwrap();
    let t0 = Instant::now();
    let r = client
        .call(0, 0, &[Tensor::from_i64(&[9], &[1]).unwrap()])
        .unwrap();
    let elapsed = t0.elapsed();
    assert_eq!(r.outputs[0].as_i64().unwrap(), &[55]);
    // The reply cannot beat the collection deadline, and the recorded
    // queue wait is bounded by the SLO (ticks are nanoseconds; the
    // engine stamps the real arrival and admission times).
    assert!(elapsed >= max_wait, "replied after {elapsed:?}");
    let slack = Duration::from_secs(5); // scheduler noise bound
    assert!(
        r.queued_ticks >= max_wait.as_nanos() as u64
            && r.queued_ticks <= (max_wait + slack).as_nanos() as u64,
        "queued {} ticks against a {:?} SLO",
        r.queued_ticks,
        max_wait
    );
    handle.shutdown();
}

#[test]
fn overload_is_shed_with_a_typed_reject_frame() {
    // Budget 1 on one worker; a long deadline keeps the first request
    // buffered while the next two arrive and must be shed.
    let max_wait = Duration::from_millis(300);
    let handle = fib_server(IngressConfig {
        workers: 1,
        max_batch: 8,
        max_wait,
        queue_budget: Some(1),
        ..IngressConfig::default()
    });
    let mut client = IngressClient::connect(handle.addr()).unwrap();
    for id in 0..3u64 {
        client
            .send(id, id, &[Tensor::from_i64(&[5], &[1]).unwrap()])
            .unwrap();
    }
    let mut served = Vec::new();
    let mut shed = Vec::new();
    for _ in 0..3 {
        match client.recv() {
            Ok(r) => served.push(r),
            Err(IngressError::Rejected(rej)) => shed.push(rej),
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert_eq!(served.len(), 1, "exactly one request fit the budget");
    assert_eq!(served[0].outputs[0].as_i64().unwrap(), &[8]);
    assert_eq!(shed.len(), 2);
    for rej in &shed {
        assert_eq!(rej.code, RejectCode::Overloaded);
        assert_eq!(rej.budget, 1);
        assert!(rej.depth >= 1);
    }
    let stats = handle.shutdown();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.shed, 2);
}

#[test]
fn wrong_arity_is_refused_per_request_not_per_connection() {
    let handle = fib_server(IngressConfig {
        workers: 1,
        max_batch: 4,
        max_wait: Duration::from_millis(5),
        ..IngressConfig::default()
    });
    let mut client = IngressClient::connect(handle.addr()).unwrap();
    // fib takes one input; send two tensors.
    let t = Tensor::from_i64(&[3], &[1]).unwrap();
    client.send(7, 0, &[t.clone(), t.clone()]).unwrap();
    let err = client.recv().unwrap_err();
    match err {
        IngressError::Rejected(rej) => {
            assert_eq!(rej.id, 7);
            assert_eq!(rej.code, RejectCode::BadRequest);
        }
        other => panic!("unexpected: {other}"),
    }
    // The connection survives: a well-formed request still works.
    let r = client.call(8, 0, &[t]).unwrap();
    assert_eq!(r.outputs[0].as_i64().unwrap(), &[3]);
    handle.shutdown();
}

#[test]
fn statically_invalid_requests_get_an_invalid_reject_on_the_wire() {
    // A request violating the program's statically inferred signature
    // (wrong dtype or wrong element shape) is refused at *submission*
    // with the dedicated `Invalid` code — it never reaches a shard
    // machine — and the connection stays usable for valid traffic.
    let handle = fib_server(IngressConfig {
        workers: 1,
        max_batch: 4,
        max_wait: Duration::from_millis(5),
        ..IngressConfig::default()
    });
    let mut client = IngressClient::connect(handle.addr()).unwrap();
    // Correct arity, wrong element shape: fibonacci's input feeds a
    // branch condition, so its element must be scalar.
    let bad_shape = Tensor::from_i64(&[1, 2], &[1, 2]).unwrap();
    match client.call(1, 1, &[bad_shape]).unwrap_err() {
        IngressError::Rejected(rej) => {
            assert_eq!(rej.id, 1);
            assert_eq!(rej.code, RejectCode::Invalid);
        }
        other => panic!("unexpected: {other}"),
    }
    // Correct arity and shape, wrong dtype: fibonacci takes an integer.
    let bad_dtype = Tensor::from_f64(&[9.0], &[1]).unwrap();
    match client.call(2, 2, &[bad_dtype]).unwrap_err() {
        IngressError::Rejected(rej) => {
            assert_eq!(rej.id, 2);
            assert_eq!(rej.code, RejectCode::Invalid);
        }
        other => panic!("unexpected: {other}"),
    }
    // The connection survives: later well-formed requests still serve.
    for (id, n, fib) in [(3u64, 12i64, 233i64), (4, 5, 8)] {
        let r = client
            .call(id, id, &[Tensor::from_i64(&[n], &[1]).unwrap()])
            .unwrap();
        assert_eq!(
            r.outputs[0].as_i64().unwrap(),
            &[fib],
            "server wedged after the static-invalid reject"
        );
    }
    let stats = handle.shutdown();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.failed, 0);
}

#[test]
fn admission_shape_conflict_rejects_the_offender_without_wedging_the_shard() {
    // A shape-*polymorphic* program admits requests of any element
    // shape through static verification; a payload whose shape
    // conflicts with the buffers established by the shard's first
    // admission fails at *batch admission* — a recoverable error on a
    // healthy shard. The engine must drop exactly the offender
    // (answering it with a typed reject) and keep serving: left at the
    // queue head, the offender would fail admission again on every
    // later flush and permanently wedge the only worker.
    use autobatch_ir::build::ProgramBuilder;
    use autobatch_ir::Prim;
    // `y = x; repeat n times { y = y + 1 }` — the branch condition only
    // sees the scalar counter, so `x` may be any element shape.
    let mut pb = ProgramBuilder::new();
    let f = pb.declare("countup", &["n", "x"], &["y"]);
    pb.define(f, |fb| {
        let n = fb.param(0);
        let x = fb.param(1);
        let y = fb.output(0);
        fb.assign(&y, Prim::Id, &[x]);
        let zero = fb.const_i64(0);
        let i = fb.emit(Prim::Id, &[zero]);
        fb.while_loop(
            |fb| fb.emit(Prim::Lt, &[i.clone(), n.clone()]),
            |fb| {
                let one_f = fb.const_f64(1.0);
                fb.assign(&y, Prim::Add, &[y.clone(), one_f]);
                let one_i = fb.const_i64(1);
                fb.assign(&i, Prim::Add, &[i.clone(), one_i]);
            },
        );
        fb.ret();
    });
    let (pc, _) = lower(&pb.finish(f).unwrap(), LoweringOptions::default()).unwrap();
    let handle = IngressServer::start(
        pc,
        IngressConfig {
            workers: 1,
            max_batch: 4,
            max_wait: Duration::from_millis(5),
            ..IngressConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let scalar = |n: i64| {
        vec![
            Tensor::from_i64(&[n], &[1]).unwrap(),
            Tensor::from_f64(&[0.0], &[1]).unwrap(),
        ]
    };
    let mut client = IngressClient::connect(handle.addr()).unwrap();
    // First admission fixes the served payload spec to scalar rows.
    let r = client.call(0, 0, &scalar(9)).unwrap();
    assert_eq!(r.outputs[0].as_f64().unwrap(), &[9.0]);
    // Statically valid (the program is shape-polymorphic), but in
    // conflict with the established buffers: refused per-request at
    // admission.
    let offender = vec![
        Tensor::from_i64(&[3], &[1]).unwrap(),
        Tensor::from_f64(&[0.0, 0.0], &[1, 2]).unwrap(),
    ];
    match client.call(1, 1, &offender).unwrap_err() {
        IngressError::Rejected(rej) => {
            assert_eq!(rej.id, 1);
            assert_eq!(rej.code, RejectCode::BadRequest);
        }
        other => panic!("unexpected: {other}"),
    }
    // The shard is not wedged: later well-formed requests still serve.
    for (id, n) in [(2u64, 12i64), (3, 5)] {
        let r = client.call(id, id, &scalar(n)).unwrap();
        assert_eq!(
            r.outputs[0].as_f64().unwrap(),
            &[n as f64],
            "server wedged after the shape-conflict reject"
        );
    }
    let stats = handle.shutdown();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.failed, 0);
}

#[test]
fn garbage_frames_get_a_bad_request_reject() {
    let handle = fib_server(IngressConfig::default());
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    // A well-framed but undecodable payload.
    wire::write_frame(&mut stream, &[0x7f, 1, 2, 3]).unwrap();
    let mut reader = wire::FrameReader::new();
    let payload = reader.next_frame(&mut stream).unwrap().unwrap();
    match wire::decode(&payload).unwrap() {
        wire::Message::Reject(rej) => assert_eq!(rej.code, RejectCode::BadRequest),
        other => panic!("unexpected: {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn bad_configs_are_refused_at_start() {
    let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
    for config in [
        IngressConfig {
            workers: 0,
            ..IngressConfig::default()
        },
        IngressConfig {
            max_batch: 0,
            ..IngressConfig::default()
        },
        IngressConfig {
            max_wait: Duration::ZERO,
            ..IngressConfig::default()
        },
    ] {
        let err = IngressServer::start(pc.clone(), config, "127.0.0.1:0").unwrap_err();
        assert!(matches!(err, IngressError::Config(_)), "{err}");
    }
}

#[test]
fn idle_shutdown_joins_cleanly() {
    let handle = fib_server(IngressConfig::default());
    let stats = handle.shutdown();
    assert_eq!(stats.completed, 0);
}
