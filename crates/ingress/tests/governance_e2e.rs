//! Resource-governance end-to-end tests over real loopback TCP:
//! `0x06` cancel frames (buffered and in-flight), mid-flight client
//! disconnects, and runaway containment + quarantine behind the front
//! door. These pin the acceptance contract at the wire: a genuinely
//! non-terminating program alongside normal traffic is answered with a
//! typed `OverBudget` reject while batchmates complete correctly, and
//! the fleet never wedges.

use std::time::Duration;

use autobatch_core::{lower, LoweringOptions};
use autobatch_ingress::wire::RejectCode;
use autobatch_ingress::{IngressClient, IngressConfig, IngressError, IngressServer};
use autobatch_ir::build::{fibonacci_program, ProgramBuilder};
use autobatch_ir::Prim;
use autobatch_serve::{QuarantineConfig, RequestBudget, SupervisorConfig};
use autobatch_tensor::Tensor;

fn fib_server(config: IngressConfig) -> autobatch_ingress::IngressHandle {
    let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
    IngressServer::start(pc, config, "127.0.0.1:0").unwrap()
}

/// `y = x; i = 0; while i != n { y += 1.0; i += 1 }` — with `n < 0`
/// the counter can never reach the bound, so the request is genuinely
/// non-terminating in the IR, not merely slow.
fn countup_server(config: IngressConfig) -> autobatch_ingress::IngressHandle {
    let mut pb = ProgramBuilder::new();
    let f = pb.declare("countup", &["n", "x"], &["y"]);
    pb.define(f, |fb| {
        let n = fb.param(0);
        let x = fb.param(1);
        let y = fb.output(0);
        fb.assign(&y, Prim::Id, &[x]);
        let zero = fb.const_i64(0);
        let i = fb.emit(Prim::Id, &[zero]);
        let exit = fb.new_block();
        let header = fb.new_block();
        let body = fb.new_block();
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.emit(Prim::NeE, &[i.clone(), n.clone()]);
        fb.branch(&c, body, exit);
        fb.switch_to(body);
        let one_f = fb.const_f64(1.0);
        fb.assign(&y, Prim::Add, &[y.clone(), one_f]);
        let one_i = fb.const_i64(1);
        fb.assign(&i, Prim::Add, &[i.clone(), one_i]);
        fb.jump(header);
        fb.switch_to(exit);
        fb.ret();
    });
    let (pc, _) = lower(&pb.finish(f).unwrap(), LoweringOptions::default()).unwrap();
    IngressServer::start(pc, config, "127.0.0.1:0").unwrap()
}

fn countup_inputs(n: i64) -> Vec<Tensor> {
    vec![
        Tensor::from_i64(&[n], &[1]).unwrap(),
        Tensor::from_f64(&[0.0], &[1]).unwrap(),
    ]
}

#[test]
fn cancel_frame_reclaims_a_buffered_request() {
    // A long collection deadline keeps the request buffered; the cancel
    // frame must reclaim it at the front door — answered with a typed
    // Cancelled reject well before the deadline, never served.
    let handle = fib_server(IngressConfig {
        workers: 1,
        max_batch: 8,
        max_wait: Duration::from_millis(300),
        ..IngressConfig::default()
    });
    let mut client = IngressClient::connect(handle.addr()).unwrap();
    client
        .send(0, 0, &[Tensor::from_i64(&[9], &[1]).unwrap()])
        .unwrap();
    client.cancel(0).unwrap();
    match client.recv().unwrap_err() {
        IngressError::Rejected(rej) => {
            assert_eq!(rej.id, 0);
            assert_eq!(rej.code, RejectCode::Cancelled);
        }
        other => panic!("unexpected: {other}"),
    }
    // The connection survives and the shard was never touched.
    let r = client
        .call(1, 1, &[Tensor::from_i64(&[5], &[1]).unwrap()])
        .unwrap();
    assert_eq!(r.outputs[0].as_i64().unwrap(), &[8]);
    let stats = handle.shutdown();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.failed, 0);
}

#[test]
fn cancel_frame_evicts_an_in_flight_runaway_lane() {
    // No budget at all: only the cancel frame can stop this lane. The
    // engine must evict it at a superstep boundary mid-flight and keep
    // the worker serviceable.
    let handle = countup_server(IngressConfig {
        workers: 1,
        max_batch: 4,
        max_wait: Duration::from_millis(2),
        ..IngressConfig::default()
    });
    let mut client = IngressClient::connect(handle.addr()).unwrap();
    client.send(7, 7, &countup_inputs(-1)).unwrap();
    // Let the lane launch and spin; without governance this program
    // holds its worker forever.
    std::thread::sleep(Duration::from_millis(100));
    client.cancel(7).unwrap();
    match client.recv().unwrap_err() {
        IngressError::Rejected(rej) => {
            assert_eq!(rej.id, 7);
            assert_eq!(rej.code, RejectCode::Cancelled);
        }
        other => panic!("unexpected: {other}"),
    }
    // The worker is free again: a terminating request completes.
    let r = client.call(8, 8, &countup_inputs(5)).unwrap();
    assert_eq!(r.outputs[0].as_f64().unwrap(), &[5.0]);
    let stats = handle.shutdown();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.respawned, 0, "eviction must not poison the shard");
}

#[test]
fn disconnect_mid_flight_evicts_the_lane_and_leaks_nothing() {
    // A client walks away from a non-terminating request. Connection
    // teardown must evict the in-flight lane (its answer can no longer
    // be delivered) and purge the engine-side id mapping — otherwise
    // shutdown would wedge on a lane that never retires.
    let handle = countup_server(IngressConfig {
        workers: 2,
        max_batch: 4,
        max_wait: Duration::from_millis(2),
        ..IngressConfig::default()
    });
    let mut doomed = IngressClient::connect(handle.addr()).unwrap();
    doomed.send(0, 0, &countup_inputs(-1)).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    // Mid-flight disconnect. A fresh connection then reusing the same
    // caller-chosen id is served normally: the dead connection's
    // mapping is gone, not dangling.
    drop(doomed);
    let mut client = IngressClient::connect(handle.addr()).unwrap();
    let r = client.call(0, 1, &countup_inputs(3)).unwrap();
    assert_eq!(r.outputs[0].as_f64().unwrap(), &[3.0]);
    let stats = handle.shutdown();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cancelled, 1, "the abandoned request was evicted");
    assert_eq!(stats.failed, 0);
}

#[test]
fn runaway_traffic_is_contained_and_quarantined_over_tcp() {
    // The acceptance contract at the wire: a 4-worker fleet serving a
    // genuinely non-terminating program alongside normal traffic
    // answers the runaways with OverBudget (spend pinned at
    // max_supersteps + 1) while batchmates complete correctly, then
    // trips the program's quarantine breaker so later traffic is
    // fast-rejected instead of burning another budget.
    const MAX_SUPERSTEPS: u64 = 64;
    let handle = countup_server(IngressConfig {
        workers: 4,
        max_batch: 4,
        max_wait: Duration::from_millis(5),
        budget: RequestBudget {
            max_supersteps: Some(MAX_SUPERSTEPS),
            ..RequestBudget::unlimited()
        },
        supervisor: SupervisorConfig {
            quarantine: QuarantineConfig {
                trip_threshold: 2,
                decay_rounds: 10_000,
                cooldown_rounds: 10_000,
            },
            ..SupervisorConfig::default()
        },
        ..IngressConfig::default()
    });
    let mut client = IngressClient::connect(handle.addr()).unwrap();
    // Normal traffic (ids 0..4) interleaved with two runaways.
    for id in 0..4u64 {
        client.send(id, id, &countup_inputs(5)).unwrap();
    }
    for id in [100u64, 101] {
        client.send(id, id, &countup_inputs(-1)).unwrap();
    }
    let mut served = Vec::new();
    let mut over_budget = Vec::new();
    for _ in 0..6 {
        match client.recv() {
            Ok(r) => served.push(r),
            Err(IngressError::Rejected(rej)) => {
                assert_eq!(rej.code, RejectCode::OverBudget);
                assert_eq!(
                    rej.depth,
                    MAX_SUPERSTEPS + 1,
                    "containment within max_supersteps + 1 supersteps"
                );
                assert_eq!(rej.budget, MAX_SUPERSTEPS);
                over_budget.push(rej.id);
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    over_budget.sort_unstable();
    assert_eq!(over_budget, [100, 101]);
    assert_eq!(served.len(), 4);
    for r in &served {
        assert_eq!(
            r.outputs[0].as_f64().unwrap(),
            &[5.0],
            "batchmates of evicted runaways must still answer correctly"
        );
    }
    // Two blowups tripped the breaker: the program is quarantined and
    // even well-behaved traffic is fast-rejected during cooldown.
    match client.call(200, 200, &countup_inputs(5)).unwrap_err() {
        IngressError::Rejected(rej) => {
            assert_eq!(rej.id, 200);
            assert_eq!(rej.code, RejectCode::Quarantined);
        }
        other => panic!("unexpected: {other}"),
    }
    let stats = handle.shutdown();
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.over_budget, 2);
    assert_eq!(stats.quarantined, 1);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.respawned, 0, "governance is not a fleet fault");
}
