//! Golden bit-identity over the TCP route.
//!
//! The in-process golden digests (`crates/serve/tests/golden_outputs.rs`)
//! pin the exact output bits of the two committed smoke workloads. The
//! same digests must come back over ingress: wire encode/decode is a
//! bijection on tensor bits, engine-side id renumbering restores the
//! client's ids, and admission timing cannot perturb lane results
//! (draws are keyed by the request seed). If any of those properties
//! break, these digests drift.

use std::sync::Arc;
use std::time::Duration;

use autobatch_core::{lower, LoweringOptions};
use autobatch_ingress::wire::WireResponse;
use autobatch_ingress::{IngressClient, IngressConfig, IngressServer};
use autobatch_lang::compile;
use autobatch_models::NealsFunnel;
use autobatch_nuts::{BatchNuts, NutsConfig};
use autobatch_tensor::{CounterRng, Data, Tensor};

const BINOM_SRC: &str = "
    // C(n, k) by Pascal's rule — doubly data-dependent recursion.
    fn binom(n: int, k: int) -> (out: int) {
        if k <= 0 {
            out = 1;
        } else if k >= n {
            out = 1;
        } else {
            let left = binom(n - 1, k - 1);
            let right = binom(n - 1, k);
            out = left + right;
        }
    }
";

/// FNV-1a over the exact bit patterns of every output tensor, in
/// response-id order — the same fold as the in-process golden tests.
fn digest(responses: &[WireResponse]) -> u64 {
    let mut sorted: Vec<&WireResponse> = responses.iter().collect();
    sorted.sort_by_key(|r| r.id);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for r in sorted {
        mix(r.id);
        for t in &r.outputs {
            for &d in t.shape() {
                mix(d as u64);
            }
            match t.data() {
                Data::F64(v) => v.iter().for_each(|x| mix(x.to_bits())),
                Data::I64(v) => v.iter().for_each(|&x| mix(x as u64)),
                Data::Bool(v) => v.iter().for_each(|&x| mix(u64::from(x))),
            }
        }
    }
    h
}

fn roundtrip(
    handle: &autobatch_ingress::IngressHandle,
    requests: Vec<(u64, u64, Vec<Tensor>)>,
) -> Vec<WireResponse> {
    let mut client = IngressClient::connect(handle.addr()).unwrap();
    let n = requests.len();
    for (id, seed, inputs) in requests {
        client.send(id, seed, &inputs).unwrap();
    }
    (0..n).map(|_| client.recv().unwrap()).collect()
}

#[test]
fn binom_digest_matches_the_in_process_path() {
    let program = compile(BINOM_SRC, "binom").expect("binom compiles");
    let (pc, _) = lower(&program, LoweringOptions::default()).expect("binom lowers");
    let requests: Vec<(u64, u64, Vec<Tensor>)> = (0..12)
        .map(|i| {
            let n = 10 + (i * 5 % 7) as i64;
            let k = 2 + (i * 3 % 5) as i64;
            (
                i as u64,
                i as u64,
                vec![
                    Tensor::from_i64(&[n], &[1]).unwrap(),
                    Tensor::from_i64(&[k], &[1]).unwrap(),
                ],
            )
        })
        .collect();
    for workers in [1usize, 2] {
        let handle = IngressServer::start(
            pc.clone(),
            IngressConfig {
                workers,
                max_batch: 4,
                max_wait: Duration::from_millis(5),
                ..IngressConfig::default()
            },
            "127.0.0.1:0",
        )
        .unwrap();
        let done = roundtrip(&handle, requests.clone());
        assert_eq!(done.len(), 12);
        let r0 = done.iter().find(|r| r.id == 0).expect("request 0");
        assert_eq!(r0.outputs[0].as_i64().expect("i64"), &[45], "C(10,2)");
        assert_eq!(
            digest(&done),
            6914980814453413019,
            "binom outputs drifted over TCP at {workers} workers"
        );
        handle.shutdown();
    }
}

#[test]
fn funnel_nuts_digest_matches_the_in_process_path() {
    let cfg = NutsConfig {
        step_size: 0.2,
        n_trajectories: 3,
        max_depth: 6,
        leapfrog_steps: 2,
        seed: 31,
    };
    let nuts = BatchNuts::new(Arc::new(NealsFunnel::new(5)), cfg).expect("NUTS compiles");
    let rng = CounterRng::new(64);
    let requests: Vec<(u64, u64, Vec<Tensor>)> = (0..12)
        .map(|i| {
            let q = rng
                .normal_batch(&[i as i64], &[nuts.dim()])
                .row(0)
                .expect("row");
            (i as u64, i as u64, nuts.request_inputs(&q).expect("inputs"))
        })
        .collect();
    let handle = IngressServer::start(
        nuts.lowered().clone(),
        IngressConfig {
            workers: 2,
            max_batch: 4,
            max_wait: Duration::from_millis(5),
            opts: nuts.exec_options(),
            registry: nuts.registry().clone(),
            ..IngressConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let done = roundtrip(&handle, requests);
    assert_eq!(done.len(), 12);
    assert_eq!(
        digest(&done),
        4923661940693526310,
        "funnel-NUTS positions drifted over TCP"
    );
    handle.shutdown();
}
