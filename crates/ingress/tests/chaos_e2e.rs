//! Chaos end-to-end tests over real loopback TCP: wire-level fault
//! injection (corrupted and truncated frames), worker panics healed
//! behind the front door, and typed Shutdown refusals for work the
//! server can no longer take.

use std::time::Duration;

use autobatch_chaos::FaultPlan;
use autobatch_core::{lower, ExecOptions, LoweringOptions};
use autobatch_ingress::wire::{self, RejectCode};
use autobatch_ingress::{IngressClient, IngressConfig, IngressError, IngressServer};
use autobatch_ir::build::fibonacci_program;
use autobatch_tensor::Tensor;

fn fib_server(config: IngressConfig) -> autobatch_ingress::IngressHandle {
    let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
    IngressServer::start(pc, config, "127.0.0.1:0").unwrap()
}

fn faulty_config(fault: FaultPlan) -> IngressConfig {
    IngressConfig {
        workers: 1,
        max_batch: 4,
        max_wait: Duration::from_millis(5),
        opts: ExecOptions {
            fault,
            ..ExecOptions::default()
        },
        ..IngressConfig::default()
    }
}

/// Silence the default panic hook for injected worker panics (libtest
/// cannot capture output from the server's worker threads). Real panics
/// still print.
fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.starts_with("injected fault") {
                prev(info);
            }
        }));
    });
}

#[test]
fn truncated_frames_close_the_connection_with_no_silent_loss() {
    // Every inbound frame is cut off mid-stream: the client's terminal
    // outcome is a closed connection, never a hang, and the engine
    // serves nothing.
    let handle = fib_server(faulty_config(FaultPlan {
        seed: 5,
        wire_truncate: FaultPlan::ALWAYS,
        ..FaultPlan::none()
    }));
    let mut client = IngressClient::connect(handle.addr()).unwrap();
    client
        .send(0, 0, &[Tensor::from_i64(&[9], &[1]).unwrap()])
        .unwrap();
    match client.recv() {
        Err(IngressError::Closed) | Err(IngressError::Io(_)) => {}
        other => panic!("expected a dead connection, got {other:?}"),
    }
    let stats = handle.shutdown();
    assert_eq!(stats.completed, 0);
}

#[test]
fn corrupted_frames_are_refused_with_typed_rejects() {
    // Every inbound frame has one byte flipped. With this seed the
    // corruption breaks decoding (pinned by the reject below), so the
    // client gets a typed BadRequest and the connection stays usable —
    // the fault counter keeps advancing per frame either way.
    let handle = fib_server(faulty_config(FaultPlan {
        seed: 5,
        wire_corrupt: FaultPlan::ALWAYS,
        ..FaultPlan::none()
    }));
    let mut client = IngressClient::connect(handle.addr()).unwrap();
    let mut rejected = 0u64;
    for id in 0..4u64 {
        match client.call(id, id, &[Tensor::from_i64(&[9], &[1]).unwrap()]) {
            Err(IngressError::Rejected(r)) => {
                assert_eq!(r.code, RejectCode::BadRequest);
                rejected += 1;
            }
            // A flipped byte can land in tensor payload and still
            // decode; the request is then served (with the corrupted
            // input) — that is the fault model, not a loss.
            Ok(_) => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
    }
    assert!(rejected > 0, "seed 5 corrupts at least one frame fatally");
    let stats = handle.shutdown();
    assert_eq!(stats.bad_frames, rejected);
}

#[test]
fn worker_panics_are_healed_behind_the_front_door() {
    silence_injected_panics();
    // Half of all worker rounds panic. The supervisor respawns the
    // shard and retries, so every request is still answered correctly
    // over TCP and the fleet-death mode (one panic aborting the whole
    // server) is gone.
    let handle = fib_server(faulty_config(FaultPlan {
        seed: 0,
        worker_panic: FaultPlan::ALWAYS / 2,
        ..FaultPlan::none()
    }));
    let mut client = IngressClient::connect(handle.addr()).unwrap();
    for (id, (n, fib)) in [(6i64, 13i64), (9, 55), (7, 21), (8, 34)]
        .into_iter()
        .enumerate()
    {
        let r = client
            .call(
                id as u64,
                id as u64,
                &[Tensor::from_i64(&[n], &[1]).unwrap()],
            )
            .unwrap();
        assert_eq!(r.outputs[0].as_i64().unwrap(), &[fib], "request {id}");
    }
    let stats = handle.shutdown();
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.failed, 0);
    assert!(stats.respawned > 0, "panics must have cost a respawn");
    assert!(stats.retried > 0, "stranded work must have been retried");
}

#[test]
fn shutdown_answers_late_frames_with_typed_shutdown_rejects() {
    let handle = fib_server(IngressConfig {
        workers: 1,
        max_batch: 4,
        max_wait: Duration::from_millis(2),
        ..IngressConfig::default()
    });
    let addr = handle.addr();
    // Raw wire access so sending and receiving can run concurrently on
    // the two halves of one connection: the reader must keep draining
    // while the writer floods, or TCP backpressure would couple the
    // test to the server's reply pacing.
    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut write_half = stream.try_clone().unwrap();
    // Keep sending while the server shuts down: frames that arrive
    // after the stop flag flips can no longer be served and must be
    // answered with typed Shutdown rejects (not silently dropped)
    // before the socket closes.
    let writer = std::thread::spawn(move || {
        let payload = wire::encode_request(1, 1, &[Tensor::from_i64(&[6], &[1]).unwrap()]).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_millis(300);
        let mut sent = 0u64;
        while std::time::Instant::now() < deadline {
            if wire::write_frame(&mut write_half, &payload).is_err() {
                break; // socket closed: the server is gone
            }
            sent += 1;
        }
        sent
    });
    let shutdown = std::thread::spawn(move || handle.shutdown());
    let mut read_half = stream;
    let mut reader = wire::FrameReader::new();
    let mut shutdown_rejects = 0u64;
    let mut served = 0u64;
    // Drain until EOF / reset: every frame the server read got an answer.
    while let Ok(Some(payload)) = reader.next_frame(&mut read_half) {
        match wire::decode(&payload).unwrap() {
            wire::Message::Response(_) => served += 1,
            wire::Message::Reject(rej) => {
                assert_eq!(rej.code, RejectCode::Shutdown, "only Shutdown refusals");
                shutdown_rejects += 1;
            }
            wire::Message::Request(_) | wire::Message::Cancel(_) => {
                panic!("server sent a client-only frame")
            }
        }
    }
    let sent = writer.join().unwrap();
    assert!(
        shutdown_rejects > 0,
        "frames sent during shutdown must be refused, not dropped \
         (served {served} of {sent} sent)"
    );
    shutdown.join().unwrap();
}
