//! The potential scale reduction factor `R̂`.

use crate::chains::{mean, sample_var, split_in_half, validate};
use crate::normal::rank_normalize;
use crate::Result;

/// Split-`R̂` (Gelman & Rubin 1992, split form of Vehtari et al. 2021):
/// each chain is halved, then the between-half variance is compared with
/// the within-half variance. Values near 1 indicate the halves are
/// indistinguishable; Stan's guidance flags `R̂ > 1.01`.
///
/// Returns `NaN` when every draw is identical (zero within variance).
///
/// # Errors
///
/// Returns a [`DiagError`](crate::DiagError) if chains are absent,
/// unequal, non-finite, or shorter than 4 draws.
pub fn split_rhat<C: AsRef<[f64]>>(chains: &[C]) -> Result<f64> {
    validate(chains, 4)?;
    Ok(rhat_of(&split_in_half(chains)))
}

/// Rank-normalized split-`R̂` (Vehtari et al. 2021): draws are replaced
/// by normal quantiles of their pooled ranks before computing split-`R̂`,
/// making the diagnostic robust to heavy tails and invariant under
/// monotone transformations.
///
/// # Errors
///
/// As [`split_rhat`].
pub fn rank_normalized_rhat<C: AsRef<[f64]>>(chains: &[C]) -> Result<f64> {
    validate(chains, 4)?;
    Ok(rhat_of(&split_in_half(&rank_normalize(chains))))
}

/// Plain `R̂` over an already-prepared chain set.
fn rhat_of(chains: &[Vec<f64>]) -> f64 {
    let m = chains.len();
    let n = chains[0].len();
    let chain_means: Vec<f64> = chains.iter().map(|c| mean(c)).collect();
    let grand = mean(&chain_means);
    let b = n as f64 / (m as f64 - 1.0)
        * chain_means
            .iter()
            .map(|x| (x - grand) * (x - grand))
            .sum::<f64>();
    let w = chains.iter().map(|c| sample_var(c)).sum::<f64>() / m as f64;
    if w == 0.0 {
        return f64::NAN;
    }
    let var_plus = (n as f64 - 1.0) / n as f64 * w + b / n as f64;
    (var_plus / w).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-normal draws via Box–Muller over a small LCG.
    fn normals(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next_u = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|_| {
                let (u1, u2) = (next_u().max(1e-12), next_u());
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect()
    }

    #[test]
    fn iid_chains_have_rhat_near_one() {
        let chains: Vec<Vec<f64>> = (0..4).map(|s| normals(s + 1, 500)).collect();
        let r = split_rhat(&chains).unwrap();
        assert!((r - 1.0).abs() < 0.02, "rhat = {r}");
        let rr = rank_normalized_rhat(&chains).unwrap();
        assert!((rr - 1.0).abs() < 0.02, "rank rhat = {rr}");
    }

    #[test]
    fn shifted_chains_are_flagged() {
        let mut chains: Vec<Vec<f64>> = (0..4).map(|s| normals(s + 1, 500)).collect();
        for x in &mut chains[0] {
            *x += 5.0; // one chain stuck in a different mode
        }
        let r = split_rhat(&chains).unwrap();
        assert!(r > 1.5, "rhat = {r}");
        let rr = rank_normalized_rhat(&chains).unwrap();
        assert!(rr > 1.5, "rank rhat = {rr}");
    }

    #[test]
    fn within_chain_trend_is_flagged_by_splitting() {
        // A single drifting chain: ordinary R̂ with one chain would be
        // blind, but split-R̂ compares its halves.
        let n = 400;
        let drift: Vec<f64> = normals(9, n)
            .into_iter()
            .enumerate()
            .map(|(i, x)| x + 6.0 * i as f64 / n as f64)
            .collect();
        let r = split_rhat(&[drift]).unwrap();
        assert!(r > 1.2, "rhat = {r}");
    }

    #[test]
    fn rank_rhat_is_invariant_under_monotone_transforms() {
        // exp() preserves ranks, so the rank-normalized statistic is
        // bit-identical — while the plain statistic moves. This is the
        // robustness Vehtari et al. (2021) designed for.
        let chains: Vec<Vec<f64>> = (0..4).map(|s| normals(s + 21, 300)).collect();
        let warped: Vec<Vec<f64>> = chains
            .iter()
            .map(|c| c.iter().map(|x| x.exp()).collect())
            .collect();
        let ranked = rank_normalized_rhat(&chains).unwrap();
        let ranked_warped = rank_normalized_rhat(&warped).unwrap();
        assert_eq!(ranked, ranked_warped);
        let plain = split_rhat(&chains).unwrap();
        let plain_warped = split_rhat(&warped).unwrap();
        assert_ne!(plain, plain_warped);
        // And a single absurd outlier leaves the ranked statistic calm.
        let mut spiked = chains;
        spiked[2][10] = 1e9;
        let r = rank_normalized_rhat(&spiked).unwrap();
        assert!((r - 1.0).abs() < 0.02, "rank rhat = {r}");
    }

    #[test]
    fn constant_chains_yield_nan() {
        let chains = [vec![2.0; 50], vec![2.0; 50]];
        assert!(split_rhat(&chains).unwrap().is_nan());
    }

    #[test]
    fn short_chains_rejected() {
        assert!(split_rhat(&[vec![1.0, 2.0, 3.0]]).is_err());
    }
}
