//! Effective sample size from the combined-chain autocorrelation series.

use crate::chains::{mean, pooled_quantile, sample_var, split_in_half, validate};
use crate::normal::rank_normalize;
use crate::Result;

/// The (biased, `1/n`-normalized) autocovariance series of `x` up to
/// `max_lag` inclusive. Lag 0 is the biased variance.
pub fn autocovariance(x: &[f64], max_lag: usize) -> Vec<f64> {
    let n = x.len();
    let m = mean(x);
    let max_lag = max_lag.min(n.saturating_sub(1));
    (0..=max_lag)
        .map(|t| (0..n - t).map(|i| (x[i] - m) * (x[i + t] - m)).sum::<f64>() / n as f64)
        .collect()
}

/// Effective sample size of the mean estimate over split chains
/// (Vehtari et al. 2021, as in Stan): combines per-chain autocovariances
/// into a cross-chain autocorrelation series, sums it with Geyer's
/// initial-monotone-positive-sequence truncation, and divides the total
/// draw count by the resulting autocorrelation time `τ̂`.
///
/// Returns `NaN` for constant chains.
///
/// # Errors
///
/// Returns a [`DiagError`](crate::DiagError) if chains are absent,
/// unequal, non-finite, or shorter than 8 draws.
pub fn ess<C: AsRef<[f64]>>(chains: &[C]) -> Result<f64> {
    validate(chains, 8)?;
    Ok(ess_of(&split_in_half(chains)))
}

/// Bulk effective sample size: [`ess`] of the rank-normalized draws —
/// the ESS relevant for posterior-center summaries.
///
/// # Errors
///
/// As [`ess`].
pub fn bulk_ess<C: AsRef<[f64]>>(chains: &[C]) -> Result<f64> {
    validate(chains, 8)?;
    Ok(ess_of(&split_in_half(&rank_normalize(chains))))
}

/// Tail effective sample size: the smaller of the ESS of the 5% and 95%
/// quantile indicator series — the ESS relevant for interval summaries.
///
/// # Errors
///
/// As [`ess`].
pub fn tail_ess<C: AsRef<[f64]>>(chains: &[C]) -> Result<f64> {
    validate(chains, 8)?;
    let mut tails = [f64::NAN; 2];
    for (k, p) in [0.05, 0.95].into_iter().enumerate() {
        let q = pooled_quantile(chains, p)?;
        let indicators: Vec<Vec<f64>> = chains
            .iter()
            .map(|c| {
                c.as_ref()
                    .iter()
                    .map(|&x| f64::from(u8::from(x <= q)))
                    .collect()
            })
            .collect();
        tails[k] = ess_of(&split_in_half(&indicators));
    }
    Ok(tails[0].min(tails[1]))
}

/// ESS over an already-prepared (split) chain set.
fn ess_of(chains: &[Vec<f64>]) -> f64 {
    let m = chains.len();
    let n = chains[0].len();
    let total = (m * n) as f64;

    // Cross-chain variance estimate var⁺ (as in R̂).
    let chain_means: Vec<f64> = chains.iter().map(|c| mean(c)).collect();
    let w = chains.iter().map(|c| sample_var(c)).sum::<f64>() / m as f64;
    let grand = mean(&chain_means);
    let b_over_n = chain_means
        .iter()
        .map(|x| (x - grand) * (x - grand))
        .sum::<f64>()
        / (m as f64 - 1.0).max(1.0);
    let var_plus = (n as f64 - 1.0) / n as f64 * w + if m > 1 { b_over_n } else { 0.0 };
    if var_plus == 0.0 || !var_plus.is_finite() {
        return f64::NAN;
    }

    // Combined autocorrelations ρ̂_t.
    let max_lag = n - 1;
    let covs: Vec<Vec<f64>> = chains.iter().map(|c| autocovariance(c, max_lag)).collect();
    let rho = |t: usize| -> f64 {
        let mean_cov = covs.iter().map(|c| c[t]).sum::<f64>() / m as f64;
        1.0 - (w - mean_cov) / var_plus
    };

    // Geyer: sum pairs P̂_k = ρ̂_{2k} + ρ̂_{2k+1} while positive, forcing
    // the sequence to be non-increasing.
    let mut tau = -1.0;
    let mut prev_pair = f64::INFINITY;
    let mut k = 0;
    while 2 * k < max_lag {
        let mut pair = rho(2 * k) + rho(2 * k + 1);
        if pair < 0.0 {
            break;
        }
        pair = pair.min(prev_pair);
        tau += 2.0 * pair;
        prev_pair = pair;
        k += 1;
    }
    // Antithetic chains can drive τ̂ below 1 (ESS above the draw count);
    // floor it to keep the estimate finite, and apply Stan's cap of
    // `total × log₁₀(total)` on the result.
    let tau = tau.max(1e-3);
    (total / tau).min(total * total.log10().max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normals(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next_u = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|_| {
                let (u1, u2) = (next_u().max(1e-12), next_u());
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect()
    }

    /// AR(1) chain with coefficient `phi` (stationary autocorrelation
    /// ρ_t = φᵗ, so ESS/N → (1−φ)/(1+φ)).
    fn ar1(seed: u64, n: usize, phi: f64) -> Vec<f64> {
        let eps = normals(seed, n);
        let mut x = Vec::with_capacity(n);
        let mut prev = 0.0;
        let scale = (1.0 - phi * phi).sqrt();
        for e in eps {
            prev = phi * prev + scale * e;
            x.push(prev);
        }
        x
    }

    #[test]
    fn autocovariance_lag0_is_biased_variance() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let c = autocovariance(&x, 2);
        assert!((c[0] - 1.25).abs() < 1e-12);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn iid_chains_have_ess_near_total() {
        let chains: Vec<Vec<f64>> = (0..4).map(|s| normals(100 + s, 500)).collect();
        let e = ess(&chains).unwrap();
        let total = 2000.0;
        assert!(e > 0.6 * total && e < 1.6 * total, "ess = {e}");
    }

    #[test]
    fn ar1_chains_lose_the_predicted_factor() {
        let phi = 0.7f64;
        let chains: Vec<Vec<f64>> = (0..4).map(|s| ar1(7 + s, 2000, phi)).collect();
        let e = ess(&chains).unwrap();
        let expected = 8000.0 * (1.0 - phi) / (1.0 + phi); // ≈ 1411
        assert!(
            e > 0.5 * expected && e < 2.0 * expected,
            "ess = {e}, expected ≈ {expected}"
        );
        // And it is far below the raw draw count.
        assert!(e < 4000.0);
    }

    #[test]
    fn stuck_chains_have_tiny_ess() {
        // Chains at different constants: between-chain variance huge,
        // within-chain mixing zero.
        let chains: Vec<Vec<f64>> = (0..4)
            .map(|s| {
                normals(50 + s, 200)
                    .into_iter()
                    .map(|x| 0.01 * x + s as f64 * 10.0)
                    .collect()
            })
            .collect();
        let e = ess(&chains).unwrap();
        assert!(e < 40.0, "ess = {e}");
    }

    #[test]
    fn bulk_and_tail_ess_are_finite_for_healthy_chains() {
        let chains: Vec<Vec<f64>> = (0..4).map(|s| normals(200 + s, 400)).collect();
        let b = bulk_ess(&chains).unwrap();
        let t = tail_ess(&chains).unwrap();
        assert!(b > 400.0, "bulk = {b}");
        assert!(t > 100.0, "tail = {t}");
    }

    #[test]
    fn constant_chains_yield_nan() {
        let chains = [vec![1.0; 64], vec![1.0; 64]];
        assert!(ess(&chains).unwrap().is_nan());
    }

    #[test]
    fn short_chains_rejected() {
        assert!(ess(&[vec![0.0; 4]]).is_err());
    }
}
