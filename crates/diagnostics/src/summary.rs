//! Per-parameter posterior summaries, Stan-`print` style.

use std::fmt;

use crate::chains::{mean, pooled_quantile, sample_var, validate};
use crate::ess::{bulk_ess, tail_ess};
use crate::rhat::rank_normalized_rhat;
use crate::Result;

/// Summary statistics of one scalar parameter across chains.
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterSummary {
    /// Posterior mean (pooled across chains).
    pub mean: f64,
    /// Posterior standard deviation (pooled).
    pub sd: f64,
    /// Monte Carlo standard error of the mean (`sd / √bulk-ESS`).
    pub mcse_mean: f64,
    /// Pooled 5% quantile.
    pub q05: f64,
    /// Pooled median.
    pub median: f64,
    /// Pooled 95% quantile.
    pub q95: f64,
    /// Rank-normalized split-`R̂`.
    pub rhat: f64,
    /// Bulk effective sample size. Degenerate (constant) chains report
    /// the sentinel `0.0` — see [`summarize`].
    pub ess_bulk: f64,
    /// Tail effective sample size. Degenerate (constant) chains report
    /// the sentinel `0.0` — see [`summarize`].
    pub ess_tail: f64,
}

impl ParameterSummary {
    /// Stan's rule of thumb: `R̂ ≤ 1.01` and both ESS ≥ 100 per chain...
    /// here simplified to ≥ 100 total, which suits small test batches.
    pub fn looks_converged(&self) -> bool {
        self.rhat.is_finite()
            && self.rhat < 1.01
            && self.ess_bulk >= 100.0
            && self.ess_tail >= 100.0
    }
}

impl fmt::Display for ParameterSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:+.3} ± {:.3} (mcse {:.4})  [{:+.3}, {:+.3}, {:+.3}]  R̂ {:.3}  ESS {:.0}/{:.0}",
            self.mean,
            self.sd,
            self.mcse_mean,
            self.q05,
            self.median,
            self.q95,
            self.rhat,
            self.ess_bulk,
            self.ess_tail
        )
    }
}

/// Summarize one scalar parameter from its per-chain draw series.
///
/// Degenerate inputs are handled without `NaN` poisoning: [`ess`](crate::ess)
/// and [`tail_ess`](crate::tail_ess) return `NaN` for constant chains
/// (zero variance carries no autocorrelation information), which this
/// summary maps to the documented sentinel `0.0` — "no effective
/// samples" — so downstream comparisons like `ess_bulk >= 100.0` and
/// [`ParameterSummary::looks_converged`] stay well-defined and report
/// the degenerate case as unconverged. `mcse_mean` for a constant chain
/// is `0.0` (the mean estimate has zero spread).
///
/// # Errors
///
/// Returns a [`DiagError`](crate::DiagError) if chains are absent,
/// unequal, non-finite, or shorter than 8 draws.
///
/// # Examples
///
/// ```
/// use autobatch_diagnostics::summarize;
///
/// let chains: Vec<Vec<f64>> = (0..4)
///     .map(|c| (0..200).map(|i| (((i * 31 + c * 17) % 101) as f64) / 101.0).collect())
///     .collect();
/// let s = summarize(&chains)?;
/// assert!((s.mean - 0.5).abs() < 0.05);
/// # Ok::<(), autobatch_diagnostics::DiagError>(())
/// ```
pub fn summarize<C: AsRef<[f64]>>(chains: &[C]) -> Result<ParameterSummary> {
    validate(chains, 8)?;
    let pooled: Vec<f64> = chains
        .iter()
        .flat_map(|c| c.as_ref().iter().copied())
        .collect();
    let m = mean(&pooled);
    let sd = sample_var(&pooled).sqrt();
    // NaN from the ESS estimators marks a degenerate (constant) chain
    // set; propagate the documented "no effective samples" sentinel.
    let ess_b = match bulk_ess(chains)? {
        e if e.is_nan() => 0.0,
        e => e,
    };
    let ess_t = match tail_ess(chains)? {
        e if e.is_nan() => 0.0,
        e => e,
    };
    Ok(ParameterSummary {
        mean: m,
        sd,
        mcse_mean: if ess_b > 0.0 {
            sd / ess_b.sqrt()
        } else if sd == 0.0 {
            0.0
        } else {
            f64::INFINITY
        },
        q05: pooled_quantile(chains, 0.05)?,
        median: pooled_quantile(chains, 0.5)?,
        q95: pooled_quantile(chains, 0.95)?,
        rhat: rank_normalized_rhat(chains)?,
        ess_bulk: ess_b,
        ess_tail: ess_t,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normals(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next_u = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|_| {
                let (u1, u2) = (next_u().max(1e-12), next_u());
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect()
    }

    #[test]
    fn summary_of_iid_standard_normal_chains() {
        let chains: Vec<Vec<f64>> = (0..4).map(|s| normals(s + 5, 500)).collect();
        let s = summarize(&chains).unwrap();
        assert!(s.mean.abs() < 0.1, "mean = {}", s.mean);
        assert!((s.sd - 1.0).abs() < 0.1, "sd = {}", s.sd);
        assert!((s.median).abs() < 0.15);
        assert!((s.q05 + 1.645).abs() < 0.25, "q05 = {}", s.q05);
        assert!((s.q95 - 1.645).abs() < 0.25, "q95 = {}", s.q95);
        assert!(s.looks_converged(), "{s}");
        assert!(s.mcse_mean < 0.1);
    }

    #[test]
    fn summary_flags_disagreeing_chains() {
        let mut chains: Vec<Vec<f64>> = (0..4).map(|s| normals(s + 5, 300)).collect();
        for x in &mut chains[3] {
            *x += 8.0;
        }
        let s = summarize(&chains).unwrap();
        assert!(!s.looks_converged(), "{s}");
        assert!(s.rhat > 1.1);
    }

    #[test]
    fn constant_chains_summarize_without_nan_poisoning() {
        // A stuck sampler: both chains sit at the same constant. ess /
        // tail_ess return NaN for this input; the summary must propagate
        // the documented 0.0 sentinel so comparisons stay well-defined.
        let chains = [vec![2.5; 64], vec![2.5; 64]];
        let s = summarize(&chains).unwrap();
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.ess_bulk, 0.0, "bulk ESS sentinel");
        assert_eq!(s.ess_tail, 0.0, "tail ESS sentinel");
        assert_eq!(s.mcse_mean, 0.0);
        assert!(!s.ess_bulk.is_nan() && !s.ess_tail.is_nan());
        // Downstream comparisons behave: the degenerate case reads as
        // unconverged, not as NaN-always-false surprises.
        assert!(!s.looks_converged());
        assert!(s.ess_bulk < 100.0 && s.ess_tail < 100.0);
    }

    #[test]
    fn display_is_nonempty_and_ordered() {
        let chains: Vec<Vec<f64>> = (0..2).map(|s| normals(s + 9, 100)).collect();
        let s = summarize(&chains).unwrap();
        let text = s.to_string();
        assert!(text.contains("R̂"));
        assert!(s.q05 <= s.median && s.median <= s.q95);
    }
}
