//! # autobatch-diagnostics
//!
//! Convergence diagnostics for batches of Markov chains.
//!
//! The paper's stated motivation for batching NUTS is "a broader practice
//! of running large numbers of independent Markov chains, for more
//! precise convergence diagnostics and uncertainty estimates" (§4). This
//! crate supplies those diagnostics, following the modern formulations of
//! Vehtari, Gelman, Simpson, Carpenter & Bürkner (2021), as implemented
//! by Stan:
//!
//! - [`split_rhat`] — the split potential-scale-reduction factor `R̂`;
//! - [`rank_normalized_rhat`] — its rank-normalized variant, robust to
//!   heavy tails;
//! - [`ess`] / [`bulk_ess`] / [`tail_ess`] — effective sample sizes from
//!   the combined-chain autocorrelation series with Geyer's initial
//!   monotone sequence truncation;
//! - [`summarize`] — a per-parameter summary (mean, sd, MCSE, quantiles,
//!   `R̂`, bulk/tail ESS) like the header of Stan's `print` output.
//!
//! Chains are plain `f64` slices (one per chain, equal lengths); no
//! dependency on the rest of the workspace, so the crate is usable with
//! any sampler.
//!
//! # Examples
//!
//! ```
//! use autobatch_diagnostics::{ess, split_rhat};
//!
//! // Two "chains" of a very boring sampler.
//! let a: Vec<f64> = (0..100).map(|i| ((i * 37 + 11) % 97) as f64).collect();
//! let b: Vec<f64> = (0..100).map(|i| ((i * 53 + 29) % 97) as f64).collect();
//! let chains = [a, b];
//! let rhat = split_rhat(&chains)?;
//! assert!(rhat.is_finite());
//! assert!(ess(&chains)? > 0.0);
//! # Ok::<(), autobatch_diagnostics::DiagError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

mod chains;
mod ess;
mod normal;
mod rhat;
mod summary;

pub use chains::{pooled_quantile, split_in_half, validate};
pub use ess::{autocovariance, bulk_ess, ess, tail_ess};
pub use normal::{inverse_normal_cdf, normal_cdf, rank_normalize};
pub use rhat::{rank_normalized_rhat, split_rhat};
pub use summary::{summarize, ParameterSummary};

/// Errors from the diagnostics routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiagError {
    /// No chains were supplied.
    NoChains,
    /// A chain is too short for the requested statistic.
    TooFewDraws {
        /// Draws found in the shortest chain.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// Chains have different lengths.
    UnequalLengths {
        /// The first length seen.
        first: usize,
        /// The mismatching length.
        other: usize,
    },
    /// A draw is NaN or infinite.
    NonFinite,
}

impl fmt::Display for DiagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagError::NoChains => write!(f, "no chains supplied"),
            DiagError::TooFewDraws { got, need } => {
                write!(f, "chains have {got} draws, need at least {need}")
            }
            DiagError::UnequalLengths { first, other } => {
                write!(f, "chains have unequal lengths ({first} vs {other})")
            }
            DiagError::NonFinite => write!(f, "chains contain non-finite draws"),
        }
    }
}

impl std::error::Error for DiagError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, DiagError>;
