//! Chain-set validation and manipulation shared by the diagnostics.

use crate::{DiagError, Result};

/// Check that `chains` is a nonempty set of equal-length, all-finite
/// chains with at least `min_draws` draws each, and return the common
/// length.
///
/// # Errors
///
/// Returns the specific [`DiagError`] violated.
pub fn validate<C: AsRef<[f64]>>(chains: &[C], min_draws: usize) -> Result<usize> {
    let first = chains.first().ok_or(DiagError::NoChains)?;
    let n = first.as_ref().len();
    for c in chains {
        let c = c.as_ref();
        if c.len() != n {
            return Err(DiagError::UnequalLengths {
                first: n,
                other: c.len(),
            });
        }
        if c.iter().any(|x| !x.is_finite()) {
            return Err(DiagError::NonFinite);
        }
    }
    if n < min_draws {
        return Err(DiagError::TooFewDraws {
            got: n,
            need: min_draws,
        });
    }
    Ok(n)
}

/// Split every chain into its first and second half (dropping the middle
/// draw of odd-length chains), doubling the chain count. This is the
/// "split" in split-`R̂`: it makes within-chain non-stationarity visible
/// to a between-chain statistic.
pub fn split_in_half<C: AsRef<[f64]>>(chains: &[C]) -> Vec<Vec<f64>> {
    let mut out = Vec::with_capacity(chains.len() * 2);
    for c in chains {
        let c = c.as_ref();
        let h = c.len() / 2;
        out.push(c[..h].to_vec());
        out.push(c[c.len() - h..].to_vec());
    }
    out
}

/// The `p`-quantile (0 ≤ p ≤ 1) of all draws pooled across chains,
/// with linear interpolation between order statistics (R's type 7).
///
/// # Errors
///
/// Returns [`DiagError::NoChains`] or [`DiagError::TooFewDraws`] for an
/// empty pool.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn pooled_quantile<C: AsRef<[f64]>>(chains: &[C], p: f64) -> Result<f64> {
    assert!((0.0..=1.0).contains(&p), "quantile p must be in [0, 1]");
    validate(chains, 1)?;
    let mut pool: Vec<f64> = chains
        .iter()
        .flat_map(|c| c.as_ref().iter().copied())
        .collect();
    pool.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));
    let h = p * (pool.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    Ok(pool[lo] + (h - lo as f64) * (pool[hi] - pool[lo]))
}

/// Mean of a slice.
pub(crate) fn mean(x: &[f64]) -> f64 {
    x.iter().sum::<f64>() / x.len() as f64
}

/// Unbiased sample variance of a slice (length ≥ 2).
pub(crate) fn sample_var(x: &[f64]) -> f64 {
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (x.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_each_violation() {
        let empty: [Vec<f64>; 0] = [];
        assert_eq!(validate(&empty, 1), Err(DiagError::NoChains));
        assert_eq!(
            validate(&[vec![1.0, 2.0], vec![1.0]], 1),
            Err(DiagError::UnequalLengths { first: 2, other: 1 })
        );
        assert_eq!(
            validate(&[vec![1.0, f64::NAN]], 1),
            Err(DiagError::NonFinite)
        );
        assert_eq!(
            validate(&[vec![1.0, 2.0]], 4),
            Err(DiagError::TooFewDraws { got: 2, need: 4 })
        );
        assert_eq!(validate(&[vec![1.0, 2.0, 3.0, 4.0]], 4), Ok(4));
    }

    #[test]
    fn split_halves_even_and_odd() {
        let halves = split_in_half(&[vec![1.0, 2.0, 3.0, 4.0]]);
        assert_eq!(halves, vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let halves = split_in_half(&[vec![1.0, 2.0, 3.0, 4.0, 5.0]]);
        assert_eq!(halves, vec![vec![1.0, 2.0], vec![4.0, 5.0]]);
    }

    #[test]
    fn quantiles_interpolate() {
        let c = [vec![1.0, 2.0, 3.0, 4.0]];
        assert_eq!(pooled_quantile(&c, 0.0).unwrap(), 1.0);
        assert_eq!(pooled_quantile(&c, 1.0).unwrap(), 4.0);
        assert_eq!(pooled_quantile(&c, 0.5).unwrap(), 2.5);
        // Pooling across chains.
        let two = [vec![1.0, 2.0], vec![3.0, 4.0]];
        assert_eq!(pooled_quantile(&two, 0.5).unwrap(), 2.5);
    }

    #[test]
    fn helpers_compute_mean_and_variance() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&x), 2.5);
        assert!((sample_var(&x) - 5.0 / 3.0).abs() < 1e-12);
    }
}
