//! Standard-normal CDF, its inverse, and rank normalization — the
//! numerical underpinnings of the rank-normalized diagnostics.

/// The standard normal cumulative distribution function `Φ(x)`.
///
/// Uses the Abramowitz & Stegun 7.1.26 rational approximation of `erf`
/// (absolute error < 1.5 × 10⁻⁷), which is ample for rank statistics.
pub fn normal_cdf(x: f64) -> f64 {
    let t = x / std::f64::consts::SQRT_2;
    0.5 * (1.0 + erf(t))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// The inverse standard normal CDF `Φ⁻¹(p)` (Acklam's rational
/// approximation, relative error < 1.15 × 10⁻⁹).
///
/// Returns `-∞`/`+∞` for `p = 0`/`p = 1` and NaN outside `[0, 1]`.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Replace every draw by the normal quantile of its fractional rank
/// (Blom's offset: `Φ⁻¹((r − 3/8)/(S + 1/4))`), pooled across chains —
/// the transformation behind rank-normalized `R̂` and bulk-ESS
/// (Vehtari et al. 2021). Ties get average ranks.
pub fn rank_normalize<C: AsRef<[f64]>>(chains: &[C]) -> Vec<Vec<f64>> {
    let total: usize = chains.iter().map(|c| c.as_ref().len()).sum();
    // (value, chain, position) sorted by value → average ranks for ties.
    let mut order: Vec<(f64, usize, usize)> = chains
        .iter()
        .enumerate()
        .flat_map(|(j, c)| c.as_ref().iter().enumerate().map(move |(i, &v)| (v, j, i)))
        .collect();
    order.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite draws"));

    let mut ranks: Vec<Vec<f64>> = chains.iter().map(|c| vec![0.0; c.as_ref().len()]).collect();
    let mut k = 0;
    while k < order.len() {
        let mut k2 = k;
        while k2 + 1 < order.len() && order[k2 + 1].0 == order[k].0 {
            k2 += 1;
        }
        // 1-based average rank of the tie group [k, k2].
        let avg = (k + k2) as f64 / 2.0 + 1.0;
        for &(_, j, i) in &order[k..=k2] {
            ranks[j][i] = avg;
        }
        k = k2 + 1;
    }
    ranks
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|r| inverse_normal_cdf((r - 0.375) / (total as f64 + 0.25)))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_matches_known_quantiles() {
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((inverse_normal_cdf(0.025) + 1.959_963_985).abs() < 1e-6);
        assert!((inverse_normal_cdf(0.841_344_746) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn inverse_handles_edges() {
        assert_eq!(inverse_normal_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inverse_normal_cdf(1.0), f64::INFINITY);
        assert!(inverse_normal_cdf(-0.1).is_nan());
        assert!(inverse_normal_cdf(1.1).is_nan());
        assert!(inverse_normal_cdf(f64::NAN).is_nan());
    }

    #[test]
    fn cdf_and_inverse_are_mutual_inverses() {
        // Tolerance is bounded by the erf approximation (abs err ~1.5e-7)
        // amplified by 1/φ(x) in the tails.
        for &x in &[-3.0, -1.5, -0.2, 0.0, 0.7, 2.4] {
            let p = normal_cdf(x);
            assert!((inverse_normal_cdf(p) - x).abs() < 1e-4, "x = {x}");
        }
    }

    #[test]
    fn cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-4);
    }

    #[test]
    fn rank_normalize_is_monotone_and_centred() {
        let chains = [vec![10.0, -2.0, 5.0], vec![0.5, 100.0, -50.0]];
        let z = rank_normalize(&chains);
        // Ordering preserved: −50 < −2 < 0.5 < 5 < 10 < 100.
        assert!(z[1][2] < z[0][1]);
        assert!(z[0][1] < z[1][0]);
        assert!(z[1][0] < z[0][2]);
        assert!(z[0][2] < z[0][0]);
        assert!(z[0][0] < z[1][1]);
        // Symmetric ranks → roughly zero mean.
        let all: Vec<f64> = z.iter().flatten().copied().collect();
        let mean = all.iter().sum::<f64>() / all.len() as f64;
        assert!(mean.abs() < 1e-9);
    }

    #[test]
    fn rank_normalize_averages_ties() {
        let chains = [vec![1.0, 1.0, 2.0, 2.0]];
        let z = rank_normalize(&chains);
        assert_eq!(z[0][0], z[0][1]);
        assert_eq!(z[0][2], z[0][3]);
        assert!(z[0][0] < z[0][2]);
        assert!((z[0][0] + z[0][2]).abs() < 1e-9, "symmetric about 0");
    }
}
