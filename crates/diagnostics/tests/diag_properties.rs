//! Property tests of the diagnostics invariants: quantile monotonicity,
//! rank preservation, and the boundedness/finiteness contracts of `R̂`
//! and ESS on arbitrary finite chain sets.

use autobatch_diagnostics::{
    bulk_ess, ess, pooled_quantile, rank_normalize, split_rhat, summarize, tail_ess,
};
use proptest::prelude::*;

/// Build `m` equal-length chains out of a flat pool of draws, adding a
/// tiny index-dependent jitter so chains are never exactly constant
/// (constant chains legitimately produce NaN diagnostics).
fn chunk(flat: &[f64], m: usize) -> Vec<Vec<f64>> {
    let n = flat.len() / m;
    (0..m)
        .map(|j| {
            flat[j * n..(j + 1) * n]
                .iter()
                .enumerate()
                .map(|(i, &x)| x + (i as f64) * 1e-9)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_are_monotone_and_bounded(
        flat in proptest::collection::vec(-1e3f64..1e3, 16..96),
        m in 1usize..4,
    ) {
        let chains = chunk(&flat, m);
        let total: Vec<f64> = chains.iter().flatten().copied().collect();
        let (lo, hi) = total.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &x| {
            (a.min(x), b.max(x))
        });
        let mut prev = f64::NEG_INFINITY;
        for k in 0..=10 {
            let q = pooled_quantile(&chains, k as f64 / 10.0).expect("quantile");
            prop_assert!(q >= prev - 1e-12, "monotone at {k}");
            prop_assert!(q >= lo - 1e-12 && q <= hi + 1e-12, "bounded");
            prev = q;
        }
    }

    #[test]
    fn rank_normalize_preserves_shape_and_order(
        flat in proptest::collection::vec(-1e6f64..1e6, 16..64),
        m in 1usize..4,
    ) {
        let chains = chunk(&flat, m);
        let z = rank_normalize(&chains);
        prop_assert_eq!(z.len(), chains.len());
        for (a, b) in z.iter().zip(&chains) {
            prop_assert_eq!(a.len(), b.len());
        }
        // Pairwise order preservation (strict pairs only).
        let flat_x: Vec<f64> = chains.iter().flatten().copied().collect();
        let flat_z: Vec<f64> = z.iter().flatten().copied().collect();
        for i in 0..flat_x.len() {
            for j in (i + 1)..flat_x.len() {
                if flat_x[i] < flat_x[j] {
                    prop_assert!(flat_z[i] < flat_z[j], "order broken at ({i},{j})");
                }
            }
        }
        // Rank-normalized draws live well inside the normal range.
        prop_assert!(flat_z.iter().all(|v| v.is_finite() && v.abs() < 10.0));
    }

    #[test]
    fn rhat_and_ess_contracts_hold(
        flat in proptest::collection::vec(-1e3f64..1e3, 32..128),
        m in 1usize..4,
    ) {
        let chains = chunk(&flat, m);
        let total = (chains[0].len() / 2 * 2 * m) as f64;

        let r = split_rhat(&chains).expect("rhat");
        // R̂ is a ratio of variances: positive whenever defined; values
        // slightly below 1 are legitimate sampling noise.
        if r.is_finite() {
            prop_assert!(r > 0.4, "rhat = {r}");
        }

        for e in [ess(&chains).expect("ess"), bulk_ess(&chains).expect("bulk")] {
            if e.is_finite() {
                prop_assert!(e > 0.0, "ess = {e}");
                prop_assert!(e <= total * total.log10().max(1.0) + 1e-9, "cap violated: {e}");
            }
        }
        let t = tail_ess(&chains).expect("tail");
        if t.is_finite() {
            prop_assert!(t > 0.0);
        }
    }

    #[test]
    fn summaries_are_internally_consistent(
        flat in proptest::collection::vec(-1e3f64..1e3, 32..96),
        m in 1usize..4,
    ) {
        let chains = chunk(&flat, m);
        let s = summarize(&chains).expect("summary");
        prop_assert!(s.q05 <= s.median + 1e-12 && s.median <= s.q95 + 1e-12);
        prop_assert!(s.sd >= 0.0);
        let total: Vec<f64> = chains.iter().flatten().copied().collect();
        let (lo, hi) = total.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &x| {
            (a.min(x), b.max(x))
        });
        prop_assert!(s.mean >= lo && s.mean <= hi);
    }
}
