//! Edge-case batch semantics: multi-output recursion, mutual recursion,
//! deeply divergent control flow, and degenerate batches — run through
//! the full lowering + both runtimes and checked against solo execution.

use autobatch_core::{
    lower, ExecOptions, ExecStrategy, KernelRegistry, LocalStaticVm, LoweringOptions, PcVm,
};
use autobatch_ir::build::ProgramBuilder;
use autobatch_ir::{lsab, Prim, Var};
use autobatch_tensor::Tensor;

fn all_runtimes_agree(p: &lsab::Program, inputs: &[Tensor]) -> Vec<Tensor> {
    let lsab_vm = LocalStaticVm::new(p, KernelRegistry::new(), ExecOptions::default());
    let reference = lsab_vm.run(inputs, None).expect("lsab runs");
    for lopts in [LoweringOptions::default(), LoweringOptions::unoptimized()] {
        let (pc, _) = lower(p, lopts).expect("lowers");
        let vm = PcVm::new(&pc, KernelRegistry::new(), ExecOptions::default());
        assert_eq!(
            vm.run(inputs, None).expect("pc runs"),
            reference,
            "{lopts:?}"
        );
    }
    let gs = LocalStaticVm::new(
        p,
        KernelRegistry::new(),
        ExecOptions {
            strategy: ExecStrategy::GatherScatter,
            ..ExecOptions::default()
        },
    );
    assert_eq!(gs.run(inputs, None).expect("gather runs"), reference);
    reference
}

/// A recursive function with *two* outputs whose values cross between
/// the two recursive calls — stresses result-temp handling in resume
/// blocks.
#[test]
fn multi_output_recursion() {
    // f(n) -> (a, b): base (n<=0): (1, 2); else (x,y) = f(n-1); (a,b) = (y+n, x).
    let mut pb = ProgramBuilder::new();
    let f = pb.declare("swap_sum", &["n"], &["a", "b"]);
    pb.define(f, |fb| {
        let n = fb.param(0);
        let zero = fb.const_i64(0);
        let base = fb.emit(Prim::Le, &[n.clone(), zero]);
        fb.if_else(
            &base,
            |fb| {
                let one = fb.const_i64(1);
                let two = fb.const_i64(2);
                fb.copy(&fb.output(0), &one);
                fb.copy(&fb.output(1), &two);
            },
            |fb| {
                let one = fb.const_i64(1);
                let m = fb.emit(Prim::Sub, &[fb.param(0), one]);
                let r = fb.call(f, &[m], 2);
                fb.assign(&fb.output(0), Prim::Add, &[r[1].clone(), fb.param(0)]);
                fb.copy(&fb.output(1), &r[0].clone());
            },
        );
        fb.ret();
    });
    let p = pb.finish(f).unwrap();
    let out = all_runtimes_agree(&p, &[Tensor::from_i64(&[0, 1, 2, 3, 5], &[5]).unwrap()]);
    // Hand-rolled reference.
    fn gold(n: i64) -> (i64, i64) {
        if n <= 0 {
            (1, 2)
        } else {
            let (x, y) = gold(n - 1);
            (y + n, x)
        }
    }
    for (i, &n) in [0i64, 1, 2, 3, 5].iter().enumerate() {
        let (a, b) = gold(n);
        assert_eq!(out[0].as_i64().unwrap()[i], a, "a({n})");
        assert_eq!(out[1].as_i64().unwrap()[i], b, "b({n})");
    }
}

/// Mutual recursion where the two functions carry *different* variable
/// sets — exercises cross-function stack classification.
#[test]
fn mutual_recursion_batch() {
    // even(n) = n<=0 ? 1 : odd(n-1); odd(n) = n<=0 ? 0 : even(n-1),
    // but each adds a locally computed weight after its call, so locals
    // are live across the recursive call in both functions.
    let mut pb = ProgramBuilder::new();
    let even = pb.declare("evenw", &["n"], &["r"]);
    let odd = pb.declare("oddw", &["n"], &["r"]);
    for (me, other, base_val, weight) in [(even, odd, 1i64, 10i64), (odd, even, 0, 100)] {
        pb.define(me, |fb| {
            let n = fb.param(0);
            let w = Var::new("w");
            let wc = fb.const_i64(weight);
            fb.assign(&w, Prim::Mul, &[n.clone(), wc]);
            let zero = fb.const_i64(0);
            let base = fb.emit(Prim::Le, &[n, zero]);
            fb.if_else(
                &base,
                |fb| {
                    let b = fb.const_i64(base_val);
                    fb.copy(&fb.output(0), &b);
                },
                |fb| {
                    let one = fb.const_i64(1);
                    let m = fb.emit(Prim::Sub, &[fb.param(0), one]);
                    let r = fb.call(other, &[m], 1);
                    fb.assign(&fb.output(0), Prim::Add, &[r[0].clone(), Var::new("w")]);
                },
            );
            fb.ret();
        });
    }
    let p = pb.finish(even).unwrap();
    let out = all_runtimes_agree(&p, &[Tensor::from_i64(&[0, 1, 2, 3, 4], &[5]).unwrap()]);
    fn ge(n: i64) -> i64 {
        if n <= 0 {
            1
        } else {
            go(n - 1) + 10 * n
        }
    }
    fn go(n: i64) -> i64 {
        if n <= 0 {
            0
        } else {
            ge(n - 1) + 100 * n
        }
    }
    for (i, &n) in [0i64, 1, 2, 3, 4].iter().enumerate() {
        assert_eq!(out[0].as_i64().unwrap()[i], ge(n), "even({n})");
    }
}

/// All batch members fully divergent: each takes a different branch arm
/// of a three-way nested conditional chain.
#[test]
fn fully_divergent_branches() {
    let p = autobatch_lang::compile(
        "fn classify(x: float) -> (c: int) {
            if x < -1.0 { c = 0; }
            else if x < 0.0 { c = 1; }
            else if x < 1.0 { c = 2; }
            else { c = 3; }
        }",
        "classify",
    )
    .expect("compiles");
    let out = all_runtimes_agree(
        &p,
        &[Tensor::from_f64(&[-5.0, -0.5, 0.5, 7.0], &[4]).unwrap()],
    );
    assert_eq!(out[0].as_i64().unwrap(), &[0, 1, 2, 3]);
}

/// A batch of one behaves exactly like the scalar case, and a batch of
/// identical members produces identical rows.
#[test]
fn degenerate_batches() {
    let p = autobatch_lang::compile(
        "fn gcd(a: int, b: int) -> (g: int) {
            let x = a;
            let y = b;
            while y > 0 {
                let q = x / y;
                let r = x - q * y;
                x = y;
                y = r;
            }
            g = x;
        }",
        "gcd",
    )
    .expect("compiles");
    let single = all_runtimes_agree(
        &p,
        &[
            Tensor::from_i64(&[48], &[1]).unwrap(),
            Tensor::from_i64(&[36], &[1]).unwrap(),
        ],
    );
    assert_eq!(single[0].as_i64().unwrap(), &[12]);
    let copies = all_runtimes_agree(
        &p,
        &[
            Tensor::from_i64(&[48; 6], &[6]).unwrap(),
            Tensor::from_i64(&[36; 6], &[6]).unwrap(),
        ],
    );
    assert_eq!(copies[0].as_i64().unwrap(), &[12; 6]);
}

/// Recursion nested inside a while loop nested inside recursion:
/// the pc stack interleaves loop and call frames per member.
#[test]
fn loops_inside_recursion() {
    let p = autobatch_lang::compile(
        "fn weird(n: int) -> (out: int) {
            if n <= 0 {
                out = 1;
            } else {
                let acc = 0;
                let i = 0;
                while i < n {
                    let sub = weird(n - 2);
                    acc = acc + sub;
                    i = i + 1;
                }
                out = acc;
            }
        }",
        "weird",
    )
    .expect("compiles");
    fn gold(n: i64) -> i64 {
        if n <= 0 {
            1
        } else {
            (0..n).map(|_| gold(n - 2)).sum()
        }
    }
    let out = all_runtimes_agree(&p, &[Tensor::from_i64(&[0, 1, 2, 3, 4, 5], &[6]).unwrap()]);
    for (i, &n) in [0i64, 1, 2, 3, 4, 5].iter().enumerate() {
        assert_eq!(out[0].as_i64().unwrap()[i], gold(n), "weird({n})");
    }
}
