//! Failure injection: external kernels that misbehave (wrong output
//! count, wrong batch width, wrong dtype) and malformed execution setups
//! must surface as structured [`VmError`]s from both runtimes — never
//! panics, and never silent corruption.

use std::sync::Arc;

use autobatch_core::{
    lower, Autobatcher, DynamicVm, ExecOptions, ExternalKernel, KernelRegistry, LocalStaticVm,
    LoweringOptions, PcVm, VmError,
};
use autobatch_ir::{Arity, Prim, Var};
use autobatch_lang::compile;
use autobatch_tensor::{DType, Tensor};

/// A kernel that returns the wrong number of outputs.
#[derive(Debug)]
struct WrongOutputCount;
impl ExternalKernel for WrongOutputCount {
    fn arity(&self) -> Arity {
        Arity { ins: 1, outs: 1 }
    }
    fn eval(&self, inputs: &[Tensor]) -> autobatch_tensor::Result<Vec<Tensor>> {
        Ok(vec![inputs[0].clone(), inputs[0].clone()])
    }
    fn flops_per_member(&self, _inputs: &[Tensor]) -> f64 {
        1.0
    }
}

/// A kernel that returns a tensor with a corrupted batch width.
#[derive(Debug)]
struct WrongBatchWidth;
impl ExternalKernel for WrongBatchWidth {
    fn arity(&self) -> Arity {
        Arity { ins: 1, outs: 1 }
    }
    fn eval(&self, _inputs: &[Tensor]) -> autobatch_tensor::Result<Vec<Tensor>> {
        Ok(vec![Tensor::zeros(DType::F64, &[1, 1])])
    }
    fn flops_per_member(&self, _inputs: &[Tensor]) -> f64 {
        1.0
    }
}

/// A kernel that fails outright.
#[derive(Debug)]
struct AlwaysFails;
impl ExternalKernel for AlwaysFails {
    fn arity(&self) -> Arity {
        Arity { ins: 1, outs: 1 }
    }
    fn eval(&self, inputs: &[Tensor]) -> autobatch_tensor::Result<Vec<Tensor>> {
        inputs[0].as_bool()?; // f64 input: guaranteed dtype error
        unreachable!("as_bool fails first")
    }
    fn flops_per_member(&self, _inputs: &[Tensor]) -> f64 {
        1.0
    }
}

const GRAD_LOOP: &str = "
    extern grad(vec) -> (vec);
    fn f(q: vec) -> (out: vec) {
        out = grad(q);
    }
";

type RunResult = Result<Vec<Tensor>, VmError>;

/// Run the misbehaving-kernel program through all three runtimes.
fn run_all(registry: KernelRegistry) -> (RunResult, RunResult, RunResult) {
    let program = compile(GRAD_LOOP, "f").expect("compiles");
    let q = Tensor::zeros(DType::F64, &[3, 2]);
    let lsab = LocalStaticVm::new(&program, registry.clone(), ExecOptions::default())
        .run(std::slice::from_ref(&q), None);
    let (lowered, _) = lower(&program, LoweringOptions::default()).expect("lowers");
    let pc = PcVm::new(&lowered, registry.clone(), ExecOptions::default())
        .run(std::slice::from_ref(&q), None);
    let dy = DynamicVm::new(&program, registry, ExecOptions::default())
        .run(std::slice::from_ref(&q), None);
    (lsab, pc, dy)
}

#[test]
fn wrong_output_count_is_kernel_arity_error() {
    let mut reg = KernelRegistry::new();
    reg.register("grad", Arc::new(WrongOutputCount));
    let (a, b, c) = run_all(reg);
    assert!(matches!(a, Err(VmError::KernelArity { .. })), "{a:?}");
    assert!(matches!(b, Err(VmError::KernelArity { .. })), "{b:?}");
    assert!(matches!(c, Err(VmError::KernelArity { .. })), "{c:?}");
}

#[test]
fn wrong_batch_width_is_tensor_error() {
    let mut reg = KernelRegistry::new();
    reg.register("grad", Arc::new(WrongBatchWidth));
    let (a, b, c) = run_all(reg);
    // The corrupted width is caught at the masked/stacked/row write.
    assert!(a.is_err(), "{a:?}");
    assert!(b.is_err(), "{b:?}");
    assert!(c.is_err(), "{c:?}");
}

#[test]
fn failing_kernel_propagates_its_error() {
    let mut reg = KernelRegistry::new();
    reg.register("grad", Arc::new(AlwaysFails));
    let (a, b, c) = run_all(reg);
    assert!(matches!(a, Err(VmError::Tensor(_))), "{a:?}");
    assert!(matches!(b, Err(VmError::Tensor(_))), "{b:?}");
    assert!(matches!(c, Err(VmError::Tensor(_))), "{c:?}");
}

#[test]
fn missing_kernel_is_unknown_kernel_error() {
    let (a, b, c) = run_all(KernelRegistry::new());
    assert!(matches!(a, Err(VmError::UnknownKernel { .. })), "{a:?}");
    assert!(matches!(b, Err(VmError::UnknownKernel { .. })), "{b:?}");
    assert!(matches!(c, Err(VmError::UnknownKernel { .. })), "{c:?}");
}

#[test]
fn mixed_dtype_user_program_errors_cleanly() {
    // A hand-built IR program that adds an int to a float (the surface
    // type checker would reject this; the VM must too, gracefully).
    use autobatch_ir::build::ProgramBuilder;
    let mut pb = ProgramBuilder::new();
    let f = pb.declare("bad", &["x"], &["y"]);
    pb.define(f, |fb| {
        let x = fb.param(0);
        let one = fb.const_i64(1);
        fb.assign(&fb.output(0), Prim::Add, &[x, one]);
        fb.ret();
    });
    let p = pb.finish(f).unwrap();
    let ab = Autobatcher::new(p).unwrap();
    let err = ab
        .run_pc(&[Tensor::from_f64(&[1.0], &[1]).unwrap()], None)
        .unwrap_err();
    assert!(matches!(err, VmError::Tensor(_)), "{err:?}");
}

#[test]
fn pop_on_register_program_rejected_at_validation() {
    // Hand-corrupted pcab: popping a register. The VM never sees it —
    // validation refuses first (tested at ir level) — but the VM's own
    // guard also reports cleanly if validation is skipped.
    use autobatch_ir::pcab;
    use std::collections::BTreeMap;
    let mut classes = BTreeMap::new();
    classes.insert(Var::new("x"), pcab::VarClass::Register);
    let p = pcab::Program {
        blocks: vec![pcab::Block {
            ops: vec![pcab::Op::Pop { var: Var::new("x") }],
            term: pcab::Terminator::Return,
        }],
        entry: autobatch_ir::BlockId(0),
        inputs: vec![Var::new("x")],
        outputs: vec![Var::new("x")],
        classes,
    };
    assert!(p.validate().is_err());
    let vm = PcVm::new(&p, KernelRegistry::new(), ExecOptions::default());
    let err = vm
        .run(&[Tensor::from_f64(&[1.0], &[1]).unwrap()], None)
        .unwrap_err();
    assert!(
        matches!(
            err,
            VmError::Unbound { .. } | VmError::StackUnderflow { .. }
        ),
        "{err:?}"
    );
}
