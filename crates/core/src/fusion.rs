//! Fused elementwise regions: the compile-side half of the
//! program-counter VM's allocation-free fast path.
//!
//! A **fused region** is a maximal run of consecutive [`Op::Compute`]
//! ops in one basic block whose primitives are all single-output
//! elementwise arithmetic (see [`Prim::is_elementwise`] for the legality
//! condition; this planner restricts further to the same-dtype
//! arithmetic subset it can compile to scalar function tables). The VM
//! executes a region as **one loop over elements**, keeping every
//! intermediate in a per-element virtual register instead of a
//! materialized tensor, and reports it to the [`Trace`] cost model as a
//! **single launch** whose memory traffic counts only the region's
//! external inputs and live outputs — exactly how a fusing compiler
//! (XLA, ACRoBat) prices the chain.
//!
//! Bit-identity is by construction: every link applies the *same*
//! [`autobatch_tensor::scalar_ops`] function the allocating kernel
//! applies, in the same op order, so a fused region and its per-kernel
//! expansion produce identical bits. Shapes are only known at run time,
//! so each region carries *candidate* function tables per dtype; the VM
//! validates (uniform external shape + dtype) before taking the fast
//! path and otherwise falls back to per-op execution, which also keeps
//! error behavior (dtype mismatches, stack overflow on a fused `Push`)
//! identical to the unfused interpreter.
//!
//! [`Trace`]: autobatch_accel::Trace

use std::collections::BTreeMap;

use autobatch_ir::pcab::{Block, Op, Program, Terminator, WriteKind};
use autobatch_ir::{Prim, Var};
use autobatch_tensor::scalar_ops as so;

/// Where a fused op reads an operand: an earlier def in the region, or
/// one of the region's external input tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Src {
    /// The result of the region op at this index.
    Def(usize),
    /// The external input tensor at this index (element-indexed).
    Ext(usize),
}

/// A compiled scalar kernel over one element type.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Kernel<T> {
    /// Broadcast a constant.
    Const(T),
    /// Unary map of `a`.
    Un(fn(T) -> T),
    /// Binary combine of `a` and `b`.
    Bin(fn(T, T) -> T),
}

/// One executable link of a region, for a concrete element type.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExecOp<T> {
    pub kernel: Kernel<T>,
    pub a: Src,
    pub b: Src,
}

/// Per-op metadata shared by both dtype tables.
#[derive(Debug)]
pub(crate) struct RegionOp {
    /// The primitive, for logical trace records and flop pricing.
    pub prim: Prim,
    /// Input-operand count, for logical byte accounting.
    pub n_ins: usize,
    /// The op's output variable and write kind, for the write-back
    /// path. Whether a result actually leaves the region as a tensor (a
    /// persistent variable, a stack push, or a temp read after the
    /// region / by the terminator) is recorded in the region's `mats`
    /// list; everything else lives only in per-element registers.
    pub out: (Var, WriteKind),
}

/// A fused region of one basic block.
#[derive(Debug)]
pub(crate) struct FusedRegion {
    /// Index of the first fused op within `block.ops`.
    pub start: usize,
    /// Number of consecutive ops fused.
    pub len: usize,
    /// External input variables, in first-use order.
    pub exts: Vec<Var>,
    /// Per-op metadata, parallel to the fused ops.
    pub ops: Vec<RegionOp>,
    /// Def indices of the materialized ops, ascending.
    pub mats: Vec<usize>,
    /// Executable table when every op has an `f64` kernel.
    pub f64_exec: Option<Vec<ExecOp<f64>>>,
    /// Executable table when every op has an `i64` kernel.
    pub i64_exec: Option<Vec<ExecOp<i64>>>,
    /// Stable kernel tag for the fused launch record.
    pub kernel_tag: String,
}

/// Candidate kernels of one primitive, per element type. `None` on a
/// side means the primitive cannot run on that dtype — mirroring the
/// allocating kernel's dtype errors, so a region that would take the
/// wrong-dtype fast path falls back and fails exactly like the
/// per-kernel interpreter.
struct Kernels {
    f: Option<Kernel<f64>>,
    i: Option<Kernel<i64>>,
}

/// One candidate op while a region is being grown: primitive, inputs,
/// output, and the per-dtype kernels.
type OpSpec<'a> = (&'a Prim, &'a [Var], &'a (Var, WriteKind), Kernels);

/// The planner's compiled op set must stay a subset of the IR-level
/// [`Prim::is_elementwise`] classification: `is_elementwise` is the
/// legality condition, `kernels_of` the (narrower) subset this planner
/// can compile to scalar tables. The debug assertion and the
/// `every_compiled_kernel_is_classified_elementwise` test keep the two
/// lists from drifting as primitives are added.
fn kernels_of(prim: &Prim) -> Option<Kernels> {
    let kernels = kernels_of_inner(prim);
    debug_assert!(
        kernels.is_none() || prim.is_elementwise(),
        "fusable primitive {prim:?} is not classified elementwise"
    );
    kernels
}

fn kernels_of_inner(prim: &Prim) -> Option<Kernels> {
    let both = |f: fn(f64, f64) -> f64, i: fn(i64, i64) -> i64| {
        Some(Kernels {
            f: Some(Kernel::Bin(f)),
            i: Some(Kernel::Bin(i)),
        })
    };
    let f_only = |f: fn(f64) -> f64| {
        Some(Kernels {
            f: Some(Kernel::Un(f)),
            i: None,
        })
    };
    match prim {
        Prim::ConstF64(c) => Some(Kernels {
            f: Some(Kernel::Const(*c)),
            i: None,
        }),
        Prim::ConstI64(c) => Some(Kernels {
            f: None,
            i: Some(Kernel::Const(*c)),
        }),
        Prim::Id => Some(Kernels {
            f: Some(Kernel::Un(so::id_f64)),
            i: Some(Kernel::Un(so::id_i64)),
        }),
        Prim::Neg => f_only(so::neg_f64),
        Prim::Abs => f_only(so::abs_f64),
        Prim::Exp => f_only(so::exp_f64),
        Prim::Ln => f_only(so::ln_f64),
        Prim::Sqrt => f_only(so::sqrt_f64),
        Prim::Square => f_only(so::square_f64),
        Prim::Sigmoid => f_only(so::sigmoid_f64),
        Prim::Softplus => f_only(so::softplus_f64),
        Prim::Floor => f_only(so::floor_f64),
        Prim::Sin => f_only(so::sin_f64),
        Prim::Cos => f_only(so::cos_f64),
        Prim::Tanh => f_only(so::tanh_f64),
        Prim::NegI => Some(Kernels {
            f: None,
            i: Some(Kernel::Un(so::neg_i64)),
        }),
        Prim::Add => both(so::add_f64, so::add_i64),
        Prim::Sub => both(so::sub_f64, so::sub_i64),
        Prim::Mul => both(so::mul_f64, so::mul_i64),
        Prim::Div => both(so::div_f64, so::div_i64),
        Prim::Min2 => both(so::min2_f64, so::min2_i64),
        Prim::Max2 => both(so::max2_f64, so::max2_i64),
        Prim::Pow => both(so::pow_f64, so::pow_i64),
        _ => None,
    }
}

/// Plan every block of a lowered program. Index 0 of the result is the
/// region list of block 0, and so on; each list is sorted by `start`
/// and regions never overlap.
pub(crate) fn plan_program(p: &Program) -> Vec<Vec<FusedRegion>> {
    p.blocks.iter().map(|b| plan_block(p, b)).collect()
}

fn plan_block(p: &Program, block: &Block) -> Vec<FusedRegion> {
    let ops = &block.ops;
    let mut regions = Vec::new();
    let mut i = 0;
    while i < ops.len() {
        // Grow the longest run from `i` that keeps at least one dtype
        // table viable.
        let mut f_ok = true;
        let mut i_ok = true;
        let mut specs: Vec<OpSpec<'_>> = Vec::new();
        let mut j = i;
        while j < ops.len() {
            let Op::Compute { outs, prim, ins } = &ops[j] else {
                break;
            };
            if outs.len() != 1 {
                break;
            }
            let Some(k) = kernels_of(prim) else { break };
            let nf = f_ok && k.f.is_some();
            let ni = i_ok && k.i.is_some();
            if !nf && !ni {
                break;
            }
            f_ok = nf;
            i_ok = ni;
            specs.push((prim, ins, &outs[0], k));
            j += 1;
        }
        if j - i >= 2 {
            regions.push(finalize(p, block, i, j, f_ok, i_ok, &specs));
            i = j;
        } else {
            i += 1;
        }
    }
    regions
}

fn finalize(
    p: &Program,
    block: &Block,
    start: usize,
    end: usize,
    f_ok: bool,
    i_ok: bool,
    specs: &[OpSpec<'_>],
) -> FusedRegion {
    // Resolve operand sources in op order: a var defined earlier in the
    // region reads the per-element register; anything else is an
    // external input at its pre-region value (all write-backs happen
    // after the compute loop, so this matches per-op execution order).
    let mut def_of: BTreeMap<Var, usize> = BTreeMap::new();
    let mut exts: Vec<Var> = Vec::new();
    let mut srcs: Vec<(Src, Src)> = Vec::new();
    for (d, (_, ins, out, _)) in specs.iter().enumerate() {
        let mut src_of = |v: &Var| -> Src {
            if let Some(&dd) = def_of.get(v) {
                Src::Def(dd)
            } else if let Some(x) = exts.iter().position(|e| e == v) {
                Src::Ext(x)
            } else {
                exts.push(v.clone());
                Src::Ext(exts.len() - 1)
            }
        };
        let dummy = Src::Def(0); // never read by consts
        let (a, b) = match ins.len() {
            0 => (dummy, dummy),
            1 => (src_of(&ins[0]), dummy),
            _ => (src_of(&ins[0]), src_of(&ins[1])),
        };
        srcs.push((a, b));
        def_of.insert(out.0.clone(), d);
    }

    // A result must materialize as a tensor when it outlives the region:
    // persistent variables and stack pushes always do; a temporary does
    // when its *final* region def is read after the region, branches the
    // terminator, or names a program output.
    let cond = match &block.term {
        Terminator::Branch { cond, .. } => Some(cond),
        _ => None,
    };
    let used_after = |v: &Var| -> bool {
        block.ops[end..].iter().any(|op| match op {
            Op::Compute { ins, .. } => ins.contains(v),
            Op::Pop { .. } => false,
        }) || cond == Some(v)
            || p.outputs.contains(v)
    };
    let mut ops_meta = Vec::with_capacity(specs.len());
    let mut mats = Vec::new();
    for (d, (prim, ins, out, _)) in specs.iter().enumerate() {
        let (v, kind) = out;
        let persistent = p.class_of(v).is_some();
        let last_def = def_of.get(v) == Some(&d);
        let materialize = persistent || *kind == WriteKind::Push || (last_def && used_after(v));
        if materialize {
            mats.push(d);
        }
        ops_meta.push(RegionOp {
            prim: (*prim).clone(),
            n_ins: ins.len(),
            out: (*out).clone(),
        });
    }

    let f64_exec = f_ok.then(|| {
        specs
            .iter()
            .zip(&srcs)
            .map(|((_, _, _, k), &(a, b))| ExecOp {
                kernel: k.f.expect("f64 table viable"),
                a,
                b,
            })
            .collect()
    });
    let i64_exec = i_ok.then(|| {
        specs
            .iter()
            .zip(&srcs)
            .map(|((_, _, _, k), &(a, b))| ExecOp {
                kernel: k.i.expect("i64 table viable"),
                a,
                b,
            })
            .collect()
    });
    let tags: Vec<String> = specs.iter().map(|(prim, ..)| prim.kernel_tag()).collect();
    FusedRegion {
        start,
        len: end - start,
        exts,
        ops: ops_meta,
        mats,
        f64_exec,
        i64_exec,
        kernel_tag: format!("fused[{}]", tags.join("+")),
    }
}

/// Evaluate one region over `members × el` elements: `regs` holds the
/// per-element virtual registers (one per op), `exts` the external
/// input slices, and each materialized def appends its value to the
/// matching buffer in `out_bufs` (parallel to `mats`).
///
/// An external flagged in `ext_bcast` holds one value per *member*
/// (`[Z]` against a `[Z, el]` region); it is read at the member index,
/// exactly reproducing the NumPy-style broadcast the per-op kernels
/// apply. All other slices hold `members × el` values.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_region<T: Copy + Default>(
    table: &[ExecOp<T>],
    exts: &[&[T]],
    ext_bcast: &[bool],
    members: usize,
    el: usize,
    regs: &mut Vec<T>,
    mats: &[usize],
    def_wide: &[bool],
    out_bufs: &mut [Vec<T>],
) {
    regs.clear();
    regs.resize(table.len(), T::default());
    for r in 0..members {
        for c in 0..el {
            let e = r * el + c;
            for (d, op) in table.iter().enumerate() {
                let read = |s: Src, regs: &[T]| -> T {
                    match s {
                        Src::Def(dd) => regs[dd],
                        Src::Ext(x) => {
                            if ext_bcast[x] {
                                exts[x][r]
                            } else {
                                exts[x][e]
                            }
                        }
                    }
                };
                regs[d] = match op.kernel {
                    Kernel::Const(c) => c,
                    Kernel::Un(f) => f(read(op.a, regs)),
                    Kernel::Bin(f) => f(read(op.a, regs), read(op.b, regs)),
                };
            }
            for (buf, &d) in out_bufs.iter_mut().zip(mats) {
                // Member-narrow defs materialize one value per member
                // (their value is constant across the element axis),
                // matching the `[rows]` tensors the per-op path builds.
                if def_wide[d] || c == 0 {
                    buf.push(regs[d]);
                }
            }
        }
    }
}

/// Per-def wideness: whether each def's per-op result spans the full
/// element shape (vs one value per member). A def is wide when any
/// source is a full-width external or a wide def; constant-only and
/// member-broadcast-only defs stay member-narrow, matching the shapes
/// the per-op kernels would produce.
pub(crate) fn def_wideness<T: Copy>(table: &[ExecOp<T>], ext_bcast: &[bool], wide: &mut Vec<bool>) {
    wide.clear();
    for (d, op) in table.iter().enumerate() {
        let src_wide = |s: Src, wide: &Vec<bool>| match s {
            Src::Ext(x) => !ext_bcast[x],
            Src::Def(dd) => dd < d && wide[dd],
        };
        let w = match op.kernel {
            Kernel::Const(_) => false,
            Kernel::Un(_) => src_wide(op.a, wide),
            Kernel::Bin(_) => src_wide(op.a, wide) || src_wide(op.b, wide),
        };
        wide.push(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobatch_ir::BlockId;

    fn v(name: &str) -> Var {
        Var::new(name)
    }

    fn compute(out: &str, prim: Prim, ins: &[&str]) -> Op {
        Op::Compute {
            outs: vec![(v(out), WriteKind::Update)],
            prim,
            ins: ins.iter().map(|s| v(s)).collect(),
        }
    }

    fn program_with(block: Block) -> Program {
        Program {
            blocks: vec![block],
            entry: BlockId(0),
            inputs: vec![v("x")],
            outputs: vec![v("x")],
            classes: [(v("x"), autobatch_ir::pcab::VarClass::Register)]
                .into_iter()
                .collect(),
        }
    }

    #[test]
    fn plans_a_simple_chain_with_dead_temps() {
        // t0 = exp(x); t1 = mul(t0, x); x = id(t1) — only the final
        // register write materializes.
        let block = Block {
            ops: vec![
                compute("t0", Prim::Exp, &["x"]),
                compute("t1", Prim::Mul, &["t0", "x"]),
                compute("x", Prim::Id, &["t1"]),
            ],
            term: Terminator::Return,
        };
        let p = program_with(block);
        let regions = plan_block(&p, &p.blocks[0]);
        assert_eq!(regions.len(), 1);
        let r = &regions[0];
        assert_eq!((r.start, r.len), (0, 3));
        assert_eq!(r.exts, vec![v("x")]);
        assert_eq!(r.mats, vec![2]);
        assert!(r.f64_exec.is_some(), "exp chain compiles for f64");
        assert!(r.i64_exec.is_none(), "exp is f64-only");
        assert_eq!(r.kernel_tag, "fused[exp+mul+id]");
    }

    #[test]
    fn dtype_conflict_cuts_the_region() {
        // exp (f64-only) then negi (i64-only) cannot share a loop.
        let block = Block {
            ops: vec![
                compute("t0", Prim::Exp, &["x"]),
                compute("t1", Prim::Exp, &["t0"]),
                compute("t2", Prim::NegI, &["x"]),
                compute("x", Prim::Id, &["t2"]),
            ],
            term: Terminator::Return,
        };
        let p = program_with(block);
        let regions = plan_block(&p, &p.blocks[0]);
        assert_eq!(regions.len(), 2);
        assert_eq!((regions[0].start, regions[0].len), (0, 2));
        assert_eq!((regions[1].start, regions[1].len), (2, 2));
        assert!(regions[1].f64_exec.is_none());
        assert!(regions[1].i64_exec.is_some());
    }

    #[test]
    fn temp_read_by_terminator_materializes() {
        let block = Block {
            ops: vec![
                compute("t0", Prim::ConstF64(1.0), &[]),
                compute("t1", Prim::Add, &["x", "t0"]),
            ],
            term: Terminator::Branch {
                cond: v("t1"),
                then_: BlockId(0),
                else_: BlockId(0),
            },
        };
        let p = program_with(block);
        let regions = plan_block(&p, &p.blocks[0]);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].mats, vec![1], "branch cond must materialize");
    }

    #[test]
    fn non_elementwise_ops_break_regions() {
        let block = Block {
            ops: vec![
                compute("t0", Prim::ConstF64(2.0), &[]),
                compute("t1", Prim::Mul, &["x", "t0"]),
                compute("t2", Prim::SumElems, &["t1"]),
                compute("t3", Prim::ConstF64(1.0), &[]),
            ],
            term: Terminator::Return,
        };
        let p = program_with(block);
        let regions = plan_block(&p, &p.blocks[0]);
        // [const, mul] fuse; sum_elems breaks; a lone trailing const is
        // not worth a region.
        assert_eq!(regions.len(), 1);
        assert_eq!((regions[0].start, regions[0].len), (0, 2));
    }

    #[test]
    fn every_compiled_kernel_is_classified_elementwise() {
        // `kernels_of` ⊆ `Prim::is_elementwise`: the fused fast path
        // must never compile a primitive the IR does not certify as a
        // pure elementwise map.
        for prim in [
            Prim::ConstF64(1.5),
            Prim::ConstI64(2),
            Prim::Id,
            Prim::Neg,
            Prim::Abs,
            Prim::Exp,
            Prim::Ln,
            Prim::Sqrt,
            Prim::Square,
            Prim::Sigmoid,
            Prim::Softplus,
            Prim::Floor,
            Prim::Sin,
            Prim::Cos,
            Prim::Tanh,
            Prim::NegI,
            Prim::Add,
            Prim::Sub,
            Prim::Mul,
            Prim::Div,
            Prim::Min2,
            Prim::Max2,
            Prim::Pow,
        ] {
            assert!(kernels_of(&prim).is_some(), "{prim:?} should compile");
            assert!(prim.is_elementwise(), "{prim:?} must be elementwise");
        }
        for prim in [
            Prim::SumElems,
            Prim::Dot,
            Prim::RandNormal,
            Prim::external("grad"),
        ] {
            assert!(kernels_of(&prim).is_none(), "{prim:?} must not compile");
        }
    }

    #[test]
    fn run_region_evaluates_chains_per_element() {
        // y = (x + 1) * x over 3 elements.
        let table = vec![
            ExecOp {
                kernel: Kernel::Const(1.0),
                a: Src::Def(0),
                b: Src::Def(0),
            },
            ExecOp {
                kernel: Kernel::Bin(so::add_f64),
                a: Src::Ext(0),
                b: Src::Def(0),
            },
            ExecOp {
                kernel: Kernel::Bin(so::mul_f64),
                a: Src::Def(1),
                b: Src::Ext(0),
            },
        ];
        let x = [1.0f64, 2.0, 3.0];
        let mut regs = Vec::new();
        let mut bufs = vec![Vec::new()];
        run_region(
            &table,
            &[&x],
            &[false],
            3,
            1,
            &mut regs,
            &[2],
            &[false, true, true],
            &mut bufs,
        );
        assert_eq!(bufs[0], vec![2.0, 6.0, 12.0]);
    }

    #[test]
    fn run_region_broadcasts_member_scalars() {
        // y = x_wide * s_member over 2 members × 3 elements.
        let table = vec![ExecOp {
            kernel: Kernel::Bin(so::mul_f64),
            a: Src::Ext(0),
            b: Src::Ext(1),
        }];
        let xw = [1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0]; // [2, 3]
        let sm = [10.0f64, 100.0]; // [2]
        let mut regs = Vec::new();
        let mut bufs = vec![Vec::new()];
        run_region(
            &table,
            &[&xw, &sm],
            &[false, true],
            2,
            3,
            &mut regs,
            &[0],
            &[true],
            &mut bufs,
        );
        assert_eq!(bufs[0], vec![10.0, 20.0, 30.0, 400.0, 500.0, 600.0]);
    }

    /// The static analyzer's `elementwise_spans` must agree, span for
    /// span, with the runtime planner on every block of real lowered
    /// programs and on the synthetic cases above. This is the contract
    /// that lets `irlint` report fusion legality without executing.
    #[test]
    fn static_spans_match_runtime_plan() {
        use crate::lowering::lower;
        use crate::options::LoweringOptions;
        use autobatch_ir::analysis::elementwise_spans;
        use autobatch_ir::build::fibonacci_program;

        let check = |p: &Program| {
            let planned: Vec<Vec<(usize, usize)>> = plan_program(p)
                .iter()
                .map(|regs| regs.iter().map(|r| (r.start, r.len)).collect())
                .collect();
            assert_eq!(elementwise_spans(p), planned);
        };

        let (fib, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        check(&fib);

        // A block mixing f64-only, i64-only, and unfusable ops.
        let block = Block {
            ops: vec![
                compute("t0", Prim::Exp, &["x"]),
                compute("t1", Prim::Mul, &["t0", "x"]),
                compute("t2", Prim::NegI, &["n"]),
                compute("t3", Prim::Id, &["t2"]),
                compute("x", Prim::SumElems, &["t1"]),
            ],
            term: Terminator::Return,
        };
        check(&program_with(block));
    }
}
