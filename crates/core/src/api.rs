//! The one-stop [`Autobatcher`] facade.

use autobatch_accel::Trace;
use autobatch_ir::{lsab, pcab};
use autobatch_tensor::Tensor;

use crate::dynamic_vm::DynamicVm;
use crate::error::Result;
use crate::kernels::KernelRegistry;
use crate::lowering::{lower, LoweringStats};
use crate::lsab_vm::LocalStaticVm;
use crate::options::{ExecOptions, LoweringOptions};
use crate::pc_vm::PcVm;

/// Ties the pipeline together: validate a single-example program once,
/// then run it batched under either autobatching strategy.
///
/// # Examples
///
/// ```
/// use autobatch_core::Autobatcher;
/// use autobatch_ir::build::fibonacci_program;
/// use autobatch_tensor::Tensor;
///
/// let ab = Autobatcher::new(fibonacci_program())?;
/// let batch = vec![Tensor::from_i64(&[6, 7, 8, 9], &[4])?];
/// // Local static autobatching (host recursion)...
/// let local = ab.run_local(&batch, None)?;
/// // ...and program-counter autobatching (explicit stacks) agree.
/// let pc = ab.run_pc(&batch, None)?;
/// assert_eq!(local, pc);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Autobatcher {
    program: lsab::Program,
    lowered: pcab::Program,
    stats: LoweringStats,
    registry: KernelRegistry,
    exec: ExecOptions,
}

impl Autobatcher {
    /// Validate `program` and compile its program-counter form with
    /// default options.
    ///
    /// # Errors
    ///
    /// Returns an error if the program fails validation or lowering.
    pub fn new(program: lsab::Program) -> Result<Autobatcher> {
        Autobatcher::with_options(
            program,
            KernelRegistry::new(),
            ExecOptions::default(),
            LoweringOptions::default(),
        )
    }

    /// Full-control constructor.
    ///
    /// # Errors
    ///
    /// Returns an error if the program fails validation or lowering.
    pub fn with_options(
        program: lsab::Program,
        registry: KernelRegistry,
        exec: ExecOptions,
        lowering: LoweringOptions,
    ) -> Result<Autobatcher> {
        program.validate()?;
        let (lowered, stats) = lower(&program, lowering)?;
        Ok(Autobatcher {
            program,
            lowered,
            stats,
            registry,
            exec,
        })
    }

    /// The single-example source program.
    pub fn program(&self) -> &lsab::Program {
        &self.program
    }

    /// The compiled program-counter form.
    pub fn lowered(&self) -> &pcab::Program {
        &self.lowered
    }

    /// Compile-time statistics of the lowering.
    pub fn lowering_stats(&self) -> LoweringStats {
        self.stats
    }

    /// The execution options used by both runtimes.
    pub fn exec_options(&self) -> ExecOptions {
        self.exec
    }

    /// Run the batch under local static autobatching (Algorithm 1).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors; see [`LocalStaticVm::run`].
    pub fn run_local(&self, inputs: &[Tensor], trace: Option<&mut Trace>) -> Result<Vec<Tensor>> {
        LocalStaticVm::new(&self.program, self.registry.clone(), self.exec).run(inputs, trace)
    }

    /// Run the batch under program-counter autobatching (Algorithm 2).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors; see [`PcVm::run`].
    pub fn run_pc(&self, inputs: &[Tensor], trace: Option<&mut Trace>) -> Result<Vec<Tensor>> {
        PcVm::new(&self.lowered, self.registry.clone(), self.exec).run(inputs, trace)
    }

    /// Run the batch under dynamic (on-the-fly) batching — the
    /// related-work baseline architecture of paper §5; see [`DynamicVm`].
    ///
    /// # Errors
    ///
    /// Propagates runtime errors; see [`DynamicVm::run`].
    pub fn run_dynamic(&self, inputs: &[Tensor], trace: Option<&mut Trace>) -> Result<Vec<Tensor>> {
        DynamicVm::new(&self.program, self.registry.clone(), self.exec).run(inputs, trace)
    }
}

/// Batch a *non-recursive* program the way `jax.vmap` or TensorFlow's
/// `pfor` would (paper §5): validate that no call can re-enter its
/// caller, then run the batch through program-counter autobatching —
/// which, thanks to the paper's optimizations 2–3, executes such
/// programs entirely without data stacks.
///
/// # Errors
///
/// Returns [`IrError::BadVarClass`](autobatch_ir::IrError) wrapped in
/// [`VmError::Ir`](crate::VmError::Ir) if the program is recursive (use [`Autobatcher`] for
/// that — the whole point of the paper is that it can), or any
/// validation/lowering error.
///
/// # Examples
///
/// ```
/// use autobatch_core::vmap;
/// use autobatch_lang::compile;
/// use autobatch_tensor::Tensor;
///
/// let program = compile(
///     "fn poly(x: float) -> (y: float) { y = x * x + 1.0; }",
///     "poly",
/// ).expect("compiles");
/// let f = vmap(program)?;
/// let out = f.call(&[Tensor::from_f64(&[1.0, 2.0, 3.0], &[3])?], None)?;
/// assert_eq!(out[0].as_f64()?, &[2.0, 5.0, 10.0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn vmap(program: lsab::Program) -> Result<BatchedFn> {
    BatchedFn::new(program, KernelRegistry::new(), ExecOptions::default())
}

/// A batched non-recursive function produced by [`vmap`].
#[derive(Debug)]
pub struct BatchedFn {
    inner: Autobatcher,
}

impl BatchedFn {
    /// Build with explicit kernels and options; rejects recursion.
    ///
    /// # Errors
    ///
    /// See [`vmap`].
    pub fn new(
        program: lsab::Program,
        registry: KernelRegistry,
        exec: ExecOptions,
    ) -> Result<BatchedFn> {
        let cg = autobatch_ir::analysis::CallGraph::new(&program);
        for i in 0..program.funcs.len() {
            let fid = autobatch_ir::FuncId(i);
            if cg.is_recursive_func(fid) {
                return Err(autobatch_ir::IrError::BadVarClass {
                    var: autobatch_ir::Var::new(&program.funcs[i].name),
                    what: "vmap requires a non-recursive program (use Autobatcher)".into(),
                }
                .into());
            }
        }
        let inner = Autobatcher::with_options(program, registry, exec, LoweringOptions::default())?;
        debug_assert_eq!(
            inner.lowering_stats().stacked_vars,
            0,
            "non-recursive programs lower without data stacks (paper §3)"
        );
        Ok(BatchedFn { inner })
    }

    /// Apply to a batch (axis 0 = batch).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn call(&self, inputs: &[Tensor], trace: Option<&mut Trace>) -> Result<Vec<Tensor>> {
        self.inner.run_pc(inputs, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobatch_ir::build::fibonacci_program;

    #[test]
    fn vmap_rejects_recursion_and_runs_loops() {
        assert!(vmap(fibonacci_program()).is_err());
        let program = autobatch_lang::compile(
            "fn collatz_steps(n: int) -> (steps: int) {
                steps = 0;
                let x = n;
                while x > 1 {
                    let half = x / 2;
                    let odd = x - 2 * half;
                    if odd == 1 { x = 3 * x + 1; } else { x = half; }
                    steps = steps + 1;
                }
            }",
            "collatz_steps",
        )
        .expect("compiles");
        let f = vmap(program).expect("non-recursive");
        let out = f
            .call(&[Tensor::from_i64(&[1, 6, 27], &[3]).unwrap()], None)
            .unwrap();
        assert_eq!(out[0].as_i64().unwrap(), &[0, 8, 111]);
    }

    #[test]
    fn facade_agreement() {
        let ab = Autobatcher::new(fibonacci_program()).unwrap();
        let inputs = vec![Tensor::from_i64(&[1, 5, 10], &[3]).unwrap()];
        assert_eq!(
            ab.run_local(&inputs, None).unwrap(),
            ab.run_pc(&inputs, None).unwrap()
        );
        assert!(ab.lowering_stats().blocks >= ab.program().funcs[0].blocks.len());
        assert_eq!(ab.exec_options().seed, 0);
        assert!(!ab.lowered().blocks.is_empty());
    }
}
