//! Error type for the autobatching runtimes and the lowering pipeline.

use std::fmt;

use autobatch_ir::{IrError, Var};
use autobatch_tensor::TensorError;

/// Errors raised while compiling or executing an autobatched program.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// A tensor kernel failed (shape/dtype mismatch in user data).
    Tensor(TensorError),
    /// The program itself is malformed.
    Ir(IrError),
    /// A variable was read before any member assigned it.
    Unbound {
        /// The variable.
        var: Var,
        /// Where the read occurred.
        context: String,
    },
    /// A stacked variable (or the program counter) exceeded the stack
    /// depth limit `D`.
    StackOverflow {
        /// The variable (or `%pc`).
        var: Var,
        /// The configured depth limit.
        limit: usize,
    },
    /// A `Pop` (or `Return`) on an empty stack — indicates a compiler bug
    /// or a hand-written program with unbalanced stack discipline.
    StackUnderflow {
        /// The variable (or `%pc`).
        var: Var,
    },
    /// The superstep limit was exceeded (non-terminating batch member or
    /// block-selection starvation).
    StepLimit {
        /// The configured limit.
        limit: u64,
    },
    /// The host-recursion depth limit was exceeded (local static
    /// autobatching only).
    HostRecursionLimit {
        /// The configured limit.
        limit: usize,
    },
    /// A primitive referred to an external kernel that is not registered.
    UnknownKernel {
        /// The kernel name.
        name: String,
    },
    /// An external kernel was invoked with the wrong operand counts.
    KernelArity {
        /// The kernel name.
        name: String,
        /// Expected (inputs, outputs).
        expected: (usize, usize),
        /// Provided (inputs, outputs).
        got: (usize, usize),
    },
    /// Batch inputs disagreed on batch size or arity.
    BadInputs {
        /// Description of the disagreement.
        what: String,
    },
    /// A deterministic fault-injection schedule
    /// ([`FaultPlan`](autobatch_chaos::FaultPlan)) fired at this site.
    /// Never raised in production (the default plan is inert).
    Injected {
        /// Name of the injection site that fired.
        point: &'static str,
        /// The site's counter value when it fired.
        counter: u64,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Tensor(e) => write!(f, "tensor error: {e}"),
            VmError::Ir(e) => write!(f, "ir error: {e}"),
            VmError::Unbound { var, context } => {
                write!(f, "variable `{var}` read before assignment ({context})")
            }
            VmError::StackOverflow { var, limit } => {
                write!(f, "stack overflow on `{var}` (depth limit {limit})")
            }
            VmError::StackUnderflow { var } => write!(f, "stack underflow on `{var}`"),
            VmError::StepLimit { limit } => {
                write!(
                    f,
                    "superstep limit {limit} exceeded (non-terminating member?)"
                )
            }
            VmError::HostRecursionLimit { limit } => {
                write!(f, "host recursion depth limit {limit} exceeded")
            }
            VmError::UnknownKernel { name } => write!(f, "unknown external kernel `{name}`"),
            VmError::KernelArity {
                name,
                expected,
                got,
            } => write!(
                f,
                "kernel `{name}` arity mismatch: expected {}/{} in/out, got {}/{}",
                expected.0, expected.1, got.0, got.1
            ),
            VmError::BadInputs { what } => write!(f, "bad batch inputs: {what}"),
            VmError::Injected { point, counter } => {
                write!(f, "injected fault at {point} (counter {counter})")
            }
        }
    }
}

impl std::error::Error for VmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmError::Tensor(e) => Some(e),
            VmError::Ir(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for VmError {
    fn from(e: TensorError) -> VmError {
        VmError::Tensor(e)
    }
}

impl From<IrError> for VmError {
    fn from(e: IrError) -> VmError {
        VmError::Ir(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, VmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = VmError::StackOverflow {
            var: Var::new("n"),
            limit: 32,
        };
        assert!(e.to_string().contains("n"));
        let t: VmError = TensorError::MaskLength {
            expected: 1,
            got: 2,
        }
        .into();
        assert!(std::error::Error::source(&t).is_some());
    }
}
