//! Batched evaluation of [`Prim`]s, the external-kernel registry, and
//! per-op cost accounting for the simulated accelerator.
//!
//! Both virtual machines funnel every primitive through [`eval_prim`]:
//! inputs arrive as tensors whose axis 0 is the batch of *rows being
//! processed* (the whole batch under masking, the active subset under
//! gather/scatter), accompanied by the original member id of each row so
//! counter-based RNG draws are independent of execution strategy.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use autobatch_ir::{Arity, Prim};
use autobatch_tensor::{CounterRng, Tensor};

use crate::error::{Result, VmError};

/// A batched kernel registered by name and invoked via
/// [`Prim::External`] — e.g. a model's log-density gradient.
///
/// Implementations must treat batch members independently (the contract
/// every batching argument in the paper rests on).
pub trait ExternalKernel: Send + Sync + fmt::Debug {
    /// Input/output operand counts.
    fn arity(&self) -> Arity;
    /// Evaluate on a batch: every input has the same axis-0 length, and
    /// every output must too.
    ///
    /// # Errors
    ///
    /// Returns a tensor error on shape/dtype violations.
    fn eval(&self, inputs: &[Tensor]) -> autobatch_tensor::Result<Vec<Tensor>>;
    /// Floating-point work per batch member, for the cost model.
    fn flops_per_member(&self, inputs: &[Tensor]) -> f64;
    /// Independent elements the kernel can process in parallel *per
    /// member* (e.g. a logistic-regression gradient parallelizes over its
    /// data rows, not just its output coordinates). Defaults to the first
    /// input's per-member element count.
    fn parallel_per_member(&self, inputs: &[Tensor]) -> usize {
        inputs
            .first()
            .map(|t| {
                if t.rank() <= 1 {
                    1
                } else {
                    t.len() / t.shape()[0].max(1)
                }
            })
            .unwrap_or(1)
    }
}

/// A registry of external kernels, keyed by name.
#[derive(Debug, Default, Clone)]
pub struct KernelRegistry {
    kernels: BTreeMap<String, Arc<dyn ExternalKernel>>,
}

impl KernelRegistry {
    /// An empty registry.
    pub fn new() -> KernelRegistry {
        KernelRegistry::default()
    }

    /// Register (or replace) a kernel under `name`.
    pub fn register(&mut self, name: impl Into<String>, kernel: Arc<dyn ExternalKernel>) {
        self.kernels.insert(name.into(), kernel);
    }

    /// Look up a kernel.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::UnknownKernel`] if absent.
    pub fn get(&self, name: &str) -> Result<&Arc<dyn ExternalKernel>> {
        self.kernels
            .get(name)
            .ok_or_else(|| VmError::UnknownKernel {
                name: name.to_string(),
            })
    }

    /// Names of all registered kernels.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.kernels.keys().map(String::as_str)
    }
}

/// Pad the lower-rank operand with singleton element dimensions so that
/// per-member broadcasting works: `[Z]` against `[Z, d]` becomes
/// `[Z, 1]` against `[Z, d]`.
fn align_pair(a: &Tensor, b: &Tensor) -> Result<(Tensor, Tensor)> {
    let (ra, rb) = (a.rank(), b.rank());
    if ra == rb {
        return Ok((a.clone(), b.clone()));
    }
    if ra < rb {
        let mut shape = a.shape().to_vec();
        shape.extend(std::iter::repeat_n(1, rb - ra));
        Ok((a.reshape(&shape)?, b.clone()))
    } else {
        let mut shape = b.shape().to_vec();
        shape.extend(std::iter::repeat_n(1, ra - rb));
        Ok((a.clone(), b.reshape(&shape)?))
    }
}

/// Evaluate one primitive on a batch of rows.
///
/// - `inputs`: operand tensors, axis 0 = rows (length `members.len()`).
/// - `members`: original batch-member id of each row (RNG independence).
/// - `rng`: the counter-based random source.
/// - `registry`: external kernels.
///
/// Returns one tensor per primitive output.
///
/// # Errors
///
/// Returns arity, dtype, shape, or unknown-kernel errors.
pub fn eval_prim(
    prim: &Prim,
    inputs: &[Tensor],
    members: &[u64],
    rng: &CounterRng,
    registry: &KernelRegistry,
) -> Result<Vec<Tensor>> {
    let rows = members.len();
    if let Some(a) = prim.arity() {
        if inputs.len() != a.ins {
            return Err(VmError::KernelArity {
                name: prim.to_string(),
                expected: (a.ins, a.outs),
                got: (inputs.len(), a.outs),
            });
        }
    }
    let one = |t: Tensor| -> Result<Vec<Tensor>> { Ok(vec![t]) };
    match prim {
        Prim::ConstF64(c) => one(Tensor::full(&[rows], *c)),
        Prim::ConstI64(c) => one(Tensor::full(&[rows], *c)),
        Prim::ConstBool(c) => one(Tensor::full(&[rows], *c)),
        Prim::FillLike(c) => one(Tensor::full(inputs[0].shape(), *c)),
        Prim::Id => one(inputs[0].clone()),
        Prim::Neg => one(inputs[0].neg()?),
        Prim::Abs => one(inputs[0].abs()?),
        Prim::Exp => one(inputs[0].exp()?),
        Prim::Ln => one(inputs[0].ln()?),
        Prim::Sqrt => one(inputs[0].sqrt()?),
        Prim::Square => one(inputs[0].square()?),
        Prim::Sigmoid => one(inputs[0].sigmoid()?),
        Prim::Softplus => one(inputs[0].softplus()?),
        Prim::Floor => one(inputs[0].floor()?),
        Prim::Sin => one(inputs[0].sin()?),
        Prim::Cos => one(inputs[0].cos()?),
        Prim::Tanh => one(inputs[0].tanh()?),
        Prim::NegI => one(inputs[0].neg_i64()?),
        Prim::Not => one(inputs[0].not()?),
        Prim::Add
        | Prim::Sub
        | Prim::Mul
        | Prim::Div
        | Prim::Pow
        | Prim::Min2
        | Prim::Max2
        | Prim::Lt
        | Prim::Le
        | Prim::Gt
        | Prim::Ge
        | Prim::EqE
        | Prim::NeE
        | Prim::And
        | Prim::Or
        | Prim::Xor => {
            let (a, b) = align_pair(&inputs[0], &inputs[1])?;
            let r = match prim {
                Prim::Add => a.add(&b)?,
                Prim::Sub => a.sub(&b)?,
                Prim::Mul => a.mul(&b)?,
                Prim::Div => a.div(&b)?,
                Prim::Pow => a.pow(&b)?,
                Prim::Min2 => a.min2(&b)?,
                Prim::Max2 => a.max2(&b)?,
                Prim::Lt => a.lt(&b)?,
                Prim::Le => a.le(&b)?,
                Prim::Gt => a.gt(&b)?,
                Prim::Ge => a.ge(&b)?,
                Prim::EqE => a.eq_elem(&b)?,
                Prim::NeE => a.ne_elem(&b)?,
                Prim::And => a.and(&b)?,
                Prim::Or => a.or(&b)?,
                Prim::Xor => a.xor(&b)?,
                _ => unreachable!(),
            };
            one(r)
        }
        Prim::Select => {
            let (a, b) = align_pair(&inputs[1], &inputs[2])?;
            let (c, a2) = align_pair(&inputs[0], &a)?;
            let (_, b2) = align_pair(&inputs[0], &b)?;
            one(c.select(&a2, &b2)?)
        }
        Prim::ToF64 => one(inputs[0].to_f64()),
        Prim::ToI64 => one(inputs[0].to_i64()),
        Prim::ToBool => one(inputs[0].to_bool()),
        Prim::SumElems => one(inputs[0].sum_last_axis()?),
        Prim::Dot => one(inputs[0].dot_last_axis(&inputs[1])?),
        Prim::RandUniform | Prim::RandNormal | Prim::RandExponential => {
            let counters = inputs[0].as_i64()?;
            let sample = match prim {
                Prim::RandUniform => rng.uniform_batch_for(members, counters, &[]),
                Prim::RandNormal => rng.normal_batch_for(members, counters, &[]),
                Prim::RandExponential => rng.exponential_batch_for(members, counters, &[]),
                _ => unreachable!(),
            };
            let next = inputs[0].add(&Tensor::scalar(1i64))?;
            Ok(vec![sample, next])
        }
        Prim::RandNormalLike => {
            let counters = inputs[0].as_i64()?;
            let elem = &inputs[1].shape()[1..];
            let sample = rng.normal_batch_for(members, counters, elem);
            let next = inputs[0].add(&Tensor::scalar(1i64))?;
            Ok(vec![sample, next])
        }
        Prim::External(name) => {
            let k = registry.get(name)?;
            let a = k.arity();
            if inputs.len() != a.ins {
                return Err(VmError::KernelArity {
                    name: name.to_string(),
                    expected: (a.ins, a.outs),
                    got: (inputs.len(), a.outs),
                });
            }
            let outs = k.eval(inputs)?;
            if outs.len() != a.outs {
                return Err(VmError::KernelArity {
                    name: name.to_string(),
                    expected: (a.ins, a.outs),
                    got: (inputs.len(), outs.len()),
                });
            }
            Ok(outs)
        }
    }
}

/// Flops and streaming bytes of one primitive evaluation, for pricing.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpCost {
    /// Floating-point work.
    pub flops: f64,
    /// Sequential memory traffic (inputs read + outputs written).
    pub bytes: f64,
    /// Independent elements available for parallel execution.
    pub parallel: usize,
}

/// Compute the cost of a primitive applied to `inputs` producing `outputs`.
pub fn prim_cost(
    prim: &Prim,
    inputs: &[Tensor],
    outputs: &[Tensor],
    registry: &KernelRegistry,
) -> OpCost {
    let in_elems: usize = inputs.iter().map(Tensor::len).max().unwrap_or(0);
    let out_elems: usize = outputs.iter().map(Tensor::len).max().unwrap_or(0);
    let work_elems = in_elems.max(out_elems);
    let bytes: f64 = inputs
        .iter()
        .chain(outputs)
        .map(|t| t.size_bytes() as f64)
        .sum();
    let (flops, parallel) = match prim {
        Prim::External(name) => {
            let rows = outputs.first().or(inputs.first()).map_or(0, |t| {
                if t.rank() == 0 {
                    1
                } else {
                    t.shape()[0]
                }
            });
            match registry.get(name) {
                Ok(k) => (
                    k.flops_per_member(inputs) * rows as f64,
                    k.parallel_per_member(inputs) * rows,
                ),
                Err(_) => (0.0, work_elems),
            }
        }
        p => (p.flops_per_element() * work_elems as f64, work_elems),
    };
    OpCost {
        flops,
        bytes,
        parallel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobatch_tensor::DType;

    fn env() -> (CounterRng, KernelRegistry) {
        (CounterRng::new(1), KernelRegistry::new())
    }

    #[test]
    fn const_produces_batch_width() {
        let (rng, reg) = env();
        let out = eval_prim(&Prim::ConstF64(2.5), &[], &[0, 1, 2], &rng, &reg).unwrap();
        assert_eq!(out[0].shape(), &[3]);
        assert_eq!(out[0].as_f64().unwrap(), &[2.5; 3]);
    }

    #[test]
    fn scalar_vector_broadcast_per_member() {
        let (rng, reg) = env();
        let s = Tensor::from_f64(&[2.0, 3.0], &[2]).unwrap();
        let v = Tensor::from_f64(&[1.0, 1.0, 1.0, 1.0], &[2, 2]).unwrap();
        let out = eval_prim(&Prim::Mul, &[s, v], &[0, 1], &rng, &reg).unwrap();
        assert_eq!(out[0].shape(), &[2, 2]);
        assert_eq!(out[0].as_f64().unwrap(), &[2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn select_broadcasts_condition_over_vectors() {
        let (rng, reg) = env();
        let c = Tensor::from_bool(&[true, false], &[2]).unwrap();
        let a = Tensor::full(&[2, 3], 1.0);
        let b = Tensor::full(&[2, 3], 9.0);
        let out = eval_prim(&Prim::Select, &[c, a, b], &[0, 1], &rng, &reg).unwrap();
        assert_eq!(out[0].as_f64().unwrap(), &[1.0, 1.0, 1.0, 9.0, 9.0, 9.0]);
    }

    #[test]
    fn rng_prims_advance_counter_and_depend_on_member() {
        let (rng, reg) = env();
        let counters = Tensor::from_i64(&[5, 5], &[2]).unwrap();
        let out = eval_prim(
            &Prim::RandUniform,
            std::slice::from_ref(&counters),
            &[0, 1],
            &rng,
            &reg,
        )
        .unwrap();
        let u = out[0].as_f64().unwrap();
        assert_ne!(u[0], u[1], "different members draw differently");
        assert_eq!(out[1].as_i64().unwrap(), &[6, 6]);
        // Same member/counter reproduces.
        let again = eval_prim(&Prim::RandUniform, &[counters], &[0, 1], &rng, &reg).unwrap();
        assert_eq!(again[0].as_f64().unwrap(), u);
    }

    #[test]
    fn rand_normal_like_matches_template_shape() {
        let (rng, reg) = env();
        let counters = Tensor::from_i64(&[0, 1], &[2]).unwrap();
        let template = Tensor::zeros(DType::F64, &[2, 4]);
        let out = eval_prim(
            &Prim::RandNormalLike,
            &[counters, template],
            &[0, 1],
            &rng,
            &reg,
        )
        .unwrap();
        assert_eq!(out[0].shape(), &[2, 4]);
    }

    #[test]
    fn unknown_external_kernel_errors() {
        let (rng, reg) = env();
        let q = Tensor::zeros(DType::F64, &[2, 3]);
        let err = eval_prim(&Prim::external("grad"), &[q], &[0, 1], &rng, &reg);
        assert!(matches!(err, Err(VmError::UnknownKernel { .. })));
    }

    #[derive(Debug)]
    struct Doubler;
    impl ExternalKernel for Doubler {
        fn arity(&self) -> Arity {
            Arity { ins: 1, outs: 1 }
        }
        fn eval(&self, inputs: &[Tensor]) -> autobatch_tensor::Result<Vec<Tensor>> {
            Ok(vec![inputs[0].add(&inputs[0])?])
        }
        fn flops_per_member(&self, inputs: &[Tensor]) -> f64 {
            (inputs[0].len() / inputs[0].shape()[0].max(1)) as f64
        }
    }

    #[test]
    fn external_kernel_roundtrip_and_cost() {
        let (rng, mut reg) = env();
        reg.register("double", Arc::new(Doubler));
        let x = Tensor::from_f64(&[1.0, 2.0], &[2, 1]).unwrap();
        let out = eval_prim(
            &Prim::external("double"),
            std::slice::from_ref(&x),
            &[0, 1],
            &rng,
            &reg,
        )
        .unwrap();
        assert_eq!(out[0].as_f64().unwrap(), &[2.0, 4.0]);
        let cost = prim_cost(&Prim::external("double"), &[x], &out, &reg);
        assert_eq!(cost.flops, 2.0); // 1 flop/member × 2 members
        assert!(cost.bytes > 0.0);
    }

    #[test]
    fn prim_cost_scales_with_elements() {
        let (_, reg) = env();
        let a = Tensor::zeros(DType::F64, &[4, 8]);
        let out = vec![Tensor::zeros(DType::F64, &[4, 8])];
        let c = prim_cost(&Prim::Add, &[a.clone(), a], &out, &reg);
        assert_eq!(c.flops, 32.0);
        assert_eq!(c.parallel, 32);
    }

    #[test]
    fn arity_mismatch_detected() {
        let (rng, reg) = env();
        let x = Tensor::zeros(DType::F64, &[1]);
        assert!(matches!(
            eval_prim(&Prim::Add, &[x], &[0], &rng, &reg),
            Err(VmError::KernelArity { .. })
        ));
    }
}
