//! Dynamic (on-the-fly) batching — the related-work baseline (paper §5).
//!
//! The paper contrasts its two *static* autobatching strategies with
//! *dynamic batching*, exemplified by DyNet's on-the-fly operation
//! batching (Neubig et al., 2017) and TensorFlow Fold (Looks et al.,
//! 2017): "the runtime performs batching dynamically, by running parallel
//! evaluations of the user program against a scheduler that manages the
//! execution and batches opportunistically."
//!
//! [`DynamicVm`] implements that architecture over the same [`lsab`] CFG
//! language the static runtimes consume, so the three strategies are
//! directly comparable on identical programs:
//!
//! - every batch member runs as its own *logical thread*, an ordinary
//!   (host-recursive) single-example interpreter holding 1-row tensors;
//! - a thread suspends whenever it is about to execute a [`Op::Prim`],
//!   posting the op to the scheduler's agenda;
//! - each scheduling round, the agenda is grouped by *kernel signature*
//!   (primitive plus operand dtypes/element shapes); groups execute as
//!   single batched kernel launches and the results are scattered back
//!   to the waiting threads. Which groups launch each round is the
//!   [`DynSchedule`] policy: all of them (depth-based batching) or only
//!   the largest, letting smaller cohorts accumulate members across
//!   rounds (agenda-based batching, the default).
//!
//! Because grouping keys on the signature rather than the program point,
//! dynamic batching can batch threads sitting at *different* syntactic
//! locations (and different recursion depths) whenever they happen to
//! need the same kernel in the same round — more batching power than
//! local static autobatching, without any compile-time analysis. The
//! price, as §5 notes, is runtime overhead: every round the scheduler
//! re-derives the batching schedule from the live agenda, which this
//! implementation charges to the host via
//! [`Trace::add_host_time`](autobatch_accel::Trace::add_host_time).
//!
//! Control flow (jumps, branches, calls, returns) happens inside each
//! logical thread on the host, exactly as DyNet leaves Python control
//! flow to Python — so, like local static autobatching and unlike
//! program-counter autobatching, this runtime is unusable under a
//! graph-compiled/XLA execution model.

use std::collections::BTreeMap;

use autobatch_accel::{LaunchRecord, Trace};
use autobatch_ir::lsab::{Op, Program, Terminator};
use autobatch_ir::{Prim, Var};
use autobatch_tensor::{CounterRng, Tensor};

use crate::error::{Result, VmError};
use crate::kernels::{eval_prim, prim_cost, KernelRegistry};
use crate::options::{DynSchedule, ExecOptions};

/// Host-side scheduler cost per agenda entry per round, seconds.
///
/// Models the per-node agenda maintenance of on-the-fly batchers (DyNet
/// reports microsecond-scale per-node costs); only affects priced traces,
/// never results.
const SCHED_SECONDS_PER_ENTRY: f64 = 2e-6;

/// A snapshot handed to an observer after every scheduling round.
#[derive(Debug)]
pub struct DynObservation<'a> {
    /// The round number (1-based).
    pub round: u64,
    /// Number of threads still running at the start of the round.
    pub runnable: usize,
    /// The groups the scheduler formed this round: kernel tag and the
    /// number of threads batched into the launch.
    pub groups: &'a [(String, usize)],
}

/// Callback invoked after every scheduling round.
pub type DynObserver<'o> = dyn FnMut(&DynObservation<'_>) + 'o;

/// The dynamic-batching virtual machine.
///
/// # Examples
///
/// ```
/// use autobatch_core::{DynamicVm, ExecOptions, KernelRegistry};
/// use autobatch_ir::build::fibonacci_program;
/// use autobatch_tensor::Tensor;
///
/// let program = fibonacci_program();
/// let vm = DynamicVm::new(&program, KernelRegistry::new(), ExecOptions::default());
/// let out = vm.run(&[Tensor::from_i64(&[3, 7, 4, 5], &[4])?], None)?;
/// assert_eq!(out[0].as_i64()?, &[3, 21, 5, 8]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DynamicVm<'p> {
    program: &'p Program,
    registry: KernelRegistry,
    opts: ExecOptions,
}

/// One call frame of a logical thread.
#[derive(Debug)]
struct Frame {
    func: usize,
    block: usize,
    op: usize,
    env: BTreeMap<Var, Tensor>,
    /// Output variables of an in-flight call launched from this frame.
    call_outs: Option<Vec<Var>>,
}

/// A suspended primitive, waiting on the agenda.
#[derive(Debug)]
struct PrimRequest {
    prim: Prim,
    ins: Vec<Tensor>,
    outs: Vec<Var>,
}

/// One batch member's logical thread.
#[derive(Debug)]
struct Thread {
    member: u64,
    frames: Vec<Frame>,
    pending: Option<PrimRequest>,
    result: Option<Vec<Tensor>>,
}

/// What a thread does when advanced.
enum Advance {
    Suspended,
    Finished,
}

impl<'p> DynamicVm<'p> {
    /// Create a VM for `program` with the given kernels and options.
    ///
    /// Of [`ExecOptions`], this runtime honours `seed`, `max_supersteps`
    /// (bounding scheduling rounds) and `max_host_depth` (bounding each
    /// thread's call stack); the static strategies' knobs (masking vs
    /// gather/scatter, block heuristic, stack depth) do not apply —
    /// dynamic batching never masks and keeps no materialized stacks.
    pub fn new(program: &'p Program, registry: KernelRegistry, opts: ExecOptions) -> Self {
        DynamicVm {
            program,
            registry,
            opts,
        }
    }

    /// The program this VM executes.
    pub fn program(&self) -> &Program {
        self.program
    }

    /// Run the batch. `inputs` carries one tensor per entry-function
    /// parameter, each with identical axis-0 length (the batch size).
    ///
    /// # Errors
    ///
    /// Returns kernel errors from user data, [`VmError::StepLimit`] if the
    /// scheduling-round limit is exceeded, or
    /// [`VmError::HostRecursionLimit`] on runaway recursion in any thread.
    pub fn run(&self, inputs: &[Tensor], trace: Option<&mut Trace>) -> Result<Vec<Tensor>> {
        self.run_observed(inputs, trace, None)
    }

    /// Like [`DynamicVm::run`], with a per-round observer.
    ///
    /// # Errors
    ///
    /// See [`DynamicVm::run`].
    pub fn run_observed(
        &self,
        inputs: &[Tensor],
        mut trace: Option<&mut Trace>,
        mut observer: Option<&mut DynObserver<'_>>,
    ) -> Result<Vec<Tensor>> {
        let entry = self.program.entry_func()?;
        if inputs.len() != entry.params.len() {
            return Err(VmError::BadInputs {
                what: format!(
                    "entry `{}` expects {} inputs, got {}",
                    entry.name,
                    entry.params.len(),
                    inputs.len()
                ),
            });
        }
        let z = batch_size(inputs)?;
        let rng = CounterRng::new(self.opts.seed);

        // Spawn one logical thread per batch member, each seeing 1-row
        // views of the inputs.
        let mut threads: Vec<Thread> = (0..z)
            .map(|b| {
                let mut env = BTreeMap::new();
                for (p, t) in entry.params.iter().zip(inputs) {
                    env.insert(p.clone(), t.gather_rows(&[b])?);
                }
                Ok(Thread {
                    member: b as u64,
                    frames: vec![Frame {
                        func: self.program.entry.0,
                        block: 0,
                        op: 0,
                        env,
                        call_outs: None,
                    }],
                    pending: None,
                    result: None,
                })
            })
            .collect::<Result<_>>()?;

        let mut rounds: u64 = 0;
        loop {
            // Advance every runnable thread to its next suspension point.
            let mut runnable = 0usize;
            for th in &mut threads {
                if th.result.is_some() {
                    continue;
                }
                runnable += 1;
                if th.pending.is_none() {
                    self.advance(th)?;
                }
            }

            // Group the agenda by kernel signature. BTreeMap keeps group
            // execution order deterministic.
            let mut agenda: BTreeMap<String, Vec<usize>> = BTreeMap::new();
            let mut entries = 0usize;
            for (ti, th) in threads.iter().enumerate() {
                if let Some(req) = &th.pending {
                    agenda
                        .entry(signature(&req.prim, &req.ins))
                        .or_default()
                        .push(ti);
                    entries += 1;
                }
            }
            if entries == 0 {
                // Every thread ran to completion: nothing left to batch.
                break;
            }
            rounds += 1;
            if rounds > self.opts.max_supersteps {
                return Err(VmError::StepLimit {
                    limit: self.opts.max_supersteps,
                });
            }
            if let Some(t) = trace.as_deref_mut() {
                // The dynamic scheduler re-derives the batching schedule
                // from the live agenda every round (paper §5's "more
                // runtime overhead"). Unlike the static runtimes, no
                // superstep is recorded: there is no mask bookkeeping,
                // only this agenda scan.
                t.add_host_time(entries as f64 * SCHED_SECONDS_PER_ENTRY);
            }

            let mut groups: Vec<(String, usize)> = Vec::with_capacity(agenda.len());
            match self.opts.dyn_schedule {
                DynSchedule::Breadth => {
                    for (_, members) in agenda {
                        let tag =
                            self.execute_group(&members, &mut threads, &rng, trace.as_deref_mut())?;
                        groups.push((tag, members.len()));
                    }
                }
                DynSchedule::Agenda => {
                    // Launch only the largest cohort; everyone else keeps
                    // waiting, so matching threads arriving in later
                    // rounds can join their group.
                    let (_, members) = agenda
                        .into_iter()
                        .max_by(|(ka, a), (kb, b)| a.len().cmp(&b.len()).then(kb.cmp(ka)))
                        .expect("agenda is nonempty");
                    let tag =
                        self.execute_group(&members, &mut threads, &rng, trace.as_deref_mut())?;
                    groups.push((tag, members.len()));
                }
            }
            if let Some(obs) = observer.as_deref_mut() {
                obs(&DynObservation {
                    round: rounds,
                    runnable,
                    groups: &groups,
                });
            }
        }

        // Stitch per-member results back into batch order.
        let n_outs = entry.outputs.len();
        let mut outputs = Vec::with_capacity(n_outs);
        for o in 0..n_outs {
            let rows: Vec<Tensor> = threads
                .iter()
                .map(|th| th.result.as_ref().expect("all threads finished")[o].clone())
                .collect();
            outputs.push(Tensor::concat_rows(&rows)?);
        }
        Ok(outputs)
    }

    /// Run one logical thread until it suspends on a primitive or
    /// finishes. Control flow is pure host work, as in DyNet. Bounded by
    /// `max_supersteps` control transitions so a primitive-free infinite
    /// loop (which never reaches the scheduler) still terminates with
    /// [`VmError::StepLimit`].
    fn advance(&self, th: &mut Thread) -> Result<Advance> {
        let mut control_steps: u64 = 0;
        loop {
            control_steps += 1;
            if control_steps > self.opts.max_supersteps {
                return Err(VmError::StepLimit {
                    limit: self.opts.max_supersteps,
                });
            }
            let Some(frame) = th.frames.last_mut() else {
                return Ok(Advance::Finished);
            };
            let f = &self.program.funcs[frame.func];
            let block = &f.blocks[frame.block];
            if frame.op < block.ops.len() {
                match &block.ops[frame.op] {
                    Op::Prim { outs, prim, ins } => {
                        let ins = ins
                            .iter()
                            .map(|v| lookup(&frame.env, v, &f.name))
                            .collect::<Result<Vec<_>>>()?;
                        th.pending = Some(PrimRequest {
                            prim: prim.clone(),
                            ins,
                            outs: outs.clone(),
                        });
                        return Ok(Advance::Suspended);
                    }
                    Op::Call { outs, callee, ins } => {
                        let g = &self.program.funcs[callee.0];
                        let mut env = BTreeMap::new();
                        for (p, a) in g.params.iter().zip(ins) {
                            env.insert(p.clone(), lookup(&frame.env, a, &f.name)?);
                        }
                        frame.call_outs = Some(outs.clone());
                        if th.frames.len() >= self.opts.max_host_depth {
                            return Err(VmError::HostRecursionLimit {
                                limit: self.opts.max_host_depth,
                            });
                        }
                        th.frames.push(Frame {
                            func: callee.0,
                            block: 0,
                            op: 0,
                            env,
                            call_outs: None,
                        });
                    }
                }
            } else {
                match &block.term {
                    Terminator::Jump(t) => {
                        frame.block = t.0;
                        frame.op = 0;
                    }
                    Terminator::Branch { cond, then_, else_ } => {
                        let c = lookup(&frame.env, cond, &f.name)?;
                        let taken = c.as_bool()?[0];
                        frame.block = if taken { then_.0 } else { else_.0 };
                        frame.op = 0;
                    }
                    Terminator::Return => {
                        let rets: Vec<Tensor> = f
                            .outputs
                            .iter()
                            .map(|o| lookup(&frame.env, o, &f.name))
                            .collect::<Result<_>>()?;
                        th.frames.pop();
                        match th.frames.last_mut() {
                            Some(caller) => {
                                let outs = caller
                                    .call_outs
                                    .take()
                                    .expect("returning into a frame with an in-flight call");
                                for (o, r) in outs.iter().zip(rets) {
                                    caller.env.insert(o.clone(), r);
                                }
                                caller.op += 1;
                            }
                            None => {
                                th.result = Some(rets);
                                return Ok(Advance::Finished);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Launch one signature group as a single batched kernel, then
    /// scatter the results back to the suspended threads.
    fn execute_group(
        &self,
        members: &[usize],
        threads: &mut [Thread],
        rng: &CounterRng,
        trace: Option<&mut Trace>,
    ) -> Result<String> {
        let first = threads[members[0]]
            .pending
            .as_ref()
            .expect("agenda entries are pending");
        let prim = first.prim.clone();
        let n_ins = first.ins.len();

        // Stack each operand position across the group.
        let mut stacked = Vec::with_capacity(n_ins);
        for i in 0..n_ins {
            let rows: Vec<Tensor> = members
                .iter()
                .map(|&ti| threads[ti].pending.as_ref().expect("pending").ins[i].clone())
                .collect();
            stacked.push(Tensor::concat_rows(&rows)?);
        }
        let ids: Vec<u64> = members.iter().map(|&ti| threads[ti].member).collect();
        let results = eval_prim(&prim, &stacked, &ids, rng, &self.registry)?;

        if let Some(t) = trace {
            let cost = prim_cost(&prim, &stacked, &results, &self.registry);
            let rec = LaunchRecord {
                kernel: prim.kernel_tag(),
                flops: cost.flops,
                bytes: cost.bytes,
                random_bytes: 0.0,
                parallel: cost.parallel,
                active_members: members.len(),
                total_members: members.len(),
            };
            t.launch(&rec);
            t.record_logical(&rec);
        }

        // Scatter row r of each result to group member r.
        for (r, &ti) in members.iter().enumerate() {
            let th = &mut threads[ti];
            let req = th.pending.take().expect("pending");
            let frame = th.frames.last_mut().expect("suspended thread has a frame");
            for (o, res) in req.outs.iter().zip(&results) {
                frame.env.insert(o.clone(), res.gather_rows(&[r])?);
            }
            frame.op += 1;
        }
        Ok(prim.kernel_tag())
    }
}

/// The scheduler's grouping key: primitive identity (including any
/// constant payloads) plus operand dtypes and per-member element shapes.
/// Two threads share a key exactly when one batched launch computes both
/// correctly.
fn signature(prim: &Prim, ins: &[Tensor]) -> String {
    use std::fmt::Write;
    let mut s = format!("{prim:?}");
    for t in ins {
        let _ = write!(s, "|{:?}{:?}", t.dtype(), &t.shape()[1..]);
    }
    s
}

fn batch_size(inputs: &[Tensor]) -> Result<usize> {
    let first = inputs.first().ok_or_else(|| VmError::BadInputs {
        what: "no inputs".into(),
    })?;
    if first.rank() == 0 {
        return Err(VmError::BadInputs {
            what: "inputs must have a leading batch dimension".into(),
        });
    }
    let z = first.shape()[0];
    for t in inputs {
        if t.rank() == 0 || t.shape()[0] != z {
            return Err(VmError::BadInputs {
                what: format!("inconsistent batch sizes: {} vs {}", z, t.shape()[0]),
            });
        }
    }
    Ok(z)
}

fn lookup(env: &BTreeMap<Var, Tensor>, v: &Var, context: &str) -> Result<Tensor> {
    env.get(v).cloned().ok_or_else(|| VmError::Unbound {
        var: v.clone(),
        context: context.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsab_vm::LocalStaticVm;
    use autobatch_accel::Backend;
    use autobatch_ir::build::{fibonacci_program, ProgramBuilder};
    use autobatch_ir::Prim;

    fn opts() -> ExecOptions {
        ExecOptions::default()
    }

    #[test]
    fn fibonacci_matches_reference() {
        let p = fibonacci_program();
        let vm = DynamicVm::new(&p, KernelRegistry::new(), opts());
        let out = vm
            .run(
                &[Tensor::from_i64(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10], &[11]).unwrap()],
                None,
            )
            .unwrap();
        assert_eq!(
            out[0].as_i64().unwrap(),
            &[1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89]
        );
    }

    #[test]
    fn agrees_with_local_static_on_divergent_loop() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("sum_below", &["n"], &["acc"]);
        pb.define(f, |fb| {
            let zero = fb.const_i64(0);
            let i = Var::new("i");
            fb.copy(&i, &zero);
            fb.copy(&fb.output(0), &zero);
            fb.while_loop(
                |fb| fb.emit(Prim::Lt, &[Var::new("i"), fb.param(0)]),
                |fb| {
                    fb.assign(&fb.output(0), Prim::Add, &[fb.output(0), Var::new("i")]);
                    let one = fb.const_i64(1);
                    fb.assign(&Var::new("i"), Prim::Add, &[Var::new("i"), one]);
                },
            );
            fb.ret();
        });
        let p = pb.finish(f).unwrap();
        let inputs = vec![Tensor::from_i64(&[0, 3, 11, 7], &[4]).unwrap()];
        let dynamic = DynamicVm::new(&p, KernelRegistry::new(), opts())
            .run(&inputs, None)
            .unwrap();
        let local = LocalStaticVm::new(&p, KernelRegistry::new(), opts())
            .run(&inputs, None)
            .unwrap();
        assert_eq!(dynamic, local);
    }

    #[test]
    fn rng_draws_match_static_runtimes_bitwise() {
        // seed and member-id addressing make the strategies agree exactly.
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("draw2", &["c0"], &["total"]);
        pb.define(f, |fb| {
            let (u1, c1) = (Var::new("u1"), Var::new("c1"));
            let (u2, c2) = (Var::new("u2"), Var::new("c2"));
            fb.assign_multi(&[u1.clone(), c1.clone()], Prim::RandUniform, &[fb.param(0)]);
            fb.assign_multi(&[u2.clone(), c2.clone()], Prim::RandUniform, &[c1]);
            fb.assign(&fb.output(0), Prim::Add, &[u1, u2]);
            fb.ret();
        });
        let p = pb.finish(f).unwrap();
        let inputs = vec![Tensor::from_i64(&[0, 0, 0], &[3]).unwrap()];
        let o = ExecOptions::with_seed(42);
        let dynamic = DynamicVm::new(&p, KernelRegistry::new(), o)
            .run(&inputs, None)
            .unwrap();
        let local = LocalStaticVm::new(&p, KernelRegistry::new(), o)
            .run(&inputs, None)
            .unwrap();
        assert_eq!(dynamic, local);
    }

    #[test]
    fn batches_across_recursion_depths() {
        // Two members entering fibonacci at different depths still share
        // kernel launches: with Z = 2 some launch must batch both while
        // their call stacks differ — something LSAB can never do. We
        // check that the mean group size exceeds 1 and that some round
        // batched both members.
        let p = fibonacci_program();
        let vm = DynamicVm::new(&p, KernelRegistry::new(), opts());
        let mut full_groups = 0usize;
        let mut obs = |o: &DynObservation<'_>| {
            full_groups += o.groups.iter().filter(|(_, n)| *n == 2).count();
        };
        vm.run_observed(
            &[Tensor::from_i64(&[8, 5], &[2]).unwrap()],
            None,
            Some(&mut obs),
        )
        .unwrap();
        assert!(full_groups > 0, "scheduler batched divergent members");
    }

    #[test]
    fn trace_records_full_occupancy_launches_and_host_time() {
        let p = fibonacci_program();
        let vm = DynamicVm::new(&p, KernelRegistry::new(), opts());
        let mut tr = Trace::new(Backend::eager_cpu());
        vm.run(&[Tensor::from_i64(&[5, 6], &[2]).unwrap()], Some(&mut tr))
            .unwrap();
        assert!(tr.launches() > 0);
        // Dynamic batching has no mask-bookkeeping supersteps — its host
        // cost is the agenda scan, charged as raw host time.
        assert_eq!(tr.supersteps(), 0);
        // Dynamic batching never masks: every launch is fully occupied.
        let add = tr.kernel_stats("add").expect("add kernels launched");
        assert_eq!(add.active_members, add.total_members);
        assert!(tr.sim_time() > 0.0);
    }

    #[test]
    fn agenda_schedule_batches_no_worse_than_breadth() {
        // The agenda policy lets out-of-phase threads coalesce; on a
        // divergent recursive workload it needs at most as many launches
        // as depth-synchronous breadth scheduling.
        let p = fibonacci_program();
        let inputs = vec![Tensor::from_i64(&[4, 9, 6, 11], &[4]).unwrap()];
        let launches = |schedule: DynSchedule| {
            let mut o = opts();
            o.dyn_schedule = schedule;
            let vm = DynamicVm::new(&p, KernelRegistry::new(), o);
            let mut tr = Trace::new(Backend::eager_cpu());
            let out = vm.run(&inputs, Some(&mut tr)).unwrap();
            (tr.launches(), out)
        };
        let (agenda, out_a) = launches(DynSchedule::Agenda);
        let (breadth, out_b) = launches(DynSchedule::Breadth);
        assert_eq!(out_a, out_b, "schedules agree on results");
        assert!(
            agenda <= breadth,
            "agenda {agenda} vs breadth {breadth} launches"
        );
    }

    #[test]
    fn const_payloads_are_not_conflated() {
        // ConstI64(1) and ConstI64(2) share a kernel tag but must not
        // share a launch group; the signature keys on the payload.
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("mix", &["n"], &["r"]);
        pb.define(f, |fb| {
            let one = fb.const_i64(1);
            let two = fb.const_i64(2);
            // r = n*0 + (cond ? 1 : 2), cond = n > 0
            let zero = fb.const_i64(0);
            let cond = fb.emit(Prim::Gt, &[fb.param(0), zero]);
            let sel = fb.emit(Prim::Select, &[cond, one, two]);
            fb.copy(&fb.output(0), &sel);
            fb.ret();
        });
        let p = pb.finish(f).unwrap();
        let vm = DynamicVm::new(&p, KernelRegistry::new(), opts());
        let out = vm
            .run(&[Tensor::from_i64(&[5, -5], &[2]).unwrap()], None)
            .unwrap();
        assert_eq!(out[0].as_i64().unwrap(), &[1, 2]);
    }

    #[test]
    fn recursion_limit_guards_runaway_threads() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("loop", &["n"], &["r"]);
        pb.define(f, |fb| {
            let one = fb.const_i64(1);
            let m = fb.emit(Prim::Add, &[fb.param(0), one]);
            let r = fb.call(f, &[m], 1);
            fb.copy(&fb.output(0), &r[0]);
            fb.ret();
        });
        let p = pb.finish(f).unwrap();
        let mut o = opts();
        o.max_host_depth = 8;
        let vm = DynamicVm::new(&p, KernelRegistry::new(), o);
        assert!(matches!(
            vm.run(&[Tensor::from_i64(&[0], &[1]).unwrap()], None),
            Err(VmError::HostRecursionLimit { .. })
        ));
    }

    #[test]
    fn wrong_input_arity_is_error() {
        let p = fibonacci_program();
        let vm = DynamicVm::new(&p, KernelRegistry::new(), opts());
        assert!(matches!(vm.run(&[], None), Err(VmError::BadInputs { .. })));
    }

    #[test]
    fn primitive_free_infinite_loop_hits_step_limit() {
        // A hand-built CFG whose loop body contains no primitives at all:
        // the thread never reaches the scheduler, so termination relies
        // on the control-transition budget inside `advance`.
        use autobatch_ir::lsab::{Block, Function, Program, Terminator};
        use autobatch_ir::{BlockId, FuncId};
        let p = Program {
            funcs: vec![Function {
                name: "spin".into(),
                params: vec![Var::new("c")],
                blocks: vec![
                    Block {
                        ops: vec![],
                        term: Terminator::Branch {
                            cond: Var::new("c"),
                            then_: BlockId(0),
                            else_: BlockId(1),
                        },
                    },
                    Block {
                        ops: vec![],
                        term: Terminator::Return,
                    },
                ],
                outputs: vec![Var::new("c")],
            }],
            entry: FuncId(0),
        };
        p.validate().unwrap();
        let mut o = opts();
        o.max_supersteps = 1000;
        let vm = DynamicVm::new(&p, KernelRegistry::new(), o);
        assert!(matches!(
            vm.run(&[Tensor::from_bool(&[true], &[1]).unwrap()], None),
            Err(VmError::StepLimit { .. })
        ));
    }

    #[test]
    fn observer_sees_rounds_and_groups() {
        let p = fibonacci_program();
        let vm = DynamicVm::new(&p, KernelRegistry::new(), opts());
        let mut rounds = 0u64;
        let mut max_runnable = 0usize;
        let mut obs = |o: &DynObservation<'_>| {
            rounds = o.round;
            max_runnable = max_runnable.max(o.runnable);
            assert!(!o.groups.is_empty());
        };
        vm.run_observed(
            &[Tensor::from_i64(&[4, 6, 3], &[3]).unwrap()],
            None,
            Some(&mut obs),
        )
        .unwrap();
        assert!(rounds > 0);
        assert_eq!(max_runnable, 3);
    }
}
