//! The local static autobatching runtime (paper §2, Algorithm 1).
//!
//! A nonstandard masked interpretation of the [`lsab`] CFG language: the
//! runtime keeps, per function invocation, an *active set* of batch
//! members and a per-member *program counter* (a basic-block index). Each
//! superstep it selects a block with at least one active member, executes
//! its ops batched, and updates only the locally active members' state
//! and program counters. Recursive calls are carried out by the host
//! language — Rust here, Python in the paper — so logical threads at
//! different host stack depths can never batch together, and the runtime
//! itself is recursive.

use std::collections::BTreeMap;

use autobatch_accel::{LaunchRecord, Trace};
use autobatch_ir::lsab::{Op, Program, Terminator};
use autobatch_ir::{FuncId, Var};
use autobatch_tensor::{CounterRng, Tensor};

use crate::error::{Result, VmError};
use crate::kernels::{eval_prim, prim_cost, KernelRegistry, OpCost};
use crate::options::{BlockHeuristic, ExecOptions, ExecStrategy};

/// A snapshot handed to an observer after every superstep, carrying the
/// information displayed in the paper's Figure 1.
#[derive(Debug)]
pub struct LsabObservation<'a> {
    /// Name of the function whose block just ran.
    pub func: &'a str,
    /// The block that ran.
    pub block: usize,
    /// Host (Rust) recursion depth of the running function invocation.
    pub host_depth: usize,
    /// Which members were locally active in this superstep.
    pub locally_active: &'a [bool],
    /// Per-member program counters within this invocation (`== block
    /// count` means returned).
    pub pc: &'a [usize],
}

/// Callback invoked after every superstep.
pub type LsabObserver<'o> = dyn FnMut(&LsabObservation<'_>) + 'o;

/// The local static autobatching virtual machine.
///
/// # Examples
///
/// ```
/// use autobatch_core::{KernelRegistry, LocalStaticVm, ExecOptions};
/// use autobatch_ir::build::fibonacci_program;
/// use autobatch_tensor::Tensor;
///
/// let program = fibonacci_program();
/// let vm = LocalStaticVm::new(&program, KernelRegistry::new(), ExecOptions::default());
/// let inputs = vec![Tensor::from_i64(&[3, 7, 4, 5], &[4])?];
/// let out = vm.run(&inputs, None)?;
/// assert_eq!(out[0].as_i64()?, &[3, 21, 5, 8]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct LocalStaticVm<'p> {
    program: &'p Program,
    registry: KernelRegistry,
    opts: ExecOptions,
}

struct Ctx<'a, 'o> {
    registry: &'a KernelRegistry,
    rng: CounterRng,
    trace: Option<&'a mut Trace>,
    observer: Option<&'a mut LsabObserver<'o>>,
    steps: u64,
}

impl<'p> LocalStaticVm<'p> {
    /// Create a VM for `program` with the given kernels and options.
    pub fn new(program: &'p Program, registry: KernelRegistry, opts: ExecOptions) -> Self {
        LocalStaticVm {
            program,
            registry,
            opts,
        }
    }

    /// The program this VM executes.
    pub fn program(&self) -> &Program {
        self.program
    }

    /// Run the batch. `inputs` carries one tensor per entry-function
    /// parameter, each with identical axis-0 length (the batch size).
    /// Pass a [`Trace`] to price the execution on a simulated backend.
    ///
    /// # Errors
    ///
    /// Returns kernel errors from user data, [`VmError::StepLimit`] on
    /// starvation, or [`VmError::HostRecursionLimit`] on runaway
    /// recursion.
    pub fn run(&self, inputs: &[Tensor], trace: Option<&mut Trace>) -> Result<Vec<Tensor>> {
        self.run_observed(inputs, trace, None)
    }

    /// Like [`LocalStaticVm::run`], with a per-superstep observer.
    ///
    /// # Errors
    ///
    /// See [`LocalStaticVm::run`].
    pub fn run_observed(
        &self,
        inputs: &[Tensor],
        trace: Option<&mut Trace>,
        observer: Option<&mut LsabObserver<'_>>,
    ) -> Result<Vec<Tensor>> {
        let entry = self.program.entry_func()?;
        if inputs.len() != entry.params.len() {
            return Err(VmError::BadInputs {
                what: format!(
                    "entry `{}` expects {} inputs, got {}",
                    entry.name,
                    entry.params.len(),
                    inputs.len()
                ),
            });
        }
        let z = batch_size(inputs)?;
        let mut ctx = Ctx {
            registry: &self.registry,
            rng: CounterRng::new(self.opts.seed),
            trace,
            observer,
            steps: 0,
        };
        let active = vec![true; z];
        self.run_function(&mut ctx, self.program.entry, inputs.to_vec(), &active, 0)
    }

    /// Algorithm 1, for one function invocation.
    fn run_function(
        &self,
        ctx: &mut Ctx<'_, '_>,
        fid: FuncId,
        inputs: Vec<Tensor>,
        active: &[bool],
        depth: usize,
    ) -> Result<Vec<Tensor>> {
        if depth > self.opts.max_host_depth {
            return Err(VmError::HostRecursionLimit {
                limit: self.opts.max_host_depth,
            });
        }
        let f = self.program.func(fid)?;
        let z = active.len();
        let n_blocks = f.blocks.len();
        let mut env: BTreeMap<Var, Tensor> = BTreeMap::new();
        for (p, t) in f.params.iter().zip(&inputs) {
            env.insert(p.clone(), t.clone());
        }
        let mut pc = vec![0usize; z];
        // Per-invocation scratch for the locally active set: refilled
        // every superstep, allocated once (the host-recursive runtime
        // cannot share one arena across invocations the way the
        // program-counter machine does, but the inner loop stays
        // allocation-free).
        let mut local: Vec<bool> = Vec::with_capacity(z);
        let mut local_idx: Vec<usize> = Vec::with_capacity(z);

        while let Some(i) = select_block(&pc, active, n_blocks, self.opts.heuristic) {
            ctx.steps += 1;
            if ctx.steps > self.opts.max_supersteps {
                return Err(VmError::StepLimit {
                    limit: self.opts.max_supersteps,
                });
            }
            // Locally active set A' = members of A waiting at block i.
            local.clear();
            local.extend((0..z).map(|b| active[b] && pc[b] == i));
            local_idx.clear();
            local_idx.extend((0..z).filter(|&b| local[b]));
            if let Some(t) = ctx.trace.as_deref_mut() {
                t.superstep();
            }
            let fused = ctx
                .trace
                .as_deref()
                .map(|t| !matches!(t.backend().mode, autobatch_accel::DispatchMode::Eager))
                .unwrap_or(false);
            let mut block_cost = OpCost::default();
            let block = &f.blocks[i];
            for op in &block.ops {
                match op {
                    Op::Prim { outs, prim, ins } => {
                        let cost =
                            self.exec_prim(ctx, &mut env, prim, outs, ins, &local, &local_idx, z)?;
                        if fused {
                            block_cost.flops += cost.flops;
                            block_cost.bytes += cost.bytes;
                            block_cost.parallel = block_cost.parallel.max(cost.parallel);
                        }
                    }
                    Op::Call { outs, callee, ins } => {
                        // Flush the fused-block launch before handing
                        // control back to the host for the call.
                        if fused && block_cost.parallel > 0 {
                            flush_block_launch(ctx, f, i, &block_cost, &local_idx, z);
                            block_cost = OpCost::default();
                        }
                        let args: Vec<Tensor> = ins
                            .iter()
                            .map(|v| lookup(&env, v, &f.name))
                            .collect::<Result<_>>()?;
                        let rets = self.run_function(ctx, *callee, args, &local, depth + 1)?;
                        for (o, r) in outs.iter().zip(rets) {
                            write_masked(&mut env, o, r, &local)?;
                        }
                    }
                }
            }
            if fused && block_cost.parallel > 0 {
                flush_block_launch(ctx, f, i, &block_cost, &local_idx, z);
            }
            // Terminator: update the locally active members' pcs.
            match &block.term {
                Terminator::Jump(t) => {
                    for &b in &local_idx {
                        pc[b] = t.0;
                    }
                }
                Terminator::Branch { cond, then_, else_ } => {
                    let c = lookup(&env, cond, &f.name)?;
                    let cv = c.as_bool()?;
                    for &b in &local_idx {
                        pc[b] = if cv[b] { then_.0 } else { else_.0 };
                    }
                }
                Terminator::Return => {
                    for &b in &local_idx {
                        pc[b] = n_blocks;
                    }
                }
            }
            if let Some(obs) = ctx.observer.as_deref_mut() {
                obs(&LsabObservation {
                    func: &f.name,
                    block: i,
                    host_depth: depth,
                    locally_active: &local,
                    pc: &pc,
                });
            }
        }
        f.outputs.iter().map(|o| lookup(&env, o, &f.name)).collect()
    }

    /// Execute one primitive under the configured strategy, recording
    /// logical stats and (when unfused) a priced launch. Returns the op's
    /// cost for fused accumulation.
    #[allow(clippy::too_many_arguments)]
    fn exec_prim(
        &self,
        ctx: &mut Ctx<'_, '_>,
        env: &mut BTreeMap<Var, Tensor>,
        prim: &autobatch_ir::Prim,
        outs: &[Var],
        ins: &[Var],
        local: &[bool],
        local_idx: &[usize],
        z: usize,
    ) -> Result<OpCost> {
        let n_active = local_idx.len();
        let (results, cost, random_bytes) = match self.opts.strategy {
            ExecStrategy::Masking => {
                let inputs: Vec<Tensor> = ins
                    .iter()
                    .map(|v| lookup(env, v, "prim"))
                    .collect::<Result<_>>()?;
                let members: Vec<u64> = (0..z as u64).collect();
                let results = eval_prim(prim, &inputs, &members, &ctx.rng, ctx.registry)?;
                let cost = prim_cost(prim, &inputs, &results, ctx.registry);
                (results, cost, 0.0)
            }
            ExecStrategy::GatherScatter => {
                let inputs: Vec<Tensor> = ins
                    .iter()
                    .map(|v| {
                        lookup(env, v, "prim").and_then(|t| {
                            ensure_batched(&t, z)?
                                .gather_rows(local_idx)
                                .map_err(VmError::from)
                        })
                    })
                    .collect::<Result<_>>()?;
                let members: Vec<u64> = local_idx.iter().map(|&b| b as u64).collect();
                let results = eval_prim(prim, &inputs, &members, &ctx.rng, ctx.registry)?;
                let cost = prim_cost(prim, &inputs, &results, ctx.registry);
                let moved: f64 = inputs
                    .iter()
                    .chain(&results)
                    .map(|t| t.size_bytes() as f64)
                    .sum();
                (results, cost, moved)
            }
        };
        // Fusion-independent logical record (drives utilization metrics).
        if let Some(t) = ctx.trace.as_deref_mut() {
            t.record_logical(&LaunchRecord {
                kernel: prim.kernel_tag(),
                flops: cost.flops,
                bytes: cost.bytes,
                random_bytes,
                parallel: cost.parallel,
                active_members: n_active,
                total_members: if self.opts.strategy == ExecStrategy::Masking {
                    z
                } else {
                    n_active
                },
            });
            if matches!(t.backend().mode, autobatch_accel::DispatchMode::Eager) {
                t.launch(&LaunchRecord {
                    kernel: prim.kernel_tag(),
                    flops: cost.flops,
                    bytes: cost.bytes,
                    random_bytes,
                    parallel: cost.parallel,
                    active_members: n_active,
                    total_members: if self.opts.strategy == ExecStrategy::Masking {
                        z
                    } else {
                        n_active
                    },
                });
            }
        }
        // Write back.
        match self.opts.strategy {
            ExecStrategy::Masking => {
                for (o, r) in outs.iter().zip(results) {
                    write_masked(env, o, r, local)?;
                }
            }
            ExecStrategy::GatherScatter => {
                for (o, r) in outs.iter().zip(results) {
                    write_scattered(env, o, r, local_idx, z)?;
                }
            }
        }
        Ok(cost)
    }
}

fn flush_block_launch(
    ctx: &mut Ctx<'_, '_>,
    f: &autobatch_ir::lsab::Function,
    block: usize,
    cost: &OpCost,
    local_idx: &[usize],
    z: usize,
) {
    if let Some(t) = ctx.trace.as_deref_mut() {
        t.launch(&LaunchRecord {
            kernel: format!("block:{}:{block}", f.name),
            flops: cost.flops,
            bytes: cost.bytes,
            random_bytes: 0.0,
            parallel: cost.parallel,
            active_members: local_idx.len(),
            total_members: z,
        });
    }
}

/// Earliest-block or most-active block selection over the active members.
fn select_block(
    pc: &[usize],
    active: &[bool],
    n_blocks: usize,
    heuristic: BlockHeuristic,
) -> Option<usize> {
    match heuristic {
        BlockHeuristic::EarliestBlock => pc
            .iter()
            .zip(active)
            .filter(|(&p, &a)| a && p < n_blocks)
            .map(|(&p, _)| p)
            .min(),
        BlockHeuristic::MostActive => {
            let mut counts = vec![0usize; n_blocks];
            for (&p, &a) in pc.iter().zip(active) {
                if a && p < n_blocks {
                    counts[p] += 1;
                }
            }
            counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .max_by(|(i, a), (j, b)| a.cmp(b).then(j.cmp(i)))
                .map(|(i, _)| i)
        }
    }
}

fn batch_size(inputs: &[Tensor]) -> Result<usize> {
    let first = inputs.first().ok_or_else(|| VmError::BadInputs {
        what: "no inputs".into(),
    })?;
    if first.rank() == 0 {
        return Err(VmError::BadInputs {
            what: "inputs must have a leading batch dimension".into(),
        });
    }
    let z = first.shape()[0];
    for t in inputs {
        if t.rank() == 0 || t.shape()[0] != z {
            return Err(VmError::BadInputs {
                what: format!("inconsistent batch sizes: {} vs {}", z, t.shape()[0]),
            });
        }
    }
    Ok(z)
}

fn lookup(env: &BTreeMap<Var, Tensor>, v: &Var, context: &str) -> Result<Tensor> {
    env.get(v).cloned().ok_or_else(|| VmError::Unbound {
        var: v.clone(),
        context: context.to_string(),
    })
}

/// Masked write of a full-width result: active rows take the new value.
fn write_masked(
    env: &mut BTreeMap<Var, Tensor>,
    var: &Var,
    value: Tensor,
    mask: &[bool],
) -> Result<()> {
    if value.rank() == 0 || value.shape()[0] != mask.len() {
        // A kernel (or corrupted program) produced a result whose batch
        // width disagrees with the batch — refusing here prevents silent
        // lane corruption.
        return Err(VmError::BadInputs {
            what: format!(
                "`{var}` written with batch width {:?}, expected {}",
                value.shape(),
                mask.len()
            ),
        });
    }
    match env.get_mut(var) {
        Some(old) if old.shape() == value.shape() && old.dtype() == value.dtype() => {
            old.masked_assign_rows(mask, &value)?;
        }
        _ => {
            // First write (or a shape/dtype change, which only well-typed
            // programs avoid; inactive lanes then hold junk, which the
            // masked semantics never exposes).
            env.insert(var.clone(), value);
        }
    }
    Ok(())
}

/// Scattered write of a compacted result (gather/scatter strategy).
fn write_scattered(
    env: &mut BTreeMap<Var, Tensor>,
    var: &Var,
    value: Tensor,
    local_idx: &[usize],
    z: usize,
) -> Result<()> {
    let needs_alloc = match env.get(var) {
        Some(old) => old.dtype() != value.dtype() || old.shape()[1..] != value.shape()[1..],
        None => true,
    };
    if needs_alloc {
        let mut shape = value.shape().to_vec();
        shape[0] = z;
        env.insert(var.clone(), Tensor::zeros(value.dtype(), &shape));
    }
    env.get_mut(var)
        .expect("just ensured present")
        .scatter_rows(local_idx, &value)?;
    Ok(())
}

fn ensure_batched(t: &Tensor, z: usize) -> Result<Tensor> {
    if t.rank() == 0 || t.shape()[0] != z {
        return Err(VmError::BadInputs {
            what: format!("variable not batch-shaped: {:?} for batch {z}", t.shape()),
        });
    }
    Ok(t.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobatch_accel::Backend;
    use autobatch_ir::build::{fibonacci_program, ProgramBuilder};
    use autobatch_ir::Prim;

    fn vm_opts() -> ExecOptions {
        ExecOptions::default()
    }

    #[test]
    fn fibonacci_batch_matches_reference() {
        let p = fibonacci_program();
        let vm = LocalStaticVm::new(&p, KernelRegistry::new(), vm_opts());
        let inputs = vec![Tensor::from_i64(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10], &[11]).unwrap()];
        let out = vm.run(&inputs, None).unwrap();
        assert_eq!(
            out[0].as_i64().unwrap(),
            &[1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89]
        );
    }

    #[test]
    fn fibonacci_gather_scatter_matches_masking() {
        let p = fibonacci_program();
        let mut opts = vm_opts();
        opts.strategy = ExecStrategy::GatherScatter;
        let vm = LocalStaticVm::new(&p, KernelRegistry::new(), opts);
        let inputs = vec![Tensor::from_i64(&[3, 7, 4, 5], &[4]).unwrap()];
        let out = vm.run(&inputs, None).unwrap();
        assert_eq!(out[0].as_i64().unwrap(), &[3, 21, 5, 8]);
    }

    #[test]
    fn most_active_heuristic_matches() {
        let p = fibonacci_program();
        let mut opts = vm_opts();
        opts.heuristic = BlockHeuristic::MostActive;
        let vm = LocalStaticVm::new(&p, KernelRegistry::new(), opts);
        let inputs = vec![Tensor::from_i64(&[6, 2, 9], &[3]).unwrap()];
        let out = vm.run(&inputs, None).unwrap();
        assert_eq!(out[0].as_i64().unwrap(), &[13, 2, 55]);
    }

    #[test]
    fn while_loop_program_runs_divergent_trip_counts() {
        // sum(n) = 0 + 1 + ... + (n-1), via a while loop.
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("sum_below", &["n"], &["acc"]);
        pb.define(f, |fb| {
            let zero = fb.const_i64(0);
            let i = Var::new("i");
            fb.copy(&i, &zero);
            fb.copy(&fb.output(0), &zero);
            fb.while_loop(
                |fb| fb.emit(Prim::Lt, &[Var::new("i"), fb.param(0)]),
                |fb| {
                    fb.assign(&fb.output(0), Prim::Add, &[fb.output(0), Var::new("i")]);
                    let one = fb.const_i64(1);
                    fb.assign(&Var::new("i"), Prim::Add, &[Var::new("i"), one]);
                },
            );
            fb.ret();
        });
        let p = pb.finish(f).unwrap();
        let vm = LocalStaticVm::new(&p, KernelRegistry::new(), vm_opts());
        let inputs = vec![Tensor::from_i64(&[0, 1, 5, 10], &[4]).unwrap()];
        let out = vm.run(&inputs, None).unwrap();
        assert_eq!(out[0].as_i64().unwrap(), &[0, 0, 10, 45]);
    }

    #[test]
    fn batch_equals_singles() {
        // The §2 correctness argument: each member's result is identical
        // whether it runs alone or in a batch.
        let p = fibonacci_program();
        let vm = LocalStaticVm::new(&p, KernelRegistry::new(), vm_opts());
        let ns = [2i64, 6, 1, 9, 4];
        let batch = vm
            .run(&[Tensor::from_i64(&ns, &[5]).unwrap()], None)
            .unwrap();
        for (i, &n) in ns.iter().enumerate() {
            let single = vm
                .run(&[Tensor::from_i64(&[n], &[1]).unwrap()], None)
                .unwrap();
            assert_eq!(
                single[0].as_i64().unwrap()[0],
                batch[0].as_i64().unwrap()[i]
            );
        }
    }

    #[test]
    fn trace_counts_launches_and_supersteps() {
        let p = fibonacci_program();
        let vm = LocalStaticVm::new(&p, KernelRegistry::new(), vm_opts());
        let mut tr = Trace::new(Backend::eager_cpu());
        vm.run(&[Tensor::from_i64(&[5, 6], &[2]).unwrap()], Some(&mut tr))
            .unwrap();
        assert!(tr.launches() > 0);
        assert!(tr.supersteps() > 0);
        assert!(tr.sim_time() > 0.0);
        // Eager: per-prim launches exist under their own tags.
        assert!(tr.kernel_stats("add").is_some());
    }

    #[test]
    fn fused_backend_prices_blocks_not_prims() {
        let p = fibonacci_program();
        let vm = LocalStaticVm::new(&p, KernelRegistry::new(), vm_opts());
        let mut tr = Trace::new(Backend::hybrid_cpu());
        vm.run(&[Tensor::from_i64(&[5, 6], &[2]).unwrap()], Some(&mut tr))
            .unwrap();
        assert!(
            tr.kernel_stats("add").is_none(),
            "no per-prim timed launches"
        );
        assert!(
            tr.kernels().any(|(k, _)| k.starts_with("block:")),
            "fused block launches present"
        );
        // Logical stats still visible per prim.
        assert!(tr.logical_stats("add").is_some());
    }

    #[test]
    fn observer_sees_divergence() {
        let p = fibonacci_program();
        let vm = LocalStaticVm::new(&p, KernelRegistry::new(), vm_opts());
        let mut depths = Vec::new();
        let mut obs = |o: &LsabObservation<'_>| {
            depths.push(o.host_depth);
        };
        vm.run_observed(
            &[Tensor::from_i64(&[4, 5], &[2]).unwrap()],
            None,
            Some(&mut obs),
        )
        .unwrap();
        assert!(depths.iter().any(|&d| d > 0), "recursion observed");
    }

    #[test]
    fn wrong_input_arity_is_error() {
        let p = fibonacci_program();
        let vm = LocalStaticVm::new(&p, KernelRegistry::new(), vm_opts());
        assert!(matches!(vm.run(&[], None), Err(VmError::BadInputs { .. })));
    }

    #[test]
    fn host_recursion_limit_guards_runaway() {
        // f(n) = f(n + 1): never terminates.
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("loop", &["n"], &["r"]);
        pb.define(f, |fb| {
            let one = fb.const_i64(1);
            let m = fb.emit(Prim::Add, &[fb.param(0), one]);
            let r = fb.call(f, &[m], 1);
            fb.copy(&fb.output(0), &r[0]);
            fb.ret();
        });
        let p = pb.finish(f).unwrap();
        let mut opts = vm_opts();
        opts.max_host_depth = 10;
        let vm = LocalStaticVm::new(&p, KernelRegistry::new(), opts);
        assert!(matches!(
            vm.run(&[Tensor::from_i64(&[0], &[1]).unwrap()], None),
            Err(VmError::HostRecursionLimit { .. })
        ));
    }

    #[test]
    fn step_limit_guards_infinite_loop() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("spin", &["n"], &["r"]);
        pb.define(f, |fb| {
            fb.copy(&fb.output(0), &fb.param(0));
            fb.while_loop(|fb| fb.const_bool(true), |_fb| {});
            fb.ret();
        });
        let p = pb.finish(f).unwrap();
        let mut opts = vm_opts();
        opts.max_supersteps = 100;
        let vm = LocalStaticVm::new(&p, KernelRegistry::new(), opts);
        assert!(matches!(
            vm.run(&[Tensor::from_i64(&[0], &[1]).unwrap()], None),
            Err(VmError::StepLimit { .. })
        ));
    }

    #[test]
    fn select_block_heuristics() {
        let pc = [3, 1, 1, 7];
        let active = [true, true, true, true];
        assert_eq!(
            select_block(&pc, &active, 8, BlockHeuristic::EarliestBlock),
            Some(1)
        );
        assert_eq!(
            select_block(&pc, &active, 8, BlockHeuristic::MostActive),
            Some(1)
        );
        // Finished members (pc == n_blocks) are excluded.
        let done = [8, 8, 8, 8];
        assert_eq!(
            select_block(&done, &active, 8, BlockHeuristic::EarliestBlock),
            None
        );
        // Inactive members are ignored entirely.
        let masked = [false, true, false, true];
        assert_eq!(
            select_block(&pc, &masked, 8, BlockHeuristic::EarliestBlock),
            Some(1)
        );
    }
}
