//! Tunable knobs of the two runtimes and the lowering pipeline.
//!
//! These correspond to the "significant free choices" the paper calls out
//! in §2 (primitive execution strategy, block-selection heuristic) and
//! the five compiler optimizations of §3; the ablation benches sweep them.

use autobatch_chaos::FaultPlan;

/// How a primitive is executed on the locally active subset of the batch
/// (paper §2, first free choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecStrategy {
    /// Run the primitive on *all* batch members and mask out the inactive
    /// results. Cheap bookkeeping, wasted compute at low utilization,
    /// computes on junk data in inactive lanes.
    #[default]
    Masking,
    /// Gather the active members into a dense array, compute only them,
    /// and scatter the results back. No wasted compute, but pays
    /// gather/scatter traffic and produces dynamically shaped
    /// intermediates (which static compilers dislike).
    GatherScatter,
}

/// Which runnable basic block the runtime executes next (paper §2, second
/// free choice). Any non-starving heuristic is correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockHeuristic {
    /// Always run the earliest block in program order with at least one
    /// active member — the paper's default ("surprisingly effective",
    /// predictable).
    #[default]
    EarliestBlock,
    /// Run the block with the most waiting members (ties go to the
    /// earliest). Greedy batch-utilization maximizer.
    MostActive,
}

/// How the dynamic-batching scheduler drains its agenda each round — the
/// two strategies of on-the-fly batching (Neubig et al., 2017), relevant
/// only to [`DynamicVm`](crate::DynamicVm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DynSchedule {
    /// Each round, launch only the largest signature group, letting
    /// smaller cohorts keep accumulating members across rounds (DyNet's
    /// *agenda-based* batching). Better batching, more rounds.
    #[default]
    Agenda,
    /// Each round, launch every signature group present (DyNet's
    /// *depth-based* batching). Fewer rounds, but out-of-phase threads
    /// never coalesce.
    Breadth,
}

/// Runtime execution options shared by the virtual machines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecOptions {
    /// Primitive execution strategy.
    pub strategy: ExecStrategy,
    /// Block-selection heuristic.
    pub heuristic: BlockHeuristic,
    /// Abort after this many supersteps (guards non-termination).
    pub max_supersteps: u64,
    /// Host (Rust) recursion depth limit for the local-static and
    /// dynamic-batching runtimes.
    pub max_host_depth: usize,
    /// Stack depth limit `D` for the program-counter runtime (paper
    /// Algorithm 2's static stack allocation).
    pub stack_depth: usize,
    /// Whether the program-counter runtime caches stack tops (paper §3,
    /// optimization 4). Turning this off only changes the *priced* stack
    /// traffic (every read re-gathers), not the results.
    pub cache_stack_tops: bool,
    /// Agenda policy of the dynamic-batching runtime (ignored by the
    /// static runtimes).
    pub dyn_schedule: DynSchedule,
    /// RNG seed for the counter-based random primitives.
    pub seed: u64,
    /// Whether the program-counter runtime executes straight-line chains
    /// of same-shape elementwise primitives as one fused loop (and one
    /// fused launch in the [`Trace`](autobatch_accel::Trace) cost
    /// model). Fusion is bit-identical to per-primitive execution — the
    /// fused loop applies the exact same scalar functions in the same
    /// order — so this knob only exists for ablation and benchmarking.
    pub fuse_elementwise: bool,
    /// Deterministic fault-injection schedule (chaos testing). The
    /// default plan is inert; see [`autobatch_chaos`].
    pub fault: FaultPlan,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            strategy: ExecStrategy::Masking,
            heuristic: BlockHeuristic::EarliestBlock,
            max_supersteps: 50_000_000,
            max_host_depth: 512,
            stack_depth: 64,
            cache_stack_tops: true,
            dyn_schedule: DynSchedule::Agenda,
            seed: 0,
            fuse_elementwise: true,
            fault: FaultPlan::none(),
        }
    }
}

impl ExecOptions {
    /// Options with a specific RNG seed.
    pub fn with_seed(seed: u64) -> ExecOptions {
        ExecOptions {
            seed,
            ..ExecOptions::default()
        }
    }
}

/// Options of the `lsab → pcab` lowering (paper §3 optimizations 1–3, 5;
/// optimization 4 is a runtime knob, [`ExecOptions::cache_stack_tops`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoweringOptions {
    /// Optimization 2: variables whose live range stays inside one block
    /// bypass the batching machinery entirely.
    pub elide_temporaries: bool,
    /// Optimization 3: variables never live across a recursive call get a
    /// masked register instead of a stack.
    pub demote_registers: bool,
    /// Optimization 5: cancel `Pop v; …; Push v = e` pairs with no
    /// intervening access into in-place `Update v = e`.
    pub pop_push_elimination: bool,
}

impl Default for LoweringOptions {
    fn default() -> LoweringOptions {
        LoweringOptions {
            elide_temporaries: true,
            demote_registers: true,
            pop_push_elimination: true,
        }
    }
}

impl LoweringOptions {
    /// All optimizations disabled (the ablation baseline: every variable
    /// gets a stack, every call saves via push/pop).
    pub fn unoptimized() -> LoweringOptions {
        LoweringOptions {
            elide_temporaries: false,
            demote_registers: false,
            pop_push_elimination: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_all_optimizations() {
        let o = LoweringOptions::default();
        assert!(o.elide_temporaries && o.demote_registers && o.pop_push_elimination);
        let u = LoweringOptions::unoptimized();
        assert!(!u.elide_temporaries && !u.demote_registers && !u.pop_push_elimination);
    }

    #[test]
    fn exec_defaults() {
        let o = ExecOptions::default();
        assert_eq!(o.strategy, ExecStrategy::Masking);
        assert_eq!(o.heuristic, BlockHeuristic::EarliestBlock);
        assert!(o.cache_stack_tops);
        assert_eq!(ExecOptions::with_seed(7).seed, 7);
    }
}
