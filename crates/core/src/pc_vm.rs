//! The program-counter autobatching runtime (paper §3, Algorithm 2).
//!
//! A flat, non-recursive interpreter over the merged
//! [`pcab`](autobatch_ir::pcab) program. Every batch member carries a
//! stacked program counter; each stacked data variable owns a
//! `[D, Z, ..]` stack tensor plus per-member stack pointers, with the
//! current top cached densely (paper optimization 4). Because recursion
//! state lives entirely in these arrays, the runtime is a single loop —
//! exactly the property that lets the paper compile it with XLA — and
//! logical threads at *different stack depths* batch together whenever
//! their pc tops coincide.

use std::collections::BTreeMap;

use autobatch_accel::{DispatchMode, LaunchRecord, Trace};
use autobatch_ir::pcab::{Op, Program, Terminator, WriteKind};
use autobatch_ir::{Prim, Var};
use autobatch_tensor::{CounterRng, DType, Data, Tensor};

use crate::error::{Result, VmError};
use crate::fusion::{self, FusedRegion};
use crate::kernels::{eval_prim, prim_cost, KernelRegistry, OpCost};
use crate::options::{BlockHeuristic, ExecOptions, ExecStrategy};

/// Storage for one stacked variable: frames below the cached top.
#[derive(Debug, Clone)]
struct StackVar {
    /// `[D, Z, elem..]` frames beneath the top (lazily allocated).
    store: Option<Tensor>,
    /// Per-member count of frames in `store`.
    sp: Vec<usize>,
    /// `[Z, elem..]` cached top value (lazily allocated).
    top: Option<Tensor>,
}

impl StackVar {
    fn new(z: usize) -> StackVar {
        StackVar {
            store: None,
            sp: vec![0; z],
            top: None,
        }
    }
}

/// A point-in-time copy of one stacked variable, for observers (the
/// paper's Figure 3 visualization).
///
/// Tensors are copy-on-write, so taking a snapshot shares the live
/// buffers instead of deep-copying them: the per-superstep observer
/// cost is O(1) per tensor plus the stack-pointer vector, and the
/// machine transparently copies a buffer only on its next write to it.
#[derive(Debug, Clone)]
pub struct StackSnapshot {
    /// Frames beneath the top, `[D, Z, elem..]`, if ever pushed.
    pub store: Option<Tensor>,
    /// Per-member stack pointers (frames currently in `store`).
    pub sp: Vec<usize>,
    /// The cached top, `[Z, elem..]`, if ever written.
    pub top: Option<Tensor>,
}

/// A snapshot handed to an observer after every superstep.
#[derive(Debug)]
pub struct PcObservation<'a> {
    /// The block that just ran.
    pub block: usize,
    /// Which members were active in it.
    pub active: &'a [bool],
    /// Per-member pc tops after the step (`== block count` means done).
    pub pc_top: &'a [usize],
    /// Per-member pc stack depths (frames beneath the top).
    pub pc_depth: Vec<usize>,
    /// Stacked-variable state (O(1) copy-on-write shares of the live
    /// buffers; the machine copies on its next write, never the
    /// observer).
    pub stacks: BTreeMap<Var, StackSnapshot>,
}

/// Callback invoked after every superstep.
pub type PcObserver<'o> = dyn FnMut(&PcObservation<'_>) + 'o;

/// The program-counter autobatching virtual machine.
///
/// # Examples
///
/// ```
/// use autobatch_core::{lower, KernelRegistry, LoweringOptions, PcVm, ExecOptions};
/// use autobatch_ir::build::fibonacci_program;
/// use autobatch_tensor::Tensor;
///
/// let (program, _) = lower(&fibonacci_program(), LoweringOptions::default())?;
/// let vm = PcVm::new(&program, KernelRegistry::new(), ExecOptions::default());
/// let out = vm.run(&[Tensor::from_i64(&[6, 7, 8, 9], &[4])?], None)?;
/// assert_eq!(out[0].as_i64()?, &[13, 21, 34, 55]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct PcVm<'p> {
    program: &'p Program,
    registry: KernelRegistry,
    opts: ExecOptions,
    /// Per-block fused elementwise regions (see [`crate::fusion`]),
    /// planned once at construction.
    plans: Vec<Vec<FusedRegion>>,
    /// Variable → storage slot, resolved once at construction so the
    /// superstep loop indexes dense vectors instead of walking
    /// string-keyed maps per operand.
    slot_of: BTreeMap<Var, Slot>,
    /// Stacked variables in slot order (the program's sorted order).
    stacked_vars: Vec<Var>,
}

/// Storage slot of a persistent variable: an index into the state's
/// stacked or register vector. Variables without a slot are block-local
/// temporaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Stacked(usize),
    Register(usize),
}

/// Block-local temporary bindings of one superstep. A plain vector
/// with linear lookup: blocks bind at most a handful of temporaries,
/// so this beats a tree map and — living in the scratch arena — keeps
/// its capacity across supersteps instead of reallocating nodes.
#[derive(Debug, Default)]
struct Temps(Vec<(Var, Tensor)>);

impl Temps {
    fn clear(&mut self) {
        self.0.clear();
    }

    fn get(&self, v: &Var) -> Option<&Tensor> {
        self.0.iter().find(|(k, _)| k == v).map(|(_, t)| t)
    }

    fn insert(&mut self, v: Var, t: Tensor) {
        match self.0.iter_mut().find(|(k, _)| *k == v) {
            Some(slot) => slot.1 = t,
            None => self.0.push((v, t)),
        }
    }
}

/// Reused per-superstep buffers: the VM's scratch arena. Everything
/// here is logically dead between supersteps; keeping the allocations
/// alive makes the steady-state superstep loop allocation-free for all
/// bookkeeping (masks, index lists, stack depths, fused-loop registers).
#[derive(Debug, Default)]
struct Scratch {
    /// Active mask of the current superstep.
    active: Vec<bool>,
    /// Indices of the active members.
    active_idx: Vec<usize>,
    /// Gathered member keys (gather/scatter strategy).
    members: Vec<u64>,
    /// Per-member stack depths for pops.
    depths: Vec<usize>,
    /// Per-element virtual registers of the fused fast path.
    regs_f64: Vec<f64>,
    /// Integer sibling of `regs_f64`.
    regs_i64: Vec<i64>,
    /// Per-external member-broadcast flags of the fused fast path.
    ext_bcast: Vec<bool>,
    /// Per-def wideness flags of the fused fast path.
    def_wide: Vec<bool>,
    /// Reused operand buffer for per-op primitive evaluation.
    inputs: Vec<Tensor>,
    /// Block-local temporary bindings (cleared each superstep).
    temps: Temps,
    /// Per-block, per-region negative cache: `true` once a fused region
    /// fell back (mixed runtime shapes or dtypes). Falling back is
    /// always correct, and a region's shape pattern is fixed by the
    /// program's variables, so one failed validation disables the
    /// region for this machine instead of paying the check every
    /// superstep.
    fused_off: Vec<Vec<bool>>,
}

#[derive(Debug)]
struct State {
    z: usize,
    pc_top: Vec<usize>,
    /// Per-member pc frames beneath the top.
    pc_stack: Vec<Vec<usize>>,
    /// Stacked-variable storage, indexed by [`Slot::Stacked`].
    stacked: Vec<StackVar>,
    /// Register storage, indexed by [`Slot::Register`].
    registers: Vec<Option<Tensor>>,
    /// Per-member RNG key: the `member` argument handed to the
    /// counter-based RNG. A one-shot [`PcVm::run`] uses the lane index;
    /// [`PcMachine`] assigns each admitted request its own key so a
    /// member's draws are identical whether it runs alone or joins a
    /// batch mid-flight, in any admission order.
    member_keys: Vec<u64>,
    /// Reused per-superstep buffers (see [`Scratch`]).
    scratch: Scratch,
}

impl State {
    fn new(p: &Program, z: usize) -> State {
        let n_blocks = p.blocks.len();
        State {
            z,
            pc_top: vec![p.entry.0; z],
            pc_stack: vec![vec![n_blocks]; z], // exit sentinel at the bottom
            stacked: p.stacked_vars().iter().map(|_| StackVar::new(z)).collect(),
            registers: vec![None; p.register_vars().len()],
            member_keys: (0..z as u64).collect(),
            scratch: Scratch::default(),
        }
    }
}

impl<'p> PcVm<'p> {
    /// Create a VM for a lowered program.
    pub fn new(program: &'p Program, registry: KernelRegistry, opts: ExecOptions) -> Self {
        let stacked_vars = program.stacked_vars();
        let mut slot_of: BTreeMap<Var, Slot> = stacked_vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), Slot::Stacked(i)))
            .collect();
        for (i, v) in program.register_vars().into_iter().enumerate() {
            slot_of.insert(v, Slot::Register(i));
        }
        PcVm {
            program,
            registry,
            opts,
            plans: fusion::plan_program(program),
            slot_of,
            stacked_vars,
        }
    }

    /// The program this VM executes.
    pub fn program(&self) -> &Program {
        self.program
    }

    /// Run the batch; one input tensor per program input, axis 0 = batch.
    ///
    /// # Errors
    ///
    /// Returns kernel errors, [`VmError::StackOverflow`] when recursion
    /// exceeds the depth limit `D`, or [`VmError::StepLimit`].
    pub fn run(&self, inputs: &[Tensor], trace: Option<&mut Trace>) -> Result<Vec<Tensor>> {
        self.run_observed(inputs, trace, None)
    }

    /// Like [`PcVm::run`], invoking `observer` after every superstep.
    ///
    /// # Errors
    ///
    /// See [`PcVm::run`].
    pub fn run_observed(
        &self,
        inputs: &[Tensor],
        mut trace: Option<&mut Trace>,
        mut observer: Option<&mut PcObserver<'_>>,
    ) -> Result<Vec<Tensor>> {
        let p = self.program;
        if inputs.len() != p.inputs.len() {
            return Err(VmError::BadInputs {
                what: format!("expected {} inputs, got {}", p.inputs.len(), inputs.len()),
            });
        }
        let z = inputs
            .first()
            .filter(|t| t.rank() > 0)
            .map(|t| t.shape()[0])
            .ok_or_else(|| VmError::BadInputs {
                what: "inputs must have a leading batch dimension".into(),
            })?;
        for t in inputs {
            if t.rank() == 0 || t.shape()[0] != z {
                return Err(VmError::BadInputs {
                    what: "inconsistent batch sizes".into(),
                });
            }
        }
        let n_blocks = p.blocks.len();
        let mut st = State::new(p, z);
        // Algorithm 2's "PUSH T onto x": bind the batch inputs.
        let all = vec![true; z];
        for (v, t) in p.inputs.iter().zip(inputs) {
            self.write_var(
                &mut st,
                v,
                t.clone(),
                &all,
                &mut Temps::default(),
                WriteKind::Update,
                false,
            )?;
        }

        let rng = CounterRng::new(self.opts.seed);
        let mut steps = 0u64;
        while let Some(i) = select_block(&st.pc_top, n_blocks, self.opts.heuristic) {
            steps += 1;
            if steps > self.opts.max_supersteps {
                return Err(VmError::StepLimit {
                    limit: self.opts.max_supersteps,
                });
            }
            self.run_block(&mut st, i, &rng, &mut trace)?;
            if let Some(obs) = observer.as_deref_mut() {
                // Tensor clones here are O(1) copy-on-write shares; the
                // machine pays a buffer copy only on its next write.
                let stacks: BTreeMap<Var, StackSnapshot> = self
                    .stacked_vars
                    .iter()
                    .zip(&st.stacked)
                    .map(|(v, s)| {
                        (
                            v.clone(),
                            StackSnapshot {
                                store: s.store.clone(),
                                sp: s.sp.clone(),
                                top: s.top.clone(),
                            },
                        )
                    })
                    .collect();
                obs(&PcObservation {
                    block: i,
                    active: &st.scratch.active,
                    pc_top: &st.pc_top,
                    pc_depth: st.pc_stack.iter().map(Vec::len).collect(),
                    stacks,
                });
            }
        }
        // Read outputs at their final tops.
        p.outputs
            .iter()
            .map(|o| self.read_var(&st, &Temps::default(), o, "outputs"))
            .collect()
    }

    /// Execute one superstep on block `i`: all ops, the terminator, and
    /// (under fused dispatch) the single block launch. Returns the
    /// number of active members; the active mask itself stays in the
    /// state's scratch arena (`st.scratch.active`). Shared between the
    /// one-shot [`PcVm::run`] loop and the incremental
    /// [`PcMachine::step`].
    fn run_block(
        &self,
        st: &mut State,
        i: usize,
        rng: &CounterRng,
        trace: &mut Option<&mut Trace>,
    ) -> Result<usize> {
        let p = self.program;
        let z = st.z;
        // Borrow the scratch arena for the superstep; restored on every
        // successful exit (error paths simply leave fresh buffers).
        let mut scratch = std::mem::take(&mut st.scratch);
        scratch.active.clear();
        scratch.active.extend(st.pc_top.iter().map(|&pc| pc == i));
        scratch.active_idx.clear();
        scratch
            .active_idx
            .extend((0..z).filter(|&b| scratch.active[b]));
        let n_active = scratch.active_idx.len();
        if let Some(t) = trace.as_deref_mut() {
            t.superstep();
        }
        let fused = trace
            .as_deref()
            .map(|t| !matches!(t.backend().mode, DispatchMode::Eager))
            .unwrap_or(false);
        let functional = trace
            .as_deref()
            .map(|t| t.functional_stack_updates())
            .unwrap_or(false);

        if scratch.fused_off.len() != self.plans.len() {
            scratch.fused_off = self.plans.iter().map(|b| vec![false; b.len()]).collect();
        }
        let mut temps = std::mem::take(&mut scratch.temps);
        temps.clear();
        let mut block_cost = OpCost::default();
        let mut block_random_bytes = 0.0f64;
        let block = &p.blocks[i];
        let plan = &self.plans[i];
        let mut next_region = 0usize;
        let mut op_idx = 0usize;
        while op_idx < block.ops.len() {
            // Fused fast path: execute a whole elementwise region as one
            // loop when the planner found one here and the runtime
            // shapes allow it; otherwise fall through to per-op
            // execution of the same ops.
            if self.opts.fuse_elementwise {
                if let Some(region) = plan.get(next_region).filter(|r| r.start == op_idx) {
                    let region_idx = next_region;
                    next_region += 1;
                    if !scratch.fused_off[i][region_idx] {
                        if self.try_exec_fused(
                            st,
                            &mut temps,
                            region,
                            &mut scratch,
                            trace,
                            &mut block_random_bytes,
                            &mut block_cost,
                            fused,
                            functional,
                        )? {
                            op_idx += region.len;
                            continue;
                        }
                        scratch.fused_off[i][region_idx] = true;
                    }
                }
            }
            match &block.ops[op_idx] {
                Op::Compute { outs, prim, ins } => {
                    let cost = self.exec_compute(
                        st,
                        &mut temps,
                        prim,
                        outs,
                        ins,
                        &scratch.active,
                        &scratch.active_idx,
                        &mut scratch.members,
                        &mut scratch.inputs,
                        rng,
                        trace,
                        &mut block_random_bytes,
                        fused,
                        functional,
                    )?;
                    block_cost.flops += cost.flops;
                    block_cost.bytes += cost.bytes;
                    block_cost.parallel = block_cost.parallel.max(cost.parallel);
                }
                Op::Pop { var } => {
                    let (seq, rand) = self.pop_var(
                        st,
                        var,
                        &scratch.active,
                        &scratch.active_idx,
                        &mut scratch.depths,
                        trace,
                        fused,
                        functional,
                    )?;
                    block_random_bytes += seq + rand;
                }
            }
            op_idx += 1;
        }
        let active_idx = &scratch.active_idx;
        // Terminator.
        match &block.term {
            Terminator::Jump(t) => {
                for &b in active_idx {
                    st.pc_top[b] = t.0;
                }
            }
            Terminator::Branch { cond, then_, else_ } => {
                let c = self.read_var(st, &temps, cond, "branch")?;
                let cv = c.as_bool()?;
                // Under gather/scatter the condition may be a
                // compacted temp (one row per *active* member).
                let compacted = cv.len() == active_idx.len() && cv.len() != z;
                for (pos, &b) in active_idx.iter().enumerate() {
                    let bit = if compacted { cv[pos] } else { cv[b] };
                    st.pc_top[b] = if bit { then_.0 } else { else_.0 };
                }
            }
            Terminator::PushJump { enter, resume } => {
                for &b in active_idx {
                    // The bottom exit sentinel is not a real frame:
                    // members may hold `stack_depth` return addresses,
                    // matching the data stacks' capacity, so pc and data
                    // stacks overflow at the same recursion depth.
                    if st.pc_stack[b].len() > self.opts.stack_depth {
                        return Err(VmError::StackOverflow {
                            var: Var::new("%pc"),
                            limit: self.opts.stack_depth,
                        });
                    }
                    st.pc_stack[b].push(resume.0);
                    st.pc_top[b] = enter.0;
                }
                // pc stack traffic: one index per active member.
                let (seq, rand) = pc_traffic(trace, self.opts.stack_depth, z, n_active, fused);
                block_random_bytes += seq + rand;
            }
            Terminator::Return => {
                for &b in active_idx {
                    match st.pc_stack[b].pop() {
                        Some(r) => st.pc_top[b] = r,
                        None => {
                            return Err(VmError::StackUnderflow {
                                var: Var::new("%pc"),
                            })
                        }
                    }
                }
                let (seq, rand) = pc_traffic(trace, self.opts.stack_depth, z, n_active, fused);
                block_random_bytes += seq + rand;
            }
        }
        if fused {
            if let Some(t) = trace.as_deref_mut() {
                t.launch(&LaunchRecord {
                    kernel: format!("block:{i}"),
                    flops: block_cost.flops,
                    bytes: block_cost.bytes,
                    random_bytes: block_random_bytes,
                    parallel: block_cost.parallel.max(1),
                    active_members: n_active,
                    total_members: z,
                });
            }
        }
        scratch.temps = temps;
        st.scratch = scratch;
        Ok(n_active)
    }

    /// Execute one fused elementwise region as a single loop over
    /// elements, if the runtime shapes permit. Returns `false` (having
    /// done nothing observable) when the region must fall back to
    /// per-op execution: mixed shapes or dtypes, a `bool` region, a
    /// dtype with no compiled table, or the uncached-top ablation
    /// (whose per-read pricing only the per-op path reproduces).
    ///
    /// Results are bit-identical to per-op execution: the loop applies
    /// the same `scalar_ops` functions in the same order, and
    /// write-back goes through the exact per-op write path in op order.
    #[allow(clippy::too_many_arguments)]
    fn try_exec_fused(
        &self,
        st: &mut State,
        temps: &mut Temps,
        region: &FusedRegion,
        scratch: &mut Scratch,
        trace: &mut Option<&mut Trace>,
        block_random_bytes: &mut f64,
        block_cost: &mut OpCost,
        fused: bool,
        functional: bool,
    ) -> Result<bool> {
        if !self.opts.cache_stack_tops {
            return Ok(false);
        }
        let z = st.z;
        let n_active = scratch.active_idx.len();
        let gather = self.opts.strategy == ExecStrategy::GatherScatter;
        // Read the external inputs (O(1) copy-on-write clones),
        // gathering to the active rows under gather/scatter exactly
        // like the per-op path.
        let mut ext_tensors: Vec<Tensor> = Vec::with_capacity(region.exts.len());
        for v in &region.exts {
            let t = self.read_var_mut_temps(st, temps, v)?;
            let t = if gather {
                if t.rank() > 0 && t.shape()[0] == n_active && n_active != z {
                    t
                } else {
                    t.gather_rows(&scratch.active_idx).map_err(VmError::from)?
                }
            } else {
                t
            };
            ext_tensors.push(t);
        }
        // The fast path requires a single "wide" shape: every external
        // either matches it exactly or is a member-scalar `[rows]`
        // broadcast against it, all sharing one numeric dtype (the
        // per-op kernels' NumPy broadcast, reproduced per element).
        // Anything else falls back. A materialized def that never reads
        // a full-width external would come out wider than the per-op
        // path's member-narrow result, so those only fuse at scalar
        // element shape.
        let rows = if gather { n_active } else { z };
        let (shape, dtype) = match ext_tensors.iter().max_by_key(|t| t.rank()) {
            Some(t) => (t.shape().to_vec(), t.dtype()),
            None => {
                let d = match (&region.f64_exec, &region.i64_exec) {
                    (Some(_), None) => DType::F64,
                    (None, Some(_)) => DType::I64,
                    _ => return Ok(false),
                };
                (vec![rows], d)
            }
        };
        if shape.is_empty() || shape[0] != rows {
            return Ok(false);
        }
        scratch.ext_bcast.clear();
        for t in &ext_tensors {
            if t.dtype() != dtype {
                return Ok(false);
            }
            if t.shape() == shape.as_slice() {
                scratch.ext_bcast.push(false);
            } else if t.rank() == 1 && t.shape()[0] == rows {
                scratch.ext_bcast.push(true);
            } else {
                return Ok(false);
            }
        }
        let el: usize = shape[1..].iter().product();
        let n = rows * el;
        if n == 0 {
            // Zero-sized tensors: the fused loop would skip member-
            // narrow materializations entirely (their values exist even
            // when the element axis is empty). The per-op path handles
            // the degenerate case; nothing to optimize at zero elements.
            return Ok(false);
        }
        let results: Vec<Tensor> = match dtype {
            DType::F64 => {
                let Some(table) = &region.f64_exec else {
                    return Ok(false);
                };
                let exts: Vec<&[f64]> = ext_tensors
                    .iter()
                    .map(|t| t.as_f64().expect("dtype checked"))
                    .collect();
                materialize_region(
                    region,
                    table,
                    &exts,
                    &scratch.ext_bcast,
                    &mut scratch.def_wide,
                    &shape,
                    rows,
                    el,
                    &mut scratch.regs_f64,
                    Data::F64,
                )?
            }
            DType::I64 => {
                let Some(table) = &region.i64_exec else {
                    return Ok(false);
                };
                let exts: Vec<&[i64]> = ext_tensors
                    .iter()
                    .map(|t| t.as_i64().expect("dtype checked"))
                    .collect();
                materialize_region(
                    region,
                    table,
                    &exts,
                    &scratch.ext_bcast,
                    &mut scratch.def_wide,
                    &shape,
                    rows,
                    el,
                    &mut scratch.regs_i64,
                    Data::I64,
                )?
            }
            DType::Bool => return Ok(false),
        };
        drop(ext_tensors);
        // Accounting. Logical per-primitive records stay one-per-op
        // (utilization and flop statistics are fusion-independent); the
        // *priced* cost is a single fused launch whose memory traffic
        // counts only the region's external inputs and materialized
        // outputs — intermediates live in registers, which is exactly
        // the saving a fusing compiler buys.
        let total = if gather { n_active } else { z };
        let elem = 8.0; // f64 and i64 payloads are both 8 bytes
        let mut flops_total = 0.0f64;
        for (d, op) in region.ops.iter().enumerate() {
            // A member-narrow op works over one element per member,
            // exactly like its per-op evaluation would.
            let n_op = if scratch.def_wide[d] { n } else { rows };
            let flops = op.prim.flops_per_element() * n_op as f64;
            flops_total += flops;
            let op_bytes = (op.n_ins + 1) as f64 * n_op as f64 * elem;
            let moved = if gather { op_bytes } else { 0.0 };
            if let Some(t) = trace.as_deref_mut() {
                t.record_logical(&LaunchRecord {
                    kernel: op.prim.kernel_tag(),
                    flops,
                    bytes: op_bytes,
                    random_bytes: moved,
                    parallel: n_op,
                    active_members: n_active,
                    total_members: total,
                });
            }
        }
        let ext_bytes: f64 = scratch
            .ext_bcast
            .iter()
            .map(|&b| if b { rows as f64 } else { n as f64 } * elem)
            .sum();
        let mat_bytes: f64 = region
            .mats
            .iter()
            .map(|&d| if scratch.def_wide[d] { n as f64 } else { rows as f64 } * elem)
            .sum();
        let fused_bytes = ext_bytes + mat_bytes;
        let fused_moved = if gather { fused_bytes } else { 0.0 };
        *block_random_bytes += fused_moved;
        block_cost.flops += flops_total;
        block_cost.bytes += fused_bytes;
        block_cost.parallel = block_cost.parallel.max(n);
        if !fused {
            if let Some(t) = trace.as_deref_mut() {
                t.launch(&LaunchRecord {
                    kernel: region.kernel_tag.clone(),
                    flops: flops_total,
                    bytes: fused_bytes,
                    random_bytes: fused_moved,
                    parallel: n,
                    active_members: n_active,
                    total_members: total,
                });
            }
        }
        // Write back the materialized results through the per-op write
        // path, in op order (so stack pushes error in the same order as
        // unfused execution).
        for (&d, r) in region.mats.iter().zip(results) {
            let (var, kind) = &region.ops[d].out;
            self.write_result(
                st,
                temps,
                var,
                *kind,
                r,
                &scratch.active,
                &scratch.active_idx,
                trace,
                block_random_bytes,
                fused,
                functional,
            )?;
        }
        Ok(true)
    }

    /// Execute one `Compute` op under the configured strategy.
    #[allow(clippy::too_many_arguments)]
    fn exec_compute(
        &self,
        st: &mut State,
        temps: &mut Temps,
        prim: &Prim,
        outs: &[(Var, WriteKind)],
        ins: &[Var],
        active: &[bool],
        active_idx: &[usize],
        members_buf: &mut Vec<u64>,
        inputs_buf: &mut Vec<Tensor>,
        rng: &CounterRng,
        trace: &mut Option<&mut Trace>,
        block_random_bytes: &mut f64,
        fused: bool,
        functional: bool,
    ) -> Result<OpCost> {
        let z = st.z;
        let n_active = active_idx.len();
        // Uncached-top ablation: every read of a stacked variable pays a
        // gather from the stack storage.
        if !self.opts.cache_stack_tops {
            for v in ins {
                if let Some(&Slot::Stacked(slot)) = self.slot_of.get(v) {
                    if let Some(top) = &st.stacked[slot].top {
                        let bytes = (top.len() / z.max(1) * n_active) as f64
                            * top.dtype().size_bytes() as f64;
                        *block_random_bytes += bytes;
                        if !fused {
                            record_stack_launch(trace, 0.0, bytes, n_active, z);
                        }
                    }
                }
            }
        }
        let (results, cost, extra_random) = match self.opts.strategy {
            ExecStrategy::Masking => {
                inputs_buf.clear();
                for v in ins {
                    inputs_buf.push(self.read_var_mut_temps(st, temps, v)?);
                }
                let results = eval_prim(prim, inputs_buf, &st.member_keys, rng, &self.registry)?;
                let cost = prim_cost(prim, inputs_buf, &results, &self.registry);
                (results, cost, 0.0)
            }
            ExecStrategy::GatherScatter => {
                inputs_buf.clear();
                for v in ins {
                    let t = self.read_var_mut_temps(st, temps, v)?;
                    // Temps are already compacted to the active rows.
                    if t.rank() > 0 && t.shape()[0] == n_active && n_active != z {
                        inputs_buf.push(t);
                    } else {
                        inputs_buf.push(t.gather_rows(active_idx).map_err(VmError::from)?);
                    }
                }
                members_buf.clear();
                members_buf.extend(active_idx.iter().map(|&b| st.member_keys[b]));
                let results = eval_prim(prim, inputs_buf, members_buf, rng, &self.registry)?;
                let cost = prim_cost(prim, inputs_buf, &results, &self.registry);
                let moved: f64 = inputs_buf
                    .iter()
                    .chain(&results)
                    .map(|t| t.size_bytes() as f64)
                    .sum();
                (results, cost, moved)
            }
        };
        // Release the operand clones before write-back: a surviving
        // share of the destination buffer would force the masked store
        // below into a full copy-on-write instead of an in-place write.
        inputs_buf.clear();
        *block_random_bytes += extra_random;
        if let Some(t) = trace.as_deref_mut() {
            let total = if self.opts.strategy == ExecStrategy::Masking {
                z
            } else {
                n_active
            };
            t.record_logical(&LaunchRecord {
                kernel: prim.kernel_tag(),
                flops: cost.flops,
                bytes: cost.bytes,
                random_bytes: extra_random,
                parallel: cost.parallel,
                active_members: n_active,
                total_members: total,
            });
            if !fused {
                t.launch(&LaunchRecord {
                    kernel: prim.kernel_tag(),
                    flops: cost.flops,
                    bytes: cost.bytes,
                    random_bytes: extra_random,
                    parallel: cost.parallel,
                    active_members: n_active,
                    total_members: total,
                });
            }
        }
        // Write back (in gather mode, compacted rows expand first).
        for ((var, kind), r) in outs.iter().cloned().zip(results) {
            self.write_result(
                st,
                temps,
                &var,
                kind,
                r,
                active,
                active_idx,
                trace,
                block_random_bytes,
                fused,
                functional,
            )?;
        }
        Ok(cost)
    }

    /// Land one computed result on its output variable: expand
    /// compacted rows under gather/scatter (temps stay compacted), then
    /// write through the masked store / stack push path, accounting the
    /// stack traffic. Shared verbatim by the per-op and fused paths, so
    /// fusion cannot change write semantics.
    #[allow(clippy::too_many_arguments)]
    fn write_result(
        &self,
        st: &mut State,
        temps: &mut Temps,
        var: &Var,
        kind: WriteKind,
        mut r: Tensor,
        active: &[bool],
        active_idx: &[usize],
        trace: &mut Option<&mut Trace>,
        block_random_bytes: &mut f64,
        fused: bool,
        functional: bool,
    ) -> Result<()> {
        let z = st.z;
        let n_active = active_idx.len();
        if self.opts.strategy == ExecStrategy::GatherScatter && n_active != z {
            if self.slot_of.contains_key(var) {
                // Expand to full width by scattering into the current
                // value (or zeros when absent).
                let mut full = match self.peek_var(st, var) {
                    Some(t) if t.dtype() == r.dtype() && t.shape()[1..] == r.shape()[1..] => t,
                    _ => {
                        let mut shape = r.shape().to_vec();
                        shape[0] = z;
                        Tensor::zeros(r.dtype(), &shape)
                    }
                };
                full.scatter_rows(active_idx, &r)?;
                r = full;
            } else {
                // Temps stay compacted.
                temps.insert(var.clone(), r);
                return Ok(());
            }
        }
        let (seq, rand) = self.write_var(st, var, r, active, temps, kind, functional)?;
        *block_random_bytes += seq + rand;
        if !fused && (seq > 0.0 || rand > 0.0) {
            record_stack_launch(trace, 0.0, seq + rand, n_active, z);
        }
        Ok(())
    }

    /// Current full-width value of a persistent variable, if any.
    fn peek_var(&self, st: &State, v: &Var) -> Option<Tensor> {
        match self.slot_of.get(v) {
            Some(&Slot::Stacked(i)) => st.stacked[i].top.clone(),
            Some(&Slot::Register(i)) => st.registers[i].clone(),
            None => None,
        }
    }

    fn read_var(&self, st: &State, temps: &Temps, v: &Var, ctx: &str) -> Result<Tensor> {
        if let Some(t) = temps.get(v) {
            return Ok(t.clone());
        }
        self.peek_var(st, v).ok_or_else(|| VmError::Unbound {
            var: v.clone(),
            context: ctx.to_string(),
        })
    }

    fn read_var_mut_temps(&self, st: &State, temps: &Temps, v: &Var) -> Result<Tensor> {
        self.read_var(st, temps, v, "compute")
    }

    /// Write `value` to `var` for the active members. Returns the
    /// (sequential, random) stack traffic in bytes.
    #[allow(clippy::too_many_arguments)]
    fn write_var(
        &self,
        st: &mut State,
        var: &Var,
        value: Tensor,
        active: &[bool],
        temps: &mut Temps,
        kind: WriteKind,
        functional: bool,
    ) -> Result<(f64, f64)> {
        let z = st.z;
        if let Some(&Slot::Stacked(slot)) = self.slot_of.get(var) {
            let s = &mut st.stacked[slot];
            match kind {
                WriteKind::Update => {
                    masked_store(&mut s.top, value, active)?;
                    let top = s.top.as_ref().expect("just stored");
                    // Functional semantics rebuild the top buffer on every
                    // masked update (read the old buffer + write the new,
                    // matching how op costs count inputs + outputs).
                    let seq = if functional {
                        2.0 * top.size_bytes() as f64
                    } else {
                        0.0
                    };
                    // Uncached-top ablation: updates scatter to storage.
                    if !self.opts.cache_stack_tops {
                        let n_active = active.iter().filter(|&&a| a).count();
                        let bytes = (top.len() / z.max(1) * n_active) as f64
                            * top.dtype().size_bytes() as f64;
                        return Ok((seq, bytes));
                    }
                    Ok((seq, 0.0))
                }
                WriteKind::Push => {
                    let n_active = active.iter().filter(|&&a| a).count();
                    // Materialize the old top (zeros for the virgin frame)
                    // into storage, then cache the new value as top.
                    let elem_shape: Vec<usize> = value.shape()[1..].to_vec();
                    if s.top.is_none() {
                        let mut shape = vec![z];
                        shape.extend_from_slice(&elem_shape);
                        s.top = Some(Tensor::zeros(value.dtype(), &shape));
                    }
                    for (b, &a) in active.iter().enumerate() {
                        if a && s.sp[b] >= self.opts.stack_depth {
                            return Err(VmError::StackOverflow {
                                var: var.clone(),
                                limit: self.opts.stack_depth,
                            });
                        }
                    }
                    // Move the top out instead of cloning it so the
                    // masked store below mutates a unique buffer in
                    // place (a live clone would force a copy-on-write).
                    let top = s.top.take().expect("ensured above");
                    if s.store.is_none() {
                        let mut shape = vec![self.opts.stack_depth, z];
                        shape.extend_from_slice(&top.shape()[1..]);
                        s.store = Some(Tensor::zeros(top.dtype(), &shape));
                    }
                    let store = s.store.as_mut().expect("ensured above");
                    store.scatter_at_depth(&s.sp, active, &top)?;
                    for (b, &a) in active.iter().enumerate() {
                        if a {
                            s.sp[b] += 1;
                        }
                    }
                    let elem_bytes = top.len() / z.max(1) * top.dtype().size_bytes();
                    s.top = Some(top);
                    masked_store(&mut s.top, value, active)?;
                    // Functional semantics copy the whole [D, Z, ..] stack
                    // buffer to produce the "new" stack value — the cost
                    // the paper's §4.1 hypothesis (2) blames for fully
                    // compiled autobatching losing to the hybrid at very
                    // large batch sizes.
                    let seq = if functional {
                        s.store
                            .as_ref()
                            .map_or(0.0, |st| 2.0 * st.size_bytes() as f64)
                    } else {
                        0.0
                    };
                    Ok((seq, (elem_bytes * n_active) as f64))
                }
            }
        } else if let Some(&Slot::Register(slot)) = self.slot_of.get(var) {
            debug_assert_eq!(kind, WriteKind::Update, "validated: no push to register");
            masked_store(&mut st.registers[slot], value, active)?;
            Ok((0.0, 0.0))
        } else {
            // Block-local temporary: plain unmasked binding.
            temps.insert(var.clone(), value);
            Ok((0.0, 0.0))
        }
    }

    /// Pop a stacked variable for the active members. Returns the
    /// (sequential, random) stack traffic in bytes.
    #[allow(clippy::too_many_arguments)]
    fn pop_var(
        &self,
        st: &mut State,
        var: &Var,
        active: &[bool],
        active_idx: &[usize],
        depths_buf: &mut Vec<usize>,
        trace: &mut Option<&mut Trace>,
        fused: bool,
        functional: bool,
    ) -> Result<(f64, f64)> {
        let z = st.z;
        let slot = match self.slot_of.get(var) {
            Some(&Slot::Stacked(i)) => i,
            _ => {
                return Err(VmError::Unbound {
                    var: var.clone(),
                    context: "pop of unknown stacked variable".into(),
                })
            }
        };
        let s = &mut st.stacked[slot];
        let store = s
            .store
            .as_ref()
            .ok_or(VmError::StackUnderflow { var: var.clone() })?;
        for &b in active_idx {
            if s.sp[b] == 0 {
                return Err(VmError::StackUnderflow { var: var.clone() });
            }
        }
        depths_buf.clear();
        depths_buf.extend(
            s.sp.iter()
                .enumerate()
                .map(|(b, &d)| if active[b] { d - 1 } else { 0 }),
        );
        let restored = store.gather_at_depth(depths_buf)?;
        masked_store(&mut s.top, restored, active)?;
        for &b in active_idx {
            s.sp[b] -= 1;
        }
        let top = s.top.as_ref().expect("pop restores a value");
        let bytes =
            (top.len() / z.max(1) * active_idx.len()) as f64 * top.dtype().size_bytes() as f64;
        // Functional semantics rebuild the stack buffer on pop as well
        // (the while-loop state tuple is immutable).
        let seq = if functional {
            s.store
                .as_ref()
                .map_or(0.0, |st| 2.0 * st.size_bytes() as f64)
        } else {
            0.0
        };
        if !fused {
            record_stack_launch(trace, 0.0, seq + bytes, active_idx.len(), z);
        }
        Ok((seq, bytes))
    }
}

/// A member retired from a [`PcMachine`]: its admission ticket, RNG key,
/// and the program outputs for that member (each tensor `[1, elem..]`).
#[derive(Debug, Clone)]
pub struct Retired {
    /// The ticket returned by [`PcMachine::admit`].
    pub ticket: u64,
    /// The RNG member key the request ran under.
    pub key: u64,
    /// One `[1, elem..]` tensor per program output.
    pub outputs: Vec<Tensor>,
}

/// One stacked variable's slice of a [`LaneState`]: the lane's stack
/// pointer, its frames (bottom first, each `[1, elem..]`), and its
/// cached top row.
#[derive(Debug, Clone)]
struct LaneStack {
    sp: usize,
    frames: Vec<Tensor>,
    top: Option<Tensor>,
}

/// The complete portable state of one **running** lane, extracted by
/// [`PcMachine::extract_lanes`] and re-admitted elsewhere by
/// [`PcMachine::inject_lane`] — the mechanism behind cross-shard
/// straggler migration.
///
/// Moving a lane between machines cannot perturb its results: every
/// random draw is keyed by `(seed, member_key, counter)` where the
/// counter is threaded through the program's own data, so the draw
/// stream is independent of placement, batch composition, and timing.
/// The only compatibility requirement is that source and destination
/// execute the same lowered program under the same
/// [`ExecOptions::stack_depth`] (checked at injection).
#[derive(Debug, Clone)]
pub struct LaneState {
    /// The RNG member key the lane draws under.
    key: u64,
    /// The lane's current pc top (block index).
    pc_top: usize,
    /// pc frames beneath the top (exit sentinel at the bottom).
    pc_stack: Vec<usize>,
    /// Per stacked variable, in the program's slot order.
    stacked: Vec<LaneStack>,
    /// Per register slot: the lane's row, if ever materialized.
    registers: Vec<Option<Tensor>>,
    /// Supersteps the lane has been charged for so far (see
    /// [`PcMachine::lane_spend`]); migrates with the lane so a budget
    /// cannot be reset by moving shards.
    spent: u64,
    /// Peak per-lane resident bytes observed so far; migrates with the
    /// lane for the same reason.
    peak_bytes: u64,
}

impl LaneState {
    /// The block index the lane is about to execute.
    pub fn pc(&self) -> usize {
        self.pc_top
    }

    /// The RNG member key the lane draws under.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Supersteps charged to the lane so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Peak per-lane resident bytes observed so far.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }
}

/// An incremental program-counter VM supporting **dynamic batch
/// admission**: members join an in-flight batch at the entry block (with
/// fresh stacks) and are compacted out once their pc top hits the exit.
///
/// The machine is `Send` (all member state is owned; external kernels
/// are `Send + Sync` by trait bound), so a sharded serving runtime can
/// hand each machine to its own worker thread — each shard drives its
/// machine independently while borrowing the shared lowered [`Program`].
/// This is asserted at compile time (see the `send_handoff` assertions
/// in this module), not just by convention.
///
/// Because every random draw is keyed by `(seed, member_key, counter)`
/// and each lane carries its own `member_key`, a member's results are
/// bit-identical whether it runs alone or joins a busy batch mid-flight —
/// admission order cannot perturb results. This is what turns the
/// one-shot batched VM into a serving runtime (see the `autobatch-serve`
/// crate).
///
/// # Examples
///
/// ```
/// use autobatch_core::{lower, KernelRegistry, LoweringOptions, PcMachine, ExecOptions};
/// use autobatch_ir::build::fibonacci_program;
/// use autobatch_tensor::Tensor;
///
/// let (program, _) = lower(&fibonacci_program(), LoweringOptions::default())?;
/// let mut m = PcMachine::new(&program, KernelRegistry::new(), ExecOptions::default());
/// m.admit(&[Tensor::from_i64(&[6], &[1])?], 0, None)?;
/// m.step(None)?; // ... and mid-flight:
/// m.admit(&[Tensor::from_i64(&[9], &[1])?], 1, None)?;
/// let done = m.run_to_completion(None)?;
/// let mut fib: Vec<i64> = done
///     .iter()
///     .map(|r| r.outputs[0].as_i64().map(|v| v[0]))
///     .collect::<Result<_, _>>()?;
/// fib.sort_unstable();
/// assert_eq!(fib, vec![13, 55]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct PcMachine<'p> {
    vm: PcVm<'p>,
    st: State,
    rng: CounterRng,
    /// Lane → admission ticket.
    tickets: Vec<u64>,
    /// Lane → supersteps charged to the lane (see
    /// [`PcMachine::lane_spend`]).
    spent: Vec<u64>,
    /// Lane → peak resident bytes attributed to the lane so far.
    peak_bytes: Vec<u64>,
    next_ticket: u64,
    steps: u64,
    last_active: usize,
}

impl<'p> PcMachine<'p> {
    /// Create an empty machine (no members) for a lowered program.
    pub fn new(program: &'p Program, registry: KernelRegistry, opts: ExecOptions) -> Self {
        let rng = CounterRng::new(opts.seed);
        let st = State::new(program, 0);
        PcMachine {
            vm: PcVm::new(program, registry, opts),
            st,
            rng,
            tickets: Vec::new(),
            spent: Vec::new(),
            peak_bytes: Vec::new(),
            next_ticket: 0,
            steps: 0,
            last_active: 0,
        }
    }

    /// The program this machine executes.
    pub fn program(&self) -> &Program {
        self.vm.program
    }

    /// Live members (running + finished-but-not-yet-retired).
    pub fn live(&self) -> usize {
        self.st.z
    }

    /// Members whose pc top has not yet reached the exit.
    pub fn running(&self) -> usize {
        let n_blocks = self.vm.program.blocks.len();
        self.st.pc_top.iter().filter(|&&pc| pc < n_blocks).count()
    }

    /// Members that finished and are waiting to be retired.
    pub fn finished(&self) -> usize {
        self.live() - self.running()
    }

    /// Supersteps executed so far (counts toward
    /// [`ExecOptions::max_supersteps`]).
    pub fn supersteps(&self) -> u64 {
        self.steps
    }

    /// Active members in the most recent superstep (0 before any step).
    /// Admission policies read this as a utilization signal.
    pub fn last_active(&self) -> usize {
        self.last_active
    }

    /// Supersteps left before [`ExecOptions::max_supersteps`] trips —
    /// the limit is cumulative over the machine's lifetime. Zero means
    /// [`PcMachine::step`] can only error from here on; admission layers
    /// check this so they never strand fresh work in a machine that
    /// cannot run it.
    pub fn step_budget_remaining(&self) -> u64 {
        self.vm.opts.max_supersteps.saturating_sub(self.steps)
    }

    /// Admission tickets of the live members, lane by lane.
    pub fn tickets(&self) -> &[u64] {
        &self.tickets
    }

    /// Admit one member at the entry block with fresh stacks. `inputs`
    /// holds one `[1, elem..]` tensor per program input; `key` is the RNG
    /// member key the lane draws under. Returns an admission ticket.
    ///
    /// All existing lanes are untouched: buffers grow by one zeroed lane
    /// (exactly the state a fresh batch starts from), so live members'
    /// results are unchanged by the admission. To admit several members
    /// at once, [`PcMachine::admit_batch`] grows every buffer a single
    /// time instead of once per member.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::BadInputs`] on arity or shape mismatch.
    pub fn admit(&mut self, inputs: &[Tensor], key: u64, trace: Option<&mut Trace>) -> Result<u64> {
        self.admit_batch(&[(inputs, key)], trace)
            .map(|tickets| tickets[0])
    }

    /// Admit several members at once: each entry holds one `[1, elem..]`
    /// tensor per program input plus the lane's RNG member key. Every
    /// per-member buffer grows by `requests.len()` zeroed lanes in a
    /// single pad (one copy of the live state, however many members
    /// join), so a full batch refill costs the same as one admission.
    /// Returns one admission ticket per request, in order.
    ///
    /// Programs are shape-polymorphic (like [`PcVm::run`], which accepts
    /// any consistently-shaped batch), so the machine's **first**
    /// admission fixes each input's element shape and dtype for the
    /// machine's lifetime — the buffers keep their trailing shape even
    /// when every lane retires — and all later admissions are validated
    /// against it.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::BadInputs`] on arity mismatch, non-row inputs,
    /// or disagreement with the established element shapes/dtypes;
    /// validation happens before the machine is touched.
    pub fn admit_batch(
        &mut self,
        requests: &[(&[Tensor], u64)],
        trace: Option<&mut Trace>,
    ) -> Result<Vec<u64>> {
        let k = requests.len();
        if k == 0 {
            return Ok(Vec::new());
        }
        let p = self.vm.program;
        for (inputs, _) in requests {
            if inputs.len() != p.inputs.len() {
                return Err(VmError::BadInputs {
                    what: format!("expected {} inputs, got {}", p.inputs.len(), inputs.len()),
                });
            }
            for t in *inputs {
                if t.rank() == 0 || t.shape()[0] != 1 {
                    return Err(VmError::BadInputs {
                        what: format!(
                            "admitted inputs must be single-member rows [1, ..], got {:?}",
                            t.shape()
                        ),
                    });
                }
            }
        }
        // Stack the requests' rows per program input — [k, elem..] each —
        // before any growth, so cross-request shape mismatches surface
        // while the machine is still untouched.
        let stacked_inputs: Vec<Tensor> = (0..p.inputs.len())
            .map(|j| {
                let rows: Vec<Tensor> = requests.iter().map(|(ins, _)| ins[j].clone()).collect();
                Tensor::concat_rows(&rows).map_err(VmError::from)
            })
            .collect::<Result<_>>()?;
        // The rows must also agree with the *live* lanes' buffers: a
        // masked store silently reallocates on shape or dtype change, so
        // a mismatched admission would zero or corrupt in-flight members.
        // Check against whatever full-width buffer the var currently
        // holds — still before the machine is touched.
        for (v, rows) in p.inputs.iter().zip(&stacked_inputs) {
            let live = match self.vm.slot_of.get(v) {
                Some(&Slot::Stacked(i)) => {
                    let s = &self.st.stacked[i];
                    s.top
                        .as_ref()
                        .map(|t| (t.shape()[1..].to_vec(), t.dtype()))
                        .or_else(|| {
                            s.store
                                .as_ref()
                                .map(|t| (t.shape()[2..].to_vec(), t.dtype()))
                        })
                }
                Some(&Slot::Register(i)) => self.st.registers[i]
                    .as_ref()
                    .map(|t| (t.shape()[1..].to_vec(), t.dtype())),
                None => None,
            };
            if let Some((elem, dtype)) = live {
                if rows.shape()[1..] != elem[..] || rows.dtype() != dtype {
                    return Err(VmError::BadInputs {
                        what: format!(
                            "admitted input {v} rows are {:?} {:?}, but the live \
                             batch holds {:?} {:?}",
                            &rows.shape()[1..],
                            rows.dtype(),
                            elem,
                            dtype
                        ),
                    });
                }
            }
        }
        let z = self.st.z;
        // Grow every per-member structure by k zeroed lanes at once.
        self.st.z = z + k;
        self.st.pc_top.extend(std::iter::repeat_n(p.entry.0, k));
        self.st
            .pc_stack
            .extend(std::iter::repeat_n(vec![p.blocks.len()], k)); // exit sentinel
        self.st
            .member_keys
            .extend(requests.iter().map(|&(_, key)| key));
        for s in self.st.stacked.iter_mut() {
            s.sp.extend(std::iter::repeat_n(0, k));
            if let Some(top) = &s.top {
                s.top = Some(top.pad_rows(k)?);
            }
            if let Some(store) = &s.store {
                s.store = Some(store.pad_axis1(k)?);
            }
        }
        for slot in self.st.registers.iter_mut() {
            if let Some(t) = slot {
                *slot = Some(t.pad_rows(k)?);
            }
        }
        // Bind the inputs into the new lanes only.
        let mut active = vec![false; z + k];
        active[z..].fill(true);
        let new_lanes: Vec<usize> = (z..z + k).collect();
        for (v, rows) in p.inputs.iter().zip(stacked_inputs) {
            let mut shape = rows.shape().to_vec();
            shape[0] = z + k;
            let mut full = Tensor::zeros(rows.dtype(), &shape);
            full.scatter_rows(&new_lanes, &rows)?;
            self.vm.write_var(
                &mut self.st,
                v,
                full,
                &active,
                &mut Temps::default(),
                WriteKind::Update,
                false,
            )?;
        }
        let tickets: Vec<u64> = (self.next_ticket..self.next_ticket + k as u64).collect();
        self.next_ticket += k as u64;
        self.tickets.extend_from_slice(&tickets);
        self.spent.extend(std::iter::repeat_n(0, k));
        self.peak_bytes.extend(std::iter::repeat_n(0, k));
        if let Some(t) = trace {
            t.membership(k, 0, self.st.z);
        }
        Ok(tickets)
    }

    /// Run one superstep. Returns `false` (and does nothing) when no
    /// member is runnable — all lanes are finished or the machine is
    /// empty.
    ///
    /// # Errors
    ///
    /// As [`PcVm::run`]; the superstep count is cumulative over the
    /// machine's lifetime.
    pub fn step(&mut self, mut trace: Option<&mut Trace>) -> Result<bool> {
        let n_blocks = self.vm.program.blocks.len();
        let Some(i) = select_block(&self.st.pc_top, n_blocks, self.vm.opts.heuristic) else {
            self.last_active = 0;
            return Ok(false);
        };
        self.steps += 1;
        if self.steps > self.vm.opts.max_supersteps {
            return Err(VmError::StepLimit {
                limit: self.vm.opts.max_supersteps,
            });
        }
        // Chaos hook: a scheduled execution fault fires *before* the
        // block runs, so the machine state stays consistent (nothing is
        // half-mutated) and a supervisor can salvage and retry. The
        // default plan never fires.
        let fault = &self.vm.opts.fault;
        if fault.fires(autobatch_chaos::FaultPoint::ExecStep, self.steps) {
            return Err(VmError::Injected {
                point: autobatch_chaos::FaultPoint::ExecStep.name(),
                counter: self.steps,
            });
        }
        self.last_active = self.vm.run_block(&mut self.st, i, &self.rng, &mut trace)?;
        // Chaos hook: a runaway lane never reaches the exit — the
        // moment its pc top would finish, it is reset to the entry
        // block, exactly as a genuinely non-terminating program would
        // behave. The roll is keyed by the lane's RNG member key, so
        // whether a request runs away is a property of the request:
        // stable across shards, retries, and migrations. Batchmates are
        // untouched — a lane's pc only selects which blocks *it*
        // executes, and masked execution already guarantees results are
        // independent of what other lanes run.
        let fault = self.vm.opts.fault;
        if fault.runaway != 0 {
            let entry = self.vm.program.entry.0;
            for b in 0..self.st.z {
                if self.st.pc_top[b] >= n_blocks
                    && fault.fires(autobatch_chaos::FaultPoint::Runaway, self.st.member_keys[b])
                {
                    self.st.pc_top[b] = entry;
                    // Restore the admission-time exit sentinel the
                    // finishing `Ret` just popped, so the rewound
                    // lane's next return re-parks it at the exit
                    // (where it is rewound again) instead of
                    // underflowing the pc stack.
                    self.st.pc_stack[b].push(n_blocks);
                }
            }
        }
        // Budget accounting: every lane still running after this
        // superstep is charged one superstep, whether or not its block
        // was the one selected — a parked lane occupies the machine all
        // the same. Lanes that just finished stop accruing.
        for b in 0..self.st.z {
            if self.st.pc_top[b] < n_blocks {
                self.spent[b] += 1;
            }
        }
        self.update_peak_bytes();
        Ok(true)
    }

    /// Fold each lane's current resident-byte footprint into its peak.
    /// Derived entirely from buffer shapes and stack pointers — no data
    /// walk — so the per-superstep cost is a few scalar ops per lane.
    fn update_peak_bytes(&mut self) {
        // Registers and stack tops hold one row per lane regardless of
        // stack depth; only the occupied store frames vary by lane.
        let mut base: u64 = 0;
        let mut frames: Vec<(usize, u64)> = Vec::new();
        for slot in self.st.registers.iter().flatten() {
            base += elem_bytes(slot.shape(), 1, slot.dtype());
        }
        for (si, s) in self.st.stacked.iter().enumerate() {
            if let Some(top) = &s.top {
                base += elem_bytes(top.shape(), 1, top.dtype());
            }
            if let Some(store) = &s.store {
                frames.push((si, elem_bytes(store.shape(), 2, store.dtype())));
            }
        }
        for b in 0..self.st.z {
            let mut bytes = base;
            for &(si, per_frame) in &frames {
                bytes += self.st.stacked[si].sp[b] as u64 * per_frame;
            }
            if bytes > self.peak_bytes[b] {
                self.peak_bytes[b] = bytes;
            }
        }
    }

    /// `(ticket, spent supersteps, peak resident bytes)` of every
    /// **running** lane, in lane order — what a budget-enforcing server
    /// reads at each superstep boundary to decide evictions. Spend
    /// starts at zero on admission, increments once per superstep the
    /// lane stays running, and travels with the lane through
    /// [`PcMachine::extract_lanes`] / [`PcMachine::inject_lane`], so
    /// migrating cannot reset a budget.
    pub fn lane_spend(&self) -> Vec<(u64, u64, u64)> {
        let n_blocks = self.vm.program.blocks.len();
        (0..self.st.z)
            .filter(|&b| self.st.pc_top[b] < n_blocks)
            .map(|b| (self.tickets[b], self.spent[b], self.peak_bytes[b]))
            .collect()
    }

    /// Retire every finished member: read its outputs, then compact its
    /// lane out of all batch structures (the member-set shrink of dynamic
    /// admission). Returns the retired members in lane order.
    ///
    /// # Errors
    ///
    /// Propagates output-read errors.
    pub fn retire_finished(&mut self, trace: Option<&mut Trace>) -> Result<Vec<Retired>> {
        let p = self.vm.program;
        let n_blocks = p.blocks.len();
        let done: Vec<usize> = (0..self.st.z)
            .filter(|&b| self.st.pc_top[b] >= n_blocks)
            .collect();
        if done.is_empty() {
            return Ok(Vec::new());
        }
        let outs_full: Vec<Tensor> = p
            .outputs
            .iter()
            .map(|o| self.vm.read_var(&self.st, &Temps::default(), o, "outputs"))
            .collect::<Result<_>>()?;
        let mut retired = Vec::with_capacity(done.len());
        for &b in &done {
            let outputs: Vec<Tensor> = outs_full
                .iter()
                .map(|t| t.gather_rows(&[b]).map_err(VmError::from))
                .collect::<Result<_>>()?;
            retired.push(Retired {
                ticket: self.tickets[b],
                key: self.st.member_keys[b],
                outputs,
            });
        }
        // Compact the surviving lanes together.
        let keep: Vec<usize> = (0..self.st.z)
            .filter(|&b| self.st.pc_top[b] < n_blocks)
            .collect();
        self.st.pc_top = keep.iter().map(|&b| self.st.pc_top[b]).collect();
        self.st.pc_stack = keep
            .iter()
            .map(|&b| std::mem::take(&mut self.st.pc_stack[b]))
            .collect();
        self.st.member_keys = keep.iter().map(|&b| self.st.member_keys[b]).collect();
        self.tickets = keep.iter().map(|&b| self.tickets[b]).collect();
        self.spent = keep.iter().map(|&b| self.spent[b]).collect();
        self.peak_bytes = keep.iter().map(|&b| self.peak_bytes[b]).collect();
        for s in self.st.stacked.iter_mut() {
            s.sp = keep.iter().map(|&b| s.sp[b]).collect();
            if let Some(top) = &s.top {
                s.top = Some(top.gather_rows(&keep)?);
            }
            if let Some(store) = &s.store {
                s.store = Some(store.select_axis1(&keep)?);
            }
        }
        for slot in self.st.registers.iter_mut() {
            if let Some(t) = slot {
                *slot = Some(t.gather_rows(&keep)?);
            }
        }
        self.st.z = keep.len();
        if let Some(t) = trace {
            t.membership(0, done.len(), self.st.z);
        }
        Ok(retired)
    }

    /// Step until no member is runnable, retiring as members finish.
    /// Returns all members retired during the call.
    ///
    /// # Errors
    ///
    /// As [`PcMachine::step`] / [`PcMachine::retire_finished`].
    pub fn run_to_completion(&mut self, mut trace: Option<&mut Trace>) -> Result<Vec<Retired>> {
        let mut all = Vec::new();
        loop {
            all.extend(self.retire_finished(trace.as_deref_mut())?);
            if !self.step(trace.as_deref_mut())? {
                all.extend(self.retire_finished(trace.as_deref_mut())?);
                return Ok(all);
            }
        }
    }

    /// Per-lane pc tops (`== block count` means the lane is finished).
    pub fn pc_tops(&self) -> &[usize] {
        &self.st.pc_top
    }

    /// Histogram of **running** lanes per pc top. Finished lanes are
    /// excluded — they leave at the next retirement and carry no
    /// affinity signal.
    pub fn pc_histogram(&self) -> BTreeMap<usize, usize> {
        let n_blocks = self.vm.program.blocks.len();
        let mut hist = BTreeMap::new();
        for &pc in &self.st.pc_top {
            if pc < n_blocks {
                *hist.entry(pc).or_insert(0) += 1;
            }
        }
        hist
    }

    /// The pc top shared by the most running lanes (ties break toward
    /// the lowest pc, matching the `EarliestBlock` heuristic). `None`
    /// when no lane is running.
    pub fn majority_pc(&self) -> Option<usize> {
        self.pc_histogram()
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(pc, _)| pc)
    }

    /// `(ticket, pc)` of every **running** lane, in lane order.
    pub fn lane_pcs(&self) -> Vec<(u64, usize)> {
        let n_blocks = self.vm.program.blocks.len();
        self.tickets
            .iter()
            .zip(&self.st.pc_top)
            .filter(|&(_, &pc)| pc < n_blocks)
            .map(|(&t, &pc)| (t, pc))
            .collect()
    }

    /// Extract the given **running** lanes as portable [`LaneState`]s and
    /// compact them out of this machine (the same member-set shrink as
    /// [`PcMachine::retire_finished`], keyed by ticket instead of exit
    /// pc). Returns `(ticket, state)` pairs in the order requested —
    /// the eviction half of cross-shard straggler migration, and the
    /// checkpoint path budget enforcement evicts over-limit lanes
    /// through.
    ///
    /// # Soundness: the eviction boundary
    ///
    /// Eviction is only legal at a **superstep edge** — between one
    /// [`PcMachine::step`] returning and the next beginning — never
    /// mid-superstep and in particular never inside a fused elementwise
    /// region. Within a superstep, fused regions hold intermediate
    /// values in registers that exist nowhere in `State`'s buffers;
    /// compacting a lane out at that point would leave batchmates'
    /// gather indices pointing at moved rows. At the edge, every live
    /// value is materialized in the per-lane buffers, so removing a
    /// lane is a pure row-compaction the remaining lanes cannot
    /// observe (their results are bit-identical by the masking
    /// argument). All callers in this workspace — migration planning
    /// and budget eviction alike — run strictly between supersteps.
    ///
    /// Validation happens before any mutation: on error the machine is
    /// untouched.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::BadInputs`] for an unknown ticket or a lane
    /// that has already finished (finished lanes must retire, not
    /// migrate).
    pub fn extract_lanes(
        &mut self,
        tickets: &[u64],
        trace: Option<&mut Trace>,
    ) -> Result<Vec<(u64, LaneState)>> {
        if tickets.is_empty() {
            return Ok(Vec::new());
        }
        let n_blocks = self.vm.program.blocks.len();
        let mut lanes = Vec::with_capacity(tickets.len());
        for &ticket in tickets {
            let Some(b) = self.tickets.iter().position(|&t| t == ticket) else {
                return Err(VmError::BadInputs {
                    what: format!("extract_lanes: no live lane holds ticket {ticket}"),
                });
            };
            if self.st.pc_top[b] >= n_blocks {
                return Err(VmError::BadInputs {
                    what: format!("extract_lanes: lane with ticket {ticket} already finished"),
                });
            }
            lanes.push(b);
        }
        let z = self.st.z;
        let mut out = Vec::with_capacity(lanes.len());
        let mut depths = vec![0usize; z];
        for (&ticket, &b) in tickets.iter().zip(&lanes) {
            let mut stacked = Vec::with_capacity(self.st.stacked.len());
            for s in &self.st.stacked {
                let sp = s.sp[b];
                let mut frames = Vec::with_capacity(sp);
                if sp > 0 {
                    // The store always spans the full depth limit, so any
                    // frame index below `sp` is in bounds for every lane.
                    let store = s.store.as_ref().ok_or_else(|| VmError::BadInputs {
                        what: format!("extract_lanes: sp {sp} > 0 with no store buffer"),
                    })?;
                    for d in 0..sp {
                        depths.fill(d);
                        frames.push(store.gather_at_depth(&depths)?.gather_rows(&[b])?);
                    }
                }
                stacked.push(LaneStack {
                    sp,
                    frames,
                    top: match &s.top {
                        Some(t) => Some(t.gather_rows(&[b])?),
                        None => None,
                    },
                });
            }
            let registers = self
                .st
                .registers
                .iter()
                .map(|slot| slot.as_ref().map(|t| t.gather_rows(&[b])).transpose())
                .collect::<std::result::Result<_, _>>()?;
            out.push((
                ticket,
                LaneState {
                    key: self.st.member_keys[b],
                    pc_top: self.st.pc_top[b],
                    pc_stack: self.st.pc_stack[b].clone(),
                    stacked,
                    registers,
                    spent: self.spent[b],
                    peak_bytes: self.peak_bytes[b],
                },
            ));
        }
        // Compact the surviving lanes together (as retire_finished does).
        let keep: Vec<usize> = (0..z).filter(|b| !lanes.contains(b)).collect();
        self.st.pc_top = keep.iter().map(|&b| self.st.pc_top[b]).collect();
        self.st.pc_stack = keep
            .iter()
            .map(|&b| std::mem::take(&mut self.st.pc_stack[b]))
            .collect();
        self.st.member_keys = keep.iter().map(|&b| self.st.member_keys[b]).collect();
        self.tickets = keep.iter().map(|&b| self.tickets[b]).collect();
        self.spent = keep.iter().map(|&b| self.spent[b]).collect();
        self.peak_bytes = keep.iter().map(|&b| self.peak_bytes[b]).collect();
        for s in self.st.stacked.iter_mut() {
            s.sp = keep.iter().map(|&b| s.sp[b]).collect();
            if let Some(top) = &s.top {
                s.top = Some(top.gather_rows(&keep)?);
            }
            if let Some(store) = &s.store {
                s.store = Some(store.select_axis1(&keep)?);
            }
        }
        for slot in self.st.registers.iter_mut() {
            if let Some(t) = slot {
                *slot = Some(t.gather_rows(&keep)?);
            }
        }
        self.st.z = keep.len();
        if let Some(t) = trace {
            t.migrate_out(lanes.len(), self.st.z);
        }
        Ok(out)
    }

    /// Re-admit a lane previously produced by [`PcMachine::extract_lanes`]
    /// (possibly on a different machine): the admission half of
    /// straggler migration. The lane joins with its pc stack, data
    /// stacks, registers, and RNG key intact, so its remaining draws and
    /// outputs are bit-identical to never having moved. Returns the
    /// lane's new ticket on this machine.
    ///
    /// Source and destination must execute the same lowered program
    /// under the same [`ExecOptions::stack_depth`]; all structural
    /// checks run before any mutation.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::BadInputs`] on arity or depth mismatch, and
    /// tensor-shape errors when the lane's rows disagree with the live
    /// batch's element shapes.
    pub fn inject_lane(&mut self, lane: &LaneState, trace: Option<&mut Trace>) -> Result<u64> {
        let p = self.vm.program;
        let n_blocks = p.blocks.len();
        if lane.pc_top >= n_blocks {
            return Err(VmError::BadInputs {
                what: format!(
                    "inject_lane: pc top {} is out of range for {} blocks",
                    lane.pc_top, n_blocks
                ),
            });
        }
        if lane.stacked.len() != self.st.stacked.len()
            || lane.registers.len() != self.st.registers.len()
        {
            return Err(VmError::BadInputs {
                what: format!(
                    "inject_lane: lane has {} stacked vars / {} registers, \
                     machine has {} / {} (programs must match)",
                    lane.stacked.len(),
                    lane.registers.len(),
                    self.st.stacked.len(),
                    self.st.registers.len()
                ),
            });
        }
        let depth_limit = self.vm.opts.stack_depth;
        for ls in &lane.stacked {
            if ls.sp > depth_limit || ls.frames.len() != ls.sp {
                return Err(VmError::BadInputs {
                    what: format!(
                        "inject_lane: lane carries {} frames at sp {} under depth limit {}",
                        ls.frames.len(),
                        ls.sp,
                        depth_limit
                    ),
                });
            }
        }
        // Element shapes and dtypes must agree with the live buffers
        // wherever both sides hold one — checked up front so an error
        // leaves the machine untouched.
        let check = |what: &str, elem: &[usize], dt: DType, live: &Tensor, skip: usize| {
            if live.shape()[skip..] != elem[1..] || live.dtype() != dt {
                return Err(VmError::BadInputs {
                    what: format!(
                        "inject_lane: lane {what} row is {:?} {dt:?}, but the live \
                         batch holds {:?} {:?}",
                        &elem[1..],
                        &live.shape()[skip..],
                        live.dtype()
                    ),
                });
            }
            Ok(())
        };
        for (s, ls) in self.st.stacked.iter().zip(&lane.stacked) {
            if let (Some(top), Some(row)) = (&s.top, &ls.top) {
                check("stack-top", row.shape(), row.dtype(), top, 1)?;
            }
            if let (Some(store), Some(frame)) = (&s.store, ls.frames.first()) {
                check("stack-frame", frame.shape(), frame.dtype(), store, 2)?;
            }
        }
        for (slot, row) in self.st.registers.iter().zip(&lane.registers) {
            if let (Some(t), Some(row)) = (slot, row) {
                check("register", row.shape(), row.dtype(), t, 1)?;
            }
        }
        let z = self.st.z;
        self.st.z = z + 1;
        self.st.pc_top.push(lane.pc_top);
        self.st.pc_stack.push(lane.pc_stack.clone());
        self.st.member_keys.push(lane.key);
        let mut mask = vec![false; z + 1];
        mask[z] = true;
        let mut depths = vec![0usize; z + 1];
        for (s, ls) in self.st.stacked.iter_mut().zip(&lane.stacked) {
            s.sp.push(ls.sp);
            match (&mut s.top, &ls.top) {
                (Some(top), Some(row)) => {
                    let mut grown = top.pad_rows(1)?;
                    grown.scatter_rows(&[z], row)?;
                    *top = grown;
                }
                (Some(top), None) => *top = top.pad_rows(1)?,
                (slot @ None, Some(row)) => {
                    let mut shape = row.shape().to_vec();
                    shape[0] = z + 1;
                    let mut full = Tensor::zeros(row.dtype(), &shape);
                    full.scatter_rows(&[z], row)?;
                    *slot = Some(full);
                }
                (None, None) => {}
            }
            match (&mut s.store, ls.frames.first()) {
                (Some(store), _) => *store = store.pad_axis1(1)?,
                (slot @ None, Some(frame)) => {
                    // Stores always span the full depth limit (see
                    // write_var's push path), so a fresh one here is
                    // layout-identical to one the machine grew itself.
                    let mut shape = vec![depth_limit, z + 1];
                    shape.extend_from_slice(&frame.shape()[1..]);
                    *slot = Some(Tensor::zeros(frame.dtype(), &shape));
                }
                (None, None) => {}
            }
            if let Some(store) = &mut s.store {
                for (d, frame) in ls.frames.iter().enumerate() {
                    let mut shape = frame.shape().to_vec();
                    shape[0] = z + 1;
                    let mut full = Tensor::zeros(frame.dtype(), &shape);
                    full.scatter_rows(&[z], frame)?;
                    depths.fill(d);
                    store.scatter_at_depth(&depths, &mask, &full)?;
                }
            }
        }
        for (slot, row) in self.st.registers.iter_mut().zip(&lane.registers) {
            match (&mut *slot, row) {
                (Some(t), Some(row)) => {
                    let mut grown = t.pad_rows(1)?;
                    grown.scatter_rows(&[z], row)?;
                    *slot = Some(grown);
                }
                (Some(t), None) => *slot = Some(t.pad_rows(1)?),
                (None, Some(row)) => {
                    let mut shape = row.shape().to_vec();
                    shape[0] = z + 1;
                    let mut full = Tensor::zeros(row.dtype(), &shape);
                    full.scatter_rows(&[z], row)?;
                    *slot = Some(full);
                }
                (None, None) => {}
            }
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.tickets.push(ticket);
        self.spent.push(lane.spent);
        self.peak_bytes.push(lane.peak_bytes);
        if let Some(t) = trace {
            t.migrate_in(1, self.st.z);
        }
        Ok(ticket)
    }
}

/// Resident bytes of one member's slice of a batched buffer: the
/// element volume past the leading `skip` axes (batch axes) times the
/// dtype width.
fn elem_bytes(shape: &[usize], skip: usize, dtype: DType) -> u64 {
    shape[skip..].iter().product::<usize>() as u64 * dtype.size_bytes() as u64
}

/// Compile-time proof of the Send-safe machine handoff contract: a
/// sharded serving runtime moves whole machines (and their retired
/// results) into worker threads that outlive no borrow but the shared
/// program. If a non-`Send` type (an `Rc`, a raw pointer, a
/// thread-bound RNG) ever sneaks into the member state, this fails to
/// compile rather than failing at the first multi-worker deployment.
mod send_handoff {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    #[allow(dead_code)]
    fn machine_handoff_is_send() {
        assert_send::<super::PcVm<'_>>();
        assert_send::<super::PcMachine<'_>>();
        assert_send::<super::Retired>();
        assert_send::<crate::kernels::KernelRegistry>();
        // The lowered program is shared immutably across worker threads.
        assert_sync::<autobatch_ir::pcab::Program>();
    }
}

/// Run one fused region for a concrete element type and build the
/// materialized result tensors (wide defs at the region shape,
/// member-narrow defs at `[rows]`). Shared by the `f64` and `i64`
/// paths so the dtypes cannot diverge.
#[allow(clippy::too_many_arguments)]
fn materialize_region<T: Copy + Default>(
    region: &FusedRegion,
    table: &[fusion::ExecOp<T>],
    exts: &[&[T]],
    ext_bcast: &[bool],
    def_wide: &mut Vec<bool>,
    shape: &[usize],
    rows: usize,
    el: usize,
    regs: &mut Vec<T>,
    wrap: fn(Vec<T>) -> Data,
) -> Result<Vec<Tensor>> {
    fusion::def_wideness(table, ext_bcast, def_wide);
    let n = rows * el;
    let mut bufs: Vec<Vec<T>> = region
        .mats
        .iter()
        .map(|&d| Vec::with_capacity(if def_wide[d] { n } else { rows }))
        .collect();
    fusion::run_region(
        table,
        exts,
        ext_bcast,
        rows,
        el,
        regs,
        &region.mats,
        def_wide,
        &mut bufs,
    );
    region
        .mats
        .iter()
        .zip(bufs)
        .map(|(&d, b)| {
            let sh: &[usize] = if def_wide[d] { shape } else { &shape[..1] };
            Tensor::new(wrap(b), sh).map_err(VmError::from)
        })
        .collect()
}

/// Masked write into an optional full-width slot.
fn masked_store(slot: &mut Option<Tensor>, value: Tensor, active: &[bool]) -> Result<()> {
    if value.rank() == 0 || value.shape()[0] != active.len() {
        return Err(VmError::BadInputs {
            what: format!(
                "masked write with batch width {:?}, expected {}",
                value.shape(),
                active.len()
            ),
        });
    }
    match slot {
        Some(old) if old.shape() == value.shape() && old.dtype() == value.dtype() => {
            old.masked_assign_rows(active, &value)?;
        }
        Some(_) | None => {
            if active.iter().all(|&a| a) {
                *slot = Some(value);
            } else {
                // Allocate a fresh buffer and land only the active rows;
                // the inactive lanes hold zeros, which the masked
                // semantics never exposes to a well-formed program.
                let mut fresh = Tensor::zeros(value.dtype(), value.shape());
                fresh.masked_assign_rows(active, &value)?;
                *slot = Some(fresh);
            }
        }
    }
    Ok(())
}

fn record_stack_launch(
    trace: &mut Option<&mut Trace>,
    seq: f64,
    rand: f64,
    active: usize,
    z: usize,
) {
    if let Some(t) = trace.as_deref_mut() {
        t.launch(&LaunchRecord {
            kernel: "stack".into(),
            flops: 0.0,
            bytes: seq,
            random_bytes: rand,
            parallel: active.max(1),
            active_members: active,
            total_members: z,
        });
    }
}

/// Traffic of one pc stack push/pop: 8 bytes per active member, plus a
/// whole-buffer copy under functional (XLA-style) stack updates.
fn pc_traffic(
    trace: &mut Option<&mut Trace>,
    depth_limit: usize,
    z: usize,
    n_active: usize,
    fused: bool,
) -> (f64, f64) {
    let rand = (n_active * 8) as f64;
    let seq = match trace.as_deref() {
        Some(t) if t.functional_stack_updates() => (2 * depth_limit * z * 8) as f64,
        _ => 0.0,
    };
    if !fused {
        record_stack_launch(trace, 0.0, seq + rand, n_active, z);
    }
    (seq, rand)
}

/// Block selection over pc tops (all members still in flight).
fn select_block(pc_top: &[usize], n_blocks: usize, heuristic: BlockHeuristic) -> Option<usize> {
    match heuristic {
        BlockHeuristic::EarliestBlock => pc_top.iter().copied().filter(|&p| p < n_blocks).min(),
        BlockHeuristic::MostActive => {
            let mut counts = vec![0usize; n_blocks];
            for &p in pc_top {
                if p < n_blocks {
                    counts[p] += 1;
                }
            }
            counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .max_by(|(i, a), (j, b)| a.cmp(b).then(j.cmp(i)))
                .map(|(i, _)| i)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lowering::lower;
    use crate::options::LoweringOptions;
    use autobatch_accel::Backend;
    use autobatch_ir::build::fibonacci_program;

    fn fib_vm_run(ns: &[i64], opts: ExecOptions) -> Vec<i64> {
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::default()).unwrap();
        let vm = PcVm::new(&pc, KernelRegistry::new(), opts);
        let out = vm
            .run(&[Tensor::from_i64(ns, &[ns.len()]).unwrap()], None)
            .unwrap();
        out[0].as_i64().unwrap().to_vec()
    }

    #[test]
    fn fibonacci_via_explicit_stacks() {
        assert_eq!(
            fib_vm_run(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10], ExecOptions::default()),
            vec![1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89]
        );
    }

    #[test]
    fn fibonacci_gather_scatter_strategy() {
        let opts = ExecOptions {
            strategy: ExecStrategy::GatherScatter,
            ..ExecOptions::default()
        };
        assert_eq!(fib_vm_run(&[6, 7, 8, 9], opts), vec![13, 21, 34, 55]);
    }

    #[test]
    fn fibonacci_most_active_heuristic() {
        let opts = ExecOptions {
            heuristic: BlockHeuristic::MostActive,
            ..ExecOptions::default()
        };
        assert_eq!(fib_vm_run(&[3, 9, 1], opts), vec![3, 55, 1]);
    }

    #[test]
    fn fibonacci_without_top_caching() {
        let opts = ExecOptions {
            cache_stack_tops: false,
            ..ExecOptions::default()
        };
        assert_eq!(fib_vm_run(&[5, 8], opts), vec![8, 34]);
    }

    #[test]
    fn unoptimized_lowering_still_correct() {
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::unoptimized()).unwrap();
        let vm = PcVm::new(&pc, KernelRegistry::new(), ExecOptions::default());
        let out = vm
            .run(&[Tensor::from_i64(&[7, 2, 9], &[3]).unwrap()], None)
            .unwrap();
        assert_eq!(out[0].as_i64().unwrap(), &[21, 2, 55]);
    }

    #[test]
    fn stack_overflow_reported() {
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::default()).unwrap();
        let opts = ExecOptions {
            stack_depth: 4,
            ..ExecOptions::default()
        };
        let vm = PcVm::new(&pc, KernelRegistry::new(), opts);
        let err = vm.run(&[Tensor::from_i64(&[25], &[1]).unwrap()], None);
        assert!(matches!(err, Err(VmError::StackOverflow { .. })), "{err:?}");
    }

    #[test]
    fn members_at_different_depths_batch_together() {
        // Observe at least one superstep where two members with different
        // pc stack depths are simultaneously active — the capability the
        // paper's §3 adds over local static autobatching.
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::default()).unwrap();
        let vm = PcVm::new(&pc, KernelRegistry::new(), ExecOptions::default());
        let mut cross_depth_batch = false;
        let mut obs = |o: &PcObservation<'_>| {
            let depths: Vec<usize> = o
                .active
                .iter()
                .enumerate()
                .filter(|(_, &a)| a)
                .map(|(b, _)| o.pc_depth[b])
                .collect();
            if depths.len() >= 2 && depths.iter().any(|&d| d != depths[0]) {
                cross_depth_batch = true;
            }
        };
        vm.run_observed(
            &[Tensor::from_i64(&[6, 9], &[2]).unwrap()],
            None,
            Some(&mut obs),
        )
        .unwrap();
        assert!(cross_depth_batch, "no cross-depth batching observed");
    }

    #[test]
    fn trace_records_stack_traffic_and_blocks() {
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::default()).unwrap();
        let vm = PcVm::new(&pc, KernelRegistry::new(), ExecOptions::default());
        let mut tr = Trace::new(Backend::xla_cpu());
        vm.run(&[Tensor::from_i64(&[8, 9], &[2]).unwrap()], Some(&mut tr))
            .unwrap();
        assert!(tr.supersteps() > 0);
        assert!(tr.kernels().any(|(k, _)| k.starts_with("block:")));
        // Fused mode folds stack traffic into block launches.
        assert!(tr.sim_time() > 0.0);
        // Eager mode shows explicit stack launches.
        let mut tr2 = Trace::new(Backend::eager_cpu());
        vm.run(&[Tensor::from_i64(&[8, 9], &[2]).unwrap()], Some(&mut tr2))
            .unwrap();
        assert!(tr2.kernel_stats("stack").is_some());
    }

    #[test]
    fn pc_vm_matches_lsab_vm_bitwise() {
        use crate::lsab_vm::LocalStaticVm;
        let p = fibonacci_program();
        let lsab_vm = LocalStaticVm::new(&p, KernelRegistry::new(), ExecOptions::default());
        let (pcp, _) = lower(&p, LoweringOptions::default()).unwrap();
        let pc_vm = PcVm::new(&pcp, KernelRegistry::new(), ExecOptions::default());
        let input = Tensor::from_i64(&[0, 3, 11, 7, 1], &[5]).unwrap();
        let a = lsab_vm.run(std::slice::from_ref(&input), None).unwrap();
        let b = pc_vm.run(std::slice::from_ref(&input), None).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stack_overflow_error_identical_across_strategies() {
        // The masked push path guards `sp >= stack_depth` before the
        // scatter; both execution strategies must surface the exact same
        // VmError (not, e.g., a tensor bounds error from the scatter).
        let p = fibonacci_program();
        for lopts in [LoweringOptions::default(), LoweringOptions::unoptimized()] {
            let (pc, _) = lower(&p, lopts).unwrap();
            let errs: Vec<VmError> = [ExecStrategy::Masking, ExecStrategy::GatherScatter]
                .into_iter()
                .map(|strategy| {
                    let opts = ExecOptions {
                        strategy,
                        stack_depth: 4,
                        ..ExecOptions::default()
                    };
                    let vm = PcVm::new(&pc, KernelRegistry::new(), opts);
                    // One deep member among shallow ones: overflow happens
                    // while only a subset is active.
                    vm.run(&[Tensor::from_i64(&[1, 25, 2], &[3]).unwrap()], None)
                        .unwrap_err()
                })
                .collect();
            assert!(
                matches!(errs[0], VmError::StackOverflow { .. }),
                "{:?}",
                errs[0]
            );
            assert_eq!(errs[0], errs[1], "strategies disagree under {lopts:?}");
        }
    }

    #[test]
    fn stack_underflow_error_identical_across_strategies() {
        // A hand-built program that pops a never-pushed stacked variable.
        use autobatch_ir::pcab::{Block, VarClass};
        use autobatch_ir::BlockId;
        let x = Var::new("x");
        let prog = Program {
            blocks: vec![Block {
                ops: vec![Op::Pop { var: x.clone() }],
                term: Terminator::Return,
            }],
            entry: BlockId(0),
            inputs: vec![x.clone()],
            outputs: vec![x.clone()],
            classes: [(x.clone(), VarClass::Stacked)].into_iter().collect(),
        };
        prog.validate().unwrap();
        let errs: Vec<VmError> = [ExecStrategy::Masking, ExecStrategy::GatherScatter]
            .into_iter()
            .map(|strategy| {
                let opts = ExecOptions {
                    strategy,
                    ..ExecOptions::default()
                };
                let vm = PcVm::new(&prog, KernelRegistry::new(), opts);
                vm.run(&[Tensor::from_i64(&[1, 2], &[2]).unwrap()], None)
                    .unwrap_err()
            })
            .collect();
        assert_eq!(errs[0], VmError::StackUnderflow { var: x });
        assert_eq!(errs[0], errs[1]);
    }

    #[test]
    fn pc_and_data_stacks_overflow_at_the_same_depth() {
        // The pc stack's bottom exit sentinel is not a real frame: a
        // member may hold `stack_depth` return addresses, exactly the
        // data stacks' frame capacity.
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::unoptimized()).unwrap();
        let opts = ExecOptions {
            stack_depth: 3,
            ..ExecOptions::default()
        };
        let vm = PcVm::new(&pc, KernelRegistry::new(), opts);
        // Depth-3 recursion fits; depth-4 overflows — wherever the limit
        // bites first, it is the same limit for pc and data stacks.
        assert!(vm
            .run(&[Tensor::from_i64(&[4], &[1]).unwrap()], None)
            .is_ok());
        let err = vm.run(&[Tensor::from_i64(&[7], &[1]).unwrap()], None);
        assert!(
            matches!(err, Err(VmError::StackOverflow { limit: 3, .. })),
            "{err:?}"
        );
    }

    #[test]
    fn fused_region_falls_back_on_zero_sized_elements() {
        // Regression: a region with a member-narrow materialized def
        // (the const-derived register `s`) must fall back — not error —
        // when the wide shape has a zero-sized element axis, matching
        // per-op execution bit for bit.
        use autobatch_ir::pcab::{Block, Op, Program, VarClass, WriteKind};
        use autobatch_ir::{BlockId, Prim};
        let (x, y, sv, t0) = (Var::new("x"), Var::new("y"), Var::new("s"), Var::new("%t0"));
        let prog = Program {
            blocks: vec![Block {
                ops: vec![
                    Op::Compute {
                        outs: vec![(t0.clone(), WriteKind::Update)],
                        prim: Prim::ConstF64(2.0),
                        ins: vec![],
                    },
                    Op::Compute {
                        outs: vec![(sv.clone(), WriteKind::Update)],
                        prim: Prim::Id,
                        ins: vec![t0.clone()],
                    },
                    Op::Compute {
                        outs: vec![(y.clone(), WriteKind::Update)],
                        prim: Prim::Mul,
                        ins: vec![x.clone(), sv.clone()],
                    },
                ],
                term: Terminator::Return,
            }],
            entry: BlockId(0),
            inputs: vec![x.clone()],
            outputs: vec![y.clone(), sv.clone()],
            classes: [
                (x, VarClass::Register),
                (y, VarClass::Register),
                (sv, VarClass::Register),
            ]
            .into_iter()
            .collect(),
        };
        prog.validate().unwrap();
        let input = Tensor::zeros(autobatch_tensor::DType::F64, &[2, 0]);
        let run = |fuse: bool| {
            let opts = ExecOptions {
                fuse_elementwise: fuse,
                ..ExecOptions::default()
            };
            PcVm::new(&prog, KernelRegistry::new(), opts)
                .run(std::slice::from_ref(&input), None)
                .expect("zero-sized elements must execute")
        };
        let fused = run(true);
        let plain = run(false);
        assert_eq!(fused, plain);
        assert_eq!(fused[0].shape(), &[2, 0]);
        assert_eq!(fused[1].as_f64().unwrap(), &[2.0, 2.0]);
    }

    #[test]
    fn machine_matches_one_shot_run() {
        // Admitting everyone up front and running to completion is the
        // same as PcVm::run (identity member keys).
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::default()).unwrap();
        let ns = [0i64, 3, 11, 7, 1];
        let vm = PcVm::new(&pc, KernelRegistry::new(), ExecOptions::default());
        let oneshot = vm
            .run(&[Tensor::from_i64(&ns, &[ns.len()]).unwrap()], None)
            .unwrap();
        let mut m = PcMachine::new(&pc, KernelRegistry::new(), ExecOptions::default());
        for (b, &n) in ns.iter().enumerate() {
            m.admit(&[Tensor::from_i64(&[n], &[1]).unwrap()], b as u64, None)
                .unwrap();
        }
        let mut done = m.run_to_completion(None).unwrap();
        done.sort_by_key(|r| r.ticket);
        let got: Vec<i64> = done
            .iter()
            .map(|r| r.outputs[0].as_i64().unwrap()[0])
            .collect();
        assert_eq!(got, oneshot[0].as_i64().unwrap());
        assert_eq!(m.live(), 0);
    }

    #[test]
    fn mid_flight_admission_is_bit_identical_to_solo_run() {
        // The headline property of dynamic admission: a member admitted
        // into a busy batch computes exactly what it computes alone,
        // because RNG draws are keyed by the member key, not the lane.
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::default()).unwrap();
        let opts = ExecOptions::default();

        // Solo run of the late request under key 77.
        let mut solo = PcMachine::new(&pc, KernelRegistry::new(), opts);
        solo.admit(&[Tensor::from_i64(&[9], &[1]).unwrap()], 77, None)
            .unwrap();
        let solo_out = solo.run_to_completion(None).unwrap();

        // Same request joins an in-flight batch halfway through.
        let mut m = PcMachine::new(&pc, KernelRegistry::new(), opts);
        m.admit(&[Tensor::from_i64(&[12], &[1]).unwrap()], 1, None)
            .unwrap();
        m.admit(&[Tensor::from_i64(&[8], &[1]).unwrap()], 2, None)
            .unwrap();
        for _ in 0..7 {
            assert!(m.step(None).unwrap());
        }
        let late = m
            .admit(&[Tensor::from_i64(&[9], &[1]).unwrap()], 77, None)
            .unwrap();
        let done = m.run_to_completion(None).unwrap();
        let joined = done.iter().find(|r| r.ticket == late).unwrap();
        assert_eq!(joined.key, 77);
        assert_eq!(joined.outputs, solo_out[0].outputs);
        // And the early members were not perturbed either.
        let first = done.iter().find(|r| r.ticket == 0).unwrap();
        assert_eq!(first.outputs[0].as_i64().unwrap(), &[233]);
    }

    #[test]
    fn migrated_lane_is_bit_identical_to_staying_put() {
        // The property straggler migration rests on: a lane extracted
        // mid-recursion and injected into another machine — even one
        // busy with unrelated work — finishes with exactly the outputs
        // it would have produced at home, because all of its state
        // (pc stack, data stacks, registers, RNG key) moves with it.
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::default()).unwrap();
        let opts = ExecOptions::default();

        let mut home = PcMachine::new(&pc, KernelRegistry::new(), opts);
        home.admit(&[Tensor::from_i64(&[11], &[1]).unwrap()], 7, None)
            .unwrap();
        let expect = home.run_to_completion(None).unwrap();

        let mut src = PcMachine::new(&pc, KernelRegistry::new(), opts);
        src.admit(&[Tensor::from_i64(&[12], &[1]).unwrap()], 1, None)
            .unwrap();
        let mover = src
            .admit(&[Tensor::from_i64(&[11], &[1]).unwrap()], 7, None)
            .unwrap();
        for _ in 0..9 {
            assert!(src.step(None).unwrap());
        }
        let lanes = src.extract_lanes(&[mover], None).unwrap();
        assert_eq!(lanes.len(), 1);
        assert_eq!(lanes[0].0, mover);
        assert_eq!(lanes[0].1.key(), 7);
        assert_eq!(src.live(), 1, "extraction compacts the lane out");

        let mut dst = PcMachine::new(&pc, KernelRegistry::new(), opts);
        dst.admit(&[Tensor::from_i64(&[6], &[1]).unwrap()], 2, None)
            .unwrap();
        for _ in 0..3 {
            assert!(dst.step(None).unwrap());
        }
        let new_ticket = dst.inject_lane(&lanes[0].1, None).unwrap();
        let done = dst.run_to_completion(None).unwrap();
        let moved = done.iter().find(|r| r.ticket == new_ticket).unwrap();
        assert_eq!(moved.key, 7);
        assert_eq!(moved.outputs, expect[0].outputs);
        // The source machine's remaining lane is unperturbed.
        let src_done = src.run_to_completion(None).unwrap();
        assert_eq!(src_done[0].outputs[0].as_i64().unwrap(), &[233]);
        // And the destination's original lane too.
        let local = done.iter().find(|r| r.key == 2).unwrap();
        assert_eq!(local.outputs[0].as_i64().unwrap(), &[13]);
    }

    #[test]
    fn migration_into_an_empty_machine_works() {
        // The recipient may never have admitted anything: injection must
        // materialize every buffer itself, at the store's full depth.
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::default()).unwrap();
        let opts = ExecOptions::default();
        let mut home = PcMachine::new(&pc, KernelRegistry::new(), opts);
        home.admit(&[Tensor::from_i64(&[10], &[1]).unwrap()], 3, None)
            .unwrap();
        let expect = home.run_to_completion(None).unwrap();

        let mut src = PcMachine::new(&pc, KernelRegistry::new(), opts);
        let t = src
            .admit(&[Tensor::from_i64(&[10], &[1]).unwrap()], 3, None)
            .unwrap();
        for _ in 0..6 {
            assert!(src.step(None).unwrap());
        }
        let lanes = src.extract_lanes(&[t], None).unwrap();
        assert_eq!(src.live(), 0);
        let mut dst = PcMachine::new(&pc, KernelRegistry::new(), opts);
        dst.inject_lane(&lanes[0].1, None).unwrap();
        let done = dst.run_to_completion(None).unwrap();
        assert_eq!(done[0].outputs, expect[0].outputs);
    }

    #[test]
    fn extraction_traces_migration_and_rejects_bad_tickets() {
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::default()).unwrap();
        let mut m = PcMachine::new(&pc, KernelRegistry::new(), ExecOptions::default());
        let mut tr = autobatch_accel::Trace::new(autobatch_accel::Backend::hybrid_cpu());
        let t = m
            .admit(&[Tensor::from_i64(&[9], &[1]).unwrap()], 0, Some(&mut tr))
            .unwrap();
        assert!(matches!(
            m.extract_lanes(&[99], None),
            Err(VmError::BadInputs { .. })
        ));
        m.step(None).unwrap();
        let lanes = m.extract_lanes(&[t], Some(&mut tr)).unwrap();
        assert_eq!(tr.members_migrated_out(), 1);
        assert_eq!(tr.live_members(), 0);
        let mut dst = PcMachine::new(&pc, KernelRegistry::new(), ExecOptions::default());
        let mut tr2 = autobatch_accel::Trace::new(autobatch_accel::Backend::hybrid_cpu());
        dst.inject_lane(&lanes[0].1, Some(&mut tr2)).unwrap();
        assert_eq!(tr2.members_migrated_in(), 1);
        assert_eq!(tr2.live_members(), 1);
        // A finished lane must retire, not migrate.
        let mut f = PcMachine::new(&pc, KernelRegistry::new(), ExecOptions::default());
        let t = f
            .admit(&[Tensor::from_i64(&[1], &[1]).unwrap()], 0, None)
            .unwrap();
        while f.step(None).unwrap() {}
        assert!(matches!(
            f.extract_lanes(&[t], None),
            Err(VmError::BadInputs { .. })
        ));
    }

    #[test]
    fn admit_batch_matches_sequential_admits() {
        // One k-lane pad must be indistinguishable from k single
        // admissions: same tickets, same keys, bit-identical outputs.
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::default()).unwrap();
        let ns = [5i64, 12, 2, 9];
        let inputs: Vec<Vec<Tensor>> = ns
            .iter()
            .map(|&n| vec![Tensor::from_i64(&[n], &[1]).unwrap()])
            .collect();

        let mut seq = PcMachine::new(&pc, KernelRegistry::new(), ExecOptions::default());
        for (i, ins) in inputs.iter().enumerate() {
            let t = seq.admit(ins, 100 + i as u64, None).unwrap();
            assert_eq!(t, i as u64);
        }
        let mut seq_done = seq.run_to_completion(None).unwrap();
        seq_done.sort_by_key(|r| r.ticket);

        let mut batched = PcMachine::new(&pc, KernelRegistry::new(), ExecOptions::default());
        let reqs: Vec<(&[Tensor], u64)> = inputs
            .iter()
            .enumerate()
            .map(|(i, ins)| (ins.as_slice(), 100 + i as u64))
            .collect();
        let tickets = batched.admit_batch(&reqs, None).unwrap();
        assert_eq!(tickets, vec![0, 1, 2, 3]);
        let mut bat_done = batched.run_to_completion(None).unwrap();
        bat_done.sort_by_key(|r| r.ticket);

        for (a, b) in seq_done.iter().zip(&bat_done) {
            assert_eq!(a.ticket, b.ticket);
            assert_eq!(a.key, b.key);
            assert_eq!(a.outputs, b.outputs);
        }
        // A batch admitted into a non-empty machine also behaves: shape
        // errors are detected before any growth.
        let mut m = PcMachine::new(&pc, KernelRegistry::new(), ExecOptions::default());
        m.admit(&inputs[0], 0, None).unwrap();
        let bad = [Tensor::from_i64(&[1, 2], &[2]).unwrap()];
        assert!(m.admit_batch(&[(&bad[..], 1)], None).is_err());
        assert_eq!(
            m.live(),
            1,
            "failed batch admission must not grow the machine"
        );
    }

    #[test]
    fn first_admission_fixes_the_input_spec_across_drains() {
        // Programs are shape-polymorphic, so the machine's first
        // admission defines each input's element shape/dtype — and the
        // spec must survive a full drain (buffers keep their trailing
        // shape at zero lanes), so a later mismatched request is still
        // rejected instead of silently re-defining the spec.
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::default()).unwrap();
        let mut m = PcMachine::new(&pc, KernelRegistry::new(), ExecOptions::default());
        m.admit(&[Tensor::from_i64(&[6], &[1]).unwrap()], 0, None)
            .unwrap();
        let done = m.run_to_completion(None).unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(m.live(), 0, "machine fully drained");
        let wide = [Tensor::from_i64(&[1, 2], &[1, 2]).unwrap()];
        let err = m.admit_batch(&[(&wide[..], 1)], None);
        assert!(
            matches!(err, Err(VmError::BadInputs { .. })),
            "spec must survive the drain, got {err:?}"
        );
        // A spec-conforming request is still welcome.
        m.admit(&[Tensor::from_i64(&[7], &[1]).unwrap()], 2, None)
            .unwrap();
        let done = m.run_to_completion(None).unwrap();
        assert_eq!(done[0].outputs[0].as_i64().unwrap(), &[21]);
    }

    #[test]
    fn admission_rejects_rows_that_mismatch_the_live_batch() {
        // Regression: a row whose trailing shape or dtype disagrees with
        // the in-flight lanes' buffers must be rejected at admission with
        // VmError::BadInputs — not accepted and left to corrupt or zero
        // live members' state deep inside a later superstep.
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::default()).unwrap();
        let mut m = PcMachine::new(&pc, KernelRegistry::new(), ExecOptions::default());
        m.admit(&[Tensor::from_i64(&[11], &[1]).unwrap()], 0, None)
            .unwrap();
        for _ in 0..4 {
            assert!(m.step(None).unwrap());
        }
        // Wrong trailing shape: [1, 2] rows against a scalar-element var.
        let wide = [Tensor::from_i64(&[1, 2], &[1, 2]).unwrap()];
        let err = m.admit_batch(&[(&wide[..], 1)], None);
        assert!(
            matches!(err, Err(VmError::BadInputs { .. })),
            "wide row must be rejected, got {err:?}"
        );
        // Wrong dtype: f64 rows against an i64 var.
        let misdtyped = [Tensor::from_f64(&[3.0], &[1]).unwrap()];
        let err = m.admit_batch(&[(&misdtyped[..], 1)], None);
        assert!(
            matches!(err, Err(VmError::BadInputs { .. })),
            "mis-dtyped row must be rejected, got {err:?}"
        );
        // The in-flight member is untouched and completes correctly.
        assert_eq!(m.live(), 1);
        let done = m.run_to_completion(None).unwrap();
        assert_eq!(done[0].outputs[0].as_i64().unwrap(), &[144]);
    }

    #[test]
    fn retirement_compacts_lanes_and_keeps_results() {
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::default()).unwrap();
        let mut m = PcMachine::new(&pc, KernelRegistry::new(), ExecOptions::default());
        m.admit(&[Tensor::from_i64(&[2], &[1]).unwrap()], 0, None)
            .unwrap();
        m.admit(&[Tensor::from_i64(&[15], &[1]).unwrap()], 1, None)
            .unwrap();
        // Step until the short member finishes while the long one runs.
        let mut retired = Vec::new();
        while retired.is_empty() {
            assert!(m.step(None).unwrap(), "short member never finished");
            retired = m.retire_finished(None).unwrap();
        }
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].outputs[0].as_i64().unwrap(), &[2]);
        assert_eq!(m.live(), 1, "finished lane was compacted out");
        // The survivor still completes correctly in its compacted lane.
        let rest = m.run_to_completion(None).unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].outputs[0].as_i64().unwrap(), &[987]);
    }

    #[test]
    fn machine_membership_is_traced() {
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::default()).unwrap();
        let mut m = PcMachine::new(&pc, KernelRegistry::new(), ExecOptions::default());
        let mut tr = Trace::new(Backend::hybrid_cpu());
        m.admit(&[Tensor::from_i64(&[5], &[1]).unwrap()], 0, Some(&mut tr))
            .unwrap();
        m.admit(&[Tensor::from_i64(&[6], &[1]).unwrap()], 1, Some(&mut tr))
            .unwrap();
        m.run_to_completion(Some(&mut tr)).unwrap();
        assert_eq!(tr.members_admitted(), 2);
        assert_eq!(tr.members_retired(), 2);
        assert_eq!(tr.peak_members(), 2);
        assert!(tr.supersteps() > 0);
        assert!(tr.sim_time() > 0.0);
    }

    #[test]
    fn machine_rejects_bad_admissions() {
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::default()).unwrap();
        let mut m = PcMachine::new(&pc, KernelRegistry::new(), ExecOptions::default());
        // Wrong arity.
        assert!(m.admit(&[], 0, None).is_err());
        // Multi-row admission is rejected (one member per admit).
        assert!(m
            .admit(&[Tensor::from_i64(&[1, 2], &[2]).unwrap()], 0, None)
            .is_err());
        // Machine unchanged.
        assert_eq!(m.live(), 0);
        assert!(!m.step(None).unwrap());
    }

    #[test]
    fn bad_inputs_rejected() {
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::default()).unwrap();
        let vm = PcVm::new(&pc, KernelRegistry::new(), ExecOptions::default());
        assert!(vm.run(&[], None).is_err());
        assert!(vm.run(&[Tensor::scalar(1i64)], None).is_err());
    }
}
