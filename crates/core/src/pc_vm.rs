//! The program-counter autobatching runtime (paper §3, Algorithm 2).
//!
//! A flat, non-recursive interpreter over the merged
//! [`pcab`](autobatch_ir::pcab) program. Every batch member carries a
//! stacked program counter; each stacked data variable owns a
//! `[D, Z, ..]` stack tensor plus per-member stack pointers, with the
//! current top cached densely (paper optimization 4). Because recursion
//! state lives entirely in these arrays, the runtime is a single loop —
//! exactly the property that lets the paper compile it with XLA — and
//! logical threads at *different stack depths* batch together whenever
//! their pc tops coincide.

use std::collections::BTreeMap;

use autobatch_accel::{DispatchMode, LaunchRecord, Trace};
use autobatch_ir::pcab::{Op, Program, Terminator, WriteKind};
use autobatch_ir::{Prim, Var};
use autobatch_tensor::{CounterRng, Tensor};

use crate::error::{Result, VmError};
use crate::kernels::{eval_prim, prim_cost, KernelRegistry, OpCost};
use crate::options::{BlockHeuristic, ExecOptions, ExecStrategy};

/// Storage for one stacked variable: frames below the cached top.
#[derive(Debug, Clone)]
struct StackVar {
    /// `[D, Z, elem..]` frames beneath the top (lazily allocated).
    store: Option<Tensor>,
    /// Per-member count of frames in `store`.
    sp: Vec<usize>,
    /// `[Z, elem..]` cached top value (lazily allocated).
    top: Option<Tensor>,
}

impl StackVar {
    fn new(z: usize) -> StackVar {
        StackVar {
            store: None,
            sp: vec![0; z],
            top: None,
        }
    }
}

/// A point-in-time copy of one stacked variable, for observers (the
/// paper's Figure 3 visualization).
#[derive(Debug, Clone)]
pub struct StackSnapshot {
    /// Frames beneath the top, `[D, Z, elem..]`, if ever pushed.
    pub store: Option<Tensor>,
    /// Per-member stack pointers (frames currently in `store`).
    pub sp: Vec<usize>,
    /// The cached top, `[Z, elem..]`, if ever written.
    pub top: Option<Tensor>,
}

/// A snapshot handed to an observer after every superstep.
#[derive(Debug)]
pub struct PcObservation<'a> {
    /// The block that just ran.
    pub block: usize,
    /// Which members were active in it.
    pub active: &'a [bool],
    /// Per-member pc tops after the step (`== block count` means done).
    pub pc_top: &'a [usize],
    /// Per-member pc stack depths (frames beneath the top).
    pub pc_depth: Vec<usize>,
    /// Stacked-variable state (cloned; observer-only cost).
    pub stacks: BTreeMap<Var, StackSnapshot>,
}

/// Callback invoked after every superstep.
pub type PcObserver<'o> = dyn FnMut(&PcObservation<'_>) + 'o;

/// The program-counter autobatching virtual machine.
///
/// # Examples
///
/// ```
/// use autobatch_core::{lower, KernelRegistry, LoweringOptions, PcVm, ExecOptions};
/// use autobatch_ir::build::fibonacci_program;
/// use autobatch_tensor::Tensor;
///
/// let (program, _) = lower(&fibonacci_program(), LoweringOptions::default())?;
/// let vm = PcVm::new(&program, KernelRegistry::new(), ExecOptions::default());
/// let out = vm.run(&[Tensor::from_i64(&[6, 7, 8, 9], &[4])?], None)?;
/// assert_eq!(out[0].as_i64()?, &[13, 21, 34, 55]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct PcVm<'p> {
    program: &'p Program,
    registry: KernelRegistry,
    opts: ExecOptions,
}

struct State {
    z: usize,
    pc_top: Vec<usize>,
    /// Per-member pc frames beneath the top.
    pc_stack: Vec<Vec<usize>>,
    stacked: BTreeMap<Var, StackVar>,
    registers: BTreeMap<Var, Option<Tensor>>,
}

impl<'p> PcVm<'p> {
    /// Create a VM for a lowered program.
    pub fn new(program: &'p Program, registry: KernelRegistry, opts: ExecOptions) -> Self {
        PcVm {
            program,
            registry,
            opts,
        }
    }

    /// The program this VM executes.
    pub fn program(&self) -> &Program {
        self.program
    }

    /// Run the batch; one input tensor per program input, axis 0 = batch.
    ///
    /// # Errors
    ///
    /// Returns kernel errors, [`VmError::StackOverflow`] when recursion
    /// exceeds the depth limit `D`, or [`VmError::StepLimit`].
    pub fn run(&self, inputs: &[Tensor], trace: Option<&mut Trace>) -> Result<Vec<Tensor>> {
        self.run_observed(inputs, trace, None)
    }

    /// Like [`PcVm::run`], invoking `observer` after every superstep.
    ///
    /// # Errors
    ///
    /// See [`PcVm::run`].
    pub fn run_observed(
        &self,
        inputs: &[Tensor],
        mut trace: Option<&mut Trace>,
        mut observer: Option<&mut PcObserver<'_>>,
    ) -> Result<Vec<Tensor>> {
        let p = self.program;
        if inputs.len() != p.inputs.len() {
            return Err(VmError::BadInputs {
                what: format!("expected {} inputs, got {}", p.inputs.len(), inputs.len()),
            });
        }
        let z = inputs
            .first()
            .filter(|t| t.rank() > 0)
            .map(|t| t.shape()[0])
            .ok_or_else(|| VmError::BadInputs {
                what: "inputs must have a leading batch dimension".into(),
            })?;
        for t in inputs {
            if t.rank() == 0 || t.shape()[0] != z {
                return Err(VmError::BadInputs {
                    what: "inconsistent batch sizes".into(),
                });
            }
        }
        let n_blocks = p.blocks.len();
        let mut st = State {
            z,
            pc_top: vec![p.entry.0; z],
            pc_stack: vec![vec![n_blocks]; z], // exit sentinel at the bottom
            stacked: p
                .stacked_vars()
                .into_iter()
                .map(|v| (v, StackVar::new(z)))
                .collect(),
            registers: p
                .register_vars()
                .into_iter()
                .map(|v| (v, None))
                .collect(),
        };
        // Algorithm 2's "PUSH T onto x": bind the batch inputs.
        let all = vec![true; z];
        for (v, t) in p.inputs.iter().zip(inputs) {
            self.write_var(&mut st, v, t.clone(), &all, &mut BTreeMap::new(), WriteKind::Update, false)?;
        }

        let rng = CounterRng::new(self.opts.seed);
        let mut steps = 0u64;
        while let Some(i) = select_block(&st.pc_top, n_blocks, self.opts.heuristic) {
            steps += 1;
            if steps > self.opts.max_supersteps {
                return Err(VmError::StepLimit {
                    limit: self.opts.max_supersteps,
                });
            }
            let active: Vec<bool> = st.pc_top.iter().map(|&pc| pc == i).collect();
            let active_idx: Vec<usize> = (0..z).filter(|&b| active[b]).collect();
            if let Some(t) = trace.as_deref_mut() {
                t.superstep();
            }
            let fused = trace
                .as_deref()
                .map(|t| !matches!(t.backend().mode, DispatchMode::Eager))
                .unwrap_or(false);
            let functional = trace
                .as_deref()
                .map(|t| t.functional_stack_updates())
                .unwrap_or(false);

            let mut temps: BTreeMap<Var, Tensor> = BTreeMap::new();
            let mut block_cost = OpCost::default();
            let mut block_random_bytes = 0.0f64;
            let block = &p.blocks[i].clone();
            for op in &block.ops {
                match op {
                    Op::Compute { outs, prim, ins } => {
                        let cost = self.exec_compute(
                            &mut st,
                            &mut temps,
                            prim,
                            outs,
                            ins,
                            &active,
                            &active_idx,
                            &rng,
                            &mut trace,
                            &mut block_random_bytes,
                            fused,
                            functional,
                        )?;
                        block_cost.flops += cost.flops;
                        block_cost.bytes += cost.bytes;
                        block_cost.parallel = block_cost.parallel.max(cost.parallel);
                    }
                    Op::Pop { var } => {
                        let (seq, rand) =
                            self.pop_var(&mut st, var, &active, &active_idx, &mut trace, fused, functional)?;
                        block_random_bytes += seq + rand;
                    }
                }
            }
            // Terminator.
            match &block.term {
                Terminator::Jump(t) => {
                    for &b in &active_idx {
                        st.pc_top[b] = t.0;
                    }
                }
                Terminator::Branch { cond, then_, else_ } => {
                    let c = self.read_var(&st, &temps, cond, "branch")?;
                    let cv = c.as_bool()?;
                    // Under gather/scatter the condition may be a
                    // compacted temp (one row per *active* member).
                    let compacted = cv.len() == active_idx.len() && cv.len() != z;
                    for (pos, &b) in active_idx.iter().enumerate() {
                        let bit = if compacted { cv[pos] } else { cv[b] };
                        st.pc_top[b] = if bit { then_.0 } else { else_.0 };
                    }
                }
                Terminator::PushJump { enter, resume } => {
                    for &b in &active_idx {
                        if st.pc_stack[b].len() >= self.opts.stack_depth {
                            return Err(VmError::StackOverflow {
                                var: Var::new("%pc"),
                                limit: self.opts.stack_depth,
                            });
                        }
                        st.pc_stack[b].push(resume.0);
                        st.pc_top[b] = enter.0;
                    }
                    // pc stack traffic: one index per active member.
                    let (seq, rand) =
                        pc_traffic(&mut trace, self.opts.stack_depth, z, active_idx.len(), fused);
                    block_random_bytes += seq + rand;
                }
                Terminator::Return => {
                    for &b in &active_idx {
                        match st.pc_stack[b].pop() {
                            Some(r) => st.pc_top[b] = r,
                            None => {
                                return Err(VmError::StackUnderflow {
                                    var: Var::new("%pc"),
                                })
                            }
                        }
                    }
                    let (seq, rand) =
                        pc_traffic(&mut trace, self.opts.stack_depth, z, active_idx.len(), fused);
                    block_random_bytes += seq + rand;
                }
            }
            if fused {
                if let Some(t) = trace.as_deref_mut() {
                    t.launch(&LaunchRecord {
                        kernel: format!("block:{i}"),
                        flops: block_cost.flops,
                        bytes: block_cost.bytes,
                        random_bytes: block_random_bytes,
                        parallel: block_cost.parallel.max(1),
                        active_members: active_idx.len(),
                        total_members: z,
                    });
                }
            }
            if let Some(obs) = observer.as_deref_mut() {
                let stacks: BTreeMap<Var, StackSnapshot> = st
                    .stacked
                    .iter()
                    .map(|(v, s)| {
                        (
                            v.clone(),
                            StackSnapshot {
                                store: s.store.clone(),
                                sp: s.sp.clone(),
                                top: s.top.clone(),
                            },
                        )
                    })
                    .collect();
                obs(&PcObservation {
                    block: i,
                    active: &active,
                    pc_top: &st.pc_top,
                    pc_depth: st.pc_stack.iter().map(Vec::len).collect(),
                    stacks,
                });
            }
        }
        // Read outputs at their final tops.
        p.outputs
            .iter()
            .map(|o| self.read_var(&st, &BTreeMap::new(), o, "outputs"))
            .collect()
    }

    /// Execute one `Compute` op under the configured strategy.
    #[allow(clippy::too_many_arguments)]
    fn exec_compute(
        &self,
        st: &mut State,
        temps: &mut BTreeMap<Var, Tensor>,
        prim: &Prim,
        outs: &[(Var, WriteKind)],
        ins: &[Var],
        active: &[bool],
        active_idx: &[usize],
        rng: &CounterRng,
        trace: &mut Option<&mut Trace>,
        block_random_bytes: &mut f64,
        fused: bool,
        functional: bool,
    ) -> Result<OpCost> {
        let z = st.z;
        let n_active = active_idx.len();
        // Uncached-top ablation: every read of a stacked variable pays a
        // gather from the stack storage.
        if !self.opts.cache_stack_tops {
            for v in ins {
                if let Some(s) = st.stacked.get(v) {
                    if let Some(top) = &s.top {
                        let bytes = (top.len() / z.max(1) * n_active) as f64
                            * top.dtype().size_bytes() as f64;
                        *block_random_bytes += bytes;
                        if !fused {
                            record_stack_launch(trace, 0.0, bytes, n_active, z);
                        }
                    }
                }
            }
        }
        let (results, cost, extra_random) = match self.opts.strategy {
            ExecStrategy::Masking => {
                let inputs: Vec<Tensor> = ins
                    .iter()
                    .map(|v| self.read_var_mut_temps(st, temps, v))
                    .collect::<Result<_>>()?;
                let members: Vec<u64> = (0..z as u64).collect();
                let results = eval_prim(prim, &inputs, &members, rng, &self.registry)?;
                let cost = prim_cost(prim, &inputs, &results, &self.registry);
                (results, cost, 0.0)
            }
            ExecStrategy::GatherScatter => {
                let inputs: Vec<Tensor> = ins
                    .iter()
                    .map(|v| {
                        let t = self.read_var_mut_temps(st, temps, v)?;
                        // Temps are already compacted to the active rows.
                        if t.rank() > 0 && t.shape()[0] == n_active && n_active != z {
                            Ok(t)
                        } else {
                            t.gather_rows(active_idx).map_err(VmError::from)
                        }
                    })
                    .collect::<Result<_>>()?;
                let members: Vec<u64> = active_idx.iter().map(|&b| b as u64).collect();
                let results = eval_prim(prim, &inputs, &members, rng, &self.registry)?;
                let cost = prim_cost(prim, &inputs, &results, &self.registry);
                let moved: f64 = inputs
                    .iter()
                    .chain(&results)
                    .map(|t| t.size_bytes() as f64)
                    .sum();
                (results, cost, moved)
            }
        };
        *block_random_bytes += extra_random;
        if let Some(t) = trace.as_deref_mut() {
            let total = if self.opts.strategy == ExecStrategy::Masking {
                z
            } else {
                n_active
            };
            t.record_logical(&LaunchRecord {
                kernel: prim.kernel_tag(),
                flops: cost.flops,
                bytes: cost.bytes,
                random_bytes: extra_random,
                parallel: cost.parallel,
                active_members: n_active,
                total_members: total,
            });
            if !fused {
                t.launch(&LaunchRecord {
                    kernel: prim.kernel_tag(),
                    flops: cost.flops,
                    bytes: cost.bytes,
                    random_bytes: extra_random,
                    parallel: cost.parallel,
                    active_members: n_active,
                    total_members: total,
                });
            }
        }
        // Write back. In gather mode, expand compacted rows first.
        for ((var, kind), mut r) in outs.iter().cloned().zip(results) {
            if self.opts.strategy == ExecStrategy::GatherScatter && n_active != z {
                if st.stacked.contains_key(&var) || st.registers.contains_key(&var) {
                    // Expand to full width by scattering into the current
                    // value (or zeros when absent).
                    let mut full = match self.peek_var(st, &var) {
                        Some(t)
                            if t.dtype() == r.dtype() && t.shape()[1..] == r.shape()[1..] =>
                        {
                            t
                        }
                        _ => {
                            let mut shape = r.shape().to_vec();
                            shape[0] = z;
                            Tensor::zeros(r.dtype(), &shape)
                        }
                    };
                    full.scatter_rows(active_idx, &r)?;
                    r = full;
                } else {
                    // Temps stay compacted.
                    temps.insert(var.clone(), r);
                    continue;
                }
            }
            let (seq, rand) = self.write_var(st, &var, r, active, temps, kind, functional)?;
            *block_random_bytes += seq + rand;
            if !fused && (seq > 0.0 || rand > 0.0) {
                record_stack_launch(trace, 0.0, seq + rand, n_active, z);
            }
        }
        Ok(cost)
    }

    /// Current full-width value of a persistent variable, if any.
    fn peek_var(&self, st: &State, v: &Var) -> Option<Tensor> {
        if let Some(s) = st.stacked.get(v) {
            s.top.clone()
        } else {
            st.registers.get(v).and_then(Clone::clone)
        }
    }

    fn read_var(&self, st: &State, temps: &BTreeMap<Var, Tensor>, v: &Var, ctx: &str) -> Result<Tensor> {
        if let Some(t) = temps.get(v) {
            return Ok(t.clone());
        }
        self.peek_var(st, v).ok_or_else(|| VmError::Unbound {
            var: v.clone(),
            context: ctx.to_string(),
        })
    }

    fn read_var_mut_temps(
        &self,
        st: &State,
        temps: &BTreeMap<Var, Tensor>,
        v: &Var,
    ) -> Result<Tensor> {
        self.read_var(st, temps, v, "compute")
    }

    /// Write `value` to `var` for the active members. Returns the
    /// (sequential, random) stack traffic in bytes.
    #[allow(clippy::too_many_arguments)]
    fn write_var(
        &self,
        st: &mut State,
        var: &Var,
        value: Tensor,
        active: &[bool],
        temps: &mut BTreeMap<Var, Tensor>,
        kind: WriteKind,
        functional: bool,
    ) -> Result<(f64, f64)> {
        let z = st.z;
        if let Some(s) = st.stacked.get_mut(var) {
            match kind {
                WriteKind::Update => {
                    masked_store(&mut s.top, value, active)?;
                    let top = s.top.as_ref().expect("just stored");
                    // Functional semantics rebuild the top buffer on every
                    // masked update (read the old buffer + write the new,
                    // matching how op costs count inputs + outputs).
                    let seq = if functional {
                        2.0 * top.size_bytes() as f64
                    } else {
                        0.0
                    };
                    // Uncached-top ablation: updates scatter to storage.
                    if !self.opts.cache_stack_tops {
                        let n_active = active.iter().filter(|&&a| a).count();
                        let bytes = (top.len() / z.max(1) * n_active) as f64
                            * top.dtype().size_bytes() as f64;
                        return Ok((seq, bytes));
                    }
                    Ok((seq, 0.0))
                }
                WriteKind::Push => {
                    let n_active = active.iter().filter(|&&a| a).count();
                    // Materialize the old top (zeros for the virgin frame)
                    // into storage, then cache the new value as top.
                    let elem_shape: Vec<usize> = value.shape()[1..].to_vec();
                    if s.top.is_none() {
                        let mut shape = vec![z];
                        shape.extend_from_slice(&elem_shape);
                        s.top = Some(Tensor::zeros(value.dtype(), &shape));
                    }
                    let top = s.top.as_ref().expect("ensured above").clone();
                    if s.store.is_none() {
                        let mut shape = vec![self.opts.stack_depth, z];
                        shape.extend_from_slice(&top.shape()[1..]);
                        s.store = Some(Tensor::zeros(top.dtype(), &shape));
                    }
                    for (b, &a) in active.iter().enumerate() {
                        if a && s.sp[b] >= self.opts.stack_depth {
                            return Err(VmError::StackOverflow {
                                var: var.clone(),
                                limit: self.opts.stack_depth,
                            });
                        }
                    }
                    let store = s.store.as_mut().expect("ensured above");
                    store.scatter_at_depth(&s.sp, active, &top)?;
                    for (b, &a) in active.iter().enumerate() {
                        if a {
                            s.sp[b] += 1;
                        }
                    }
                    masked_store(&mut s.top, value, active)?;
                    let elem_bytes = top.len() / z.max(1) * top.dtype().size_bytes();
                    // Functional semantics copy the whole [D, Z, ..] stack
                    // buffer to produce the "new" stack value — the cost
                    // the paper's §4.1 hypothesis (2) blames for fully
                    // compiled autobatching losing to the hybrid at very
                    // large batch sizes.
                    let seq = if functional {
                        s.store.as_ref().map_or(0.0, |st| 2.0 * st.size_bytes() as f64)
                    } else {
                        0.0
                    };
                    Ok((seq, (elem_bytes * n_active) as f64))
                }
            }
        } else if st.registers.contains_key(var) {
            debug_assert_eq!(kind, WriteKind::Update, "validated: no push to register");
            let slot = st.registers.get_mut(var).expect("checked contains_key");
            masked_store(slot, value, active)?;
            Ok((0.0, 0.0))
        } else {
            // Block-local temporary: plain unmasked binding.
            temps.insert(var.clone(), value);
            Ok((0.0, 0.0))
        }
    }

    /// Pop a stacked variable for the active members. Returns the
    /// (sequential, random) stack traffic in bytes.
    #[allow(clippy::too_many_arguments)]
    fn pop_var(
        &self,
        st: &mut State,
        var: &Var,
        active: &[bool],
        active_idx: &[usize],
        trace: &mut Option<&mut Trace>,
        fused: bool,
        functional: bool,
    ) -> Result<(f64, f64)> {
        let z = st.z;
        let s = st.stacked.get_mut(var).ok_or_else(|| VmError::Unbound {
            var: var.clone(),
            context: "pop of unknown stacked variable".into(),
        })?;
        let store = s.store.as_ref().ok_or(VmError::StackUnderflow {
            var: var.clone(),
        })?;
        for &b in active_idx {
            if s.sp[b] == 0 {
                return Err(VmError::StackUnderflow { var: var.clone() });
            }
        }
        let depths: Vec<usize> = s
            .sp
            .iter()
            .enumerate()
            .map(|(b, &d)| if active[b] { d - 1 } else { 0 })
            .collect();
        let restored = store.gather_at_depth(&depths)?;
        masked_store(&mut s.top, restored, active)?;
        for &b in active_idx {
            s.sp[b] -= 1;
        }
        let top = s.top.as_ref().expect("pop restores a value");
        let bytes = (top.len() / z.max(1) * active_idx.len()) as f64
            * top.dtype().size_bytes() as f64;
        // Functional semantics rebuild the stack buffer on pop as well
        // (the while-loop state tuple is immutable).
        let seq = if functional {
            s.store.as_ref().map_or(0.0, |st| 2.0 * st.size_bytes() as f64)
        } else {
            0.0
        };
        if !fused {
            record_stack_launch(trace, 0.0, seq + bytes, active_idx.len(), z);
        }
        Ok((seq, bytes))
    }
}

/// Masked write into an optional full-width slot.
fn masked_store(slot: &mut Option<Tensor>, value: Tensor, active: &[bool]) -> Result<()> {
    if value.rank() == 0 || value.shape()[0] != active.len() {
        return Err(VmError::BadInputs {
            what: format!(
                "masked write with batch width {:?}, expected {}",
                value.shape(),
                active.len()
            ),
        });
    }
    match slot {
        Some(old) if old.shape() == value.shape() && old.dtype() == value.dtype() => {
            old.masked_assign_rows(active, &value)?;
        }
        Some(_) | None => {
            if active.iter().all(|&a| a) {
                *slot = Some(value);
            } else {
                // Allocate a fresh buffer and land only the active rows;
                // the inactive lanes hold zeros, which the masked
                // semantics never exposes to a well-formed program.
                let mut fresh = Tensor::zeros(value.dtype(), value.shape());
                fresh.masked_assign_rows(active, &value)?;
                *slot = Some(fresh);
            }
        }
    }
    Ok(())
}

fn record_stack_launch(trace: &mut Option<&mut Trace>, seq: f64, rand: f64, active: usize, z: usize) {
    if let Some(t) = trace.as_deref_mut() {
        t.launch(&LaunchRecord {
            kernel: "stack".into(),
            flops: 0.0,
            bytes: seq,
            random_bytes: rand,
            parallel: active.max(1),
            active_members: active,
            total_members: z,
        });
    }
}

/// Traffic of one pc stack push/pop: 8 bytes per active member, plus a
/// whole-buffer copy under functional (XLA-style) stack updates.
fn pc_traffic(
    trace: &mut Option<&mut Trace>,
    depth_limit: usize,
    z: usize,
    n_active: usize,
    fused: bool,
) -> (f64, f64) {
    let rand = (n_active * 8) as f64;
    let seq = match trace.as_deref() {
        Some(t) if t.functional_stack_updates() => (2 * depth_limit * z * 8) as f64,
        _ => 0.0,
    };
    if !fused {
        record_stack_launch(trace, 0.0, seq + rand, n_active, z);
    }
    (seq, rand)
}

/// Block selection over pc tops (all members still in flight).
fn select_block(pc_top: &[usize], n_blocks: usize, heuristic: BlockHeuristic) -> Option<usize> {
    match heuristic {
        BlockHeuristic::EarliestBlock => {
            pc_top.iter().copied().filter(|&p| p < n_blocks).min()
        }
        BlockHeuristic::MostActive => {
            let mut counts = vec![0usize; n_blocks];
            for &p in pc_top {
                if p < n_blocks {
                    counts[p] += 1;
                }
            }
            counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .max_by(|(i, a), (j, b)| a.cmp(b).then(j.cmp(i)))
                .map(|(i, _)| i)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lowering::lower;
    use crate::options::LoweringOptions;
    use autobatch_accel::Backend;
    use autobatch_ir::build::fibonacci_program;

    fn fib_vm_run(ns: &[i64], opts: ExecOptions) -> Vec<i64> {
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::default()).unwrap();
        let vm = PcVm::new(&pc, KernelRegistry::new(), opts);
        let out = vm
            .run(&[Tensor::from_i64(ns, &[ns.len()]).unwrap()], None)
            .unwrap();
        out[0].as_i64().unwrap().to_vec()
    }

    #[test]
    fn fibonacci_via_explicit_stacks() {
        assert_eq!(
            fib_vm_run(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10], ExecOptions::default()),
            vec![1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89]
        );
    }

    #[test]
    fn fibonacci_gather_scatter_strategy() {
        let opts = ExecOptions { strategy: ExecStrategy::GatherScatter, ..ExecOptions::default() };
        assert_eq!(fib_vm_run(&[6, 7, 8, 9], opts), vec![13, 21, 34, 55]);
    }

    #[test]
    fn fibonacci_most_active_heuristic() {
        let opts = ExecOptions { heuristic: BlockHeuristic::MostActive, ..ExecOptions::default() };
        assert_eq!(fib_vm_run(&[3, 9, 1], opts), vec![3, 55, 1]);
    }

    #[test]
    fn fibonacci_without_top_caching() {
        let opts = ExecOptions { cache_stack_tops: false, ..ExecOptions::default() };
        assert_eq!(fib_vm_run(&[5, 8], opts), vec![8, 34]);
    }

    #[test]
    fn unoptimized_lowering_still_correct() {
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::unoptimized()).unwrap();
        let vm = PcVm::new(&pc, KernelRegistry::new(), ExecOptions::default());
        let out = vm
            .run(&[Tensor::from_i64(&[7, 2, 9], &[3]).unwrap()], None)
            .unwrap();
        assert_eq!(out[0].as_i64().unwrap(), &[21, 2, 55]);
    }

    #[test]
    fn stack_overflow_reported() {
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::default()).unwrap();
        let opts = ExecOptions { stack_depth: 4, ..ExecOptions::default() };
        let vm = PcVm::new(&pc, KernelRegistry::new(), opts);
        let err = vm.run(&[Tensor::from_i64(&[25], &[1]).unwrap()], None);
        assert!(
            matches!(err, Err(VmError::StackOverflow { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn members_at_different_depths_batch_together() {
        // Observe at least one superstep where two members with different
        // pc stack depths are simultaneously active — the capability the
        // paper's §3 adds over local static autobatching.
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::default()).unwrap();
        let vm = PcVm::new(&pc, KernelRegistry::new(), ExecOptions::default());
        let mut cross_depth_batch = false;
        let mut obs = |o: &PcObservation<'_>| {
            let depths: Vec<usize> = o
                .active
                .iter()
                .enumerate()
                .filter(|(_, &a)| a)
                .map(|(b, _)| o.pc_depth[b])
                .collect();
            if depths.len() >= 2 && depths.iter().any(|&d| d != depths[0]) {
                cross_depth_batch = true;
            }
        };
        vm.run_observed(
            &[Tensor::from_i64(&[6, 9], &[2]).unwrap()],
            None,
            Some(&mut obs),
        )
        .unwrap();
        assert!(cross_depth_batch, "no cross-depth batching observed");
    }

    #[test]
    fn trace_records_stack_traffic_and_blocks() {
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::default()).unwrap();
        let vm = PcVm::new(&pc, KernelRegistry::new(), ExecOptions::default());
        let mut tr = Trace::new(Backend::xla_cpu());
        vm.run(
            &[Tensor::from_i64(&[8, 9], &[2]).unwrap()],
            Some(&mut tr),
        )
        .unwrap();
        assert!(tr.supersteps() > 0);
        assert!(tr.kernels().any(|(k, _)| k.starts_with("block:")));
        // Fused mode folds stack traffic into block launches.
        assert!(tr.sim_time() > 0.0);
        // Eager mode shows explicit stack launches.
        let mut tr2 = Trace::new(Backend::eager_cpu());
        vm.run(
            &[Tensor::from_i64(&[8, 9], &[2]).unwrap()],
            Some(&mut tr2),
        )
        .unwrap();
        assert!(tr2.kernel_stats("stack").is_some());
    }

    #[test]
    fn pc_vm_matches_lsab_vm_bitwise() {
        use crate::lsab_vm::LocalStaticVm;
        let p = fibonacci_program();
        let lsab_vm = LocalStaticVm::new(&p, KernelRegistry::new(), ExecOptions::default());
        let (pcp, _) = lower(&p, LoweringOptions::default()).unwrap();
        let pc_vm = PcVm::new(&pcp, KernelRegistry::new(), ExecOptions::default());
        let input = Tensor::from_i64(&[0, 3, 11, 7, 1], &[5]).unwrap();
        let a = lsab_vm.run(std::slice::from_ref(&input), None).unwrap();
        let b = pc_vm.run(std::slice::from_ref(&input), None).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bad_inputs_rejected() {
        let p = fibonacci_program();
        let (pc, _) = lower(&p, LoweringOptions::default()).unwrap();
        let vm = PcVm::new(&pc, KernelRegistry::new(), ExecOptions::default());
        assert!(vm.run(&[], None).is_err());
        assert!(vm.run(&[Tensor::scalar(1i64)], None).is_err());
    }
}
