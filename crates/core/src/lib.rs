//! # autobatch-core
//!
//! The paper's contribution ([Radul et al., MLSys 2020](https://arxiv.org/abs/1910.11141)):
//! two static autobatching runtimes and the compilation pipeline between
//! their program representations.
//!
//! - [`LocalStaticVm`] — *local static autobatching* (§2, Algorithm 1): a
//!   masked interpreter over per-function CFGs whose recursion is carried
//!   by the host language.
//! - [`lower`] — the `lsab → pcab` transformation (§3): merges all
//!   functions, replaces calls with explicit per-variable stack
//!   operations in a caller-saves discipline, and applies the paper's
//!   compiler optimizations (temporary elision, register demotion,
//!   pop-push elimination).
//! - [`PcVm`] — *program-counter autobatching* (§3, Algorithm 2): a flat,
//!   non-recursive runtime with a stacked program counter, suitable for
//!   graph-mode/XLA-style execution, able to batch logical threads at
//!   different stack depths.
//! - [`Autobatcher`] — a one-stop facade tying the pipeline together.
//!
//! Execution is parameterized by [`ExecOptions`] (masking vs
//! gather/scatter, block-selection heuristic — the paper's §2 "free
//! choices") and priced against simulated accelerator backends via
//! [`autobatch_accel::Trace`].
//!
//! # Performance architecture
//!
//! The program-counter interpreter's superstep loop is allocation-free
//! in the steady state: each machine owns a scratch arena (active
//! mask, active-index list, member keys, pop depths, block-local
//! temporaries) that is cleared per superstep, never reallocated, and
//! tensors are copy-on-write so state reads and observer snapshots
//! share buffers instead of deep-copying. On top of that, each basic
//! block is planned once into **fused elementwise regions** —
//! straight-line runs of elementwise primitives executed as a single
//! loop with per-element virtual registers and priced as a single
//! launch ([`ExecOptions::fuse_elementwise`]; the fused loop applies
//! the exact scalar functions of the allocating kernels, so results
//! are bit-identical, and any runtime shape/dtype surprise falls back
//! to per-op execution). See the repository README's "Performance
//! architecture" section for the measured effect.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod api;
mod dynamic_vm;
mod error;
mod fusion;
mod kernels;
mod lowering;
mod lsab_vm;
mod options;
mod pc_vm;

pub use api::{vmap, Autobatcher, BatchedFn};
pub use dynamic_vm::{DynObservation, DynObserver, DynamicVm};
pub use error::{Result, VmError};
pub use kernels::{eval_prim, prim_cost, ExternalKernel, KernelRegistry, OpCost};
pub use lowering::{lower, LoweringStats};
pub use lsab_vm::{LocalStaticVm, LsabObservation, LsabObserver};
pub use options::{BlockHeuristic, DynSchedule, ExecOptions, ExecStrategy, LoweringOptions};
pub use pc_vm::{LaneState, PcMachine, PcObservation, PcObserver, PcVm, Retired, StackSnapshot};
