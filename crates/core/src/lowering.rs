//! The `lsab → pcab` lowering (paper §3).
//!
//! Merges every function's CFG into one flat block list and replaces
//! calls with explicit stack discipline:
//!
//! - argument values are written onto the callee's parameter variables —
//!   *pushed* if the parameter is stack-classified and the call is
//!   recursive (saving the caller's frame beneath), *updated* in place
//!   otherwise;
//! - the caller *pushes* each of its own stacked variables that is live
//!   after a recursive call (caller-saves; paper optimization 1);
//! - control transfers via `PushJump(callee entry, resume block)`; the
//!   resume block copies the callee's outputs, pops the saved variables,
//!   and continues;
//! - variable classification implements optimizations 2–3: block-local
//!   temporaries bypass the machinery, variables never live across a
//!   recursive call become mask-updated registers;
//! - a peephole pass implements optimization 5: `Pop v; …; Push v = e`
//!   with no intervening access to `v` cancels into `Update v = e`
//!   (optimization 4, stack-top caching, lives in the runtime).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use autobatch_ir::analysis::{CallGraph, Liveness};
use autobatch_ir::{lsab, pcab, BlockId, FuncId, IrError, Prim, Var};

use crate::error::Result;
use crate::options::LoweringOptions;

/// Compile-time statistics reported by [`lower`], consumed by the
/// lowering-ablation bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoweringStats {
    /// Blocks in the merged program.
    pub blocks: usize,
    /// Variables classified as stacked.
    pub stacked_vars: usize,
    /// Variables classified as registers.
    pub register_vars: usize,
    /// Static `Push` write sites.
    pub pushes: usize,
    /// Static `Pop` sites.
    pub pops: usize,
    /// Pop/push pairs cancelled by optimization 5.
    pub eliminated_pairs: usize,
}

/// Lower a locally-batchable program into the merged, stack-explicit
/// program-counter-batchable form.
///
/// # Errors
///
/// Returns an error if the input program is malformed (it is validated
/// first), if function names collide (they become variable-name prefixes),
/// or if the produced program fails its own validation (a compiler bug).
pub fn lower(
    program: &lsab::Program,
    opts: LoweringOptions,
) -> Result<(pcab::Program, LoweringStats)> {
    program.validate()?;
    let mut seen = BTreeSet::new();
    for f in &program.funcs {
        if !seen.insert(f.name.clone()) {
            return Err(IrError::DuplicateName {
                name: f.name.clone(),
            }
            .into());
        }
    }

    let cg = CallGraph::new(program);
    let liveness: Vec<Liveness> = program.funcs.iter().map(Liveness::new).collect();

    // ---- classification (optimizations 2 & 3) --------------------------
    // For each function: persistent variables (those that cross a block
    // boundary or a call site) and, among them, the stacked ones (live
    // across a recursive call).
    let mut classes: BTreeMap<Var, pcab::VarClass> = BTreeMap::new();
    for (fi, f) in program.funcs.iter().enumerate() {
        let lv = &liveness[fi];
        let mut persistent: BTreeSet<Var> = if opts.elide_temporaries {
            let mut s = lv.cross_block_vars();
            s.extend(f.params.iter().cloned());
            s.extend(f.outputs.iter().cloned());
            for (bi, b) in f.blocks.iter().enumerate() {
                for (oi, op) in b.ops.iter().enumerate() {
                    if matches!(op, lsab::Op::Call { .. }) {
                        s.extend(lv.live_after_op(bi, oi).iter().cloned());
                    }
                }
            }
            s
        } else {
            f.all_vars().into_iter().collect()
        };
        // Outputs of functions are read by callers at resume: persistent.
        persistent.extend(f.outputs.iter().cloned());

        let mut stacked: BTreeSet<Var> = BTreeSet::new();
        for (bi, b) in f.blocks.iter().enumerate() {
            for (oi, op) in b.ops.iter().enumerate() {
                if let lsab::Op::Call { outs, callee, .. } = op {
                    if cg.is_recursive_call(FuncId(fi), *callee) {
                        let mut live = lv.live_after_op(bi, oi).clone();
                        for w in outs {
                            live.remove(w);
                        }
                        stacked.extend(live);
                    }
                }
            }
        }
        for v in persistent {
            let class = if !opts.demote_registers || stacked.contains(&v) {
                // Without register demotion every persistent variable
                // carries a stack, as the paper's unoptimized baseline.
                if opts.demote_registers {
                    if stacked.contains(&v) {
                        pcab::VarClass::Stacked
                    } else {
                        pcab::VarClass::Register
                    }
                } else {
                    pcab::VarClass::Stacked
                }
            } else {
                pcab::VarClass::Register
            };
            classes.insert(mangle(&f.name, &v), class);
        }
    }

    // ---- block layout ----------------------------------------------------
    // Each lsab block splits at its calls into 1 + #calls pcab segments.
    let mut seg_start: HashMap<(usize, usize), usize> = HashMap::new();
    let mut next = 0usize;
    for (fi, f) in program.funcs.iter().enumerate() {
        for (bi, b) in f.blocks.iter().enumerate() {
            seg_start.insert((fi, bi), next);
            let calls = b
                .ops
                .iter()
                .filter(|op| matches!(op, lsab::Op::Call { .. }))
                .count();
            next += 1 + calls;
        }
    }
    let func_entry = |fi: usize| -> usize { seg_start[&(fi, 0)] };

    // ---- emission ----------------------------------------------------------
    let mut blocks: Vec<pcab::Block> = Vec::with_capacity(next);
    let mut temp_counter = 0usize;
    let fresh = |hint: &str, temp_counter: &mut usize| -> Var {
        let v = Var::new(format!("%{hint}{}", *temp_counter));
        *temp_counter += 1;
        v
    };

    for (fi, f) in program.funcs.iter().enumerate() {
        let lv = &liveness[fi];
        for (bi, b) in f.blocks.iter().enumerate() {
            let mut ops: Vec<pcab::Op> = Vec::new();
            let mut seg_index = seg_start[&(fi, bi)];
            for (oi, op) in b.ops.iter().enumerate() {
                match op {
                    lsab::Op::Prim { outs, prim, ins } => {
                        ops.push(pcab::Op::Compute {
                            outs: outs
                                .iter()
                                .map(|o| (mangle(&f.name, o), pcab::WriteKind::Update))
                                .collect(),
                            prim: prim.clone(),
                            ins: ins.iter().map(|i| mangle(&f.name, i)).collect(),
                        });
                    }
                    lsab::Op::Call { outs, callee, ins } => {
                        let g = &program.funcs[callee.0];
                        let recursive = cg.is_recursive_call(FuncId(fi), *callee);
                        // Argument temporaries, computed before any push
                        // mutates the variables they may alias.
                        let arg_temps: Vec<Var> = ins
                            .iter()
                            .map(|a| {
                                let t = fresh("c", &mut temp_counter);
                                ops.push(pcab::Op::Compute {
                                    outs: vec![(t.clone(), pcab::WriteKind::Update)],
                                    prim: Prim::Id,
                                    ins: vec![mangle(&f.name, a)],
                                });
                                t
                            })
                            .collect();
                        // Write args onto the callee's parameters.
                        let mut pushed_params: Vec<Var> = Vec::new();
                        for (p, t) in g.params.iter().zip(&arg_temps) {
                            let mp = mangle(&g.name, p);
                            let kind = if recursive
                                && classes.get(&mp) == Some(&pcab::VarClass::Stacked)
                            {
                                pushed_params.push(mp.clone());
                                pcab::WriteKind::Push
                            } else {
                                pcab::WriteKind::Update
                            };
                            ops.push(pcab::Op::Compute {
                                outs: vec![(mp, kind)],
                                prim: Prim::Id,
                                ins: vec![t.clone()],
                            });
                        }
                        // Caller-saves: stacked locals live after a
                        // recursive call (excluding the call's own
                        // results and the params just pushed).
                        let mut saves: Vec<Var> = Vec::new();
                        if recursive {
                            let mut live = lv.live_after_op(bi, oi).clone();
                            for w in outs {
                                live.remove(w);
                            }
                            for v in live {
                                let mv = mangle(&f.name, &v);
                                if classes.get(&mv) == Some(&pcab::VarClass::Stacked)
                                    && !pushed_params.contains(&mv)
                                {
                                    saves.push(mv);
                                }
                            }
                            saves.sort();
                            saves.dedup();
                            for v in &saves {
                                ops.push(pcab::Op::Compute {
                                    outs: vec![(v.clone(), pcab::WriteKind::Push)],
                                    prim: Prim::Id,
                                    ins: vec![v.clone()],
                                });
                            }
                        }
                        // Seal this segment with the PushJump.
                        let resume = seg_index + 1;
                        blocks.push(pcab::Block {
                            ops: std::mem::take(&mut ops),
                            term: pcab::Terminator::PushJump {
                                enter: BlockId(func_entry(callee.0)),
                                resume: BlockId(resume),
                            },
                        });
                        seg_index = resume;
                        // Resume segment: capture results, pop saves and
                        // params, bind results.
                        let result_temps: Vec<Var> = g
                            .outputs
                            .iter()
                            .map(|o| {
                                let t = fresh("r", &mut temp_counter);
                                ops.push(pcab::Op::Compute {
                                    outs: vec![(t.clone(), pcab::WriteKind::Update)],
                                    prim: Prim::Id,
                                    ins: vec![mangle(&g.name, o)],
                                });
                                t
                            })
                            .collect();
                        for v in saves.iter().rev() {
                            ops.push(pcab::Op::Pop { var: v.clone() });
                        }
                        for p in pushed_params.iter().rev() {
                            ops.push(pcab::Op::Pop { var: p.clone() });
                        }
                        for (y, t) in outs.iter().zip(&result_temps) {
                            ops.push(pcab::Op::Compute {
                                outs: vec![(mangle(&f.name, y), pcab::WriteKind::Update)],
                                prim: Prim::Id,
                                ins: vec![t.clone()],
                            });
                        }
                    }
                }
            }
            // Terminator of the final segment.
            let term = match &b.term {
                lsab::Terminator::Jump(t) => pcab::Terminator::Jump(BlockId(seg_start[&(fi, t.0)])),
                lsab::Terminator::Branch { cond, then_, else_ } => pcab::Terminator::Branch {
                    cond: mangle(&f.name, cond),
                    then_: BlockId(seg_start[&(fi, then_.0)]),
                    else_: BlockId(seg_start[&(fi, else_.0)]),
                },
                lsab::Terminator::Return => pcab::Terminator::Return,
            };
            blocks.push(pcab::Block { ops, term });
        }
    }
    debug_assert_eq!(blocks.len(), next);

    let entry_f = &program.funcs[program.entry.0];
    let mut out = pcab::Program {
        blocks,
        entry: BlockId(func_entry(program.entry.0)),
        inputs: entry_f
            .params
            .iter()
            .map(|p| mangle(&entry_f.name, p))
            .collect(),
        outputs: entry_f
            .outputs
            .iter()
            .map(|o| mangle(&entry_f.name, o))
            .collect(),
        classes,
    };

    // ---- optimization 5: pop-push elimination ---------------------------
    let mut eliminated = 0usize;
    if opts.pop_push_elimination {
        for b in &mut out.blocks {
            eliminated += eliminate_pop_push(&mut b.ops);
        }
    }
    // Drop trivial `v = id(v)` updates produced by the cancellation.
    for b in &mut out.blocks {
        b.ops.retain(|op| !is_trivial_id(op));
    }

    out.validate()?;
    let stats = LoweringStats {
        blocks: out.blocks.len(),
        stacked_vars: out.stacked_vars().len(),
        register_vars: out.register_vars().len(),
        pushes: out
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .map(|op| match op {
                pcab::Op::Compute { outs, .. } => outs
                    .iter()
                    .filter(|(_, k)| *k == pcab::WriteKind::Push)
                    .count(),
                pcab::Op::Pop { .. } => 0,
            })
            .sum(),
        pops: out
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|op| matches!(op, pcab::Op::Pop { .. }))
            .count(),
        eliminated_pairs: eliminated,
    };
    Ok((out, stats))
}

fn mangle(func: &str, v: &Var) -> Var {
    Var::new(format!("{func}.{v}"))
}

fn is_trivial_id(op: &pcab::Op) -> bool {
    match op {
        pcab::Op::Compute { outs, prim, ins } => {
            matches!(prim, Prim::Id)
                && outs.len() == 1
                && ins.len() == 1
                && outs[0].1 == pcab::WriteKind::Update
                && outs[0].0 == ins[0]
        }
        pcab::Op::Pop { .. } => false,
    }
}

/// Cancel `Pop v; …; Push v` pairs with no intervening access to `v`
/// (paper optimization 5). Two shapes arise from the caller-saves
/// discipline:
///
/// - *re-save*: `Pop v; …; Push v = id(v)` — a frame restored at one
///   resume point and immediately re-saved at the next call. Both ops
///   vanish: the restored value was never read, and the frame beneath is
///   re-exposed unchanged at the matching later pop. (The stale top left
///   behind is dead — the discipline guarantees the callee writes `v`
///   before any read.)
/// - *overwrite*: `Pop v; …; Push v = e` with `v ∉ reads(e)` — the
///   restored value is immediately replaced, so the pair collapses into
///   an in-place `Update v = e`.
///
/// Returns the number of cancelled pairs. Sound for programs in the
/// caller-saves discipline [`lower`] emits; not a general-purpose
/// peephole for hand-written stack code.
fn eliminate_pop_push(ops: &mut Vec<pcab::Op>) -> usize {
    let mut eliminated = 0;
    'outer: loop {
        for i in 0..ops.len() {
            let pcab::Op::Pop { var } = &ops[i] else {
                continue;
            };
            let v = var.clone();
            // Scan forward for a push of v with no intervening access.
            for j in i + 1..ops.len() {
                match &ops[j] {
                    pcab::Op::Pop { var: w } => {
                        if *w == v {
                            break; // another pop of v: give up on this pair
                        }
                    }
                    pcab::Op::Compute { outs, prim, ins } => {
                        let is_resave = matches!(prim, Prim::Id)
                            && ins.as_slice() == std::slice::from_ref(&v)
                            && outs.len() == 1
                            && outs[0] == (v.clone(), pcab::WriteKind::Push);
                        if is_resave {
                            // Remove both; stack depth stays balanced.
                            ops.remove(j);
                            ops.remove(i);
                            eliminated += 1;
                            continue 'outer;
                        }
                        if ins.contains(&v) {
                            break; // genuine read of v: cannot cancel
                        }
                        if let Some(pos) = outs
                            .iter()
                            .position(|(o, k)| *o == v && *k == pcab::WriteKind::Push)
                        {
                            // Cancel: drop the pop, demote push to update.
                            if let pcab::Op::Compute { outs, .. } = &mut ops[j] {
                                outs[pos].1 = pcab::WriteKind::Update;
                            }
                            ops.remove(i);
                            eliminated += 1;
                            continue 'outer;
                        }
                        if outs.iter().any(|(o, _)| *o == v) {
                            break; // non-push write of v: cannot cancel
                        }
                    }
                }
            }
        }
        break;
    }
    eliminated
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobatch_ir::build::{fibonacci_program, ProgramBuilder};
    use autobatch_ir::pretty::pcab_listing;

    #[test]
    fn fibonacci_lowers_and_validates() {
        let p = fibonacci_program();
        let (pc, stats) = lower(&p, LoweringOptions::default()).unwrap();
        pc.validate().unwrap();
        // Two calls → the else-block splits into three segments; plus the
        // four structural blocks.
        assert_eq!(stats.blocks, p.funcs[0].blocks.len() + 2);
        // n is live across the first recursive call → stacked; left is
        // live across the second → stacked.
        let stacked = pc.stacked_vars();
        assert!(stacked.contains(&Var::new("fibonacci.n")), "{stacked:?}");
        assert!(stacked.contains(&Var::new("fibonacci.left")), "{stacked:?}");
        // `right` and `out` are never live across a recursive call.
        assert!(pc.register_vars().contains(&Var::new("fibonacci.out")));
        assert!(stats.pushes > 0 && stats.pops > 0);
    }

    #[test]
    fn nonrecursive_program_has_no_stacked_vars() {
        let mut pb = ProgramBuilder::new();
        let helper = pb.declare("helper", &["x"], &["y"]);
        let main = pb.declare("main", &["x"], &["y"]);
        pb.define(helper, |fb| {
            let x = fb.param(0);
            fb.assign(&fb.output(0), Prim::Neg, &[x]);
            fb.ret();
        });
        pb.define(main, |fb| {
            let x = fb.param(0);
            let r = fb.call(helper, &[x], 1);
            fb.copy(&fb.output(0), &r[0]);
            fb.ret();
        });
        let p = pb.finish(main).unwrap();
        let (pc, stats) = lower(&p, LoweringOptions::default()).unwrap();
        // The paper's headline property of the optimizations: a
        // non-recursive program runs entirely without variable stacks
        // (only the pc itself is stacked, and that lives in the runtime).
        assert_eq!(stats.stacked_vars, 0, "{}", pcab_listing(&pc));
        assert_eq!(stats.pushes, 0);
        assert_eq!(stats.pops, 0);
        // Calls still lower to PushJump.
        assert!(pc
            .blocks
            .iter()
            .any(|b| matches!(b.term, pcab::Terminator::PushJump { .. })));
    }

    #[test]
    fn unoptimized_lowering_stacks_everything() {
        let p = fibonacci_program();
        let (_, opt) = lower(&p, LoweringOptions::default()).unwrap();
        let (_, unopt) = lower(&p, LoweringOptions::unoptimized()).unwrap();
        assert!(unopt.stacked_vars > opt.stacked_vars);
        // Fibonacci's live-across-call sets are the same either way, so
        // push counts match; they may only grow without optimizations.
        assert!(unopt.pushes >= opt.pushes);
        assert_eq!(unopt.register_vars, 0);
    }

    #[test]
    fn duplicate_function_names_rejected() {
        let mut pb = ProgramBuilder::new();
        let a = pb.declare("same", &["x"], &["y"]);
        let b = pb.declare("same", &["x"], &["y"]);
        for id in [a, b] {
            pb.define(id, |fb| {
                let x = fb.param(0);
                fb.copy(&fb.output(0), &x);
                fb.ret();
            });
        }
        let p = pb.finish(a).unwrap();
        assert!(lower(&p, LoweringOptions::default()).is_err());
    }

    /// `f(n) = if n <= 0 { 0 } else { f(n-1) + f(n-2) + 10·n }`, with the
    /// `10·n` term computed *before* the calls into a variable `k` that
    /// is only read after the second call. `k` is therefore saved across
    /// both calls with no access in between: its `Pop` at the first
    /// resume point is immediately followed by its re-save `Push` at the
    /// second call — the pattern optimization 5 cancels.
    fn double_call_with_saved_var() -> lsab::Program {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("twocalls", &["n"], &["out"]);
        pb.define(f, |fb| {
            let n = fb.param(0);
            let k = Var::new("k");
            let ten = fb.const_i64(10);
            fb.assign(&k, Prim::Mul, &[n.clone(), ten]);
            let zero = fb.const_i64(0);
            let base = fb.emit(Prim::Le, &[n.clone(), zero]);
            fb.if_else(
                &base,
                |fb| {
                    let z = fb.const_i64(0);
                    fb.copy(&fb.output(0), &z);
                },
                |fb| {
                    let one = fb.const_i64(1);
                    let n1 = fb.emit(Prim::Sub, &[fb.param(0), one]);
                    let a = fb.call(f, &[n1], 1);
                    let two = fb.const_i64(2);
                    let n2 = fb.emit(Prim::Sub, &[fb.param(0), two]);
                    let b = fb.call(f, &[n2], 1);
                    let s = fb.emit(Prim::Add, &[a[0].clone(), b[0].clone()]);
                    fb.assign(&fb.output(0), Prim::Add, &[s, Var::new("k")]);
                },
            );
            fb.ret();
        });
        pb.finish(f).unwrap()
    }

    #[test]
    fn pop_push_elimination_fires_on_consecutive_saves() {
        let p = double_call_with_saved_var();
        let (_, with) = lower(&p, LoweringOptions::default()).unwrap();
        let no_elim = LoweringOptions {
            pop_push_elimination: false,
            ..LoweringOptions::default()
        };
        let (_, without) = lower(&p, no_elim).unwrap();
        assert!(with.eliminated_pairs > 0, "elimination fired: {with:?}");
        assert!(with.pushes < without.pushes);
        assert!(with.pops < without.pops);
    }

    #[test]
    fn elimination_preserves_semantics() {
        use crate::lsab_vm::LocalStaticVm;
        use crate::options::ExecOptions;
        use crate::pc_vm::PcVm;
        use crate::KernelRegistry;
        use autobatch_tensor::Tensor;
        let p = double_call_with_saved_var();
        let input = Tensor::from_i64(&[0, 1, 2, 3, 4, 5, 6, 9], &[8]).unwrap();
        let reference = LocalStaticVm::new(&p, KernelRegistry::new(), ExecOptions::default())
            .run(std::slice::from_ref(&input), None)
            .unwrap();
        for opts in [
            LoweringOptions::default(),
            LoweringOptions {
                pop_push_elimination: false,
                ..LoweringOptions::default()
            },
            LoweringOptions::unoptimized(),
        ] {
            let (pc, _) = lower(&p, opts).unwrap();
            let vm = PcVm::new(&pc, KernelRegistry::new(), ExecOptions::default());
            let out = vm.run(std::slice::from_ref(&input), None).unwrap();
            assert_eq!(out, reference, "options {opts:?}");
        }
    }

    #[test]
    fn eliminate_pop_push_respects_intervening_reads() {
        let v = Var::new("v");
        let w = Var::new("w");
        let mut ops = vec![
            pcab::Op::Pop { var: v.clone() },
            pcab::Op::Compute {
                outs: vec![(w.clone(), pcab::WriteKind::Update)],
                prim: Prim::Id,
                ins: vec![v.clone()], // reads v: blocks elimination
            },
            pcab::Op::Compute {
                outs: vec![(v.clone(), pcab::WriteKind::Push)],
                prim: Prim::Id,
                ins: vec![w.clone()],
            },
        ];
        assert_eq!(eliminate_pop_push(&mut ops), 0);
        assert_eq!(ops.len(), 3);
    }

    #[test]
    fn eliminate_pop_push_cancels_clean_pair() {
        let v = Var::new("v");
        let w = Var::new("w");
        let mut ops = vec![
            pcab::Op::Pop { var: v.clone() },
            pcab::Op::Compute {
                outs: vec![(w.clone(), pcab::WriteKind::Update)],
                prim: Prim::ConstF64(1.0),
                ins: vec![],
            },
            pcab::Op::Compute {
                outs: vec![(v.clone(), pcab::WriteKind::Push)],
                prim: Prim::Id,
                ins: vec![w.clone()],
            },
        ];
        assert_eq!(eliminate_pop_push(&mut ops), 1);
        assert_eq!(ops.len(), 2);
        assert!(matches!(
            &ops[1],
            pcab::Op::Compute { outs, .. } if outs[0].1 == pcab::WriteKind::Update
        ));
    }

    /// Optimization 2 in isolation: block-local temporaries (the
    /// intermediate `Sub`/`Mul` results) must vanish from the classified
    /// variable set entirely, not merely demote to registers.
    #[test]
    fn temporary_elision_shrinks_classified_vars() {
        let p = fibonacci_program();
        let elide = LoweringOptions::default();
        let keep = LoweringOptions {
            elide_temporaries: false,
            ..LoweringOptions::default()
        };
        let (pc_elide, s_elide) = lower(&p, elide).unwrap();
        let (pc_keep, s_keep) = lower(&p, keep).unwrap();
        let classified = |s: &LoweringStats| s.stacked_vars + s.register_vars;
        assert!(
            classified(&s_elide) < classified(&s_keep),
            "elision must shrink the classified set: {s_elide:?} vs {s_keep:?}"
        );
        // Every variable classified under elision is also classified
        // without it: elision only removes, never invents.
        let keep_vars: BTreeSet<_> = pc_keep.classes.keys().cloned().collect();
        for v in pc_elide.classes.keys() {
            assert!(keep_vars.contains(v), "elision invented {v:?}");
        }
    }

    /// Optimization 3 in isolation: with demotion off, every persistent
    /// variable gets a stack; with it on, variables that never cross a
    /// recursive call (like fibonacci's output accumulator) become
    /// registers — and registers must never be pushed or popped.
    #[test]
    fn register_demotion_classifies_non_call_crossing_vars() {
        let p = fibonacci_program();
        let (pc_on, s_on) = lower(&p, LoweringOptions::default()).unwrap();
        let no_demote = LoweringOptions {
            demote_registers: false,
            ..LoweringOptions::default()
        };
        let (_, s_off) = lower(&p, no_demote).unwrap();
        assert!(s_on.register_vars > 0, "demotion found registers: {s_on:?}");
        assert_eq!(
            s_off.register_vars, 0,
            "demotion off leaves none: {s_off:?}"
        );
        assert!(
            s_off.stacked_vars > s_on.stacked_vars,
            "undemoted registers become stacks: {s_off:?} vs {s_on:?}"
        );
        // Demotion must be sound: it may only demote, never promote.
        assert_eq!(s_on.stacked_vars + s_on.register_vars, s_off.stacked_vars);
        assert!(pc_on.register_vars().contains(&Var::new("fibonacci.out")));
    }

    /// Structural invariants every lowered program must satisfy, under
    /// every optimization configuration:
    /// - the program validates;
    /// - `Push` writes and `Pop`s target only stack-classified variables;
    /// - register-classified variables receive only `Update` writes;
    /// - the reported [`LoweringStats`] agree with a manual count over
    ///   the emitted blocks.
    #[test]
    fn lowered_invariants_hold_across_all_configs() {
        let programs = [fibonacci_program(), double_call_with_saved_var()];
        let configs = [
            LoweringOptions::default(),
            LoweringOptions {
                elide_temporaries: false,
                ..LoweringOptions::default()
            },
            LoweringOptions {
                demote_registers: false,
                ..LoweringOptions::default()
            },
            LoweringOptions {
                pop_push_elimination: false,
                ..LoweringOptions::default()
            },
            LoweringOptions::unoptimized(),
        ];
        for p in &programs {
            for opts in configs {
                let (pc, stats) = lower(p, opts).unwrap();
                pc.validate().unwrap();
                assert_eq!(stats.blocks, pc.blocks.len(), "{opts:?}");
                let (mut pushes, mut pops) = (0usize, 0usize);
                for b in &pc.blocks {
                    for op in &b.ops {
                        match op {
                            pcab::Op::Pop { var } => {
                                pops += 1;
                                assert_eq!(
                                    pc.class_of(var),
                                    Some(pcab::VarClass::Stacked),
                                    "Pop of non-stacked {var:?} under {opts:?}"
                                );
                            }
                            pcab::Op::Compute { outs, .. } => {
                                for (var, kind) in outs {
                                    match pc.class_of(var) {
                                        Some(pcab::VarClass::Stacked) => {
                                            if *kind == pcab::WriteKind::Push {
                                                pushes += 1;
                                            }
                                        }
                                        Some(pcab::VarClass::Register) | None => assert_eq!(
                                            *kind,
                                            pcab::WriteKind::Update,
                                            "non-stacked {var:?} pushed under {opts:?}"
                                        ),
                                    }
                                }
                            }
                        }
                    }
                }
                assert_eq!(stats.pushes, pushes, "push count drifted under {opts:?}");
                assert_eq!(stats.pops, pops, "pop count drifted under {opts:?}");
            }
        }
    }

    #[test]
    fn mutual_recursion_lowers() {
        let mut pb = ProgramBuilder::new();
        let even = pb.declare("even", &["n"], &["r"]);
        let odd = pb.declare("odd", &["n"], &["r"]);
        for (me, other) in [(even, odd), (odd, even)] {
            pb.define(me, |fb| {
                let n = fb.param(0);
                let zero = fb.const_i64(0);
                let base = fb.emit(Prim::EqE, &[n, zero]);
                fb.if_else(
                    &base,
                    |fb| {
                        let t = fb.const_bool(me == even);
                        fb.copy(&fb.output(0), &t);
                    },
                    |fb| {
                        let one = fb.const_i64(1);
                        let m = fb.emit(Prim::Sub, &[fb.param(0), one]);
                        let r = fb.call(other, &[m], 1);
                        fb.copy(&fb.output(0), &r[0]);
                    },
                );
                fb.ret();
            });
        }
        let p = pb.finish(even).unwrap();
        let (pc, _) = lower(&p, LoweringOptions::default()).unwrap();
        pc.validate().unwrap();
    }
}
