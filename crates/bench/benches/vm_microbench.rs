//! Real wall-clock microbenchmarks of the actual Rust interpreters
//! (not the simulated-accelerator timings the figures use): VM superstep
//! overhead, batched Fibonacci on both runtimes, and one batched NUTS
//! trajectory set.

use std::sync::Arc;

use autobatch_core::{
    lower, DynamicVm, ExecOptions, KernelRegistry, LocalStaticVm, LoweringOptions, PcVm,
};
use autobatch_ir::build::fibonacci_program;
use autobatch_models::StdNormal;
use autobatch_nuts::{BatchNuts, NutsConfig};
use autobatch_tensor::Tensor;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fib(c: &mut Criterion) {
    let program = fibonacci_program();
    let (lowered, _) = lower(&program, LoweringOptions::default()).expect("fib lowers");
    let mut group = c.benchmark_group("fibonacci");
    for z in [1usize, 16, 64] {
        let ns: Vec<i64> = (0..z as i64).map(|i| 5 + (i % 7)).collect();
        let input = vec![Tensor::from_i64(&ns, &[z]).expect("input")];
        group.bench_with_input(BenchmarkId::new("local-static", z), &input, |b, input| {
            let vm = LocalStaticVm::new(&program, KernelRegistry::new(), ExecOptions::default());
            b.iter(|| vm.run(input, None).expect("runs"));
        });
        group.bench_with_input(
            BenchmarkId::new("program-counter", z),
            &input,
            |b, input| {
                let vm = PcVm::new(&lowered, KernelRegistry::new(), ExecOptions::default());
                b.iter(|| vm.run(input, None).expect("runs"));
            },
        );
        group.bench_with_input(BenchmarkId::new("dynamic", z), &input, |b, input| {
            let vm = DynamicVm::new(&program, KernelRegistry::new(), ExecOptions::default());
            b.iter(|| vm.run(input, None).expect("runs"));
        });
    }
    group.finish();
}

fn bench_nuts(c: &mut Criterion) {
    let cfg = NutsConfig {
        step_size: 0.25,
        n_trajectories: 2,
        max_depth: 5,
        leapfrog_steps: 2,
        seed: 1,
    };
    let nuts = BatchNuts::new(Arc::new(StdNormal::new(8)), cfg).expect("NUTS compiles");
    let mut group = c.benchmark_group("nuts");
    group.sample_size(10);
    for z in [4usize, 32] {
        let q0 = Tensor::zeros(autobatch_tensor::DType::F64, &[z, 8]);
        group.bench_with_input(BenchmarkId::new("local-static", z), &q0, |b, q0| {
            b.iter(|| nuts.run_local(q0, None).expect("runs"));
        });
        group.bench_with_input(BenchmarkId::new("program-counter", z), &q0, |b, q0| {
            b.iter(|| nuts.run_pc(q0, None).expect("runs"));
        });
    }
    group.finish();
}

fn bench_tensor_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor");
    let a = Tensor::full(&[1024, 100], 1.5);
    let b2 = Tensor::full(&[1024, 100], 2.5);
    group.bench_function("add-1024x100", |b| {
        b.iter(|| a.add(&b2).expect("add"));
    });
    let mask: Vec<bool> = (0..1024).map(|i| i % 3 == 0).collect();
    group.bench_function("masked-assign-1024x100", |b| {
        let mut dst = a.clone();
        b.iter(|| dst.masked_assign_rows(&mask, &b2).expect("mask"));
    });
    let stack = Tensor::full(&[32, 1024, 100], 0.0);
    let depths: Vec<usize> = (0..1024).map(|i| i % 32).collect();
    group.bench_function("gather-at-depth-32x1024x100", |b| {
        b.iter(|| stack.gather_at_depth(&depths).expect("gather"));
    });
    group.finish();
}

criterion_group!(benches, bench_fib, bench_nuts, bench_tensor_kernels);
criterion_main!(benches);
