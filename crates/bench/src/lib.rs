//! # autobatch-bench
//!
//! The experiment harness regenerating the paper's evaluation
//! (see DESIGN.md §4 for the experiment index):
//!
//! - `fig5_throughput` — Figure 5: NUTS gradient throughput vs batch
//!   size on Bayesian logistic regression, across the five execution
//!   configurations;
//! - `fig6_utilization` — Figure 6: batch gradient utilization vs batch
//!   size on the correlated Gaussian, local-static vs program-counter;
//! - `ablation_masking` — §2's first free choice: masking vs
//!   gather/scatter primitive execution;
//! - `ablation_heuristic` — §2's second free choice: block-selection
//!   heuristics;
//! - `ablation_lowering` — §3's compiler optimizations on/off;
//! - `ablation_dynamic` — §5's alternative architecture: dynamic
//!   (on-the-fly) batching vs the paper's two static strategies.
//!
//! Each binary prints the table to stdout and writes a CSV under
//! `results/`. Wall-clock microbenchmarks of the real interpreters live
//! in `benches/`.

#![warn(missing_docs)]

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Batch sizes `1, 2, 4, … ≤ max`.
pub fn geometric_batches(max: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut z = 1;
    while z <= max {
        v.push(z);
        z *= 2;
    }
    v
}

/// Print a fixed-width table to stdout.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for r in rows {
        println!("{}", fmt_row(r));
    }
}

/// Write rows as CSV under `results/` (created if needed).
///
/// # Panics
///
/// Panics on I/O failure — the harness has nowhere sensible to recover to.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", header.join(",")).expect("write header");
    for r in rows {
        writeln!(f, "{}", r.join(",")).expect("write row");
    }
    println!("wrote {}", path.display());
}

/// Write a flat list of `(key, value)` records as a JSON array of
/// objects under `results/` — the `BENCH_*.json` perf-trajectory
/// artifacts CI uploads. Values are emitted verbatim, so pass
/// already-JSON-formatted numbers or quoted strings.
///
/// # Panics
///
/// Panics on I/O failure — the harness has nowhere sensible to recover to.
pub fn write_json(name: &str, rows: &[Vec<(&str, String)>]) {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    let mut f = fs::File::create(&path).expect("create json");
    writeln!(f, "[").expect("write");
    for (i, row) in rows.iter().enumerate() {
        let fields: Vec<String> = row
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(f, "  {{{}}}{comma}", fields.join(", ")).expect("write row");
    }
    writeln!(f, "]").expect("write");
    println!("wrote {}", path.display());
}

/// Quote a string for [`write_json`] values.
pub fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Format a float compactly for tables.
pub fn fmt_sig(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 || x.abs() < 0.01 {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}
