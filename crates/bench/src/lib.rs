//! # autobatch-bench
//!
//! The experiment harness regenerating the paper's evaluation
//! (see DESIGN.md §4 for the experiment index):
//!
//! - `fig5_throughput` — Figure 5: NUTS gradient throughput vs batch
//!   size on Bayesian logistic regression, across the five execution
//!   configurations;
//! - `fig6_utilization` — Figure 6: batch gradient utilization vs batch
//!   size on the correlated Gaussian, local-static vs program-counter;
//! - `ablation_masking` — §2's first free choice: masking vs
//!   gather/scatter primitive execution;
//! - `ablation_heuristic` — §2's second free choice: block-selection
//!   heuristics;
//! - `ablation_lowering` — §3's compiler optimizations on/off;
//! - `ablation_dynamic` — §5's alternative architecture: dynamic
//!   (on-the-fly) batching vs the paper's two static strategies.
//!
//! Each binary prints the table to stdout and writes a CSV under
//! `results/`. Wall-clock microbenchmarks of the real interpreters live
//! in `benches/`.

#![warn(missing_docs)]

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Batch sizes `1, 2, 4, … ≤ max`.
pub fn geometric_batches(max: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut z = 1;
    while z <= max {
        v.push(z);
        z *= 2;
    }
    v
}

/// Print a fixed-width table to stdout.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for r in rows {
        println!("{}", fmt_row(r));
    }
}

/// Write rows as CSV under `results/` (created if needed).
///
/// # Panics
///
/// Panics on I/O failure — the harness has nowhere sensible to recover to.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", header.join(",")).expect("write header");
    for r in rows {
        writeln!(f, "{}", r.join(",")).expect("write row");
    }
    println!("wrote {}", path.display());
}

/// Render a flat list of `(key, value)` records as a JSON array of
/// objects — the `BENCH_*.json` perf-trajectory schema. Values are
/// emitted verbatim, so pass already-JSON-formatted numbers or quoted
/// strings (via [`json_str`]). The output round-trips through
/// [`gate::parse_flat_json`]; the schema test suite holds the two ends
/// together.
pub fn render_json(rows: &[Vec<(&str, String)>]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        let fields: Vec<String> = row.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!("  {{{}}}{comma}\n", fields.join(", ")));
    }
    out.push_str("]\n");
    out
}

/// Write [`render_json`] output under `results/` (created if needed) —
/// the `BENCH_*.json` artifacts CI uploads and gates on.
///
/// # Panics
///
/// Panics on I/O failure — the harness has nowhere sensible to recover to.
pub fn write_json(name: &str, rows: &[Vec<(&str, String)>]) {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    fs::write(&path, render_json(rows)).expect("write json");
    println!("wrote {}", path.display());
}

/// Quote a string for [`write_json`] values.
pub fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Format a float compactly for tables.
pub fn fmt_sig(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 || x.abs() < 0.01 {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}

/// The CI perf-regression gate: parse `BENCH_*.json` artifacts and
/// compare a fresh run against a committed baseline, failing on
/// throughput regressions beyond a tolerance.
///
/// The whole workspace builds offline (no serde), so this module
/// carries a minimal parser for exactly the flat schema
/// [`render_json`] emits: a JSON array of flat
/// objects whose values are strings or numbers.
pub mod gate {
    use std::collections::BTreeMap;

    /// A value in a flat benchmark row.
    #[derive(Debug, Clone, PartialEq)]
    pub enum JsonValue {
        /// A JSON string.
        Str(String),
        /// A JSON number.
        Num(f64),
    }

    impl JsonValue {
        /// The numeric value, if this is a number.
        pub fn as_num(&self) -> Option<f64> {
            match self {
                JsonValue::Num(x) => Some(*x),
                JsonValue::Str(_) => None,
            }
        }

        /// Canonical display for row keys and reports.
        pub fn display(&self) -> String {
            match self {
                JsonValue::Str(s) => s.clone(),
                JsonValue::Num(x) => {
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        format!("{}", *x as i64)
                    } else {
                        format!("{x}")
                    }
                }
            }
        }
    }

    /// One benchmark row: field name → value.
    pub type Row = BTreeMap<String, JsonValue>;

    /// The primary metric the regression gate compares (simulated
    /// serving throughput).
    pub const METRIC: &str = "requests_per_s";

    /// Which way a metric is allowed to move.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Direction {
        /// A drop below `baseline × (1 − tolerance)` fails.
        HigherIsBetter,
        /// A rise above `baseline × (1 + tolerance)` fails.
        LowerIsBetter,
    }

    /// Every metric the gate knows, with its direction and a per-metric
    /// tolerance scale applied to the caller's base tolerance:
    ///
    /// - `requests_per_s` — simulated throughput; deterministic cost
    ///   model, so the base tolerance applies as-is;
    /// - `supersteps_per_s` — **host** wall-clock interpreter speed
    ///   from `vm_microbench`; machine-dependent, so the tolerance is
    ///   tripled (a 20% base gate fails only below 40% of baseline);
    /// - `allocs_per_superstep` — heap allocations per superstep from
    ///   the counting allocator; a pure code-path property,
    ///   bit-reproducible across machines, gated at a quarter of the
    ///   base tolerance and in the *lower-is-better* direction;
    /// - `p99_latency_s` — 99th-percentile queue latency under deadline
    ///   admission (`ingress_throughput`); computed on the
    ///   deterministic virtual clock, so it is reproducible across
    ///   machines and gated tightly, *lower-is-better*;
    /// - `availability` — served fraction under deterministic fault
    ///   injection (`chaos_availability`); pure counts from the seeded
    ///   fault schedule, bit-reproducible, gated at a quarter of the
    ///   base tolerance — a drop means fault recovery got worse.
    /// - `supersteps_total` — total supersteps a sharded run spent
    ///   serving its fixed request set (`shard_throughput`); the
    ///   superstep-inflation guard for PC-affinity scheduling. Pure
    ///   counts from the deterministic cost model, bit-reproducible,
    ///   gated at a quarter of the base tolerance, *lower-is-better* —
    ///   a rise means batches got emptier as workers were added.
    /// - `wedge_free` — 1.0 iff the governed fleet finished its
    ///   adversarial request mix with no poisoned shard and no orphaned
    ///   request (`runaway_containment`). Scale 0 makes the gate
    ///   absolute: against a baseline of 1.0 *any* drop fails,
    ///   whatever the base tolerance — a wedged fleet is never a
    ///   matter of degree.
    /// - `contained_within_budget_frac` — fraction of runaway requests
    ///   evicted within the `max_supersteps + 1` containment contract
    ///   (`runaway_containment`); pure counts from the seeded fault
    ///   schedule, bit-reproducible, gated at a quarter of the base
    ///   tolerance — a drop means eviction is firing late.
    ///
    /// A row is gated on every metric it carries; rows carrying none
    /// fail (the gate would otherwise silently stop guarding them).
    pub const METRICS: &[(&str, Direction, f64)] = &[
        (METRIC, Direction::HigherIsBetter, 1.0),
        ("supersteps_per_s", Direction::HigherIsBetter, 3.0),
        ("allocs_per_superstep", Direction::LowerIsBetter, 0.25),
        ("p99_latency_s", Direction::LowerIsBetter, 0.25),
        ("availability", Direction::HigherIsBetter, 0.25),
        ("supersteps_total", Direction::LowerIsBetter, 0.25),
        ("wedge_free", Direction::HigherIsBetter, 0.0),
        (
            "contained_within_budget_frac",
            Direction::HigherIsBetter,
            0.25,
        ),
    ];

    /// Marker field exempting a row from gating and from baseline
    /// coverage enforcement ([`check_coverage`]). For rows whose
    /// numbers are *not* deterministic — e.g. the wall-clock
    /// tcp-loopback row of `ingress_throughput` — where a committed
    /// baseline would gate machine noise. The field's value is
    /// conventionally a short reason string (`"wall-clock"`).
    pub const UNGATED_FIELD: &str = "ungated";

    /// Whether a row opted out of gating via [`UNGATED_FIELD`].
    pub fn is_ungated(row: &Row) -> bool {
        row.contains_key(UNGATED_FIELD)
    }

    /// Fields identifying a row across runs; rows are matched between
    /// baseline and fresh artifacts on every key field they carry.
    pub const KEY_FIELDS: &[&str] = &["workload", "mode", "workers", "requests", "batch"];

    /// Parse a flat `BENCH_*.json` artifact: a JSON array of objects
    /// whose values are double-quoted strings (escapes `\\` and `\"`)
    /// or numbers.
    ///
    /// # Errors
    ///
    /// Returns a positioned message on any malformed input.
    pub fn parse_flat_json(text: &str) -> Result<Vec<Row>, String> {
        let mut p = Parser {
            chars: text.char_indices().peekable(),
            text,
        };
        p.skip_ws();
        p.expect('[')?;
        let mut rows = Vec::new();
        p.skip_ws();
        if p.eat(']') {
            return p.finish(rows);
        }
        loop {
            rows.push(p.parse_object()?);
            p.skip_ws();
            if p.eat(',') {
                p.skip_ws();
                continue;
            }
            p.expect(']')?;
            return p.finish(rows);
        }
    }

    struct Parser<'t> {
        chars: std::iter::Peekable<std::str::CharIndices<'t>>,
        text: &'t str,
    }

    impl Parser<'_> {
        fn pos(&mut self) -> usize {
            self.chars.peek().map_or(self.text.len(), |&(i, _)| i)
        }

        fn skip_ws(&mut self) {
            while matches!(self.chars.peek(), Some(&(_, c)) if c.is_whitespace()) {
                self.chars.next();
            }
        }

        fn eat(&mut self, want: char) -> bool {
            if matches!(self.chars.peek(), Some(&(_, c)) if c == want) {
                self.chars.next();
                true
            } else {
                false
            }
        }

        fn expect(&mut self, want: char) -> Result<(), String> {
            let at = self.pos();
            if self.eat(want) {
                Ok(())
            } else {
                Err(format!("expected '{want}' at byte {at}"))
            }
        }

        fn finish(&mut self, rows: Vec<Row>) -> Result<Vec<Row>, String> {
            self.skip_ws();
            match self.chars.peek() {
                None => Ok(rows),
                Some(&(i, c)) => Err(format!("trailing '{c}' at byte {i}")),
            }
        }

        fn parse_object(&mut self) -> Result<Row, String> {
            self.skip_ws();
            self.expect('{')?;
            let mut row = Row::new();
            self.skip_ws();
            if self.eat('}') {
                return Ok(row);
            }
            loop {
                self.skip_ws();
                let key = self.parse_string()?;
                self.skip_ws();
                self.expect(':')?;
                self.skip_ws();
                let value = self.parse_value()?;
                row.insert(key, value);
                self.skip_ws();
                if self.eat(',') {
                    continue;
                }
                self.expect('}')?;
                return Ok(row);
            }
        }

        fn parse_value(&mut self) -> Result<JsonValue, String> {
            match self.chars.peek() {
                Some(&(_, '"')) => Ok(JsonValue::Str(self.parse_string()?)),
                Some(&(_, c)) if c == '-' || c == '+' || c.is_ascii_digit() => {
                    let start = self.pos();
                    while matches!(
                        self.chars.peek(),
                        Some(&(_, c)) if c == '-' || c == '+' || c == '.'
                            || c == 'e' || c == 'E' || c.is_ascii_digit()
                    ) {
                        self.chars.next();
                    }
                    let end = self.pos();
                    self.text[start..end]
                        .parse::<f64>()
                        .map(JsonValue::Num)
                        .map_err(|e| format!("bad number at byte {start}: {e}"))
                }
                Some(&(i, c)) => Err(format!("unexpected '{c}' at byte {i}")),
                None => Err("unexpected end of input".into()),
            }
        }

        fn parse_string(&mut self) -> Result<String, String> {
            self.expect('"')?;
            let mut s = String::new();
            loop {
                match self.chars.next() {
                    Some((_, '"')) => return Ok(s),
                    Some((i, '\\')) => match self.chars.next() {
                        Some((_, '"')) => s.push('"'),
                        Some((_, '\\')) => s.push('\\'),
                        other => return Err(format!("unsupported escape at byte {i}: {other:?}")),
                    },
                    Some((_, c)) => s.push(c),
                    None => return Err("unterminated string".into()),
                }
            }
        }
    }

    /// The identity of a row: every [`KEY_FIELDS`] entry it carries,
    /// rendered `field=value` and joined. Rows from baseline and fresh
    /// artifacts match when their keys are equal.
    pub fn row_key(row: &Row) -> String {
        KEY_FIELDS
            .iter()
            .filter_map(|&f| row.get(f).map(|v| format!("{f}={}", v.display())))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Compare `fresh` against `baseline` row by row. A failure is
    /// reported when a baseline row is missing from the fresh run
    /// (coverage loss), or when any [`METRICS`] entry the baseline row
    /// carries regressed beyond its direction-aware, scaled tolerance
    /// (e.g. base `0.2` = `requests_per_s` fails below 80% of
    /// baseline, `allocs_per_superstep` fails above 105%). Rows marked
    /// [`UNGATED_FIELD`] are skipped. Rows only present in the fresh
    /// run pass here — [`check_coverage`] is the other direction.
    /// Returns human-readable failure lines; empty means the gate holds.
    pub fn check_regression(baseline: &[Row], fresh: &[Row], tolerance: f64) -> Vec<String> {
        let fresh_by_key: BTreeMap<String, &Row> = fresh.iter().map(|r| (row_key(r), r)).collect();
        let mut failures = Vec::new();
        for base in baseline {
            if is_ungated(base) {
                continue;
            }
            let key = row_key(base);
            let Some(new) = fresh_by_key.get(&key) else {
                failures.push(format!("[{key}] missing from the fresh run"));
                continue;
            };
            let mut gated = 0;
            for &(metric, direction, scale) in METRICS {
                let Some(base_metric) = base.get(metric).and_then(JsonValue::as_num) else {
                    continue;
                };
                gated += 1;
                let Some(new_metric) = new.get(metric).and_then(JsonValue::as_num) else {
                    failures.push(format!("[{key}] fresh row lacks numeric {metric}"));
                    continue;
                };
                let tol = (tolerance * scale).clamp(0.0, 0.95);
                // A zero baseline has no relative band: `baseline ×
                // (1 ± tol)` collapses to 0, so any nonzero fresh value
                // fails lower-is-better metrics no matter the tolerance
                // while higher-is-better metrics are never gated at
                // all, and a percent-of-baseline report would divide by
                // zero. Gate such rows on absolute slack in the
                // metric's own units instead.
                if base_metric == 0.0 {
                    let regressed = match direction {
                        Direction::HigherIsBetter => new_metric < -tol,
                        Direction::LowerIsBetter => new_metric > tol,
                    };
                    if regressed {
                        failures.push(format!(
                            "[{key}] {metric} regressed: {new_metric:.6} against a zero \
                             baseline (absolute slack {tol:.6})"
                        ));
                    }
                    continue;
                }
                match direction {
                    Direction::HigherIsBetter => {
                        let floor = base_metric * (1.0 - tol);
                        if new_metric < floor {
                            failures.push(format!(
                                "[{key}] {metric} regressed: {new_metric:.6} < {floor:.6} \
                                 (baseline {base_metric:.6}, tolerance {:.0}%)",
                                tol * 100.0
                            ));
                        }
                    }
                    Direction::LowerIsBetter => {
                        let ceiling = base_metric * (1.0 + tol);
                        if new_metric > ceiling {
                            failures.push(format!(
                                "[{key}] {metric} regressed: {new_metric:.6} > {ceiling:.6} \
                                 (baseline {base_metric:.6}, tolerance {:.0}%)",
                                tol * 100.0
                            ));
                        }
                    }
                }
            }
            if gated == 0 {
                failures.push(format!("[{key}] baseline row lacks numeric {METRIC}"));
            }
        }
        failures
    }

    /// The inverse direction of [`check_regression`]: every fresh row
    /// and every gated metric it carries must have a baseline
    /// counterpart, or the gate is silently not guarding the new
    /// numbers. Fails when a fresh row's key is absent from the
    /// baseline, and when a fresh row carries a numeric [`METRICS`]
    /// entry its baseline counterpart lacks — either way the fix is
    /// committing a refreshed baseline. Rows marked [`UNGATED_FIELD`]
    /// are exempt (deliberately baseline-free, e.g. wall-clock rows).
    /// Returns human-readable failure lines; empty means coverage is
    /// complete.
    pub fn check_coverage(baseline: &[Row], fresh: &[Row]) -> Vec<String> {
        let base_by_key: BTreeMap<String, &Row> =
            baseline.iter().map(|r| (row_key(r), r)).collect();
        let mut failures = Vec::new();
        for row in fresh {
            if is_ungated(row) {
                continue;
            }
            let key = row_key(row);
            let Some(base) = base_by_key.get(&key) else {
                failures.push(format!(
                    "[{key}] fresh row has no baseline counterpart — commit a refreshed baseline \
                     (or mark the row \"{UNGATED_FIELD}\")"
                ));
                continue;
            };
            for &(metric, _, _) in METRICS {
                if row.get(metric).and_then(JsonValue::as_num).is_some()
                    && base.get(metric).and_then(JsonValue::as_num).is_none()
                {
                    failures.push(format!(
                        "[{key}] fresh {metric} has no baseline counterpart — commit a refreshed \
                         baseline"
                    ));
                }
            }
        }
        failures
    }
}
