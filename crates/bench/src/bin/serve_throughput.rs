//! Serving throughput — dynamic batch admission vs sequential fixed
//! batches, on the divergent workloads of
//! `examples/batch_divergent_workload.rs`.
//!
//! Three execution modes over the same request stream:
//!
//! - **join-at-entry** — the `autobatch-serve` server admits pending
//!   requests into the in-flight batch whenever a lane frees up;
//! - **drain+refill** — the same server, but admission waits for the
//!   machine to empty (sequential fixed batches through the serving
//!   stack);
//! - **one-shot batches** — a fixed-size batch loop with no serving
//!   layer at all: plain `PcVm::run` for binom, and one `PcMachine` per
//!   chunk for NUTS so every chain runs under the same RNG member key as
//!   in the served modes (trajectory lengths depend on the draws; all
//!   three rows must price identical trajectories).
//!
//! Workloads: recursive binomial coefficients `C(n, k)` whose recursion
//! tree depends on both inputs, and NUTS on Neal's funnel, whose
//! trajectory lengths vary wildly per chain. Both are priced on the
//! hybrid CPU backend. Expected shape: join-at-entry wins because
//! stragglers no longer serialize the queue — fresh requests share block
//! launches with members deep in recursion (the paper's pc batching at
//! work), so supersteps per request drop.
//!
//! Usage: `serve_throughput [requests] [batch]` (defaults 48, 8).
//! `--smoke` runs a tiny configuration for CI and still writes the
//! `results/BENCH_serve_throughput.json` artifact.

use std::sync::Arc;

use autobatch_accel::{Backend, Trace};
use autobatch_bench::{fmt_sig, json_str, print_table, write_csv, write_json};
use autobatch_core::{lower, ExecOptions, KernelRegistry, LoweringOptions, PcMachine, PcVm};
use autobatch_lang::compile;
use autobatch_models::NealsFunnel;
use autobatch_nuts::{BatchNuts, NutsConfig};
use autobatch_serve::{AdmissionPolicy, BatchServer, NutsServer, Request};
use autobatch_tensor::{CounterRng, Tensor};

const BINOM_SRC: &str = "
    // C(n, k) by Pascal's rule — doubly data-dependent recursion.
    fn binom(n: int, k: int) -> (out: int) {
        if k <= 0 {
            out = 1;
        } else if k >= n {
            out = 1;
        } else {
            let left = binom(n - 1, k - 1);
            let right = binom(n - 1, k);
            out = left + right;
        }
    }
";

struct ModeResult {
    mode: &'static str,
    supersteps: u64,
    launches: u64,
    sim_time: f64,
}

/// Divergent (n, k) request stream: every fourth request is a straggler
/// with a large recursion tree, the rest are shallow.
fn binom_stream(n_requests: usize) -> Vec<(i64, i64)> {
    (0..n_requests)
        .map(|i| {
            if i % 4 == 0 {
                (14 + (i % 3) as i64, 7)
            } else {
                (3 + (i % 5) as i64, 1 + (i % 2) as i64)
            }
        })
        .collect()
}

/// Run the three modes — two serving policies plus the one-shot
/// fixed-batch baseline — each against a fresh [`Trace`]. The workload
/// itself lives in the two closures.
fn run_modes(
    batch: usize,
    mut serve: impl FnMut(AdmissionPolicy, &mut Trace),
    mut one_shot: impl FnMut(&mut Trace),
) -> Vec<ModeResult> {
    let mut out = Vec::new();
    for (mode, policy) in [
        (
            "join-at-entry",
            Some(AdmissionPolicy::JoinAtEntry {
                max_batch: batch,
                min_utilization: 1.0,
            }),
        ),
        (
            "drain+refill",
            Some(AdmissionPolicy::DrainAndRefill { max_batch: batch }),
        ),
        ("one-shot batches", None),
    ] {
        let mut tr = Trace::new(Backend::hybrid_cpu());
        match policy {
            Some(policy) => serve(policy, &mut tr),
            None => one_shot(&mut tr),
        }
        out.push(ModeResult {
            mode,
            supersteps: tr.supersteps(),
            launches: tr.launches(),
            sim_time: tr.sim_time(),
        });
    }
    out
}

fn binom_modes(n_requests: usize, batch: usize) -> Vec<ModeResult> {
    let program = compile(BINOM_SRC, "binom").expect("binom compiles");
    let (pc, _) = lower(&program, LoweringOptions::default()).expect("binom lowers");
    let opts = ExecOptions::default();
    let stream = binom_stream(n_requests);
    run_modes(
        batch,
        |policy, tr| {
            let mut server =
                BatchServer::new(&pc, KernelRegistry::new(), opts, policy).expect("server");
            for (i, &(n, k)) in stream.iter().enumerate() {
                server
                    .submit(Request {
                        id: i as u64,
                        inputs: vec![
                            Tensor::from_i64(&[n], &[1]).expect("n"),
                            Tensor::from_i64(&[k], &[1]).expect("k"),
                        ],
                        seed: i as u64,
                    })
                    .expect("submit");
            }
            let done = server.run_until_idle(Some(tr)).expect("serve");
            assert_eq!(done.len(), stream.len());
        },
        |tr| {
            // binom draws no randomness, so the classic PcVm::run with
            // its identity lane keys prices the identical workload.
            let vm = PcVm::new(&pc, KernelRegistry::new(), opts);
            for chunk in stream.chunks(batch) {
                let ns: Vec<i64> = chunk.iter().map(|&(n, _)| n).collect();
                let ks: Vec<i64> = chunk.iter().map(|&(_, k)| k).collect();
                vm.run(
                    &[
                        Tensor::from_i64(&ns, &[ns.len()]).expect("ns"),
                        Tensor::from_i64(&ks, &[ks.len()]).expect("ks"),
                    ],
                    Some(tr),
                )
                .expect("batch runs");
            }
        },
    )
}

fn funnel_modes(n_requests: usize, batch: usize) -> Vec<ModeResult> {
    let dim = 5;
    let cfg = NutsConfig {
        step_size: 0.2,
        n_trajectories: 3,
        max_depth: 6,
        leapfrog_steps: 2,
        seed: 31,
    };
    let nuts = BatchNuts::new(Arc::new(NealsFunnel::new(dim)), cfg).expect("NUTS compiles");
    let rng = CounterRng::new(64);
    let q0: Vec<Tensor> = (0..n_requests)
        .map(|i| rng.normal_batch(&[i as i64], &[dim]).row(0).expect("row"))
        .collect();
    run_modes(
        batch,
        |policy, tr| {
            let mut server = NutsServer::new(&nuts, policy).expect("server");
            for (i, q) in q0.iter().enumerate() {
                server.submit(i as u64, q, i as u64).expect("submit");
            }
            let done = server.run_until_idle(Some(tr)).expect("serve");
            assert_eq!(done.len(), n_requests);
        },
        |tr| {
            // NUTS trajectories depend on the RNG member keys, so the
            // fixed-batch baseline must run each chain under the same key
            // the served modes use (its request index) — otherwise the
            // modes price different trajectories, not different
            // scheduling. One PcMachine per chunk, admitted up front and
            // run to empty, is exactly a one-shot batch with chosen keys.
            for (c, chunk) in q0.chunks(batch).enumerate() {
                let mut m =
                    PcMachine::new(nuts.lowered(), nuts.registry().clone(), nuts.exec_options());
                let inputs: Vec<Vec<Tensor>> = chunk
                    .iter()
                    .map(|q| nuts.request_inputs(q).expect("inputs"))
                    .collect();
                let reqs: Vec<(&[Tensor], u64)> = inputs
                    .iter()
                    .enumerate()
                    .map(|(j, ins)| (ins.as_slice(), (c * batch + j) as u64))
                    .collect();
                m.admit_batch(&reqs, Some(tr)).expect("admit");
                let done = m.run_to_completion(Some(tr)).expect("batch runs");
                assert_eq!(done.len(), chunk.len());
            }
        },
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let pos: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let (n_requests, batch) = if smoke {
        (8, 4)
    } else {
        (
            pos.first().copied().unwrap_or(48),
            pos.get(1).copied().unwrap_or(8),
        )
    };

    let header = [
        "workload",
        "mode",
        "requests",
        "batch",
        "supersteps",
        "launches",
        "sim-time-s",
        "req-per-s",
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (workload, results) in [
        ("binom", binom_modes(n_requests, batch)),
        ("funnel-nuts", funnel_modes(n_requests, batch)),
    ] {
        for r in &results {
            let throughput = n_requests as f64 / r.sim_time;
            rows.push(vec![
                workload.to_string(),
                r.mode.to_string(),
                n_requests.to_string(),
                batch.to_string(),
                r.supersteps.to_string(),
                r.launches.to_string(),
                fmt_sig(r.sim_time),
                fmt_sig(throughput),
            ]);
            json.push(vec![
                ("workload", json_str(workload)),
                ("mode", json_str(r.mode)),
                ("requests", n_requests.to_string()),
                ("batch", batch.to_string()),
                ("supersteps", r.supersteps.to_string()),
                ("launches", r.launches.to_string()),
                ("sim_time_s", format!("{:.9}", r.sim_time)),
                ("requests_per_s", format!("{:.6}", throughput)),
            ]);
        }
        let dynamic = results
            .iter()
            .find(|r| r.mode == "join-at-entry")
            .expect("mode present");
        let sequential = results
            .iter()
            .find(|r| r.mode == "drain+refill")
            .expect("mode present");
        println!(
            "{workload}: dynamic admission {} vs sequential {} → speedup {:.2}×",
            fmt_sig(dynamic.sim_time),
            fmt_sig(sequential.sim_time),
            sequential.sim_time / dynamic.sim_time,
        );
    }
    print_table(
        "Serving throughput: dynamic admission vs fixed batches (hybrid-cpu)",
        &header,
        &rows,
    );
    write_csv("serve_throughput.csv", &header, &rows);
    write_json("BENCH_serve_throughput.json", &json);
}
