//! Ablation A1 — the paper §2's first "free choice": execute primitives
//! by *masking* (compute all lanes, ignore inactive results) or by
//! *gather/scatter* (compact the active lanes, compute, scatter back).
//!
//! Masking wastes compute at low utilization but moves no data;
//! gather/scatter computes only live lanes but pays random-access
//! traffic and produces dynamically shaped intermediates. We measure
//! both on recursive Fibonacci (cheap ops — gather traffic dominates)
//! and batched NUTS on the correlated Gaussian (expensive gradients —
//! wasted lanes dominate). Dispatch overheads are zeroed so the
//! device-side trade-off itself is visible (with eager dispatch both
//! strategies cost the same launches and the choice washes out).
//!
//! Usage: `ablation_masking [max_batch]` (default 256).

use std::sync::Arc;

use autobatch_accel::{Backend, Trace};

/// Eager semantics (per-primitive launches) with dispatch zeroed: pure
/// device-side compute + memory pricing.
fn device_only() -> Backend {
    Backend {
        launch_overhead: 0.0,
        superstep_overhead: 0.0,
        ..Backend::eager_cpu()
    }
}
use autobatch_bench::{fmt_sig, geometric_batches, print_table, write_csv};
use autobatch_core::{ExecOptions, ExecStrategy, KernelRegistry, LocalStaticVm};
use autobatch_ir::build::fibonacci_program;
use autobatch_models::{CorrelatedGaussian, PricedAs};
use autobatch_nuts::{BatchNuts, NutsConfig};
use autobatch_tensor::{CounterRng, Tensor};

fn main() {
    let max_batch: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);

    let fib = fibonacci_program();
    // Price the gradient at the paper's logistic-regression cost so the
    // compute-vs-traffic trade-off is at full scale.
    let model = Arc::new(PricedAs::as_paper_logistic(CorrelatedGaussian::new(
        50, 0.8,
    )));
    let nuts = BatchNuts::new(
        model,
        NutsConfig {
            step_size: 0.15,
            n_trajectories: 3,
            max_depth: 6,
            leapfrog_steps: 4,
            seed: 5,
        },
    )
    .expect("NUTS compiles");

    let header = [
        "batch",
        "fib-mask(s)",
        "fib-gather(s)",
        "nuts-mask(s)",
        "nuts-gather(s)",
    ];
    let mut rows = Vec::new();
    for z in geometric_batches(max_batch) {
        let fib_mask = run_fib(&fib, z, ExecStrategy::Masking);
        let fib_gather = run_fib(&fib, z, ExecStrategy::GatherScatter);
        let nuts_mask = run_nuts(&nuts, z, ExecStrategy::Masking);
        let nuts_gather = run_nuts(&nuts, z, ExecStrategy::GatherScatter);
        println!(
            "batch {z}: fib {fib_mask:.4}/{fib_gather:.4}s nuts {nuts_mask:.4}/{nuts_gather:.4}s"
        );
        rows.push(vec![
            z.to_string(),
            fmt_sig(fib_mask),
            fmt_sig(fib_gather),
            fmt_sig(nuts_mask),
            fmt_sig(nuts_gather),
        ]);
    }
    print_table(
        "Ablation A1: simulated device seconds, masking vs gather/scatter (CPU, dispatch zeroed)",
        &header,
        &rows,
    );
    write_csv("ablation_masking.csv", &header, &rows);
}

fn run_fib(p: &autobatch_ir::lsab::Program, z: usize, strategy: ExecStrategy) -> f64 {
    let rng = CounterRng::new(7);
    let ns: Vec<i64> = (0..z)
        .map(|b| 3 + (rng.uniform(b as u64, 0) * 12.0) as i64)
        .collect();
    let input = Tensor::from_i64(&ns, &[z]).expect("input shape");
    let opts = ExecOptions {
        strategy,
        ..ExecOptions::default()
    };
    let vm = LocalStaticVm::new(p, KernelRegistry::new(), opts);
    let mut tr = Trace::new(device_only());
    vm.run(&[input], Some(&mut tr)).expect("fib runs");
    tr.sim_time()
}

fn run_nuts(nuts: &BatchNuts, z: usize, strategy: ExecStrategy) -> f64 {
    let rng = CounterRng::new(11);
    let q0 = rng.normal_batch(&(0..z as i64).collect::<Vec<_>>(), &[50]);
    let opts = ExecOptions {
        strategy,
        ..nuts.exec_options()
    };
    let mut tr = Trace::new(device_only());
    nuts.run_local_opts(&q0, Some(&mut tr), opts)
        .expect("nuts runs");
    tr.sim_time()
}
