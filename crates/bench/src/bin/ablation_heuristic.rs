//! Ablation A2 — the paper §2's second "free choice": which runnable
//! block the runtime executes next. The paper's default is the earliest
//! block in program order ("surprisingly effective, predictable"); the
//! alternative greedy heuristic runs the block with the most waiting
//! members. We compare supersteps, gradient-lane utilization, and
//! simulated time on batched NUTS under the program-counter runtime,
//! where divergent members give the scheduler real choices.
//!
//! Usage: `ablation_heuristic [max_batch]` (default 256).

use std::sync::Arc;

use autobatch_accel::{Backend, Trace};
use autobatch_bench::{fmt_sig, geometric_batches, print_table, write_csv};
use autobatch_core::BlockHeuristic;
use autobatch_models::CorrelatedGaussian;
use autobatch_nuts::{BatchNuts, NutsConfig};
use autobatch_tensor::CounterRng;

fn main() {
    let max_batch: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);

    let model = Arc::new(CorrelatedGaussian::new(50, 0.8));
    let nuts = BatchNuts::new(
        model,
        NutsConfig {
            step_size: 0.15,
            n_trajectories: 4,
            max_depth: 6,
            leapfrog_steps: 4,
            seed: 23,
        },
    )
    .expect("NUTS compiles");

    let header = [
        "batch",
        "earliest-steps",
        "most-active-steps",
        "earliest-util",
        "most-active-util",
        "earliest-time",
        "most-active-time",
    ];
    let mut rows = Vec::new();
    for z in geometric_batches(max_batch) {
        let (s1, u1, t1) = run(&nuts, z, BlockHeuristic::EarliestBlock);
        let (s2, u2, t2) = run(&nuts, z, BlockHeuristic::MostActive);
        println!(
            "batch {z}: earliest {s1} steps (util {u1:.3}), most-active {s2} steps (util {u2:.3})"
        );
        rows.push(vec![
            z.to_string(),
            s1.to_string(),
            s2.to_string(),
            fmt_sig(u1),
            fmt_sig(u2),
            fmt_sig(t1),
            fmt_sig(t2),
        ]);
    }
    print_table(
        "Ablation A2: block-selection heuristic (program-counter runtime, XLA CPU)",
        &header,
        &rows,
    );
    write_csv("ablation_heuristic.csv", &header, &rows);
}

fn run(nuts: &BatchNuts, z: usize, heuristic: BlockHeuristic) -> (u64, f64, f64) {
    let rng = CounterRng::new(31);
    let q0 = rng.normal_batch(&(0..z as i64).collect::<Vec<_>>(), &[50]);
    let opts = autobatch_core::ExecOptions {
        heuristic,
        ..nuts.exec_options()
    };
    let mut tr = Trace::new(Backend::xla_cpu());
    nuts.run_pc_opts(&q0, Some(&mut tr), opts)
        .expect("nuts runs");
    (tr.supersteps(), tr.utilization("grad"), tr.sim_time())
}
