//! Sharded serving throughput — the multi-worker `ShardedServer` vs a
//! single worker, on the divergent workloads of
//! `examples/batch_divergent_workload.rs`.
//!
//! For each workload the same request stream is served at 1, 2, and 4
//! workers (each worker a `BatchServer` + `PcMachine` of its own, batch
//! width `batch` per shard, join-at-entry admission). Time is the
//! fleet wall-clock from the aggregated [`Trace`]: shards run
//! concurrently on their own host threads, so the aggregate `sim_time`
//! is the *slowest shard*, not the sum — exactly what
//! `Trace::merge_parallel` computes. The cost model is deterministic,
//! so every row is bit-reproducible and safe to gate CI on.
//!
//! Workloads:
//!
//! - **divergent-binom** — recursive binomial coefficients `C(n, k)`
//!   with per-request (n, k) spread over coprime strides, so every
//!   shard sees a representative mix of shallow and deep recursions;
//! - **funnel-nuts** — NUTS chains on Neal's funnel, whose trajectory
//!   lengths vary wildly per chain.
//!
//! Usage: `shard_throughput [requests] [batch]` (defaults 48, 8).
//! `--smoke` runs a tiny configuration for CI and still writes the
//! `results/BENCH_shard_throughput.json` artifact the regression gate
//! compares against `results/baselines/`.

use std::sync::Arc;

use autobatch_accel::{Backend, Trace};
use autobatch_bench::{fmt_sig, json_str, print_table, write_csv, write_json};
use autobatch_core::{lower, ExecOptions, KernelRegistry, LoweringOptions};
use autobatch_ir::pcab::Program;
use autobatch_lang::compile;
use autobatch_models::NealsFunnel;
use autobatch_nuts::{BatchNuts, NutsConfig};
use autobatch_serve::{AdmissionPolicy, AffinityConfig, Request, SchedulingPolicy, ShardedServer};
use autobatch_tensor::{CounterRng, Tensor};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

const BINOM_SRC: &str = "
    // C(n, k) by Pascal's rule — doubly data-dependent recursion.
    fn binom(n: int, k: int) -> (out: int) {
        if k <= 0 {
            out = 1;
        } else if k >= n {
            out = 1;
        } else {
            let left = binom(n - 1, k - 1);
            let right = binom(n - 1, k);
            out = left + right;
        }
    }
";

/// Divergent (n, k) stream with costs spread over strides 7 and 5 —
/// coprime to every worker count in the sweep, so least-loaded
/// round-robin routing gives each shard a representative mix instead of
/// aligning all stragglers onto one shard.
fn binom_stream(n_requests: usize) -> Vec<(i64, i64)> {
    (0..n_requests)
        .map(|i| {
            let n = 10 + (i * 5 % 7) as i64; // 10..=16
            let k = 2 + (i * 3 % 5) as i64; // 2..=6
            (n, k)
        })
        .collect()
}

struct ShardResult {
    workers: usize,
    supersteps: u64,
    launches: u64,
    /// Fleet wall-clock: the slowest shard's simulated time.
    sim_time: f64,
}

/// Serve `requests` through a `ShardedServer` at each worker count.
fn sweep_workers(
    program: &Program,
    registry: &KernelRegistry,
    opts: ExecOptions,
    batch: usize,
    requests: &[Request],
) -> Vec<ShardResult> {
    WORKER_COUNTS
        .iter()
        .map(|&workers| {
            let policy = AdmissionPolicy::JoinAtEntry {
                max_batch: batch,
                min_utilization: 1.0,
            };
            let mut server = ShardedServer::new(
                program,
                registry.clone(),
                opts,
                policy,
                workers,
                Backend::hybrid_cpu(),
            )
            .expect("server");
            // PC-affinity scheduling: pack shards to capacity, migrate
            // stragglers, steal for idle shards. This is what keeps
            // `supersteps_total` flat as workers are added — the gated
            // guard against superstep inflation from underfilled,
            // pc-mixed batches.
            server.set_scheduling(SchedulingPolicy::PcAffinity(AffinityConfig::default()));
            for r in requests {
                server.submit(r.clone()).expect("submit");
            }
            let done = server.run_until_idle().expect("serve");
            assert_eq!(done.len(), requests.len());
            if std::env::var("SHARD_DEBUG").is_ok() {
                for i in 0..workers {
                    let t = server.shard_trace(i);
                    eprintln!(
                        "  debug w{workers} shard {i}: supersteps {} sim {:.1}s mig {}/{}",
                        t.supersteps(),
                        t.sim_time(),
                        t.members_migrated_in(),
                        t.members_migrated_out()
                    );
                }
            }
            let agg: Trace = server.aggregated_trace();
            ShardResult {
                workers,
                supersteps: agg.supersteps(),
                launches: agg.launches(),
                sim_time: agg.sim_time(),
            }
        })
        .collect()
}

fn binom_requests(n_requests: usize) -> Vec<Request> {
    binom_stream(n_requests)
        .iter()
        .enumerate()
        .map(|(i, &(n, k))| Request {
            id: i as u64,
            inputs: vec![
                Tensor::from_i64(&[n], &[1]).expect("n"),
                Tensor::from_i64(&[k], &[1]).expect("k"),
            ],
            seed: i as u64,
        })
        .collect()
}

fn funnel_requests(nuts: &BatchNuts, n_requests: usize) -> Vec<Request> {
    let rng = CounterRng::new(64);
    (0..n_requests)
        .map(|i| {
            let q = rng
                .normal_batch(&[i as i64], &[nuts.dim()])
                .row(0)
                .expect("row");
            Request {
                id: i as u64,
                inputs: nuts.request_inputs(&q).expect("inputs"),
                seed: i as u64,
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let pos: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let (n_requests, batch) = if smoke {
        (12, 4)
    } else {
        (
            pos.first().copied().unwrap_or(48),
            pos.get(1).copied().unwrap_or(8),
        )
    };

    let binom_program = compile(BINOM_SRC, "binom").expect("binom compiles");
    let (binom_pc, _) = lower(&binom_program, LoweringOptions::default()).expect("binom lowers");
    let binom_results = sweep_workers(
        &binom_pc,
        &KernelRegistry::new(),
        ExecOptions::default(),
        batch,
        &binom_requests(n_requests),
    );

    if std::env::var("SHARD_SWEEP").is_ok() {
        // Tuning loop: binom only, skip the NUTS workload and artifacts.
        return;
    }
    let cfg = NutsConfig {
        step_size: 0.2,
        n_trajectories: 3,
        max_depth: 6,
        leapfrog_steps: 2,
        seed: 31,
    };
    let nuts = BatchNuts::new(Arc::new(NealsFunnel::new(5)), cfg).expect("NUTS compiles");
    let funnel_results = sweep_workers(
        nuts.lowered(),
        nuts.registry(),
        nuts.exec_options(),
        batch,
        &funnel_requests(&nuts, n_requests),
    );

    let header = [
        "workload",
        "workers",
        "requests",
        "batch",
        "supersteps",
        "launches",
        "sim-time-s",
        "req-per-s",
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (workload, results) in [
        ("divergent-binom", binom_results),
        ("funnel-nuts", funnel_results),
    ] {
        for r in &results {
            let throughput = n_requests as f64 / r.sim_time;
            rows.push(vec![
                workload.to_string(),
                r.workers.to_string(),
                n_requests.to_string(),
                batch.to_string(),
                r.supersteps.to_string(),
                r.launches.to_string(),
                fmt_sig(r.sim_time),
                fmt_sig(throughput),
            ]);
            json.push(vec![
                ("workload", json_str(workload)),
                ("workers", r.workers.to_string()),
                ("requests", n_requests.to_string()),
                ("batch", batch.to_string()),
                // Gated lower-is-better: total supersteps must not
                // inflate as workers are added (see the gate's METRICS).
                ("supersteps_total", r.supersteps.to_string()),
                ("launches", r.launches.to_string()),
                ("sim_time_s", format!("{:.9}", r.sim_time)),
                ("requests_per_s", format!("{:.6}", throughput)),
            ]);
        }
        let one = &results[0];
        let four = results.last().expect("sweep is non-empty");
        println!(
            "{workload}: 1 worker {} vs {} workers {} → speedup {:.2}×",
            fmt_sig(one.sim_time),
            four.workers,
            fmt_sig(four.sim_time),
            one.sim_time / four.sim_time,
        );
    }
    print_table(
        "Sharded serving throughput: workers vs fleet wall-clock (hybrid-cpu)",
        &header,
        &rows,
    );
    write_csv("shard_throughput.csv", &header, &rows);
    write_json("BENCH_shard_throughput.json", &json);
}
