//! Ingress latency/throughput — deadline-driven admission under light
//! and full load, plus a real TCP loopback pass.
//!
//! Three rows over the divergent binomial request stream of
//! `serve_throughput`:
//!
//! - **light-load** (deterministic, baseline-gated) — arrivals spaced
//!   far apart on the virtual clock, so batches can never fill and only
//!   the deadline admits. This is the latency-SLO regime: p99 queue
//!   latency must stay within `max_wait` + one superstep, and the run
//!   asserts exactly that bound before writing the artifact.
//! - **full-load** (deterministic, baseline-gated) — every request
//!   arrives at tick 0, so batches fill instantly and the deadline
//!   never fires; this row carries the throughput number the gate
//!   guards, plus the (service-dominated) queue-latency tail.
//! - **tcp-loopback** (machine-dependent, *not* in the baseline) — the
//!   same stream pipelined through a real [`IngressServer`] on
//!   127.0.0.1, reporting wall-clock throughput and the ingress-stamped
//!   real (nanosecond) queue waits.
//!
//! The virtual clock advances one tick per superstep; ticks convert to
//! seconds at the hybrid-cpu backend's `superstep_overhead`, which
//! makes every simulated number bit-reproducible across machines. The
//! TCP row's clock is real nanoseconds.
//!
//! Usage: `ingress_throughput [requests]` (default 48). `--smoke` runs
//! a small configuration for CI and still writes the
//! `results/BENCH_ingress_throughput.json` artifact.

use std::time::{Duration, Instant};

use autobatch_accel::Backend;
use autobatch_bench::{fmt_sig, json_str, print_table, write_csv, write_json};
use autobatch_core::{lower, ExecOptions, KernelRegistry, LoweringOptions};
use autobatch_ingress::{IngressClient, IngressConfig, IngressServer};
use autobatch_ir::pcab::Program;
use autobatch_lang::compile;
use autobatch_serve::{AdmissionPolicy, BatchServer, Request};
use autobatch_tensor::Tensor;

const BINOM_SRC: &str = "
    // C(n, k) by Pascal's rule — doubly data-dependent recursion.
    fn binom(n: int, k: int) -> (out: int) {
        if k <= 0 {
            out = 1;
        } else if k >= n {
            out = 1;
        } else {
            let left = binom(n - 1, k - 1);
            let right = binom(n - 1, k);
            out = left + right;
        }
    }
";

/// The deadline SLO for the simulated rows, in ticks (= supersteps).
const MAX_WAIT_TICKS: u64 = 300;

/// One virtual tick is one superstep; seconds follow from the backend's
/// host-control cost, keeping the simulated rows machine-independent.
fn tick_seconds() -> f64 {
    Backend::hybrid_cpu().superstep_overhead
}

/// Divergent (n, k) request stream: every fourth request is a straggler
/// with a large recursion tree, the rest are shallow (the
/// `serve_throughput` stream, for comparability).
fn binom_stream(n_requests: usize) -> Vec<(i64, i64)> {
    (0..n_requests)
        .map(|i| {
            if i % 4 == 0 {
                (14 + (i % 3) as i64, 7)
            } else {
                (3 + (i % 5) as i64, 1 + (i % 2) as i64)
            }
        })
        .collect()
}

fn binom_request(id: u64, n: i64, k: i64) -> Request {
    Request {
        id,
        inputs: vec![
            Tensor::from_i64(&[n], &[1]).expect("n"),
            Tensor::from_i64(&[k], &[1]).expect("k"),
        ],
        seed: id,
    }
}

struct RowOut {
    mode: &'static str,
    workers: usize,
    requests: usize,
    batch: usize,
    supersteps: Option<u64>,
    requests_per_s: f64,
    p50_latency_s: f64,
    p99_latency_s: f64,
    peak_queue_depth: usize,
}

/// Nearest-rank percentile of an already-sorted sample.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct SimOutcome {
    queued_ticks: Vec<u64>,
    final_tick: u64,
    supersteps: u64,
    peak_queue: usize,
}

/// Event-driven simulation of a deadline-admission server: arrivals land
/// at scheduled ticks, each superstep advances the clock one tick, and
/// idle periods jump straight to the next arrival or head-of-line
/// deadline (mirroring `run_until_idle`'s fast-forward, but under an
/// external arrival process).
fn simulate(program: &Program, max_batch: usize, arrivals: &[(u64, Request)]) -> SimOutcome {
    let policy = AdmissionPolicy::Deadline {
        max_batch,
        max_wait: MAX_WAIT_TICKS,
    };
    let mut server = BatchServer::new(
        program,
        KernelRegistry::new(),
        ExecOptions::default(),
        policy,
    )
    .expect("server");
    let mut responses = Vec::new();
    let mut now: u64 = 0;
    let mut next_arrival = 0usize;
    loop {
        while next_arrival < arrivals.len() && arrivals[next_arrival].0 <= now {
            let (at, request) = &arrivals[next_arrival];
            server.set_clock(*at);
            server.submit(request.clone()).expect("submit");
            next_arrival += 1;
        }
        server.set_clock(now);
        if server.poll(None).expect("poll") {
            now += 1;
            continue;
        }
        // Idle: nothing runnable at `now`. Jump to the next actionable
        // instant — an arrival or the oldest queued request's deadline.
        responses.extend(server.take_ready());
        let deadline = (server.pending() > 0)
            .then(|| server.next_deadline())
            .flatten();
        let upcoming = arrivals.get(next_arrival).map(|&(at, _)| at);
        match [deadline, upcoming].into_iter().flatten().min() {
            Some(t) => now = now.max(t),
            None => break,
        }
    }
    responses.extend(server.take_ready());
    assert_eq!(responses.len(), arrivals.len(), "all requests served");
    let mut queued_ticks: Vec<u64> = responses.iter().map(|r| r.queued_ticks).collect();
    queued_ticks.sort_unstable();
    SimOutcome {
        queued_ticks,
        final_tick: now,
        supersteps: server.supersteps(),
        peak_queue: server.peak_pending(),
    }
}

fn simulated_row(
    mode: &'static str,
    program: &Program,
    max_batch: usize,
    arrivals: Vec<(u64, Request)>,
) -> RowOut {
    let n = arrivals.len();
    let out = simulate(program, max_batch, &arrivals);
    let secs = out.final_tick as f64 * tick_seconds();
    RowOut {
        mode,
        workers: 1,
        requests: n,
        batch: max_batch,
        supersteps: Some(out.supersteps),
        requests_per_s: n as f64 / secs,
        p50_latency_s: percentile(&out.queued_ticks, 0.50) as f64 * tick_seconds(),
        p99_latency_s: percentile(&out.queued_ticks, 0.99) as f64 * tick_seconds(),
        peak_queue_depth: out.peak_queue,
    }
}

/// The same stream through a real TCP server on loopback: wall-clock
/// throughput and the ingress-stamped (nanosecond) queue waits.
fn tcp_row(program: Program, n_requests: usize) -> RowOut {
    let workers = 2;
    let batch = 4;
    let handle = IngressServer::start(
        program,
        IngressConfig {
            workers,
            max_batch: batch,
            max_wait: Duration::from_millis(2),
            ..IngressConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("ingress server");
    let mut client = IngressClient::connect(handle.addr()).expect("connect");
    let t0 = Instant::now();
    for (i, &(n, k)) in binom_stream(n_requests).iter().enumerate() {
        client
            .send(
                i as u64,
                i as u64,
                &[
                    Tensor::from_i64(&[n], &[1]).expect("n"),
                    Tensor::from_i64(&[k], &[1]).expect("k"),
                ],
            )
            .expect("send");
    }
    let mut queued_ns: Vec<u64> = (0..n_requests)
        .map(|_| client.recv().expect("recv").queued_ticks)
        .collect();
    let wall = t0.elapsed().as_secs_f64();
    drop(client);
    let stats = handle.shutdown();
    assert_eq!(stats.completed, n_requests as u64, "all requests served");
    queued_ns.sort_unstable();
    RowOut {
        mode: "tcp-loopback",
        workers,
        requests: n_requests,
        batch,
        supersteps: None,
        requests_per_s: n_requests as f64 / wall,
        p50_latency_s: percentile(&queued_ns, 0.50) as f64 / 1e9,
        p99_latency_s: percentile(&queued_ns, 0.99) as f64 / 1e9,
        peak_queue_depth: stats.peak_queue.max(stats.peak_buffered),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let pos: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let n_requests = if smoke {
        12
    } else {
        pos.first().copied().unwrap_or(48)
    };

    let program = compile(BINOM_SRC, "binom").expect("binom compiles");
    let (pc, _) = lower(&program, LoweringOptions::default()).expect("binom lowers");
    let stream = binom_stream(n_requests);

    // Light load: arrivals spaced wider than any shallow request's
    // service time against a batch the stream can never fill — only the
    // deadline can admit.
    let light: Vec<(u64, Request)> = stream
        .iter()
        .enumerate()
        .map(|(i, &(n, k))| (i as u64 * 2_000, binom_request(i as u64, n, k)))
        .collect();
    // Full load: everything at tick 0 against a smaller batch, so
    // admission is fill-driven and the queue drains at service rate.
    let full: Vec<(u64, Request)> = stream
        .iter()
        .enumerate()
        .map(|(i, &(n, k))| (0, binom_request(i as u64, n, k)))
        .collect();

    let rows_out = vec![
        simulated_row("light-load", &pc, 8, light),
        simulated_row("full-load", &pc, 4, full),
        tcp_row(pc.clone(), n_requests),
    ];

    // The acceptance bound this bench exists to guard: under light
    // load, deadline admission caps the p99 queue wait at the SLO plus
    // one superstep of admission granularity.
    let light_row = &rows_out[0];
    let bound = (MAX_WAIT_TICKS + 1) as f64 * tick_seconds();
    assert!(
        light_row.p99_latency_s <= bound,
        "light-load p99 queue latency {:.6}s exceeds max_wait + one superstep = {:.6}s",
        light_row.p99_latency_s,
        bound
    );
    println!(
        "light-load p99 queue latency {:.3}s ≤ SLO bound {:.3}s (max_wait {} ticks + 1 superstep)",
        light_row.p99_latency_s, bound, MAX_WAIT_TICKS
    );

    let header = [
        "workload",
        "mode",
        "workers",
        "requests",
        "batch",
        "supersteps",
        "req-per-s",
        "p50-latency-s",
        "p99-latency-s",
        "peak-queue",
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for r in &rows_out {
        rows.push(vec![
            "divergent-binom".to_string(),
            r.mode.to_string(),
            r.workers.to_string(),
            r.requests.to_string(),
            r.batch.to_string(),
            r.supersteps
                .map_or_else(|| "-".to_string(), |s| s.to_string()),
            fmt_sig(r.requests_per_s),
            fmt_sig(r.p50_latency_s),
            fmt_sig(r.p99_latency_s),
            r.peak_queue_depth.to_string(),
        ]);
        let mut row = vec![
            ("workload", json_str("divergent-binom")),
            ("mode", json_str(r.mode)),
            ("workers", r.workers.to_string()),
            ("requests", r.requests.to_string()),
            ("batch", r.batch.to_string()),
        ];
        if let Some(s) = r.supersteps {
            row.push(("supersteps", s.to_string()));
        }
        if r.mode == "tcp-loopback" {
            // Wall-clock numbers: exempt from gating and from baseline
            // coverage enforcement (machine-dependent, not the
            // deterministic virtual clock).
            row.push(("ungated", json_str("wall-clock")));
        }
        row.extend([
            ("requests_per_s", format!("{:.6}", r.requests_per_s)),
            ("p50_latency_s", format!("{:.6}", r.p50_latency_s)),
            ("p99_latency_s", format!("{:.6}", r.p99_latency_s)),
            ("peak_queue_depth", r.peak_queue_depth.to_string()),
        ]);
        json.push(row);
    }
    print_table(
        "Ingress: deadline admission latency/throughput (hybrid-cpu ticks; tcp row is wall-clock)",
        &header,
        &rows,
    );
    write_csv("ingress_throughput.csv", &header, &rows);
    write_json("BENCH_ingress_throughput.json", &json);
}
