//! Diagnostic: cost composition of one batched NUTS run under
//! zero-overhead pricing (per-kernel times, utilization, stack share).
//! Usage: `probe_costs [batch]`

use autobatch_accel::{Backend, DispatchMode, Trace};
use autobatch_models::{LogisticRegression, Model, PricedAs};
use autobatch_nuts::{BatchNuts, NutsConfig};
use autobatch_tensor::CounterRng;
use std::sync::Arc;

fn main() {
    let z: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(192);
    let model: Arc<dyn Model> = Arc::new(PricedAs::as_paper_logistic(
        LogisticRegression::synthetic(120, 64, 3),
    ));
    let cfg = NutsConfig {
        step_size: 0.05,
        n_trajectories: 2,
        max_depth: 5,
        leapfrog_steps: 4,
        seed: 19,
    };
    let nuts = BatchNuts::new(model.clone(), cfg).expect("builds");
    let d = model.dim();
    let q0 = CounterRng::new(55).normal_batch(&(0..z as i64).collect::<Vec<_>>(), &[d]);

    // PC with functional stacks, unfused + zero overheads so every kernel
    // is priced separately.
    let probe = Backend {
        mode: DispatchMode::Eager,
        functional_stack_updates: true,
        launch_overhead: 0.0,
        superstep_overhead: 0.0,
        ..Backend::xla_cpu()
    };
    let mut tr = Trace::new(probe);
    let mut opts = nuts.exec_options();
    opts.stack_depth = 64;
    nuts.run_pc_opts(&q0, Some(&mut tr), opts).expect("runs");
    println!(
        "--- pc (functional, zero-overhead) at Z={z}: total {:.4}s",
        tr.sim_time()
    );
    for (k, s) in tr.kernels() {
        if s.time > 0.005 * tr.sim_time() {
            println!(
                "  {k:>12}: {:.4}s ({:.1}%)  launches {}  util {:.3}",
                s.time,
                100.0 * s.time / tr.sim_time(),
                s.launches,
                s.utilization()
            );
        }
    }
    println!(
        "  grad util {:.4}  useful {}",
        tr.utilization("grad"),
        tr.useful_count("grad")
    );
    println!(
        "  rate {:.4e}",
        tr.useful_count("grad") as f64 / tr.sim_time()
    );

    // Hybrid equivalent: LSAB, in-place, zero overheads.
    let probe2 = Backend {
        mode: DispatchMode::Eager,
        functional_stack_updates: false,
        launch_overhead: 0.0,
        superstep_overhead: 0.0,
        ..Backend::hybrid_cpu()
    };
    let mut tr2 = Trace::new(probe2);
    nuts.run_local(&q0, Some(&mut tr2)).expect("runs");
    println!(
        "--- lsab (zero-overhead) at Z={z}: total {:.4}s",
        tr2.sim_time()
    );
    println!(
        "  grad util {:.4}  useful {}",
        tr2.utilization("grad"),
        tr2.useful_count("grad")
    );
    println!(
        "  rate {:.4e}",
        tr2.useful_count("grad") as f64 / tr2.sim_time()
    );
}
