//! Figure 5 — NUTS gradient throughput vs batch size on Bayesian
//! logistic regression, across the paper's execution configurations:
//!
//! - program-counter autobatching fully compiled (XLA pricing), CPU & GPU;
//! - local static autobatching in eager mode, CPU & GPU;
//! - the hybrid (eager control, compiled basic blocks), CPU & GPU;
//! - unbatched eager (one member at a time);
//! - the native scalar baseline (Stan's role).
//!
//! The interpreter really executes a scaled-down posterior (500 × 25
//! design matrix) while the cost model prices kernels at the paper's
//! 10,000 × 100 size — see EXPERIMENTS.md for the calibration notes.
//! Reported throughput is *useful* gradients per simulated second,
//! excluding synchronization waste, exactly as the paper counts.
//!
//! Usage: `fig5_throughput [max_batch]` (default 1024).

use std::sync::Arc;

use autobatch_accel::{Backend, Trace};
use autobatch_bench::{fmt_sig, geometric_batches, print_table, write_csv};
use autobatch_models::{LogisticRegression, Model, PricedAs};
use autobatch_nuts::{BatchNuts, NativeNuts, NutsConfig};
use autobatch_tensor::{CounterRng, Tensor};

#[derive(Clone, Copy, PartialEq)]
enum Vm {
    Pc,
    Lsab,
    Native,
    Unbatched,
}

struct Config {
    name: &'static str,
    vm: Vm,
    backend: Backend,
}

fn main() {
    let max_batch: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);

    // Scaled-down computation, paper-scale pricing.
    let model = Arc::new(PricedAs::as_paper_logistic(LogisticRegression::synthetic(
        500, 25, 17,
    )));
    let cfg = NutsConfig {
        step_size: 0.05,
        n_trajectories: 3,
        max_depth: 6,
        leapfrog_steps: 4,
        seed: 7,
    };
    let nuts = BatchNuts::new(model.clone(), cfg).expect("NUTS compiles");

    let configs = [
        Config {
            name: "pc-xla-gpu",
            vm: Vm::Pc,
            backend: Backend::xla_gpu(),
        },
        Config {
            name: "pc-xla-cpu",
            vm: Vm::Pc,
            backend: Backend::xla_cpu(),
        },
        Config {
            name: "hybrid-gpu",
            vm: Vm::Lsab,
            backend: Backend::hybrid_gpu(),
        },
        Config {
            name: "hybrid-cpu",
            vm: Vm::Lsab,
            backend: Backend::hybrid_cpu(),
        },
        Config {
            name: "lsab-eager-gpu",
            vm: Vm::Lsab,
            backend: Backend::eager_gpu(),
        },
        Config {
            name: "lsab-eager-cpu",
            vm: Vm::Lsab,
            backend: Backend::eager_cpu(),
        },
        Config {
            name: "eager-unbatched",
            vm: Vm::Unbatched,
            backend: Backend::eager_cpu(),
        },
        Config {
            name: "stan-native",
            vm: Vm::Native,
            backend: Backend::native_cpu(),
        },
    ];

    let batches = geometric_batches(max_batch);
    let header: Vec<&str> = std::iter::once("batch")
        .chain(configs.iter().map(|c| c.name))
        .collect();
    let mut rows: Vec<Vec<String>> = Vec::new();

    // Flat-throughput configs are measured once and reported at every Z.
    let unbatched_rate = measure_flat(&nuts, Vm::Unbatched, Backend::eager_cpu(), model.as_ref());
    let native_rate = measure_flat(&nuts, Vm::Native, Backend::native_cpu(), model.as_ref());

    for &z in &batches {
        // One run per execution *semantics*, re-priced per device.
        let pc_xla = measure_recorded(&nuts, Vm::Pc, Backend::xla_cpu(), z, model.dim());
        let hybrid = measure_recorded(&nuts, Vm::Lsab, Backend::hybrid_cpu(), z, model.dim());
        let eager = measure_recorded(&nuts, Vm::Lsab, Backend::eager_cpu(), z, model.dim());
        let rate = |tr: &Trace, b: Backend| {
            let priced = tr.replay_as(b);
            priced.useful_count("grad") as f64 / priced.sim_time()
        };
        let mut row = vec![z.to_string()];
        for c in &configs {
            let r = match (c.vm, c.backend.mode) {
                (Vm::Unbatched, _) => unbatched_rate,
                (Vm::Native, _) => native_rate,
                (Vm::Pc, _) => rate(&pc_xla, c.backend),
                (Vm::Lsab, autobatch_accel::DispatchMode::Hybrid) => rate(&hybrid, c.backend),
                (Vm::Lsab, _) => rate(&eager, c.backend),
            };
            row.push(fmt_sig(r));
        }
        println!("batch {z}: done ({} configs)", configs.len());
        rows.push(row);
    }
    print_table(
        "Figure 5: useful gradients per (simulated) second",
        &header,
        &rows,
    );
    write_csv("fig5_throughput.csv", &header, &rows);
}

fn initial_positions(z: usize, d: usize) -> Tensor {
    // Mildly dispersed starts so chains diverge in control flow.
    let rng = CounterRng::new(99);
    rng.normal_batch(&(0..z as i64).collect::<Vec<_>>(), &[d])
}

fn measure_recorded(nuts: &BatchNuts, vm: Vm, backend: Backend, z: usize, d: usize) -> Trace {
    let q0 = initial_positions(z, d);
    let mut trace = Trace::recording(backend);
    let mut opts = nuts.exec_options();
    // A fully compiled program must size its stacks for the worst case
    // (static shapes): charge the conservative allocation.
    opts.stack_depth = 64;
    let r = match vm {
        Vm::Pc => nuts.run_pc_opts(&q0, Some(&mut trace), opts),
        Vm::Lsab => nuts.run_local_opts(&q0, Some(&mut trace), opts),
        _ => unreachable!("flat configs measured separately"),
    };
    r.expect("NUTS batch runs");
    trace
}

fn measure_flat(nuts: &BatchNuts, vm: Vm, backend: Backend, model: &dyn Model) -> f64 {
    match vm {
        Vm::Unbatched => {
            // One chain at a time through the eager interpreter: constant
            // per-chain throughput, so one member suffices.
            let q0 = initial_positions(1, model.dim());
            let mut trace = Trace::new(backend);
            nuts.run_local_opts(&q0, Some(&mut trace), nuts.exec_options())
                .expect("single chain runs");
            trace.useful_count("grad") as f64 / trace.sim_time()
        }
        Vm::Native => {
            let q0 = initial_positions(4, model.dim());
            let native = NativeNuts::new(model, nuts.config());
            let mut trace = Trace::new(backend);
            let (_, stats) = native
                .run_chains(&q0, Some(&mut trace))
                .expect("native runs");
            stats.grads as f64 / trace.sim_time()
        }
        _ => unreachable!(),
    }
}
