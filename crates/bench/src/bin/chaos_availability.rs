//! Chaos availability — served fraction under deterministic fault
//! injection, across fault scenarios on the supervised shard fleet.
//!
//! Each scenario serves the same divergent-binom request stream through
//! a [`Supervisor`]-wrapped `ShardedServer` with a fixed-seed
//! [`FaultPlan`]: injected execution errors, admission failures, and
//! worker panics at increasing rates, up to a panic on *every* worker
//! round. Availability is the fraction of requests that reach
//! [`Outcome::Done`]; everything else must end in a typed failure —
//! the run asserts exactly one terminal outcome per request and that
//! every survivor is bit-identical to the fault-free reference.
//!
//! All metrics are counts from the deterministic fault schedule (no
//! wall clock), so every row is bit-reproducible and safe to gate CI
//! on: a drop in `availability` means recovery got worse, not that the
//! machine got slower.
//!
//! Usage: `chaos_availability [requests] [batch]` (defaults 32, 8).
//! `--smoke` runs a tiny configuration for CI and still writes the
//! `results/BENCH_chaos.json` artifact the regression gate compares
//! against `results/baselines/`.

use std::collections::HashMap;

use autobatch_accel::Backend;
use autobatch_bench::{json_str, print_table, write_json};
use autobatch_chaos::FaultPlan;
use autobatch_core::{lower, ExecOptions, KernelRegistry, LoweringOptions};
use autobatch_ir::pcab::Program;
use autobatch_lang::compile;
use autobatch_serve::{
    AdmissionPolicy, Outcome, Request, ShardedServer, Supervisor, SupervisorConfig,
};
use autobatch_tensor::{Tensor, TensorError};

const WORKERS: usize = 2;

const BINOM_SRC: &str = "
    // C(n, k) by Pascal's rule — doubly data-dependent recursion.
    fn binom(n: int, k: int) -> (out: int) {
        if k <= 0 {
            out = 1;
        } else if k >= n {
            out = 1;
        } else {
            let left = binom(n - 1, k - 1);
            let right = binom(n - 1, k);
            out = left + right;
        }
    }
";

/// The fault scenarios swept, from none to a panic on every worker
/// round. Rates are in the plan's parts-per-65536 scale.
fn scenarios() -> Vec<(&'static str, FaultPlan)> {
    let seed = 2025;
    vec![
        ("fault-free", FaultPlan::none()),
        (
            "exec-1in65536",
            FaultPlan {
                seed,
                exec_error: 1,
                ..FaultPlan::none()
            },
        ),
        (
            "admit-1in8",
            FaultPlan {
                seed,
                admit_error: FaultPlan::ALWAYS / 8,
                ..FaultPlan::none()
            },
        ),
        (
            "panic-1in2",
            FaultPlan {
                seed,
                worker_panic: FaultPlan::ALWAYS / 2,
                ..FaultPlan::none()
            },
        ),
        (
            "panic-always",
            FaultPlan {
                seed,
                worker_panic: FaultPlan::ALWAYS,
                ..FaultPlan::none()
            },
        ),
    ]
}

fn binom_requests(n_requests: usize) -> Result<Vec<Request>, TensorError> {
    (0..n_requests)
        .map(|i| {
            let n = 10 + (i * 5 % 7) as i64; // 10..=16
            let k = 2 + (i * 3 % 5) as i64; // 2..=6
            Ok(Request {
                id: i as u64,
                inputs: vec![Tensor::from_i64(&[n], &[1])?, Tensor::from_i64(&[k], &[1])?],
                seed: i as u64,
            })
        })
        .collect()
}

struct ScenarioResult {
    mode: &'static str,
    completed: u64,
    failed: u64,
    retries: u64,
    respawns: u64,
}

fn run_scenario(
    program: &Program,
    batch: usize,
    requests: &[Request],
    fault: FaultPlan,
    reference: &HashMap<u64, Vec<Tensor>>,
    mode: &'static str,
) -> ScenarioResult {
    let opts = ExecOptions {
        fault,
        ..ExecOptions::default()
    };
    let policy = AdmissionPolicy::JoinAtEntry {
        max_batch: batch,
        min_utilization: 1.0,
    };
    let fleet = ShardedServer::new(
        program,
        KernelRegistry::new(),
        opts,
        policy,
        WORKERS,
        Backend::hybrid_cpu(),
    )
    .expect("fleet");
    let mut sup = Supervisor::new(fleet, SupervisorConfig::default());
    let mut failed = 0u64;
    for r in requests {
        if sup.submit(r.clone()).is_err() {
            failed += 1;
        }
    }
    let outcomes = sup.run_until_quiescent();
    let mut completed = 0u64;
    for o in &outcomes {
        match o {
            Outcome::Done(r) => {
                assert_eq!(
                    &r.outputs, &reference[&r.id],
                    "{mode}: request {} drifted from the fault-free run",
                    r.id
                );
                completed += 1;
            }
            Outcome::Failed { .. } => failed += 1,
        }
    }
    assert_eq!(
        completed + failed,
        requests.len() as u64,
        "{mode}: every request must reach exactly one terminal outcome"
    );
    assert!(
        sup.inner().poisoned_shards().is_empty(),
        "{mode}: the fleet must end healthy"
    );
    ScenarioResult {
        mode,
        completed,
        failed,
        retries: sup.retries(),
        respawns: sup.respawns(),
    }
}

/// Injected worker panics unwind through the fleet's worker threads;
/// keep CI logs readable by silencing exactly those.
fn silence_injected_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.starts_with("injected fault") {
            prev(info);
        }
    }));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let pos: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let (n_requests, batch) = if smoke {
        (12, 4)
    } else {
        (
            pos.first().copied().unwrap_or(32),
            pos.get(1).copied().unwrap_or(8),
        )
    };
    silence_injected_panics();

    let binom_program = compile(BINOM_SRC, "binom").expect("binom compiles");
    let (binom_pc, _) = lower(&binom_program, LoweringOptions::default()).expect("binom lowers");
    let requests = binom_requests(n_requests).expect("requests");

    // The fault-free reference every survivor must match bit for bit.
    let clean = {
        let fleet = ShardedServer::new(
            &binom_pc,
            KernelRegistry::new(),
            ExecOptions::default(),
            AdmissionPolicy::JoinAtEntry {
                max_batch: batch,
                min_utilization: 1.0,
            },
            WORKERS,
            Backend::hybrid_cpu(),
        )
        .expect("fleet");
        let mut sup = Supervisor::new(fleet, SupervisorConfig::default());
        for r in &requests {
            sup.submit(r.clone()).expect("fault-free submit");
        }
        sup.run_until_quiescent()
            .into_iter()
            .map(|o| match o {
                Outcome::Done(r) => (r.id, r.outputs),
                Outcome::Failed { id, error } => panic!("fault-free run failed {id}: {error}"),
            })
            .collect::<HashMap<_, _>>()
    };

    let results: Vec<ScenarioResult> = scenarios()
        .into_iter()
        .map(|(mode, fault)| run_scenario(&binom_pc, batch, &requests, fault, &clean, mode))
        .collect();

    let header = [
        "workload",
        "mode",
        "workers",
        "requests",
        "batch",
        "completed",
        "failed",
        "retries",
        "respawns",
        "availability",
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for r in &results {
        let availability = r.completed as f64 / n_requests as f64;
        rows.push(vec![
            "divergent-binom".to_string(),
            r.mode.to_string(),
            WORKERS.to_string(),
            n_requests.to_string(),
            batch.to_string(),
            r.completed.to_string(),
            r.failed.to_string(),
            r.retries.to_string(),
            r.respawns.to_string(),
            format!("{availability:.4}"),
        ]);
        json.push(vec![
            ("workload", json_str("divergent-binom")),
            ("mode", json_str(r.mode)),
            ("workers", WORKERS.to_string()),
            ("requests", n_requests.to_string()),
            ("batch", batch.to_string()),
            ("completed", r.completed.to_string()),
            ("failed", r.failed.to_string()),
            ("retries", r.retries.to_string()),
            ("respawns", r.respawns.to_string()),
            ("availability", format!("{availability:.6}")),
        ]);
    }
    print_table(
        "Chaos availability: served fraction under injected faults (supervised fleet)",
        &header,
        &rows,
    );
    write_json("BENCH_chaos.json", &json);
}
