//! Runaway containment — wedge-freedom and budget containment under
//! adversarial traffic on the supervised shard fleet.
//!
//! Each scenario serves the same divergent-binom request stream through
//! a [`Supervisor`]-wrapped `ShardedServer` under a per-request
//! superstep budget, with a fixed-seed [`FaultPlan`] turning a known
//! subset of requests into genuinely non-terminating lanes
//! ([`FaultPoint::Runaway`]), optionally stacked with clamped worker
//! stalls and cooperative mid-run cancellations. The run asserts the
//! full governance contract — every doomed request is answered with
//! `BudgetExceeded` at exactly `max_supersteps + 1` charged supersteps,
//! every cancelled request resolves `Cancelled`, every survivor is
//! bit-identical to the fault-free unbudgeted reference, and the fleet
//! ends healthy and idle — then emits two gated metrics:
//!
//! - `wedge_free` — 1.0 iff the drive loop returned with no poisoned
//!   shard and no orphaned request. Gated absolutely (scale 0): any
//!   value below 1.0 fails CI, because before this layer existed a
//!   single runaway parked `run_until_idle` forever.
//! - `contained_within_budget_frac` — fraction of runaway requests
//!   evicted within the `max_supersteps + 1` containment contract.
//!
//! All numbers are counts from the deterministic fault schedule (no
//! wall clock), so every row is bit-reproducible and safe to gate.
//!
//! Usage: `runaway_containment [requests] [batch]` (defaults 32, 8).
//! `--smoke` runs a tiny configuration for CI and still writes the
//! `results/BENCH_containment.json` artifact the regression gate
//! compares against `results/baselines/`.

use std::collections::{HashMap, HashSet};

use autobatch_accel::Backend;
use autobatch_bench::{json_str, print_table, write_json};
use autobatch_chaos::{FaultPlan, FaultPoint};
use autobatch_core::{lower, ExecOptions, KernelRegistry, LoweringOptions};
use autobatch_ir::pcab::Program;
use autobatch_lang::compile;
use autobatch_serve::{
    AdmissionPolicy, Outcome, QuarantineConfig, Request, RequestBudget, ServeError, ShardedServer,
    Supervisor, SupervisorConfig,
};
use autobatch_tensor::{Tensor, TensorError};

const WORKERS: usize = 4;

/// Superstep ceiling per request. A lane is charged for every
/// superstep it stays resident — including supersteps spent on
/// divergent batchmates — so the ceiling carries headroom for a full
/// batch of legitimate binom requests diluting each other, not just
/// one request's own block count. Only injected runaways blow it.
const MAX_SUPERSTEPS: u64 = 65_536;

const BINOM_SRC: &str = "
    // C(n, k) by Pascal's rule — doubly data-dependent recursion.
    fn binom(n: int, k: int) -> (out: int) {
        if k <= 0 {
            out = 1;
        } else if k >= n {
            out = 1;
        } else {
            let left = binom(n - 1, k - 1);
            let right = binom(n - 1, k);
            out = left + right;
        }
    }
";

/// The adversarial mixes swept: runaways alone, runaways stacked with
/// clamped worker stalls, and runaways alongside cooperative
/// cancellation of part of the stream. Rates are parts-per-65536.
struct Scenario {
    mode: &'static str,
    fault: FaultPlan,
    /// Cancel every `1/cancel_one_in`-th request at the first poll of
    /// the drive loop (0 disables).
    cancel_one_in: usize,
}

fn scenarios() -> Vec<Scenario> {
    let seed = 2025;
    vec![
        Scenario {
            mode: "fault-free",
            fault: FaultPlan::none(),
            cancel_one_in: 0,
        },
        Scenario {
            mode: "runaway-1in4",
            fault: FaultPlan {
                seed,
                runaway: FaultPlan::ALWAYS / 4,
                ..FaultPlan::none()
            },
            cancel_one_in: 0,
        },
        Scenario {
            mode: "runaway-1in2-slow-1in8",
            fault: FaultPlan {
                seed,
                runaway: FaultPlan::ALWAYS / 2,
                worker_slow: FaultPlan::ALWAYS / 8,
                max_slow_micros: 200,
                ..FaultPlan::none()
            },
            cancel_one_in: 0,
        },
        Scenario {
            mode: "runaway-1in4-cancel-1in3",
            fault: FaultPlan {
                seed,
                runaway: FaultPlan::ALWAYS / 4,
                ..FaultPlan::none()
            },
            cancel_one_in: 3,
        },
    ]
}

/// Smaller operands than the availability bench: a runaway lane burns
/// the full superstep budget before eviction, so legitimate work is
/// sized to keep the ceiling (and the doomed lanes' spin) modest.
fn binom_requests(n_requests: usize) -> Result<Vec<Request>, TensorError> {
    (0..n_requests)
        .map(|i| {
            let n = 6 + (i * 5 % 7) as i64; // 6..=12
            let k = 2 + (i * 3 % 5) as i64; // 2..=6
            Ok(Request {
                id: i as u64,
                inputs: vec![Tensor::from_i64(&[n], &[1])?, Tensor::from_i64(&[k], &[1])?],
                seed: i as u64,
            })
        })
        .collect()
}

struct ScenarioResult {
    mode: &'static str,
    completed: u64,
    over_budget: u64,
    cancelled: u64,
    retries: u64,
    evictions: u64,
    wedge_free: bool,
    contained_frac: f64,
}

fn run_scenario(
    program: &Program,
    batch: usize,
    requests: &[Request],
    scenario: &Scenario,
    reference: &HashMap<u64, Vec<Tensor>>,
) -> ScenarioResult {
    let mode = scenario.mode;
    let opts = ExecOptions {
        fault: scenario.fault,
        ..ExecOptions::default()
    };
    let policy = AdmissionPolicy::JoinAtEntry {
        max_batch: batch,
        min_utilization: 1.0,
    };
    let fleet = ShardedServer::new(
        program,
        KernelRegistry::new(),
        opts,
        policy,
        WORKERS,
        Backend::hybrid_cpu(),
    )
    .expect("fleet");
    // Quarantine off: this bench measures containment of every doomed
    // lane, not the breaker's fast-reject shortcut (which would spare
    // later runaways the budget burn and skew the contained fraction).
    let mut sup = Supervisor::new(
        fleet,
        SupervisorConfig {
            quarantine: QuarantineConfig {
                trip_threshold: 0,
                ..QuarantineConfig::default()
            },
            ..SupervisorConfig::default()
        },
    );
    sup.set_budget(RequestBudget {
        max_supersteps: Some(MAX_SUPERSTEPS),
        ..RequestBudget::unlimited()
    });
    for r in requests {
        sup.submit(r.clone()).expect("admission is unconditional");
    }
    // The fault schedule decides which requests run away — a property
    // of the request seed, stable across shards and retries — so the
    // expected terminal outcome of every id is known up front.
    let cancel_ids: HashSet<u64> = requests
        .iter()
        .enumerate()
        .filter(|(i, _)| scenario.cancel_one_in != 0 && i % scenario.cancel_one_in == 0)
        .map(|(_, r)| r.id)
        .collect();
    let doomed_ids: HashSet<u64> = requests
        .iter()
        .filter(|r| {
            scenario.fault.fires(FaultPoint::Runaway, r.seed) && !cancel_ids.contains(&r.id)
        })
        .map(|r| r.id)
        .collect();
    let mut to_cancel: Vec<u64> = cancel_ids.iter().copied().collect();
    to_cancel.sort_unstable();
    let mut first_poll = true;
    let outcomes = sup.run_until_quiescent_with(&mut || {
        if std::mem::take(&mut first_poll) {
            to_cancel.clone()
        } else {
            Vec::new()
        }
    });
    let mut completed = 0u64;
    let mut over_budget = 0u64;
    let mut cancelled = 0u64;
    let mut contained = 0u64;
    for o in &outcomes {
        match o {
            Outcome::Done(r) => {
                assert_eq!(
                    &r.outputs, &reference[&r.id],
                    "{mode}: request {} drifted from the fault-free run",
                    r.id
                );
                assert!(
                    !doomed_ids.contains(&r.id),
                    "{mode}: runaway request {} escaped its budget",
                    r.id
                );
                completed += 1;
            }
            Outcome::Failed {
                id,
                error: ServeError::BudgetExceeded { spent, limit },
            } => {
                assert!(
                    doomed_ids.contains(id),
                    "{mode}: well-behaved request {id} was evicted ({spent}/{limit})"
                );
                assert_eq!(*limit, MAX_SUPERSTEPS, "{mode}: request {id} budget");
                over_budget += 1;
                if *spent <= MAX_SUPERSTEPS + 1 {
                    contained += 1;
                }
            }
            Outcome::Failed {
                id,
                error: ServeError::Cancelled,
            } => {
                assert!(
                    cancel_ids.contains(id),
                    "{mode}: request {id} cancelled but never asked to be"
                );
                cancelled += 1;
            }
            Outcome::Failed { id, error } => panic!("{mode}: request {id} failed: {error}"),
        }
    }
    assert_eq!(
        completed + over_budget + cancelled,
        requests.len() as u64,
        "{mode}: every request must reach exactly one terminal outcome"
    );
    assert_eq!(
        over_budget,
        doomed_ids.len() as u64,
        "{mode}: every runaway must be answered with BudgetExceeded"
    );
    let wedge_free = sup.inner().poisoned_shards().is_empty() && sup.outstanding() == 0;
    assert!(wedge_free, "{mode}: the fleet must end healthy and idle");
    ScenarioResult {
        mode,
        completed,
        over_budget,
        cancelled,
        retries: sup.retries(),
        evictions: sup.inner().evictions(),
        wedge_free,
        contained_frac: if doomed_ids.is_empty() {
            1.0
        } else {
            contained as f64 / doomed_ids.len() as f64
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let pos: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let (n_requests, batch) = if smoke {
        (12, 4)
    } else {
        (
            pos.first().copied().unwrap_or(32),
            pos.get(1).copied().unwrap_or(8),
        )
    };

    let binom_program = compile(BINOM_SRC, "binom").expect("binom compiles");
    let (binom_pc, _) = lower(&binom_program, LoweringOptions::default()).expect("binom lowers");
    let requests = binom_requests(n_requests).expect("requests");

    // The fault-free, unbudgeted reference every survivor must match
    // bit for bit.
    let clean = {
        let fleet = ShardedServer::new(
            &binom_pc,
            KernelRegistry::new(),
            ExecOptions::default(),
            AdmissionPolicy::JoinAtEntry {
                max_batch: batch,
                min_utilization: 1.0,
            },
            WORKERS,
            Backend::hybrid_cpu(),
        )
        .expect("fleet");
        let mut sup = Supervisor::new(fleet, SupervisorConfig::default());
        for r in &requests {
            sup.submit(r.clone()).expect("fault-free submit");
        }
        sup.run_until_quiescent()
            .into_iter()
            .map(|o| match o {
                Outcome::Done(r) => (r.id, r.outputs),
                Outcome::Failed { id, error } => panic!("fault-free run failed {id}: {error}"),
            })
            .collect::<HashMap<_, _>>()
    };

    let results: Vec<ScenarioResult> = scenarios()
        .iter()
        .map(|s| run_scenario(&binom_pc, batch, &requests, s, &clean))
        .collect();

    let header = [
        "workload",
        "mode",
        "workers",
        "requests",
        "batch",
        "completed",
        "over_budget",
        "cancelled",
        "retries",
        "evictions",
        "wedge_free",
        "contained_within_budget_frac",
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for r in &results {
        let wedge_free = if r.wedge_free { 1.0 } else { 0.0 };
        rows.push(vec![
            "divergent-binom".to_string(),
            r.mode.to_string(),
            WORKERS.to_string(),
            n_requests.to_string(),
            batch.to_string(),
            r.completed.to_string(),
            r.over_budget.to_string(),
            r.cancelled.to_string(),
            r.retries.to_string(),
            r.evictions.to_string(),
            format!("{wedge_free:.1}"),
            format!("{:.4}", r.contained_frac),
        ]);
        json.push(vec![
            ("workload", json_str("divergent-binom")),
            ("mode", json_str(r.mode)),
            ("workers", WORKERS.to_string()),
            ("requests", n_requests.to_string()),
            ("batch", batch.to_string()),
            ("completed", r.completed.to_string()),
            ("over_budget", r.over_budget.to_string()),
            ("cancelled", r.cancelled.to_string()),
            ("retries", r.retries.to_string()),
            ("evictions", r.evictions.to_string()),
            ("wedge_free", format!("{wedge_free:.6}")),
            (
                "contained_within_budget_frac",
                format!("{:.6}", r.contained_frac),
            ),
        ]);
    }
    print_table(
        "Runaway containment: wedge-freedom and budget containment under adversarial traffic",
        &header,
        &rows,
    );
    write_json("BENCH_containment.json", &json);
}
