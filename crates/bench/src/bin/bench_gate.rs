//! CI perf-regression gate over the `BENCH_*.json` artifacts.
//!
//! Compares every `BENCH_*.json` present in the baseline directory
//! against the same-named file in the fresh directory, matching rows on
//! their key fields (workload/mode/workers/requests/batch) and failing
//! when any gated metric moves beyond its direction-aware tolerance —
//! or when a baseline row disappears (coverage loss). The comparison
//! also runs in the other direction: a fresh artifact, row, or gated
//! metric with **no baseline counterpart** fails, listing exactly what
//! is unguarded — otherwise new benchmark output would silently ship
//! ungated until someone remembered to commit a baseline. Rows marked
//! with the `ungated` field (wall-clock numbers) are exempt both ways.
//! The benchmark numbers come from the deterministic simulated cost
//! model, so in CI the comparison is exact-reproducible: any failure is
//! a real code change, not machine noise.
//!
//! When `GITHUB_STEP_SUMMARY` is set (as in GitHub Actions), a markdown
//! summary of every file's verdict is appended to it.
//!
//! Usage:
//!
//! ```text
//! bench_gate [--baseline DIR] [--fresh DIR] [--tolerance FRACTION]
//! ```
//!
//! Defaults: `--baseline results/baselines --fresh results
//! --tolerance 0.20`. Exits non-zero on any gate failure.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use autobatch_bench::gate::{check_coverage, check_regression, is_ungated, parse_flat_json, Row};

/// One artifact's verdict, for the report and the step summary.
struct FileReport {
    name: String,
    baseline_rows: usize,
    failures: Vec<String>,
}

fn parse_file(path: &Path) -> Result<Vec<Row>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_flat_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn bench_files(dir: &Path) -> Result<Vec<String>, String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok())
        .filter_map(|e| e.file_name().to_str().map(str::to_string))
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    Ok(names)
}

fn run(baseline_dir: &Path, fresh_dir: &Path, tolerance: f64) -> Result<Vec<FileReport>, String> {
    let baselines = bench_files(baseline_dir)?;
    if baselines.is_empty() {
        return Err(format!(
            "no BENCH_*.json baselines under {}",
            baseline_dir.display()
        ));
    }
    let mut reports = Vec::new();
    for name in &baselines {
        let fresh_path = fresh_dir.join(name);
        if !fresh_path.exists() {
            reports.push(FileReport {
                name: name.clone(),
                baseline_rows: 0,
                failures: vec![format!(
                    "fresh artifact missing at {}",
                    fresh_path.display()
                )],
            });
            continue;
        }
        let base_rows = parse_file(&baseline_dir.join(name))?;
        let fresh_rows = parse_file(&fresh_path)?;
        let mut failures = check_regression(&base_rows, &fresh_rows, tolerance);
        failures.extend(check_coverage(&base_rows, &fresh_rows));
        reports.push(FileReport {
            name: name.clone(),
            baseline_rows: base_rows.len(),
            failures,
        });
    }
    // The other direction at file granularity: a fresh artifact with no
    // baseline file at all is unguarded unless every row opted out.
    for name in bench_files(fresh_dir)? {
        if baselines.contains(&name) {
            continue;
        }
        let rows = parse_file(&fresh_dir.join(&name))?;
        let gated = rows.iter().filter(|r| !is_ungated(r)).count();
        if gated > 0 {
            reports.push(FileReport {
                name: name.clone(),
                baseline_rows: 0,
                failures: vec![format!(
                    "{gated} fresh row(s) have no baseline artifact — commit {} or mark the \
                     rows \"ungated\"",
                    Path::new("results/baselines").join(&name).display()
                )],
            });
        }
    }
    Ok(reports)
}

/// Append a markdown verdict table to `$GITHUB_STEP_SUMMARY`, if set.
fn write_step_summary(reports: &[FileReport], tolerance: f64) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let mut md = String::new();
    md.push_str(&format!(
        "### Perf-regression gate (base tolerance {:.0}%)\n\n",
        tolerance * 100.0
    ));
    md.push_str("| artifact | baseline rows | verdict |\n|---|---:|---|\n");
    for r in reports {
        let verdict = if r.failures.is_empty() {
            "✅ within tolerance".to_string()
        } else {
            format!("❌ {} failure(s)", r.failures.len())
        };
        md.push_str(&format!(
            "| `{}` | {} | {} |\n",
            r.name, r.baseline_rows, verdict
        ));
    }
    let all: Vec<&String> = reports.iter().flat_map(|r| &r.failures).collect();
    if !all.is_empty() {
        md.push_str("\n<details><summary>failures</summary>\n\n");
        for (r, f) in reports
            .iter()
            .flat_map(|r| r.failures.iter().map(move |f| (r, f)))
        {
            md.push_str(&format!("- `{}`: {}\n", r.name, f));
        }
        md.push_str("\n</details>\n");
    }
    if let Err(e) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(md.as_bytes()))
    {
        eprintln!("could not append to GITHUB_STEP_SUMMARY ({path}): {e}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_dir = PathBuf::from("results/baselines");
    let mut fresh_dir = PathBuf::from("results");
    let mut tolerance = 0.20_f64;
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match args[i].as_str() {
            "--baseline" => match flag_value(&mut i) {
                Some(v) => baseline_dir = PathBuf::from(v),
                None => {
                    eprintln!("--baseline needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--fresh" => match flag_value(&mut i) {
                Some(v) => fresh_dir = PathBuf::from(v),
                None => {
                    eprintln!("--fresh needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--tolerance" => match flag_value(&mut i).and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if (0.0..1.0).contains(&v) => tolerance = v,
                _ => {
                    eprintln!("--tolerance needs a fraction in [0, 1)");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_gate [--baseline DIR] [--fresh DIR] [--tolerance FRACTION]"
                );
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    match run(&baseline_dir, &fresh_dir, tolerance) {
        Ok(reports) => {
            let mut failed = false;
            for r in &reports {
                if r.failures.is_empty() {
                    println!(
                        "gate OK: {} — {} baseline rows within tolerance on every gated metric \
                         (base {:.0}%), coverage complete",
                        r.name,
                        r.baseline_rows,
                        tolerance * 100.0
                    );
                } else {
                    failed = true;
                }
            }
            write_step_summary(&reports, tolerance);
            if failed {
                eprintln!("perf-regression gate FAILED:");
                for r in &reports {
                    for f in &r.failures {
                        eprintln!("  {}: {f}", r.name);
                    }
                }
                ExitCode::FAILURE
            } else {
                println!("perf-regression gate passed");
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("bench_gate error: {e}");
            ExitCode::FAILURE
        }
    }
}
