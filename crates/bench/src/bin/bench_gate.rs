//! CI perf-regression gate over the `BENCH_*.json` artifacts.
//!
//! Compares every `BENCH_*.json` present in the baseline directory
//! against the same-named file in the fresh directory, matching rows on
//! their key fields (workload/mode/workers/requests/batch) and failing
//! when `requests_per_s` drops more than the tolerance below baseline
//! — or when a baseline row disappears (coverage loss). The benchmark
//! numbers come from the deterministic simulated cost model, so in CI
//! the comparison is exact-reproducible: any failure is a real code
//! change, not machine noise.
//!
//! Usage:
//!
//! ```text
//! bench_gate [--baseline DIR] [--fresh DIR] [--tolerance FRACTION]
//! ```
//!
//! Defaults: `--baseline results/baselines --fresh results
//! --tolerance 0.20`. Exits non-zero on any gate failure.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use autobatch_bench::gate::{check_regression, parse_flat_json, Row};

fn parse_file(path: &Path) -> Result<Vec<Row>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_flat_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn run(baseline_dir: &Path, fresh_dir: &Path, tolerance: f64) -> Result<Vec<String>, String> {
    let mut baselines: Vec<PathBuf> = std::fs::read_dir(baseline_dir)
        .map_err(|e| format!("{}: {e}", baseline_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    baselines.sort();
    if baselines.is_empty() {
        return Err(format!(
            "no BENCH_*.json baselines under {}",
            baseline_dir.display()
        ));
    }
    let mut failures = Vec::new();
    for base_path in baselines {
        let name = base_path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("filtered on file name")
            .to_string();
        let fresh_path = fresh_dir.join(&name);
        if !fresh_path.exists() {
            failures.push(format!(
                "{name}: fresh artifact missing at {}",
                fresh_path.display()
            ));
            continue;
        }
        let base_rows = parse_file(&base_path)?;
        let fresh_rows = parse_file(&fresh_path)?;
        let file_failures = check_regression(&base_rows, &fresh_rows, tolerance);
        if file_failures.is_empty() {
            println!(
                "gate OK: {name} — {} baseline rows within tolerance on every gated metric \
                 (base {:.0}%)",
                base_rows.len(),
                tolerance * 100.0
            );
        }
        failures.extend(file_failures.into_iter().map(|f| format!("{name}: {f}")));
    }
    Ok(failures)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_dir = PathBuf::from("results/baselines");
    let mut fresh_dir = PathBuf::from("results");
    let mut tolerance = 0.20_f64;
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match args[i].as_str() {
            "--baseline" => match flag_value(&mut i) {
                Some(v) => baseline_dir = PathBuf::from(v),
                None => {
                    eprintln!("--baseline needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--fresh" => match flag_value(&mut i) {
                Some(v) => fresh_dir = PathBuf::from(v),
                None => {
                    eprintln!("--fresh needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--tolerance" => match flag_value(&mut i).and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if (0.0..1.0).contains(&v) => tolerance = v,
                _ => {
                    eprintln!("--tolerance needs a fraction in [0, 1)");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_gate [--baseline DIR] [--fresh DIR] [--tolerance FRACTION]"
                );
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    match run(&baseline_dir, &fresh_dir, tolerance) {
        Ok(failures) if failures.is_empty() => {
            println!("perf-regression gate passed");
            ExitCode::SUCCESS
        }
        Ok(failures) => {
            eprintln!("perf-regression gate FAILED:");
            for f in &failures {
                eprintln!("  {f}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_gate error: {e}");
            ExitCode::FAILURE
        }
    }
}
