//! Host-side microbench of the program-counter interpreter hot loop.
//!
//! Unlike the simulated-accelerator benches (`serve_throughput`,
//! `shard_throughput`), this bin measures the **real Rust interpreter**:
//! wall-clock nanoseconds per superstep and heap allocations per
//! superstep (via a counting global allocator), on the two committed
//! bench workloads. Allocation counts depend only on the code path, so
//! they are bit-reproducible across machines and safe to gate exactly;
//! wall-clock is gated with a wide tolerance (see `gate::METRICS`).
//!
//! Each workload runs twice: once with the fused elementwise fast path
//! (the default) and once with fusion disabled, so the JSON rows record
//! both the host-time win and the launch-count reduction the fusion
//! contributes under eager dispatch.
//!
//! Usage: `vm_microbench [--smoke]`. Writes
//! `results/BENCH_vm_microbench.json` for the CI perf-regression gate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use autobatch_accel::{Backend, Trace};
use autobatch_bench::{fmt_sig, json_str, print_table, write_json};
use autobatch_core::{lower, ExecOptions, KernelRegistry, LoweringOptions, PcMachine};
use autobatch_ir::pcab::Program;
use autobatch_lang::compile;
use autobatch_models::NealsFunnel;
use autobatch_nuts::{BatchNuts, NutsConfig};
use autobatch_tensor::{CounterRng, Tensor};

/// A pass-through allocator that counts allocations, so the bench can
/// report allocations/superstep of the interpreter hot loop.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter
// is a relaxed atomic with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct Measured {
    supersteps: u64,
    ns_per_superstep: f64,
    allocs_per_superstep: f64,
    /// Timed kernel launches under eager dispatch (fusion-sensitive).
    eager_launches: u64,
}

/// Drive every request through one `PcMachine` to completion and time
/// the whole serve loop (admission, supersteps, retirement).
fn run_machine(
    program: &Program,
    registry: &KernelRegistry,
    opts: ExecOptions,
    requests: &[(Vec<Tensor>, u64)],
    reps: usize,
) -> Measured {
    // Warm-up pass (first-touch allocations, lazy buffers).
    let mut warm = PcMachine::new(program, registry.clone(), opts);
    admit_all(&mut warm, requests);
    warm.run_to_completion(None).expect("warm-up runs");
    let supersteps_once = warm.supersteps();

    // Take the fastest rep: the minimum is the standard noise-robust
    // microbench statistic (scheduling hiccups only ever add time).
    // Allocation counts are identical across reps by construction.
    let mut best_ns_per_step = f64::INFINITY;
    let mut allocs_per_step = 0.0f64;
    for _ in 0..reps {
        let mut m = PcMachine::new(program, registry.clone(), opts);
        admit_all(&mut m, requests);
        ALLOCATIONS.store(0, Ordering::Relaxed);
        let t0 = Instant::now();
        let done = m.run_to_completion(None).expect("runs");
        let dt = t0.elapsed();
        let allocs = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(done.len(), requests.len());
        let steps = m.supersteps() as f64;
        best_ns_per_step = best_ns_per_step.min(dt.as_nanos() as f64 / steps);
        allocs_per_step = allocs as f64 / steps;
    }

    // Launch accounting under eager dispatch (every primitive its own
    // launch unless the fused fast path folds a chain).
    let mut tr = Trace::new(Backend::eager_cpu());
    let mut m = PcMachine::new(program, registry.clone(), opts);
    admit_all(&mut m, requests);
    m.run_to_completion(Some(&mut tr)).expect("traced run");

    Measured {
        supersteps: supersteps_once,
        ns_per_superstep: best_ns_per_step,
        allocs_per_superstep: allocs_per_step,
        eager_launches: tr.launches(),
    }
}

fn admit_all(m: &mut PcMachine<'_>, requests: &[(Vec<Tensor>, u64)]) {
    let reqs: Vec<(&[Tensor], u64)> = requests
        .iter()
        .map(|(ins, key)| (ins.as_slice(), *key))
        .collect();
    m.admit_batch(&reqs, None).expect("admission");
}

const BINOM_SRC: &str = "
    // C(n, k) by Pascal's rule — doubly data-dependent recursion.
    fn binom(n: int, k: int) -> (out: int) {
        if k <= 0 {
            out = 1;
        } else if k >= n {
            out = 1;
        } else {
            let left = binom(n - 1, k - 1);
            let right = binom(n - 1, k);
            out = left + right;
        }
    }
";

fn binom_requests(n_requests: usize) -> Vec<(Vec<Tensor>, u64)> {
    (0..n_requests)
        .map(|i| {
            let n = 10 + (i * 5 % 7) as i64;
            let k = 2 + (i * 3 % 5) as i64;
            (
                vec![
                    Tensor::from_i64(&[n], &[1]).expect("n"),
                    Tensor::from_i64(&[k], &[1]).expect("k"),
                ],
                i as u64,
            )
        })
        .collect()
}

fn funnel_requests(nuts: &BatchNuts, n_requests: usize) -> Vec<(Vec<Tensor>, u64)> {
    let rng = CounterRng::new(64);
    (0..n_requests)
        .map(|i| {
            let q = rng
                .normal_batch(&[i as i64], &[nuts.dim()])
                .row(0)
                .expect("row");
            (nuts.request_inputs(&q).expect("inputs"), i as u64)
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_requests, reps) = if smoke { (12, 5) } else { (48, 7) };

    let binom_program = compile(BINOM_SRC, "binom").expect("binom compiles");
    let (binom_pc, _) = lower(&binom_program, LoweringOptions::default()).expect("binom lowers");
    let cfg = NutsConfig {
        step_size: 0.2,
        n_trajectories: 3,
        max_depth: 6,
        leapfrog_steps: 2,
        seed: 31,
    };
    let nuts = BatchNuts::new(Arc::new(NealsFunnel::new(5)), cfg).expect("NUTS compiles");

    let header = [
        "workload",
        "mode",
        "batch",
        "supersteps",
        "ns-per-superstep",
        "allocs-per-superstep",
        "eager-launches",
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut launches_by_mode: Vec<(String, &'static str, u64)> = Vec::new();

    for (workload, program, registry, base_opts, requests) in [
        (
            "divergent-binom",
            &binom_pc,
            KernelRegistry::new(),
            ExecOptions::default(),
            binom_requests(n_requests),
        ),
        (
            "funnel-nuts",
            nuts.lowered(),
            nuts.registry().clone(),
            nuts.exec_options(),
            funnel_requests(&nuts, n_requests),
        ),
    ] {
        for (mode, fuse) in [("fused", true), ("unfused", false)] {
            let opts = ExecOptions {
                fuse_elementwise: fuse,
                ..base_opts
            };
            let m = run_machine(program, &registry, opts, &requests, reps);
            launches_by_mode.push((workload.to_string(), mode, m.eager_launches));
            rows.push(vec![
                workload.to_string(),
                mode.to_string(),
                n_requests.to_string(),
                m.supersteps.to_string(),
                fmt_sig(m.ns_per_superstep),
                fmt_sig(m.allocs_per_superstep),
                m.eager_launches.to_string(),
            ]);
            json.push(vec![
                ("workload", json_str(workload)),
                ("mode", json_str(mode)),
                ("batch", n_requests.to_string()),
                ("supersteps", m.supersteps.to_string()),
                ("ns_per_superstep", format!("{:.1}", m.ns_per_superstep)),
                (
                    "supersteps_per_s",
                    format!("{:.1}", 1e9 / m.ns_per_superstep),
                ),
                (
                    "allocs_per_superstep",
                    format!("{:.4}", m.allocs_per_superstep),
                ),
                ("eager_launches", m.eager_launches.to_string()),
            ]);
        }
    }

    // The fused fast path must strictly reduce eager launch counts on
    // both workloads — the cost-model half of the acceptance criterion.
    for pair in launches_by_mode.chunks(2) {
        let [(workload, _, fused), (_, _, unfused)] = pair else {
            unreachable!("modes come in pairs");
        };
        println!("{workload}: eager launches fused {fused} vs unfused {unfused}");
        assert!(
            fused < unfused,
            "{workload}: fusion did not reduce launches ({fused} vs {unfused})"
        );
    }

    print_table(
        "PC interpreter host microbench (real wall-clock, counting allocator)",
        &header,
        &rows,
    );
    write_json("BENCH_vm_microbench.json", &json);
}
