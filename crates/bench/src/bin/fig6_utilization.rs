//! Figure 6 — utilization of batch gradient computation on the
//! correlated Gaussian target, as a function of batch size.
//!
//! Utilization = useful gradient lanes / total gradient lanes across all
//! gradient-kernel launches. Local static autobatching must synchronize
//! chains at trajectory (and tree) boundaries, so members that chose
//! short trajectories idle while the longest member finishes; program
//! counter autobatching synchronizes on *gradient steps*, batching the
//! 5th gradient of one member's 3rd trajectory with the 8th gradient of
//! another's 2nd.
//!
//! Usage: `fig6_utilization [max_batch] [n_trajectories]`
//! (defaults 1024 and 10, the paper's trajectory count).

use std::sync::Arc;

use autobatch_accel::{Backend, Trace};
use autobatch_bench::{fmt_sig, geometric_batches, print_table, write_csv};
use autobatch_models::CorrelatedGaussian;
use autobatch_nuts::{BatchNuts, NutsConfig};
use autobatch_tensor::{CounterRng, Tensor};

fn main() {
    let max_batch: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let n_traj: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    // The paper's §4.2 target: 100-dimensional correlated Gaussian.
    let model = Arc::new(CorrelatedGaussian::new(100, 0.9));
    let cfg = NutsConfig {
        step_size: 0.12,
        n_trajectories: n_traj,
        max_depth: 7,
        leapfrog_steps: 4,
        seed: 3,
    };
    let nuts = BatchNuts::new(model, cfg).expect("NUTS compiles");

    let header = ["batch", "local-static", "program-counter"];
    let mut rows = Vec::new();
    for z in geometric_batches(max_batch) {
        let q0 = starts(z, 100);

        let mut tr_local = Trace::new(Backend::eager_cpu());
        nuts.run_local(&q0, Some(&mut tr_local)).expect("lsab runs");
        let u_local = tr_local.utilization("grad");

        let mut tr_pc = Trace::new(Backend::xla_cpu());
        nuts.run_pc(&q0, Some(&mut tr_pc)).expect("pc runs");
        let u_pc = tr_pc.utilization("grad");

        println!("batch {z}: local {u_local:.3}  pc {u_pc:.3}");
        rows.push(vec![z.to_string(), fmt_sig(u_local), fmt_sig(u_pc)]);
    }
    print_table(
        "Figure 6: gradient-lane utilization (1.0 = no waste)",
        &header,
        &rows,
    );
    write_csv("fig6_utilization.csv", &header, &rows);
}

fn starts(z: usize, d: usize) -> Tensor {
    let rng = CounterRng::new(1234);
    rng.normal_batch(&(0..z as i64).collect::<Vec<_>>(), &[d])
}
