//! Static lint over every committed program: the models' NUTS kernels,
//! the built-in fibonacci, and each surface-language program embedded
//! in the `examples/` sources.
//!
//! For each program, runs the full static verification tier — the lsab
//! abstract interpreter, lowering, and the pcab abstract interpreter —
//! and prints the inferred signature, stack-depth bounds, divergence
//! facts, and fusion spans. Any diagnostic from either verifier fails
//! the lint (exit code 1), so an ill-typed program cannot land in the
//! tree: CI runs this binary over exactly the set of programs the
//! tests and examples execute.
//!
//! Usage: `cargo run --release -p autobatch-bench --bin irlint`

use std::path::PathBuf;
use std::process::ExitCode;

use autobatch_core::{lower, LoweringOptions};
use autobatch_ir::analysis::{analyze_lsab, analyze_pcab};
use autobatch_ir::build::fibonacci_program;
use autobatch_ir::lsab;

/// Lint one lsab program end to end. Returns the number of diagnostics.
fn lint(name: &str, program: &lsab::Program) -> usize {
    let mut issues = 0usize;
    let report = analyze_lsab(program);
    let dtypes: Vec<String> = report.input_dtypes.iter().map(|d| d.to_string()).collect();
    let outputs: Vec<String> = report.outputs.iter().map(|o| o.to_string()).collect();
    println!("{name}");
    println!(
        "  lsab: inputs [{}] -> outputs [{}], call depth {}, {} unreachable, {} divergent",
        dtypes.join(", "),
        outputs.join(", "),
        report.call_depth,
        report.unreachable.len(),
        report.divergent_branches.len(),
    );
    for d in &report.diagnostics {
        println!("  error (lsab): {d}");
        issues += 1;
    }
    if !report.ok() {
        return issues;
    }
    let pc = match lower(program, LoweringOptions::default()) {
        Ok((pc, _)) => pc,
        Err(e) => {
            println!("  error (lowering): {e}");
            return issues + 1;
        }
    };
    let report = analyze_pcab(&pc);
    let fused: usize = report
        .elementwise_spans
        .iter()
        .flatten()
        .filter(|(_, len)| *len > 1)
        .count();
    println!(
        "  pcab: pc depth {}, data depth {}, {} divergent, {} fused spans",
        report.pc_depth,
        report.data_depth,
        report.divergent_branches.len(),
        fused,
    );
    for d in &report.diagnostics {
        println!("  error (pcab): {d}");
        issues += 1;
    }
    issues
}

/// Every surface program embedded in `examples/*.rs`, compiled once per
/// defined function (each function is a valid entry point).
fn example_programs() -> Result<Vec<(String, lsab::Program)>, String> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let file = path
            .file_name()
            .expect("filtered on extension")
            .to_string_lossy()
            .into_owned();
        let rust = std::fs::read_to_string(&path).map_err(|e| format!("{file}: {e}"))?;
        for src in autobatch_lang::embedded_sources(&rust) {
            let module = autobatch_lang::parse(&src)
                .map_err(|e| format!("{file}: embedded program no longer parses: {e}"))?;
            for f in &module.fns {
                let program = autobatch_lang::compile_module(&module, &f.name)
                    .map_err(|e| format!("{file}::{}: {e}", f.name))?;
                out.push((format!("examples/{file}::{}", f.name), program));
            }
        }
    }
    Ok(out)
}

fn main() -> ExitCode {
    let mut programs: Vec<(String, lsab::Program)> =
        vec![("builtin::fibonacci".into(), fibonacci_program())];
    for steps in [1, 8] {
        match autobatch_nuts::nuts_program(steps) {
            Ok(p) => programs.push((format!("nuts::program(leapfrog_steps={steps})"), p)),
            Err(e) => {
                eprintln!("irlint: nuts_program({steps}) failed to compile: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match example_programs() {
        Ok(more) => programs.extend(more),
        Err(e) => {
            eprintln!("irlint: {e}");
            return ExitCode::FAILURE;
        }
    }
    let mut issues = 0usize;
    for (name, program) in &programs {
        issues += lint(name, program);
    }
    println!(
        "irlint: {} programs, {} diagnostics",
        programs.len(),
        issues
    );
    if issues == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
