//! Ablation A4 — static vs dynamic batching architectures (paper §5).
//!
//! The paper positions its two *static* strategies against *dynamic
//! batching* (DyNet's on-the-fly batching, TensorFlow Fold): a scheduler
//! that re-derives the batch schedule from the live agenda every round.
//! This bench runs identical batched-NUTS workloads through all three
//! runtimes and reports, per batch size:
//!
//! - gradient kernel launches (fewer = better amortization),
//! - gradient-lane efficiency = useful gradient evaluations divided by
//!   `launches × Z` (for the masking runtimes this is exactly the paper's
//!   Figure 6 utilization; for dynamic batching it measures launch
//!   fragmentation — groups smaller than the full batch),
//! - simulated time on the architecture's natural backend (Eager for the
//!   host-controlled runtimes, XLA for program-counter autobatching,
//!   Eager plus per-agenda-entry scheduler time for dynamic batching).
//!
//! Expected shape: dynamic batching recovers *more* batching than local
//! static autobatching (it can merge threads at different recursion
//! depths), approaching program-counter autobatching's launch counts,
//! but pays scheduler overhead every round and cannot be graph-compiled
//! at all — which is the paper's argument for static schedules.
//!
//! Usage: `ablation_dynamic [max_batch]` (default 64).

use std::sync::Arc;

use autobatch_accel::{Backend, Trace};
use autobatch_bench::{fmt_sig, geometric_batches, print_table, write_csv};
use autobatch_models::CorrelatedGaussian;
use autobatch_nuts::{BatchNuts, NutsConfig};
use autobatch_tensor::CounterRng;

const DIM: usize = 25;

fn main() {
    let max_batch: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);

    let model = Arc::new(CorrelatedGaussian::new(DIM, 0.8));
    let nuts = BatchNuts::new(
        model,
        NutsConfig {
            step_size: 0.2,
            n_trajectories: 3,
            max_depth: 6,
            leapfrog_steps: 2,
            seed: 57,
        },
    )
    .expect("NUTS compiles");

    let header = [
        "batch",
        "lsab-launches",
        "dyn-launches",
        "pc-launches",
        "lsab-eff",
        "dyn-eff",
        "pc-eff",
        "lsab-time",
        "dyn-time",
        "pc-time",
    ];
    let mut rows = Vec::new();
    for z in geometric_batches(max_batch) {
        let (l1, e1, t1) = run(&nuts, z, Strategy::LocalStatic);
        let (l2, e2, t2) = run(&nuts, z, Strategy::Dynamic);
        let (l3, e3, t3) = run(&nuts, z, Strategy::ProgramCounter);
        println!(
            "batch {z}: grad launches lsab {l1} / dyn {l2} / pc {l3}, \
             efficiency {e1:.3} / {e2:.3} / {e3:.3}"
        );
        rows.push(vec![
            z.to_string(),
            l1.to_string(),
            l2.to_string(),
            l3.to_string(),
            fmt_sig(e1),
            fmt_sig(e2),
            fmt_sig(e3),
            fmt_sig(t1),
            fmt_sig(t2),
            fmt_sig(t3),
        ]);
    }
    print_table(
        "Ablation A4: static vs dynamic batching (batched NUTS, correlated Gaussian)",
        &header,
        &rows,
    );
    write_csv("ablation_dynamic.csv", &header, &rows);
}

#[derive(Clone, Copy)]
enum Strategy {
    LocalStatic,
    Dynamic,
    ProgramCounter,
}

/// Returns (gradient launches, gradient-lane efficiency, simulated time).
fn run(nuts: &BatchNuts, z: usize, strategy: Strategy) -> (u64, f64, f64) {
    let rng = CounterRng::new(5);
    let q0 = rng.normal_batch(&(0..z as i64).collect::<Vec<_>>(), &[DIM]);
    let mut tr = match strategy {
        Strategy::LocalStatic | Strategy::Dynamic => Trace::new(Backend::eager_cpu()),
        Strategy::ProgramCounter => Trace::new(Backend::xla_cpu()),
    };
    match strategy {
        Strategy::LocalStatic => nuts.run_local(&q0, Some(&mut tr)),
        Strategy::Dynamic => nuts.run_dynamic(&q0, Some(&mut tr)),
        Strategy::ProgramCounter => nuts.run_pc(&q0, Some(&mut tr)),
    }
    .expect("nuts runs");
    let stats = tr.logical_stats("grad").expect("gradients launched");
    let efficiency = stats.active_members as f64 / (stats.launches as f64 * z as f64);
    (stats.launches, efficiency, tr.sim_time())
}
