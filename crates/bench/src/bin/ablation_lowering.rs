//! Ablation A3 — the paper §3's compiler optimizations, toggled one at a
//! time:
//!
//! 1. temporary elision (opt 2): block-local values bypass batching;
//! 2. register demotion (opt 3): variables never live across a recursive
//!    call get masked registers instead of stacks;
//! 3. pop-push elimination (opt 5): cancelled save/restore pairs;
//! 4. stack-top caching (opt 4, a runtime knob): cached tops vs
//!    re-gathering on every access.
//!
//! For each configuration we report static compile statistics (stacked
//! variables, push/pop sites) and the dynamic cost on batched NUTS:
//! stack-kernel simulated time and total simulated time under XLA-CPU
//! pricing, where stack traffic is what the optimizations attack.
//!
//! Usage: `ablation_lowering [batch]` (default 64).

use std::sync::Arc;

use autobatch_accel::{Backend, Trace};
use autobatch_bench::{fmt_sig, print_table, write_csv};
use autobatch_core::{lower, ExecOptions, LoweringOptions, PcVm};
use autobatch_models::{model_registry, CorrelatedGaussian};
use autobatch_nuts::{nuts_program, NutsConfig};
use autobatch_tensor::{CounterRng, DType, Tensor};

fn main() {
    let z: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);

    let cfg = NutsConfig {
        step_size: 0.15,
        n_trajectories: 3,
        max_depth: 6,
        leapfrog_steps: 4,
        seed: 13,
    };
    let program = nuts_program(cfg.leapfrog_steps).expect("NUTS compiles");
    let model = Arc::new(CorrelatedGaussian::new(50, 0.8));
    let registry = model_registry(model);

    let variants: Vec<(&str, LoweringOptions, bool)> = vec![
        ("all-optimizations", LoweringOptions::default(), true),
        (
            "no-temp-elision",
            LoweringOptions {
                elide_temporaries: false,
                ..LoweringOptions::default()
            },
            true,
        ),
        (
            "no-register-demotion",
            LoweringOptions {
                demote_registers: false,
                ..LoweringOptions::default()
            },
            true,
        ),
        (
            "no-pop-push-elim",
            LoweringOptions {
                pop_push_elimination: false,
                ..LoweringOptions::default()
            },
            true,
        ),
        ("no-top-caching", LoweringOptions::default(), false),
        ("unoptimized", LoweringOptions::unoptimized(), false),
    ];

    let header = [
        "variant",
        "stacked",
        "registers",
        "push-sites",
        "pop-sites",
        "eliminated",
        "stack-time(s)",
        "total-time(s)",
    ];
    let mut rows = Vec::new();
    for (name, lopts, cache_tops) in variants {
        let (pc, stats) = lower(&program, lopts).expect("lowering succeeds");
        let opts = ExecOptions {
            seed: cfg.seed,
            stack_depth: cfg.max_depth + 16,
            cache_stack_tops: cache_tops,
            ..ExecOptions::default()
        };
        let vm = PcVm::new(&pc, registry.clone(), opts);
        let rng = CounterRng::new(41);
        let q0 = rng.normal_batch(&(0..z as i64).collect::<Vec<_>>(), &[50]);
        let inputs = vec![
            q0,
            Tensor::full(&[z], cfg.step_size),
            Tensor::full(&[z], cfg.n_trajectories as i64),
            Tensor::full(&[z], cfg.max_depth as i64),
            Tensor::zeros(DType::I64, &[z]),
        ];
        // Eager pricing so stack ops appear as their own launches.
        let mut tr = Trace::new(Backend::eager_cpu());
        vm.run(&inputs, Some(&mut tr)).expect("nuts runs");
        let stack_time = tr.kernel_stats("stack").map_or(0.0, |s| s.time);
        println!(
            "{name}: {} stacked, {} pushes, stack {:.4}s / total {:.4}s",
            stats.stacked_vars,
            stats.pushes,
            stack_time,
            tr.sim_time()
        );
        rows.push(vec![
            name.to_string(),
            stats.stacked_vars.to_string(),
            stats.register_vars.to_string(),
            stats.pushes.to_string(),
            stats.pops.to_string(),
            stats.eliminated_pairs.to_string(),
            fmt_sig(stack_time),
            fmt_sig(tr.sim_time()),
        ]);
    }
    print_table(
        &format!("Ablation A3: lowering optimizations on batched NUTS (Z = {z})"),
        &header,
        &rows,
    );
    write_csv("ablation_lowering.csv", &header, &rows);
}
