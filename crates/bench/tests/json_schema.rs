//! Schema contract between the `BENCH_*.json` writers and the CI
//! perf-regression gate: what `write_json` emits must parse back, carry
//! the fields the gate matches rows on, and trip the gate on an
//! injected slowdown.

use autobatch_bench::gate::{
    check_coverage, check_regression, is_ungated, parse_flat_json, row_key, JsonValue, Row,
    KEY_FIELDS, METRIC, UNGATED_FIELD,
};
use autobatch_bench::{json_str, render_json};

/// A row exactly as the throughput bins build one.
fn bench_row(workload: &str, workers: usize, throughput: f64) -> Vec<(&'static str, String)> {
    vec![
        ("workload", json_str(workload)),
        ("workers", workers.to_string()),
        ("requests", "48".to_string()),
        ("batch", "8".to_string()),
        ("supersteps", "12345".to_string()),
        ("launches", "12345".to_string()),
        ("sim_time_s", format!("{:.9}", 48.0 / throughput)),
        ("requests_per_s", format!("{throughput:.6}")),
    ]
}

fn rendered_rows(rows: &[Vec<(&str, String)>]) -> Vec<Row> {
    parse_flat_json(&render_json(rows)).expect("write_json output must parse")
}

#[test]
fn write_json_output_round_trips_through_the_gate_parser() {
    let rows = vec![
        bench_row("divergent-binom", 1, 0.0125),
        bench_row("divergent-binom", 4, 0.05),
        bench_row("funnel-nuts", 2, 0.17),
    ];
    let parsed = rendered_rows(&rows);
    assert_eq!(parsed.len(), 3);
    for (src, row) in rows.iter().zip(&parsed) {
        // Every written field survives with its name.
        assert_eq!(src.len(), row.len());
        for (k, _) in src {
            assert!(row.contains_key(*k), "field {k} lost in round-trip");
        }
    }
    assert_eq!(
        parsed[0].get("workload"),
        Some(&JsonValue::Str("divergent-binom".into()))
    );
    assert_eq!(parsed[1].get("workers"), Some(&JsonValue::Num(4.0)));
    assert_eq!(
        parsed[1].get(METRIC).and_then(JsonValue::as_num),
        Some(0.05)
    );
}

#[test]
fn rows_carry_the_fields_the_regression_gate_reads() {
    let parsed = rendered_rows(&[bench_row("divergent-binom", 4, 0.05)]);
    let row = &parsed[0];
    // The compared metric is present and numeric.
    assert!(
        row.get(METRIC).and_then(JsonValue::as_num).is_some(),
        "bench rows must carry numeric {METRIC}"
    );
    // At least two key fields identify the row, and they land in its key.
    let key = row_key(row);
    let present: Vec<&&str> = KEY_FIELDS
        .iter()
        .filter(|f| row.contains_key(**f))
        .collect();
    assert!(present.len() >= 2, "too few key fields: {key}");
    assert!(key.contains("workload=divergent-binom"));
    assert!(key.contains("workers=4"));
    // Rows differing only in a key field get distinct keys.
    let other = rendered_rows(&[bench_row("divergent-binom", 1, 0.0125)]);
    assert_ne!(key, row_key(&other[0]));
}

#[test]
fn gate_passes_identical_runs_and_catches_injected_slowdown() {
    let baseline = rendered_rows(&[
        bench_row("divergent-binom", 1, 0.0125),
        bench_row("divergent-binom", 4, 0.05),
    ]);
    // Identical rerun: deterministic sim-time numbers compare exactly.
    assert_eq!(
        check_regression(&baseline, &baseline, 0.20),
        Vec::<String>::new()
    );
    // 10% down is inside the 20% tolerance; improvements always pass.
    let wobble = rendered_rows(&[
        bench_row("divergent-binom", 1, 0.0125 * 0.9),
        bench_row("divergent-binom", 4, 0.05 * 1.5),
    ]);
    assert!(check_regression(&baseline, &wobble, 0.20).is_empty());
    // An injected >20% slowdown on one row fails the gate, naming it.
    let slowed = rendered_rows(&[
        bench_row("divergent-binom", 1, 0.0125),
        bench_row("divergent-binom", 4, 0.05 * 0.75),
    ]);
    let failures = check_regression(&baseline, &slowed, 0.20);
    assert_eq!(failures.len(), 1);
    assert!(failures[0].contains("workers=4"), "{failures:?}");
    assert!(failures[0].contains("regressed"), "{failures:?}");
}

#[test]
fn gate_fails_on_coverage_loss_but_not_on_new_rows() {
    let baseline = rendered_rows(&[
        bench_row("divergent-binom", 1, 0.0125),
        bench_row("funnel-nuts", 1, 0.17),
    ]);
    let fresh = rendered_rows(&[
        bench_row("divergent-binom", 1, 0.0125),
        // funnel-nuts row gone; a brand-new workload appears.
        bench_row("new-workload", 2, 1.0),
    ]);
    let failures = check_regression(&baseline, &fresh, 0.20);
    assert_eq!(failures.len(), 1);
    assert!(failures[0].contains("workload=funnel-nuts"), "{failures:?}");
    assert!(failures[0].contains("missing"), "{failures:?}");
}

#[test]
fn coverage_check_fails_fresh_rows_and_metrics_without_baselines() {
    let baseline = rendered_rows(&[bench_row("divergent-binom", 1, 0.0125)]);
    // Every fresh row covered: clean.
    assert_eq!(check_coverage(&baseline, &baseline), Vec::<String>::new());
    // A brand-new fresh row with no baseline counterpart is unguarded —
    // the gate must say so and name the row.
    let fresh = rendered_rows(&[
        bench_row("divergent-binom", 1, 0.0125),
        bench_row("divergent-binom", 4, 0.05),
    ]);
    let failures = check_coverage(&baseline, &fresh);
    assert_eq!(failures.len(), 1, "{failures:?}");
    assert!(failures[0].contains("workers=4"), "{failures:?}");
    assert!(
        failures[0].contains("no baseline counterpart"),
        "{failures:?}"
    );

    // A fresh row that grew a *gated metric* its baseline row lacks is
    // just as unguarded: the new metric would silently ship untested.
    let mut with_new_metric = bench_row("divergent-binom", 1, 0.0125);
    with_new_metric.push(("supersteps_total", "99".to_string()));
    let fresh = rendered_rows(&[with_new_metric]);
    let failures = check_coverage(&baseline, &fresh);
    assert_eq!(failures.len(), 1, "{failures:?}");
    assert!(failures[0].contains("supersteps_total"), "{failures:?}");
}

#[test]
fn ungated_rows_are_exempt_from_both_gate_directions() {
    let mut wall_clock = bench_row("tcp-loopback", 1, 123.0);
    wall_clock.push((UNGATED_FIELD, json_str("wall-clock")));
    let fresh = rendered_rows(&[bench_row("divergent-binom", 1, 0.0125), wall_clock]);
    assert!(is_ungated(&fresh[1]));
    assert!(!is_ungated(&fresh[0]));

    // Fresh direction: the unmatched wall-clock row does not trip the
    // coverage check.
    let baseline = rendered_rows(&[bench_row("divergent-binom", 1, 0.0125)]);
    assert_eq!(check_coverage(&baseline, &fresh), Vec::<String>::new());

    // Baseline direction: an ungated baseline row neither demands a
    // fresh counterpart nor compares metrics.
    let mut stale = bench_row("tcp-loopback", 1, 999.0);
    stale.push((UNGATED_FIELD, json_str("wall-clock")));
    let baseline = rendered_rows(&[bench_row("divergent-binom", 1, 0.0125), stale]);
    let fresh = rendered_rows(&[bench_row("divergent-binom", 1, 0.0125)]);
    assert_eq!(
        check_regression(&baseline, &fresh, 0.20),
        Vec::<String>::new()
    );
}

#[test]
fn parser_handles_escapes_and_rejects_malformed_input() {
    let rows = vec![vec![
        ("name", json_str(r#"quote " and \ backslash"#)),
        ("x", "1.5e-3".to_string()),
    ]];
    let parsed = rendered_rows(&rows);
    assert_eq!(
        parsed[0].get("name"),
        Some(&JsonValue::Str(r#"quote " and \ backslash"#.into()))
    );
    assert_eq!(parsed[0].get("x").and_then(JsonValue::as_num), Some(1.5e-3));
    assert!(parse_flat_json("[]").unwrap().is_empty());
    for bad in [
        "",
        "{",
        "[{]",
        r#"[{"a": }]"#,
        r#"[{"a": 1} {"b": 2}]"#,
        r#"[{"a": 1}] trailing"#,
        r#"[{"a": "unterminated}]"#,
    ] {
        assert!(parse_flat_json(bad).is_err(), "accepted malformed: {bad}");
    }
}

#[test]
fn gate_checks_host_metrics_with_scaled_direction_aware_tolerances() {
    let row = |steps_per_s: f64, allocs: f64| -> Vec<(&'static str, String)> {
        vec![
            ("workload", json_str("divergent-binom")),
            ("mode", json_str("fused")),
            ("batch", "12".to_string()),
            ("supersteps_per_s", format!("{steps_per_s:.1}")),
            ("allocs_per_superstep", format!("{allocs:.4}")),
        ]
    };
    let baseline = rendered_rows(&[row(1000.0, 10.0)]);

    // Host wall-clock gets 3× the base tolerance: at 0.2 base, the
    // floor is 40% of baseline. A 50% drop passes; a 70% drop fails.
    assert!(check_regression(&baseline, &rendered_rows(&[row(500.0, 10.0)]), 0.20).is_empty());
    let failures = check_regression(&baseline, &rendered_rows(&[row(300.0, 10.0)]), 0.20);
    assert_eq!(failures.len(), 1);
    assert!(failures[0].contains("supersteps_per_s"), "{failures:?}");

    // Allocation counts are deterministic: 0.25× the base tolerance,
    // lower-is-better. +4% passes; +10% fails.
    assert!(check_regression(&baseline, &rendered_rows(&[row(1000.0, 10.4)]), 0.20).is_empty());
    let failures = check_regression(&baseline, &rendered_rows(&[row(1000.0, 11.0)]), 0.20);
    assert_eq!(failures.len(), 1);
    assert!(failures[0].contains("allocs_per_superstep"), "{failures:?}");

    // Fewer allocations or faster supersteps never fail.
    assert!(check_regression(&baseline, &rendered_rows(&[row(5000.0, 1.0)]), 0.20).is_empty());
}

#[test]
fn gate_fails_an_injected_p99_latency_regression() {
    let row = |p99: f64| -> Vec<(&'static str, String)> {
        vec![
            ("workload", json_str("divergent-binom")),
            ("mode", json_str("light-load")),
            ("workers", "1".to_string()),
            ("requests", "12".to_string()),
            ("batch", "8".to_string()),
            ("requests_per_s", "0.006323".to_string()),
            ("p50_latency_s", format!("{p99:.6}")),
            ("p99_latency_s", format!("{p99:.6}")),
        ]
    };
    let baseline = rendered_rows(&[row(3.0)]);
    // Identical rerun and improved tail both pass.
    assert!(check_regression(&baseline, &baseline, 0.20).is_empty());
    assert!(check_regression(&baseline, &rendered_rows(&[row(2.0)]), 0.20).is_empty());
    // The latency tail is deterministic (virtual clock): 0.25× the base
    // tolerance, lower-is-better. +4% passes; +10% fails and names the
    // metric.
    assert!(check_regression(&baseline, &rendered_rows(&[row(3.12)]), 0.20).is_empty());
    let failures = check_regression(&baseline, &rendered_rows(&[row(3.3)]), 0.20);
    assert_eq!(failures.len(), 1, "{failures:?}");
    assert!(failures[0].contains("p99_latency_s"), "{failures:?}");
    assert!(failures[0].contains("regressed"), "{failures:?}");
}

#[test]
fn gate_handles_zero_baselines_with_absolute_slack() {
    let row = |allocs: f64| -> Vec<(&'static str, String)> {
        vec![
            ("workload", json_str("divergent-binom")),
            ("mode", json_str("fused")),
            ("batch", "12".to_string()),
            ("allocs_per_superstep", format!("{allocs:.4}")),
        ]
    };
    // A zero baseline (the fast path allocates nothing) must not fail
    // every nonzero fresh value: `0 × (1 + tol)` is still 0. The gate
    // switches to absolute slack — tol in the metric's own units, here
    // 0.2 × 0.25 = 0.05 allocations per superstep.
    let baseline = rendered_rows(&[row(0.0)]);
    assert!(check_regression(&baseline, &baseline, 0.20).is_empty());
    assert!(check_regression(&baseline, &rendered_rows(&[row(0.04)]), 0.20).is_empty());
    let failures = check_regression(&baseline, &rendered_rows(&[row(0.2)]), 0.20);
    assert_eq!(failures.len(), 1, "{failures:?}");
    assert!(failures[0].contains("zero"), "{failures:?}");
    // The report stays finite — no percent-of-zero division.
    assert!(
        !failures[0].contains("inf") && !failures[0].contains("NaN"),
        "{failures:?}"
    );

    // Zero baseline on a higher-is-better metric: staying at (or above)
    // zero passes; only a drop beyond the absolute slack fails.
    let tput = |rps: f64| -> Vec<(&'static str, String)> {
        vec![
            ("workload", json_str("divergent-binom")),
            ("mode", json_str("stalled")),
            ("requests_per_s", format!("{rps:.6}")),
        ]
    };
    let baseline = rendered_rows(&[tput(0.0)]);
    assert!(check_regression(&baseline, &rendered_rows(&[tput(0.0)]), 0.20).is_empty());
    assert!(check_regression(&baseline, &rendered_rows(&[tput(5.0)]), 0.20).is_empty());
    let failures = check_regression(&baseline, &rendered_rows(&[tput(-1.0)]), 0.20);
    assert_eq!(failures.len(), 1, "{failures:?}");
}
