//! Property tests of the tensor substrate's algebraic invariants — the
//! kernels both autobatching runtimes are built on.

use autobatch_tensor::{scalar_ops, DType, Tensor};
use proptest::prelude::*;

fn vec_f64(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, len..=len)
}

proptest! {
    #[test]
    fn add_commutes_and_sub_inverts(
        a in vec_f64(12),
        b in vec_f64(12),
    ) {
        let ta = Tensor::from_f64(&a, &[3, 4]).unwrap();
        let tb = Tensor::from_f64(&b, &[3, 4]).unwrap();
        prop_assert_eq!(ta.add(&tb).unwrap(), tb.add(&ta).unwrap());
        let roundtrip = ta.add(&tb).unwrap().sub(&tb).unwrap();
        for (x, y) in roundtrip.as_f64().unwrap().iter().zip(&a) {
            prop_assert!((x - y).abs() <= 1e-9 * y.abs().max(1.0));
        }
    }

    #[test]
    fn broadcast_scalar_matches_elementwise(
        a in vec_f64(10),
        c in -50.0f64..50.0,
    ) {
        let t = Tensor::from_f64(&a, &[10]).unwrap();
        let s = Tensor::scalar(c);
        let broadcast = t.mul(&s).unwrap();
        let manual: Vec<f64> = a.iter().map(|x| x * c).collect();
        prop_assert_eq!(broadcast.as_f64().unwrap(), &manual[..]);
    }

    #[test]
    fn broadcast_row_vector_matches_loop(
        m in vec_f64(12),
        v in vec_f64(4),
    ) {
        let tm = Tensor::from_f64(&m, &[3, 4]).unwrap();
        let tv = Tensor::from_f64(&v, &[4]).unwrap();
        let out = tm.add(&tv).unwrap();
        let o = out.as_f64().unwrap();
        for r in 0..3 {
            for c in 0..4 {
                prop_assert_eq!(o[r * 4 + c], m[r * 4 + c] + v[c]);
            }
        }
    }

    #[test]
    fn masked_assign_touches_only_active_rows(
        a in vec_f64(12),
        b in vec_f64(12),
        mask in proptest::collection::vec(any::<bool>(), 3..=3),
    ) {
        let mut t = Tensor::from_f64(&a, &[3, 4]).unwrap();
        let src = Tensor::from_f64(&b, &[3, 4]).unwrap();
        t.masked_assign_rows(&mask, &src).unwrap();
        let v = t.as_f64().unwrap();
        for r in 0..3 {
            for c in 0..4 {
                let expect = if mask[r] { b[r * 4 + c] } else { a[r * 4 + c] };
                prop_assert_eq!(v[r * 4 + c], expect);
            }
        }
    }

    #[test]
    fn gather_scatter_rows_roundtrip(
        a in vec_f64(20),
        idx in proptest::collection::vec(0usize..5, 1..5),
    ) {
        // Gathering rows then scattering them back to the same indices
        // leaves the tensor unchanged.
        let t = Tensor::from_f64(&a, &[5, 4]).unwrap();
        let g = t.gather_rows(&idx).unwrap();
        let mut back = t.clone();
        back.scatter_rows(&idx, &g).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn depth_scatter_then_gather_reads_back(
        vals in vec_f64(6),
        depths in proptest::collection::vec(0usize..4, 3..=3),
    ) {
        // Writing each member's row at its own depth then gathering at
        // those depths recovers the written rows (active members only).
        let mut stack = Tensor::zeros(DType::F64, &[4, 3, 2]);
        let src = Tensor::from_f64(&vals, &[3, 2]).unwrap();
        let mask = [true, true, true];
        stack.scatter_at_depth(&depths, &mask, &src).unwrap();
        let read = stack.gather_at_depth(&depths).unwrap();
        prop_assert_eq!(read, src);
    }

    #[test]
    fn select_agrees_with_scalar_semantics(
        a in vec_f64(8),
        b in vec_f64(8),
        c in proptest::collection::vec(any::<bool>(), 8..=8),
    ) {
        let ta = Tensor::from_f64(&a, &[8]).unwrap();
        let tb = Tensor::from_f64(&b, &[8]).unwrap();
        let tc = Tensor::from_bool(&c, &[8]).unwrap();
        let out = tc.select(&ta, &tb).unwrap();
        for i in 0..8 {
            prop_assert_eq!(out.as_f64().unwrap()[i], if c[i] { a[i] } else { b[i] });
        }
    }

    #[test]
    fn sum_last_axis_matches_manual(
        a in vec_f64(12),
    ) {
        let t = Tensor::from_f64(&a, &[3, 4]).unwrap();
        let s = t.sum_last_axis().unwrap();
        for r in 0..3 {
            let manual: f64 = a[r * 4..(r + 1) * 4].iter().sum();
            prop_assert!((s.as_f64().unwrap()[r] - manual).abs() < 1e-9);
        }
    }

    #[test]
    fn dot_last_axis_is_symmetric_and_positive_on_self(
        a in vec_f64(12),
        b in vec_f64(12),
    ) {
        let ta = Tensor::from_f64(&a, &[3, 4]).unwrap();
        let tb = Tensor::from_f64(&b, &[3, 4]).unwrap();
        prop_assert_eq!(
            ta.dot_last_axis(&tb).unwrap(),
            tb.dot_last_axis(&ta).unwrap()
        );
        for &x in ta.dot_last_axis(&ta).unwrap().as_f64().unwrap() {
            prop_assert!(x >= 0.0);
        }
    }

    #[test]
    fn matvec_batched_matches_per_row_matvec(
        m in vec_f64(12),
        q in vec_f64(8),
    ) {
        let tm = Tensor::from_f64(&m, &[3, 4]).unwrap();
        let tq = Tensor::from_f64(&q, &[2, 4]).unwrap();
        let batched = tm.matvec_batched(&tq).unwrap();
        for b in 0..2 {
            let row = tq.row(b).unwrap();
            let single = tm.matvec(&row).unwrap();
            prop_assert_eq!(batched.row(b).unwrap(), single);
        }
    }

    #[test]
    fn transpose_is_involutive(m in vec_f64(12)) {
        let t = Tensor::from_f64(&m, &[3, 4]).unwrap();
        prop_assert_eq!(t.transpose().unwrap().transpose().unwrap(), t);
    }

    #[test]
    fn comparisons_partition(a in vec_f64(10), b in vec_f64(10)) {
        let ta = Tensor::from_f64(&a, &[10]).unwrap();
        let tb = Tensor::from_f64(&b, &[10]).unwrap();
        let lt = ta.lt(&tb).unwrap();
        let ge = ta.ge(&tb).unwrap();
        // lt and ge are complementary for non-NaN data.
        prop_assert_eq!(lt.not().unwrap(), ge);
    }

    #[test]
    fn casts_roundtrip_integers(v in proptest::collection::vec(-1000i64..1000, 6)) {
        let t = Tensor::from_i64(&v, &[6]).unwrap();
        prop_assert_eq!(t.to_f64().to_i64(), t);
    }

    // --- Copy-on-write and the in-place / into-buffer / fused kernels ---

    #[test]
    fn cow_mutation_never_leaks_into_the_sibling(
        a in vec_f64(12),
        idx in 0usize..12,
        v in -50.0f64..50.0,
    ) {
        let base = Tensor::from_f64(&a, &[3, 4]).unwrap();
        // set()
        let mut m = base.clone();
        prop_assert!(m.shares_storage(&base));
        m.set(&[idx / 4, idx % 4], v).unwrap();
        prop_assert!(!m.shares_storage(&base));
        prop_assert_eq!(base.as_f64().unwrap(), &a[..]);
        // map_f64_inplace()
        let mut m = base.clone();
        m.map_f64_inplace(scalar_ops::exp_f64).unwrap();
        prop_assert_eq!(base.as_f64().unwrap(), &a[..]);
        prop_assert_eq!(&m, &base.exp().unwrap());
        // masked_assign_rows()
        let mut m = base.clone();
        let src = Tensor::full(&[3, 4], v);
        m.masked_assign_rows(&[true, false, true], &src).unwrap();
        prop_assert_eq!(base.as_f64().unwrap(), &a[..]);
        // as_*_mut on a clone of a clone
        let mid = base.clone();
        let mut leaf = mid.clone();
        leaf.as_f64_mut().unwrap()[0] = v;
        prop_assert_eq!(&mid, &base);
        prop_assert_eq!(base.as_f64().unwrap(), &a[..]);
    }

    #[test]
    fn in_place_unary_is_bit_identical_to_allocating(a in vec_f64(10)) {
        for f in [
            scalar_ops::exp_f64,
            scalar_ops::sigmoid_f64,
            scalar_ops::softplus_f64,
            scalar_ops::abs_f64,
        ] {
            let t = Tensor::from_f64(&a, &[5, 2]).unwrap();
            let allocating = t.map_f64(f).unwrap();
            let mut inplace = t.clone();
            inplace.map_f64_inplace(f).unwrap();
            prop_assert_eq!(&inplace, &allocating);
        }
    }

    #[test]
    fn binary_into_matches_allocating_across_broadcasts(
        m in vec_f64(12),
        v in vec_f64(4),
        c in -50.0f64..50.0,
    ) {
        let tm = Tensor::from_f64(&m, &[3, 4]).unwrap();
        // Same shape, row-vector broadcast, and scalar broadcast, with
        // a dirty reused scratch tensor of the wrong prior shape.
        let mut out = Tensor::zeros(DType::F64, &[7]);
        for rhs in [
            Tensor::from_f64(&m, &[3, 4]).unwrap(),
            Tensor::from_f64(&v, &[4]).unwrap(),
            Tensor::scalar(c),
        ] {
            for (f, name) in [
                (scalar_ops::add_f64 as fn(f64, f64) -> f64, "add"),
                (scalar_ops::mul_f64 as fn(f64, f64) -> f64, "mul"),
                (scalar_ops::div_f64 as fn(f64, f64) -> f64, "div"),
            ] {
                let allocating = match name {
                    "add" => tm.add(&rhs).unwrap(),
                    "mul" => tm.mul(&rhs).unwrap(),
                    _ => tm.div(&rhs).unwrap(),
                };
                tm.binary_f64_into(&rhs, f, &mut out).unwrap();
                prop_assert_eq!(&out, &allocating, "op {}", name);
            }
        }
    }

    #[test]
    fn binary_into_tolerates_aliased_scratch(
        a in vec_f64(8),
        b in vec_f64(8),
    ) {
        let ta = Tensor::from_f64(&a, &[8]).unwrap();
        let tb = Tensor::from_f64(&b, &[8]).unwrap();
        // The scratch buffer aliases the left operand's storage: the
        // copy-on-write contract must keep `ta` intact.
        let mut out = ta.clone();
        ta.binary_f64_into(&tb, scalar_ops::add_f64, &mut out).unwrap();
        prop_assert_eq!(&out, &ta.add(&tb).unwrap());
        prop_assert_eq!(ta.as_f64().unwrap(), &a[..]);
    }

    #[test]
    fn fused_mul_add_and_axpy_match_composed_kernels(
        a in vec_f64(12),
        b in vec_f64(12),
        v in vec_f64(4),
        alpha in -10.0f64..10.0,
    ) {
        let ta = Tensor::from_f64(&a, &[3, 4]).unwrap();
        let tb = Tensor::from_f64(&b, &[3, 4]).unwrap();
        let tv = Tensor::from_f64(&v, &[4]).unwrap();
        // mul_add over equal shapes and over a broadcast operand.
        prop_assert_eq!(
            &ta.mul_add(&tb, &ta).unwrap(),
            &ta.mul(&tb).unwrap().add(&ta).unwrap()
        );
        prop_assert_eq!(
            &ta.mul_add(&tv, &tb).unwrap(),
            &ta.mul(&tv).unwrap().add(&tb).unwrap()
        );
        // axpy: self + alpha·x, composed as the same expression.
        let mut y = ta.clone();
        y.axpy_inplace(alpha, &tb).unwrap();
        let composed = ta.add(&tb.mul(&Tensor::scalar(alpha)).unwrap()).unwrap();
        prop_assert_eq!(&y, &composed);
    }
}
