//! # autobatch-tensor
//!
//! A self-contained batched N-dimensional array library: the "machine
//! learning framework kernels" substrate for the autobatching runtimes of
//! [Radul et al., MLSys 2020](https://arxiv.org/abs/1910.11141).
//!
//! The crate provides:
//!
//! - [`Tensor`]: dense row-major arrays of `f64` / `i64` / `bool`;
//! - elementwise kernels with NumPy-style broadcasting
//!   ([`Tensor::add`], [`Tensor::select`], comparisons, …);
//! - reductions ([`Tensor::sum_last_axis`], [`Tensor::any`], …);
//! - small linear algebra ([`Tensor::matvec_batched`], [`Tensor::matmul`]);
//! - the gather/scatter/mask kernels the autobatching virtual machines
//!   are built on ([`Tensor::masked_assign_rows`],
//!   [`Tensor::gather_at_depth`], [`Tensor::scatter_at_depth`]);
//! - a counter-based random source ([`CounterRng`]) whose draws are
//!   identical whether a logical thread runs alone or inside a batch.
//!
//! # Performance architecture
//!
//! [`Tensor`] storage is **copy-on-write**: the payload sits behind an
//! `Arc`, `clone()` is O(1), and every mutating accessor copies the
//! buffer first if it is shared (see the type-level docs for the full
//! contract). On top of the allocating kernels, the hot paths get
//! **in-place and into-buffer variants** ([`Tensor::map_f64_inplace`],
//! [`Tensor::binary_f64_into`]) plus **fused elementwise ops**
//! ([`Tensor::mul_add`], [`Tensor::axpy_inplace`]) that traverse the
//! data once. The scalar functions behind every elementwise kernel are
//! shared through [`scalar_ops`], so fused and per-kernel execution are
//! bit-identical by construction.
//!
//! Everything operates on whole arrays at once — the SIMD contract that
//! batching exploits — and every fallible operation returns
//! [`TensorError`] instead of panicking, so shape bugs in user programs
//! surface as recoverable diagnostics from the virtual machines.
//!
//! # Examples
//!
//! ```
//! use autobatch_tensor::{DType, Tensor};
//!
//! // A batch of three scalars and a mask of "active" members.
//! let mut state = Tensor::from_f64(&[1.0, 2.0, 3.0], &[3])?;
//! let doubled = state.mul(&Tensor::scalar(2.0))?;
//! state.masked_assign_rows(&[true, false, true], &doubled)?;
//! assert_eq!(state.as_f64()?, &[2.0, 2.0, 6.0]);
//! # Ok::<(), autobatch_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dtype;
mod elementwise;
mod error;
mod index;
mod linalg;
mod reduce;
mod rng;
pub mod scalar_ops;
pub mod shape;
mod tensor;

pub use dtype::{DType, Data, Scalar};
pub use error::{Result, TensorError};
pub use rng::{splitmix64, CounterRng};
pub use tensor::Tensor;
