//! Small linear-algebra kernels: batched dot products, matrix-vector and
//! matrix-matrix products.
//!
//! These model the heavyweight "leaf kernels" of the paper's workloads —
//! the Bayesian logistic-regression gradient is dominated by `X·β` and
//! `Xᵀ·r` products with a `10,000 × 100` design matrix.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

impl Tensor {
    /// Batched dot product over the trailing axis.
    ///
    /// For two tensors of shape `[.., k]`, returns elementwise
    /// `sum(a * b)` of shape `[..]`. With the runtimes' `[Z, d]` layout
    /// this is "one dot product per batch member".
    ///
    /// # Errors
    ///
    /// Returns an error on dtype or shape mismatch.
    pub fn dot_last_axis(&self, rhs: &Tensor) -> Result<Tensor> {
        self.mul(rhs)?.sum_last_axis()
    }

    /// Matrix–vector product: `self` of shape `[m, k]`, `v` of shape `[k]`,
    /// result of shape `[m]`.
    ///
    /// # Errors
    ///
    /// Returns an error unless both are `f64` with conforming shapes.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor> {
        let a = self.as_f64()?;
        let x = v.as_f64()?;
        if self.rank() != 2 || v.rank() != 1 || self.shape()[1] != v.shape()[0] {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().to_vec(),
                rhs: v.shape().to_vec(),
                op: "matvec",
            });
        }
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let mut out = vec![0.0; m];
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            out[i] = row.iter().zip(x).map(|(&r, &xx)| r * xx).sum();
        }
        Tensor::from_f64(&out, &[m])
    }

    /// Batched matrix–vector product: `self` of shape `[m, k]` applied to
    /// every row of `vs` of shape `[z, k]`, producing `[z, m]`.
    ///
    /// This is the kernel shape the batched logistic-regression gradient
    /// uses: one shared design matrix against a batch of parameter vectors.
    ///
    /// # Errors
    ///
    /// Returns an error unless both are `f64` with conforming shapes.
    pub fn matvec_batched(&self, vs: &Tensor) -> Result<Tensor> {
        let a = self.as_f64()?;
        let x = vs.as_f64()?;
        if self.rank() != 2 || vs.rank() != 2 || self.shape()[1] != vs.shape()[1] {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().to_vec(),
                rhs: vs.shape().to_vec(),
                op: "matvec_batched",
            });
        }
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let z = vs.shape()[0];
        let mut out = vec![0.0; z * m];
        for b in 0..z {
            let vb = &x[b * k..(b + 1) * k];
            for i in 0..m {
                let row = &a[i * k..(i + 1) * k];
                out[b * m + i] = row.iter().zip(vb).map(|(&r, &xx)| r * xx).sum();
            }
        }
        Tensor::from_f64(&out, &[z, m])
    }

    /// Batched transposed matrix–vector product: `selfᵀ` (`self` of shape
    /// `[m, k]`) applied to every row of `vs` of shape `[z, m]`, producing
    /// `[z, k]`.
    ///
    /// # Errors
    ///
    /// Returns an error unless both are `f64` with conforming shapes.
    pub fn matvec_t_batched(&self, vs: &Tensor) -> Result<Tensor> {
        let a = self.as_f64()?;
        let x = vs.as_f64()?;
        if self.rank() != 2 || vs.rank() != 2 || self.shape()[0] != vs.shape()[1] {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().to_vec(),
                rhs: vs.shape().to_vec(),
                op: "matvec_t_batched",
            });
        }
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let z = vs.shape()[0];
        let mut out = vec![0.0; z * k];
        for b in 0..z {
            let vb = &x[b * m..(b + 1) * m];
            let ob = &mut out[b * k..(b + 1) * k];
            for i in 0..m {
                let row = &a[i * k..(i + 1) * k];
                let s = vb[i];
                for (o, &r) in ob.iter_mut().zip(row) {
                    *o += s * r;
                }
            }
        }
        Tensor::from_f64(&out, &[z, k])
    }

    /// Matrix–matrix product: `[m, k] × [k, n] → [m, n]`.
    ///
    /// # Errors
    ///
    /// Returns an error unless both are `f64` with conforming shapes.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        let a = self.as_f64()?;
        let b = rhs.as_f64()?;
        if self.rank() != 2 || rhs.rank() != 2 || self.shape()[1] != rhs.shape()[0] {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().to_vec(),
                rhs: rhs.shape().to_vec(),
                op: "matmul",
            });
        }
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let n = rhs.shape()[1];
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for p in 0..k {
                let aip = a[i * k + p];
                let brow = &b[p * n..(p + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += aip * bv;
                }
            }
        }
        Tensor::from_f64(&out, &[m, n])
    }

    /// Transpose a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error unless the tensor is rank-2 `f64`.
    pub fn transpose(&self) -> Result<Tensor> {
        let a = self.as_f64()?;
        if self.rank() != 2 {
            return Err(TensorError::InvalidAxis {
                axis: 1,
                rank: self.rank(),
            });
        }
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Tensor::from_f64(&out, &[n, m])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_last_axis_batched() {
        let a = Tensor::from_f64(&[1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_f64(&[5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let d = a.dot_last_axis(&b).unwrap();
        assert_eq!(d.as_f64().unwrap(), &[17.0, 53.0]);
    }

    #[test]
    fn matvec_small() {
        let m = Tensor::from_f64(&[1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let v = Tensor::from_f64(&[1.0, 1.0], &[2]).unwrap();
        assert_eq!(m.matvec(&v).unwrap().as_f64().unwrap(), &[3.0, 7.0]);
    }

    #[test]
    fn matvec_batched_matches_loop() {
        let m = Tensor::from_f64(&[1.0, 0.0, 0.0, 2.0, 1.0, 1.0], &[3, 2]).unwrap();
        let vs = Tensor::from_f64(&[1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let out = m.matvec_batched(&vs).unwrap();
        assert_eq!(out.shape(), &[2, 3]);
        assert_eq!(out.as_f64().unwrap(), &[1.0, 4.0, 3.0, 3.0, 8.0, 7.0]);
    }

    #[test]
    fn matvec_t_batched_is_transpose_product() {
        let m = Tensor::from_f64(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]).unwrap();
        let vs = Tensor::from_f64(&[1.0, 0.0, 1.0], &[1, 3]).unwrap();
        let out = m.matvec_t_batched(&vs).unwrap();
        assert_eq!(out.shape(), &[1, 2]);
        assert_eq!(out.as_f64().unwrap(), &[6.0, 8.0]); // col sums of rows 0 and 2
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Tensor::from_f64(&[1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let i = Tensor::from_f64(&[1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        assert_eq!(a.matmul(&i).unwrap(), a);
        let at = a.transpose().unwrap();
        assert_eq!(at.as_f64().unwrap(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn shape_errors() {
        let a = Tensor::from_f64(&[1.0, 2.0], &[2]).unwrap();
        let m = Tensor::from_f64(&[1.0, 2.0, 3.0], &[3, 1]).unwrap();
        assert!(m.matvec(&a).is_err());
        assert!(m.matmul(&m).is_err());
    }
}
