//! Counter-based random number generation.
//!
//! Batched MCMC needs a random stream per batch member that is (a)
//! independent across members, (b) insensitive to the *order* in which
//! the runtime happens to schedule basic blocks, and (c) identical whether
//! a member runs alone or inside a batch. A counter-based generator
//! delivers all three: each draw is a pure hash of
//! `(seed, batch_member, counter)`, and programs thread the counter
//! through their control flow explicitly (so it stacks correctly across
//! recursion, like any other program variable).
//!
//! The mixing function is SplitMix64 (Steele et al., "Fast splittable
//! pseudorandom number generators"), which passes BigCrush when used as a
//! one-shot mixer and is trivially reproducible.

use crate::tensor::Tensor;

/// Deterministic counter-based random source.
///
/// # Examples
///
/// ```
/// use autobatch_tensor::CounterRng;
///
/// let rng = CounterRng::new(42);
/// let a = rng.uniform(7, 0);
/// let b = rng.uniform(7, 0);
/// assert_eq!(a, b, "same (member, counter) gives the same draw");
/// assert_ne!(a, rng.uniform(7, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterRng {
    seed: u64,
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl CounterRng {
    /// Create a source with the given global seed.
    pub fn new(seed: u64) -> CounterRng {
        CounterRng { seed }
    }

    /// The seed this source was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    #[inline]
    fn mix(&self, member: u64, counter: i64, salt: u64) -> u64 {
        // Three rounds of mixing decorrelate the structured inputs.
        let a = splitmix64(self.seed ^ splitmix64(member.wrapping_add(0xA5A5_A5A5)));
        let b = splitmix64(counter as u64 ^ splitmix64(salt));
        splitmix64(a ^ b.rotate_left(17))
    }

    /// One uniform draw in `[0, 1)` for `(member, counter)`.
    #[inline]
    pub fn uniform(&self, member: u64, counter: i64) -> f64 {
        // 53 random mantissa bits.
        let bits = self.mix(member, counter, 0x0) >> 11;
        bits as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// One standard normal draw for `(member, counter)` via Box–Muller.
    #[inline]
    pub fn normal(&self, member: u64, counter: i64) -> f64 {
        let u1 = {
            let bits = self.mix(member, counter, 0x1) >> 11;
            // Nudge away from zero so ln is finite.
            (bits as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
        };
        let u2 = {
            let bits = self.mix(member, counter, 0x2) >> 11;
            bits as f64 * (1.0 / (1u64 << 53) as f64)
        };
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// One standard exponential draw for `(member, counter)`.
    #[inline]
    pub fn exponential(&self, member: u64, counter: i64) -> f64 {
        let u = {
            let bits = self.mix(member, counter, 0x3) >> 11;
            (bits as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
        };
        -u.ln()
    }

    /// Batched uniform draws: element `[b, ..]` uses member `b` and the
    /// counter `counters[b]`, with trailing element index folded into the
    /// counter stream.
    ///
    /// `counters` has length `Z`; the result has shape `[Z, elem..]`.
    pub fn uniform_batch(&self, counters: &[i64], elem: &[usize]) -> Tensor {
        let members: Vec<u64> = (0..counters.len() as u64).collect();
        self.uniform_batch_for(&members, counters, elem)
    }

    /// Batched standard normal draws; see [`CounterRng::uniform_batch`].
    pub fn normal_batch(&self, counters: &[i64], elem: &[usize]) -> Tensor {
        let members: Vec<u64> = (0..counters.len() as u64).collect();
        self.normal_batch_for(&members, counters, elem)
    }

    /// Batched standard exponential draws; see [`CounterRng::uniform_batch`].
    pub fn exponential_batch(&self, counters: &[i64], elem: &[usize]) -> Tensor {
        let members: Vec<u64> = (0..counters.len() as u64).collect();
        self.exponential_batch_for(&members, counters, elem)
    }

    /// Batched uniform draws with explicit member ids. Row `i` uses
    /// `(members[i], counters[i])`, so a gathered sub-batch draws exactly
    /// what the full batch would have drawn for those members.
    pub fn uniform_batch_for(&self, members: &[u64], counters: &[i64], elem: &[usize]) -> Tensor {
        self.batch(members, counters, elem, |m, c| self.uniform(m, c))
    }

    /// Batched normal draws with explicit member ids; see
    /// [`CounterRng::uniform_batch_for`].
    pub fn normal_batch_for(&self, members: &[u64], counters: &[i64], elem: &[usize]) -> Tensor {
        self.batch(members, counters, elem, |m, c| self.normal(m, c))
    }

    /// Batched exponential draws with explicit member ids; see
    /// [`CounterRng::uniform_batch_for`].
    pub fn exponential_batch_for(
        &self,
        members: &[u64],
        counters: &[i64],
        elem: &[usize],
    ) -> Tensor {
        self.batch(members, counters, elem, |m, c| self.exponential(m, c))
    }

    fn batch<F: Fn(u64, i64) -> f64>(
        &self,
        members: &[u64],
        counters: &[i64],
        elem: &[usize],
        f: F,
    ) -> Tensor {
        debug_assert_eq!(members.len(), counters.len());
        let el: usize = elem.iter().product();
        let z = counters.len();
        let mut out = Vec::with_capacity(z * el);
        for (&m, &c) in members.iter().zip(counters) {
            for e in 0..el {
                // Fold the element index into the counter stream so a
                // vector draw consumes logically distinct counters.
                out.push(f(m, c.wrapping_mul(1_000_003).wrapping_add(e as i64)));
            }
        }
        let mut shape = Vec::with_capacity(elem.len() + 1);
        shape.push(z);
        shape.extend_from_slice(elem);
        Tensor::from_f64(&out, &shape).expect("constructed with matching volume")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_and_member_independent() {
        let rng = CounterRng::new(7);
        assert_eq!(rng.uniform(0, 0), rng.uniform(0, 0));
        assert_ne!(rng.uniform(0, 0), rng.uniform(1, 0));
        assert_ne!(rng.uniform(0, 0), rng.uniform(0, 1));
        assert_ne!(CounterRng::new(8).uniform(0, 0), rng.uniform(0, 0));
    }

    #[test]
    fn uniform_in_unit_interval() {
        let rng = CounterRng::new(3);
        for c in 0..1000 {
            let u = rng.uniform(5, c);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_reasonable() {
        let rng = CounterRng::new(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|c| rng.uniform(0, c)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn normal_moments_reasonable() {
        let rng = CounterRng::new(13);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|c| rng.normal(0, c)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn exponential_mean_reasonable() {
        let rng = CounterRng::new(17);
        let n = 20_000;
        let mean: f64 = (0..n).map(|c| rng.exponential(0, c)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean = {mean}");
        for c in 0..100 {
            assert!(rng.exponential(0, c) >= 0.0);
        }
    }

    #[test]
    fn batch_matches_scalar_draws() {
        let rng = CounterRng::new(21);
        let t = rng.uniform_batch(&[5, 9], &[]);
        assert_eq!(t.shape(), &[2]);
        let v = t.as_f64().unwrap();
        assert_eq!(v[0], rng.uniform(0, 5_000_015)); // 5 * 1_000_003 + 0
        assert_eq!(v[1], rng.uniform(1, 9_000_027));
    }

    #[test]
    fn batch_for_matches_full_batch_rows() {
        // Drawing for members {0, 2} out of a batch of 3 gives exactly
        // the rows those members would get in the full batch.
        let rng = CounterRng::new(5);
        let full = rng.normal_batch(&[10, 11, 12], &[2]);
        let sub = rng.normal_batch_for(&[0, 2], &[10, 12], &[2]);
        let f = full.as_f64().unwrap();
        let s = sub.as_f64().unwrap();
        assert_eq!(&s[0..2], &f[0..2]);
        assert_eq!(&s[2..4], &f[4..6]);
    }

    #[test]
    fn batch_vector_shape() {
        let rng = CounterRng::new(21);
        let t = rng.normal_batch(&[0, 1, 2], &[4]);
        assert_eq!(t.shape(), &[3, 4]);
        // All 12 draws distinct with overwhelming probability.
        let v = t.as_f64().unwrap();
        let mut sorted = v.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.dedup();
        assert_eq!(sorted.len(), 12);
    }
}
