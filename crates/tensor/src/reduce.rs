//! Reduction kernels: full and per-axis sums, extrema, and boolean
//! any/all, plus reductions over the trailing axis (the per-batch-member
//! element axis in the autobatching runtimes).

use crate::dtype::Data;
use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

impl Tensor {
    /// Sum of all elements (numeric dtypes).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] for `bool` tensors.
    pub fn sum_all(&self) -> Result<f64> {
        match self.data() {
            Data::F64(v) => Ok(v.iter().sum()),
            Data::I64(v) => Ok(v.iter().map(|&x| x as f64).sum()),
            Data::Bool(_) => Err(TensorError::DTypeMismatch {
                got: self.dtype(),
                expected: "numeric dtype",
                op: "sum_all",
            }),
        }
    }

    /// Maximum of all elements of an `f64` tensor (`-inf` when empty).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] unless the dtype is `f64`.
    pub fn max_all(&self) -> Result<f64> {
        let v = self.as_f64()?;
        Ok(v.iter().copied().fold(f64::NEG_INFINITY, f64::max))
    }

    /// Minimum of all elements of an `f64` tensor (`+inf` when empty).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] unless the dtype is `f64`.
    pub fn min_all(&self) -> Result<f64> {
        let v = self.as_f64()?;
        Ok(v.iter().copied().fold(f64::INFINITY, f64::min))
    }

    /// Arithmetic mean of all elements of an `f64` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] unless the dtype is `f64`,
    /// or [`TensorError::DataLength`] when empty.
    pub fn mean_all(&self) -> Result<f64> {
        if self.is_empty() {
            return Err(TensorError::DataLength {
                expected: 1,
                got: 0,
            });
        }
        Ok(self.sum_all()? / self.len() as f64)
    }

    /// Whether any element of a `bool` tensor is `true`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] unless the dtype is `bool`.
    pub fn any(&self) -> Result<bool> {
        Ok(self.as_bool()?.iter().any(|&x| x))
    }

    /// Whether all elements of a `bool` tensor are `true`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] unless the dtype is `bool`.
    pub fn all(&self) -> Result<bool> {
        Ok(self.as_bool()?.iter().all(|&x| x))
    }

    /// Sum over the trailing axis.
    ///
    /// For a tensor of shape `[.., k]` produces shape `[..]`. This is the
    /// per-batch-member reduction used for dot products and norms in the
    /// batched runtimes: axis 0 (the batch) is preserved.
    ///
    /// # Errors
    ///
    /// Returns an error for non-`f64` dtypes or rank-0 tensors.
    pub fn sum_last_axis(&self) -> Result<Tensor> {
        let v = self.as_f64()?;
        let rank = self.rank();
        if rank == 0 {
            return Err(TensorError::InvalidAxis { axis: 0, rank: 0 });
        }
        let k = self.shape()[rank - 1];
        let out_shape = &self.shape()[..rank - 1];
        let rows = self.len() / k.max(1);
        let mut out = Vec::with_capacity(rows);
        if k == 0 {
            out.resize(rows, 0.0);
        } else {
            for r in 0..rows {
                out.push(v[r * k..(r + 1) * k].iter().sum());
            }
        }
        Tensor::from_f64(&out, out_shape)
    }

    /// Logical AND over the trailing axis (for `bool` tensors).
    ///
    /// # Errors
    ///
    /// Returns an error for non-`bool` dtypes or rank-0 tensors.
    pub fn all_last_axis(&self) -> Result<Tensor> {
        let v = self.as_bool()?;
        let rank = self.rank();
        if rank == 0 {
            return Err(TensorError::InvalidAxis { axis: 0, rank: 0 });
        }
        let k = self.shape()[rank - 1];
        let out_shape = &self.shape()[..rank - 1];
        let rows = self.len() / k.max(1);
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            out.push(if k == 0 {
                true
            } else {
                v[r * k..(r + 1) * k].iter().all(|&x| x)
            });
        }
        Tensor::from_bool(&out, out_shape)
    }

    /// Sum along `axis`, removing it from the shape.
    ///
    /// # Errors
    ///
    /// Returns an error for non-`f64` dtypes or an out-of-range axis.
    pub fn sum_axis(&self, axis: usize) -> Result<Tensor> {
        let v = self.as_f64()?;
        let rank = self.rank();
        if axis >= rank {
            return Err(TensorError::InvalidAxis { axis, rank });
        }
        let shape = self.shape();
        let outer: usize = shape[..axis].iter().product();
        let mid = shape[axis];
        let inner: usize = shape[axis + 1..].iter().product();
        let mut out = vec![0.0; outer * inner];
        for o in 0..outer {
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    out[obase + i] += v[base + i];
                }
            }
        }
        let mut out_shape: Vec<usize> = shape[..axis].to_vec();
        out_shape.extend_from_slice(&shape[axis + 1..]);
        Tensor::from_f64(&out, &out_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_reductions() {
        let t = Tensor::from_f64(&[1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.sum_all().unwrap(), 10.0);
        assert_eq!(t.max_all().unwrap(), 4.0);
        assert_eq!(t.min_all().unwrap(), 1.0);
        assert_eq!(t.mean_all().unwrap(), 2.5);
    }

    #[test]
    fn any_all() {
        let t = Tensor::from_bool(&[false, true], &[2]).unwrap();
        assert!(t.any().unwrap());
        assert!(!t.all().unwrap());
        let f = Tensor::from_bool(&[], &[0]).unwrap();
        assert!(!f.any().unwrap());
        assert!(f.all().unwrap());
    }

    #[test]
    fn sum_last_axis_matrix() {
        let t = Tensor::from_f64(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let s = t.sum_last_axis().unwrap();
        assert_eq!(s.shape(), &[2]);
        assert_eq!(s.as_f64().unwrap(), &[6.0, 15.0]);
    }

    #[test]
    fn sum_last_axis_vector_gives_rank0() {
        let t = Tensor::from_f64(&[1.0, 2.0], &[2]).unwrap();
        let s = t.sum_last_axis().unwrap();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.item().unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn all_last_axis() {
        let t = Tensor::from_bool(&[true, true, true, false], &[2, 2]).unwrap();
        let s = t.all_last_axis().unwrap();
        assert_eq!(s.as_bool().unwrap(), &[true, false]);
    }

    #[test]
    fn sum_axis_middle() {
        // Shape [2, 3, 2]; sum over axis 1.
        let v: Vec<f64> = (0..12).map(|x| x as f64).collect();
        let t = Tensor::from_f64(&v, &[2, 3, 2]).unwrap();
        let s = t.sum_axis(1).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        // Row 0: (0+2+4, 1+3+5) = (6, 9); row 1: (6+8+10, 7+9+11) = (24, 27).
        assert_eq!(s.as_f64().unwrap(), &[6.0, 9.0, 24.0, 27.0]);
    }

    #[test]
    fn sum_axis_bad_axis() {
        let t = Tensor::from_f64(&[1.0], &[1]).unwrap();
        assert!(t.sum_axis(1).is_err());
    }

    #[test]
    fn bool_sum_rejected() {
        let t = Tensor::from_bool(&[true], &[1]).unwrap();
        assert!(t.sum_all().is_err());
    }
}
