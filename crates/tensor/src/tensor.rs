//! The dense [`Tensor`] type and its constructors/accessors.

use std::fmt;
use std::sync::Arc;

use crate::dtype::{DType, Data, Scalar};
use crate::error::{Result, TensorError};
use crate::shape::volume;

/// A dense, row-major N-dimensional array of `f64`, `i64`, or `bool`.
///
/// This is the batched-array substrate the autobatching runtimes execute
/// against. By convention the runtimes use axis 0 as the batch dimension
/// and (for stacked variables) axis 0 of a separate stack tensor as the
/// stack-depth dimension, but `Tensor` itself is plain N-d storage with
/// no special axes.
///
/// # Copy-on-write storage
///
/// The payload lives behind an [`Arc`], so [`Clone`] is O(1) — clones
/// share storage until one of them is mutated. Every mutating accessor
/// (`as_*_mut`, [`Tensor::set`], the in-place kernels) goes through
/// [`Arc::make_mut`], which copies the buffer first if (and only if) it
/// is shared. A shared buffer is therefore never mutated observably:
/// holding a clone — an observer snapshot, a cached stack top — is
/// always safe, and the interpreter's hot loop pays a deep copy only on
/// the first write after a share, not on every clone. [`Tensor::reshape`]
/// shares storage with the source for the same reason.
///
/// # Examples
///
/// ```
/// use autobatch_tensor::Tensor;
///
/// let t = Tensor::from_f64(&[1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// assert_eq!(t.shape(), &[2, 2]);
/// assert_eq!(t.get_f64(&[1, 0])?, 3.0);
///
/// // Clones are O(1) and share storage until mutated.
/// let mut u = t.clone();
/// assert!(t.shares_storage(&u));
/// u.set(&[0, 0], 9.0)?;
/// assert!(!t.shares_storage(&u));
/// assert_eq!(t.get_f64(&[0, 0])?, 1.0); // the sibling is untouched
/// # Ok::<(), autobatch_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    /// Shared shape: cloning a tensor must not touch the heap, so the
    /// dims live behind an `Arc` just like the payload.
    shape: Arc<[usize]>,
    data: Arc<Data>,
}

impl Tensor {
    /// Construct a tensor from raw storage and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] if `data.len()` does not equal
    /// the shape's volume.
    pub fn new(data: Data, shape: &[usize]) -> Result<Tensor> {
        let expected = volume(shape);
        if data.len() != expected {
            return Err(TensorError::DataLength {
                expected,
                got: data.len(),
            });
        }
        Ok(Tensor {
            shape: Arc::from(shape),
            data: Arc::new(data),
        })
    }

    /// Construct an `f64` tensor from a slice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] on a shape/data length mismatch.
    pub fn from_f64(data: &[f64], shape: &[usize]) -> Result<Tensor> {
        Tensor::new(Data::F64(data.to_vec()), shape)
    }

    /// Construct an `i64` tensor from a slice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] on a shape/data length mismatch.
    pub fn from_i64(data: &[i64], shape: &[usize]) -> Result<Tensor> {
        Tensor::new(Data::I64(data.to_vec()), shape)
    }

    /// Construct a `bool` tensor from a slice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] on a shape/data length mismatch.
    pub fn from_bool(data: &[bool], shape: &[usize]) -> Result<Tensor> {
        Tensor::new(Data::Bool(data.to_vec()), shape)
    }

    /// A rank-0 (scalar) tensor holding one element.
    pub fn scalar(value: impl Into<Scalar>) -> Tensor {
        match value.into() {
            Scalar::F64(x) => Tensor {
                shape: Arc::from([].as_slice()),
                data: Arc::new(Data::F64(vec![x])),
            },
            Scalar::I64(x) => Tensor {
                shape: Arc::from([].as_slice()),
                data: Arc::new(Data::I64(vec![x])),
            },
            Scalar::Bool(x) => Tensor {
                shape: Arc::from([].as_slice()),
                data: Arc::new(Data::Bool(vec![x])),
            },
        }
    }

    /// A tensor of the given shape filled with `value`.
    pub fn full(shape: &[usize], value: impl Into<Scalar>) -> Tensor {
        let n = volume(shape);
        let data = match value.into() {
            Scalar::F64(x) => Data::F64(vec![x; n]),
            Scalar::I64(x) => Data::I64(vec![x; n]),
            Scalar::Bool(x) => Data::Bool(vec![x; n]),
        };
        Tensor {
            shape: Arc::from(shape),
            data: Arc::new(data),
        }
    }

    /// A zero-filled tensor (`0.0` / `0` / `false`).
    pub fn zeros(dtype: DType, shape: &[usize]) -> Tensor {
        Tensor {
            shape: Arc::from(shape),
            data: Arc::new(Data::zeros(dtype, volume(shape))),
        }
    }

    /// `[0, 1, ..., n-1]` as an `i64` vector.
    pub fn arange(n: usize) -> Tensor {
        Tensor {
            shape: Arc::from([n].as_slice()),
            data: Arc::new(Data::I64((0..n as i64).collect())),
        }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The element type.
    pub fn dtype(&self) -> DType {
        self.data.dtype()
    }

    /// The size in bytes of the payload, as used by the cost model.
    pub fn size_bytes(&self) -> usize {
        self.len() * self.dtype().size_bytes()
    }

    /// Borrow the raw storage.
    pub fn data(&self) -> &Data {
        &self.data
    }

    /// Extract the raw storage, consuming the tensor. Copies only when
    /// the storage is shared with another tensor.
    pub fn into_data(self) -> Data {
        Arc::try_unwrap(self.data).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Whether two tensors share one copy-on-write payload. Diagnostic
    /// only: sharing is an optimization, never an observable semantic.
    pub fn shares_storage(&self, other: &Tensor) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// A tensor with `self`'s shape and fresh storage, sharing the
    /// shape allocation — the allocation-minimal way for a kernel to
    /// build a same-shaped result.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] if `data.len()` differs from
    /// `self.len()`.
    pub fn like(&self, data: Data) -> Result<Tensor> {
        if data.len() != self.len() {
            return Err(TensorError::DataLength {
                expected: self.len(),
                got: data.len(),
            });
        }
        Ok(Tensor {
            shape: Arc::clone(&self.shape),
            data: Arc::new(data),
        })
    }

    /// Turn `self` into an `f64` tensor of `shape` whose contents are
    /// unspecified (zero-filled where freshly grown), reusing the current
    /// allocation when it is an unshared `f64` buffer. Callers overwrite
    /// every element before reading.
    pub(crate) fn reset_f64(&mut self, shape: &[usize]) {
        let n = volume(shape);
        self.shape = Arc::from(shape);
        match Arc::get_mut(&mut self.data) {
            Some(Data::F64(v)) => v.resize(n, 0.0),
            _ => self.data = Arc::new(Data::zeros(DType::F64, n)),
        }
    }

    /// Borrow the payload as `&[f64]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] if the dtype is not `f64`.
    pub fn as_f64(&self) -> Result<&[f64]> {
        match &*self.data {
            Data::F64(v) => Ok(v),
            _ => Err(self.dtype_err("f64", "as_f64")),
        }
    }

    /// Borrow the payload as `&[i64]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] if the dtype is not `i64`.
    pub fn as_i64(&self) -> Result<&[i64]> {
        match &*self.data {
            Data::I64(v) => Ok(v),
            _ => Err(self.dtype_err("i64", "as_i64")),
        }
    }

    /// Borrow the payload as `&[bool]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] if the dtype is not `bool`.
    pub fn as_bool(&self) -> Result<&[bool]> {
        match &*self.data {
            Data::Bool(v) => Ok(v),
            _ => Err(self.dtype_err("bool", "as_bool")),
        }
    }

    /// Mutably borrow the payload as `&mut [f64]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] if the dtype is not `f64`.
    pub fn as_f64_mut(&mut self) -> Result<&mut [f64]> {
        match Arc::make_mut(&mut self.data) {
            Data::F64(v) => Ok(v),
            d => {
                let got = d.dtype();
                Err(TensorError::DTypeMismatch {
                    got,
                    expected: "f64",
                    op: "as_f64_mut",
                })
            }
        }
    }

    /// Mutably borrow the payload as `&mut [i64]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] if the dtype is not `i64`.
    pub fn as_i64_mut(&mut self) -> Result<&mut [i64]> {
        match Arc::make_mut(&mut self.data) {
            Data::I64(v) => Ok(v),
            d => {
                let got = d.dtype();
                Err(TensorError::DTypeMismatch {
                    got,
                    expected: "i64",
                    op: "as_i64_mut",
                })
            }
        }
    }

    /// Mutably borrow the payload as `&mut [bool]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] if the dtype is not `bool`.
    pub fn as_bool_mut(&mut self) -> Result<&mut [bool]> {
        match Arc::make_mut(&mut self.data) {
            Data::Bool(v) => Ok(v),
            d => {
                let got = d.dtype();
                Err(TensorError::DTypeMismatch {
                    got,
                    expected: "bool",
                    op: "as_bool_mut",
                })
            }
        }
    }

    fn dtype_err(&self, expected: &'static str, op: &'static str) -> TensorError {
        TensorError::DTypeMismatch {
            got: self.dtype(),
            expected,
            op,
        }
    }

    /// Linear (row-major) index of a multi-index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index rank or any coordinate is out of range.
    pub fn linear_index(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(TensorError::ShapeMismatch {
                lhs: index.to_vec(),
                rhs: self.shape.to_vec(),
                op: "linear_index",
            });
        }
        let mut lin = 0;
        for (d, (&i, &dim)) in index.iter().zip(self.shape.iter()).enumerate() {
            if i >= dim {
                return Err(TensorError::IndexOutOfBounds {
                    index: i,
                    len: dim,
                    op: "linear_index",
                });
            }
            let _ = d;
            lin = lin * dim + i;
        }
        Ok(lin)
    }

    /// Read one element as a [`Scalar`].
    ///
    /// # Errors
    ///
    /// Returns an error if the index is invalid.
    pub fn get(&self, index: &[usize]) -> Result<Scalar> {
        let lin = self.linear_index(index)?;
        Ok(match &*self.data {
            Data::F64(v) => Scalar::F64(v[lin]),
            Data::I64(v) => Scalar::I64(v[lin]),
            Data::Bool(v) => Scalar::Bool(v[lin]),
        })
    }

    /// Read one `f64` element.
    ///
    /// # Errors
    ///
    /// Returns an error if the index is invalid or the dtype is not `f64`.
    pub fn get_f64(&self, index: &[usize]) -> Result<f64> {
        let lin = self.linear_index(index)?;
        self.as_f64().map(|v| v[lin])
    }

    /// Read one `i64` element.
    ///
    /// # Errors
    ///
    /// Returns an error if the index is invalid or the dtype is not `i64`.
    pub fn get_i64(&self, index: &[usize]) -> Result<i64> {
        let lin = self.linear_index(index)?;
        self.as_i64().map(|v| v[lin])
    }

    /// Read one `bool` element.
    ///
    /// # Errors
    ///
    /// Returns an error if the index is invalid or the dtype is not `bool`.
    pub fn get_bool(&self, index: &[usize]) -> Result<bool> {
        let lin = self.linear_index(index)?;
        self.as_bool().map(|v| v[lin])
    }

    /// Write one element.
    ///
    /// # Errors
    ///
    /// Returns an error if the index is invalid or the scalar's dtype does
    /// not match the tensor's.
    pub fn set(&mut self, index: &[usize], value: impl Into<Scalar>) -> Result<()> {
        let lin = self.linear_index(index)?;
        match (Arc::make_mut(&mut self.data), value.into()) {
            (Data::F64(v), Scalar::F64(x)) => v[lin] = x,
            (Data::I64(v), Scalar::I64(x)) => v[lin] = x,
            (Data::Bool(v), Scalar::Bool(x)) => v[lin] = x,
            (d, s) => {
                let got = s.dtype();
                let _ = d;
                return Err(TensorError::DTypeMismatch {
                    got,
                    expected: "matching tensor dtype",
                    op: "set",
                });
            }
        }
        Ok(())
    }

    /// Reinterpret the tensor with a new shape of the same volume.
    /// Zero-copy: the result shares the source's storage.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] if the volumes differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor> {
        if volume(shape) != self.len() {
            return Err(TensorError::DataLength {
                expected: volume(shape),
                got: self.len(),
            });
        }
        Ok(Tensor {
            shape: Arc::from(shape),
            data: Arc::clone(&self.data),
        })
    }

    /// The scalar value of a single-element tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor does not hold exactly one element.
    pub fn item(&self) -> Result<Scalar> {
        if self.len() != 1 {
            return Err(TensorError::DataLength {
                expected: 1,
                got: self.len(),
            });
        }
        Ok(match &*self.data {
            Data::F64(v) => Scalar::F64(v[0]),
            Data::I64(v) => Scalar::I64(v[0]),
            Data::Bool(v) => Scalar::Bool(v[0]),
        })
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor<{}>{:?} ", self.dtype(), self.shape)?;
        const MAX: usize = 16;
        match &*self.data {
            Data::F64(v) => write_truncated(f, v, MAX),
            Data::I64(v) => write_truncated(f, v, MAX),
            Data::Bool(v) => write_truncated(f, v, MAX),
        }
    }
}

fn write_truncated<T: fmt::Debug>(f: &mut fmt::Formatter<'_>, v: &[T], max: usize) -> fmt::Result {
    if v.len() <= max {
        write!(f, "{v:?}")
    } else {
        write!(f, "{:?}... ({} elements)", &v[..max], v.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_checks_length() {
        assert!(Tensor::from_f64(&[1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_f64(&[1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn scalar_tensor_is_rank_zero() {
        let t = Tensor::scalar(5.0);
        assert_eq!(t.rank(), 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.item().unwrap(), Scalar::F64(5.0));
    }

    #[test]
    fn full_and_zeros() {
        let t = Tensor::full(&[2, 3], 7i64);
        assert_eq!(t.as_i64().unwrap(), &[7; 6]);
        let z = Tensor::zeros(DType::Bool, &[4]);
        assert_eq!(z.as_bool().unwrap(), &[false; 4]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(DType::F64, &[2, 2]);
        t.set(&[1, 1], 9.0).unwrap();
        assert_eq!(t.get_f64(&[1, 1]).unwrap(), 9.0);
        assert_eq!(t.get_f64(&[0, 1]).unwrap(), 0.0);
        assert!(t.set(&[2, 0], 1.0).is_err());
        assert!(t.set(&[0, 0], 1i64).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6).reshape(&[2, 3]).unwrap();
        assert_eq!(t.get_i64(&[1, 2]).unwrap(), 5);
        assert!(t.reshape(&[4]).is_err());
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros(DType::F64, &[100]);
        let s = t.to_string();
        assert!(s.contains("100 elements"));
    }

    #[test]
    fn accessor_dtype_errors() {
        let t = Tensor::zeros(DType::F64, &[2]);
        assert!(t.as_i64().is_err());
        assert!(t.as_bool().is_err());
        assert!(t.as_f64().is_ok());
    }
}
