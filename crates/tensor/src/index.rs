//! Gather, scatter, and masked-update kernels along axis 0.
//!
//! These are the primitives both autobatching runtimes live on:
//!
//! - *masked row assignment* implements the "masking style" of executing a
//!   primitive on only the locally active batch members (Algorithm 1);
//! - *gather/scatter rows* implements the alternative "gather the active
//!   members into a smaller array, compute, scatter back" strategy;
//! - *gather/scatter at depth* implement the per-variable stack reads and
//!   writes of program-counter autobatching (Algorithm 2), where each
//!   batch member may sit at a different stack depth.

use crate::dtype::Data;
use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

/// Number of elements in one "row" (everything after axis 0).
fn row_len(t: &Tensor) -> Result<usize> {
    if t.rank() == 0 {
        return Err(TensorError::InvalidAxis { axis: 0, rank: 0 });
    }
    Ok(t.len() / t.shape()[0].max(1))
}

macro_rules! per_dtype {
    ($lhs:expr, $rhs:expr, $op:literal, |$a:ident, $b:ident| $body:expr) => {
        match ($lhs, $rhs) {
            (Data::F64($a), Data::F64($b)) => $body,
            (Data::I64($a), Data::I64($b)) => $body,
            (Data::Bool($a), Data::Bool($b)) => $body,
            (_, other) => {
                return Err(TensorError::DTypeMismatch {
                    got: other.dtype(),
                    expected: "matching dtypes",
                    op: $op,
                })
            }
        }
    };
}

impl Tensor {
    /// Overwrite the rows of `self` where `mask` is `true` with the
    /// corresponding rows of `src`.
    ///
    /// `self` and `src` must have identical shapes; `mask.len()` must
    /// equal the axis-0 length. Rows where the mask is `false` keep their
    /// current value — this is exactly the masked update of Algorithm 1.
    ///
    /// # Errors
    ///
    /// Returns an error on shape, dtype, or mask-length mismatch.
    pub fn masked_assign_rows(&mut self, mask: &[bool], src: &Tensor) -> Result<()> {
        if self.shape() != src.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().to_vec(),
                rhs: src.shape().to_vec(),
                op: "masked_assign_rows",
            });
        }
        let rows = if self.rank() == 0 { 1 } else { self.shape()[0] };
        if mask.len() != rows {
            return Err(TensorError::MaskLength {
                expected: rows,
                got: mask.len(),
            });
        }
        let rl = if self.rank() == 0 { 1 } else { row_len(self)? };
        let dst = matches!(
            (self.data(), src.data()),
            (Data::F64(_), Data::F64(_))
                | (Data::I64(_), Data::I64(_))
                | (Data::Bool(_), Data::Bool(_))
        );
        if !dst {
            return Err(TensorError::DTypeMismatch {
                got: src.dtype(),
                expected: "matching dtypes",
                op: "masked_assign_rows",
            });
        }
        match (self.dtype(), src.data()) {
            (_, Data::F64(s)) => {
                let d = self.as_f64_mut()?;
                for (r, &m) in mask.iter().enumerate() {
                    if m {
                        d[r * rl..(r + 1) * rl].copy_from_slice(&s[r * rl..(r + 1) * rl]);
                    }
                }
            }
            (_, Data::I64(s)) => {
                let d = self.as_i64_mut()?;
                for (r, &m) in mask.iter().enumerate() {
                    if m {
                        d[r * rl..(r + 1) * rl].copy_from_slice(&s[r * rl..(r + 1) * rl]);
                    }
                }
            }
            (_, Data::Bool(s)) => {
                let d = self.as_bool_mut()?;
                for (r, &m) in mask.iter().enumerate() {
                    if m {
                        d[r * rl..(r + 1) * rl].copy_from_slice(&s[r * rl..(r + 1) * rl]);
                    }
                }
            }
        }
        Ok(())
    }

    /// Gather rows of `self` at the given axis-0 indices (with repeats
    /// allowed), producing a tensor of shape `[indices.len(), ..]`.
    ///
    /// # Errors
    ///
    /// Returns an error for rank-0 tensors or out-of-range indices.
    pub fn gather_rows(&self, indices: &[usize]) -> Result<Tensor> {
        let rl = row_len(self)?;
        let rows = self.shape()[0];
        let mut out_shape = self.shape().to_vec();
        out_shape[0] = indices.len();
        for &i in indices {
            if i >= rows {
                return Err(TensorError::IndexOutOfBounds {
                    index: i,
                    len: rows,
                    op: "gather_rows",
                });
            }
        }
        let data = match self.data() {
            Data::F64(v) => {
                let mut out = Vec::with_capacity(indices.len() * rl);
                for &i in indices {
                    out.extend_from_slice(&v[i * rl..(i + 1) * rl]);
                }
                Data::F64(out)
            }
            Data::I64(v) => {
                let mut out = Vec::with_capacity(indices.len() * rl);
                for &i in indices {
                    out.extend_from_slice(&v[i * rl..(i + 1) * rl]);
                }
                Data::I64(out)
            }
            Data::Bool(v) => {
                let mut out = Vec::with_capacity(indices.len() * rl);
                for &i in indices {
                    out.extend_from_slice(&v[i * rl..(i + 1) * rl]);
                }
                Data::Bool(out)
            }
        };
        Tensor::new(data, &out_shape)
    }

    /// Scatter the rows of `src` into `self` at the given axis-0 indices:
    /// `self[indices[j]] = src[j]`.
    ///
    /// Later duplicates win, matching accelerator scatter semantics.
    ///
    /// # Errors
    ///
    /// Returns an error on shape/dtype mismatch or out-of-range indices.
    pub fn scatter_rows(&mut self, indices: &[usize], src: &Tensor) -> Result<()> {
        let rl = row_len(self)?;
        if src.rank() == 0
            || src.shape()[0] != indices.len()
            || src.shape()[1..] != self.shape()[1..]
        {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().to_vec(),
                rhs: src.shape().to_vec(),
                op: "scatter_rows",
            });
        }
        let rows = self.shape()[0];
        for &i in indices {
            if i >= rows {
                return Err(TensorError::IndexOutOfBounds {
                    index: i,
                    len: rows,
                    op: "scatter_rows",
                });
            }
        }
        match (self.dtype(), src.data()) {
            (_, Data::F64(s)) => {
                let d = self.as_f64_mut()?;
                for (j, &i) in indices.iter().enumerate() {
                    d[i * rl..(i + 1) * rl].copy_from_slice(&s[j * rl..(j + 1) * rl]);
                }
            }
            (_, Data::I64(s)) => {
                let d = self.as_i64_mut()?;
                for (j, &i) in indices.iter().enumerate() {
                    d[i * rl..(i + 1) * rl].copy_from_slice(&s[j * rl..(j + 1) * rl]);
                }
            }
            (_, Data::Bool(s)) => {
                let d = self.as_bool_mut()?;
                for (j, &i) in indices.iter().enumerate() {
                    d[i * rl..(i + 1) * rl].copy_from_slice(&s[j * rl..(j + 1) * rl]);
                }
            }
        }
        Ok(())
    }

    /// Stack read: for a stack tensor of shape `[D, Z, ..]` and per-member
    /// depths `depths` (length `Z`), gather `self[depths[b], b, ..]` into a
    /// tensor of shape `[Z, ..]`.
    ///
    /// This is the `x[x_stack]` gather of Algorithm 2.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor has rank < 2, `depths.len() != Z`,
    /// or any depth is out of range.
    pub fn gather_at_depth(&self, depths: &[usize]) -> Result<Tensor> {
        if self.rank() < 2 {
            return Err(TensorError::InvalidAxis {
                axis: 1,
                rank: self.rank(),
            });
        }
        let d_max = self.shape()[0];
        let z = self.shape()[1];
        if depths.len() != z {
            return Err(TensorError::MaskLength {
                expected: z,
                got: depths.len(),
            });
        }
        let el: usize = self.shape()[2..].iter().product();
        let out_shape: Vec<usize> = std::iter::once(z)
            .chain(self.shape()[2..].iter().copied())
            .collect();
        for &d in depths {
            if d >= d_max {
                return Err(TensorError::IndexOutOfBounds {
                    index: d,
                    len: d_max,
                    op: "gather_at_depth",
                });
            }
        }
        let data = match self.data() {
            Data::F64(v) => {
                let mut out = Vec::with_capacity(z * el);
                for (b, &d) in depths.iter().enumerate() {
                    let base = (d * z + b) * el;
                    out.extend_from_slice(&v[base..base + el]);
                }
                Data::F64(out)
            }
            Data::I64(v) => {
                let mut out = Vec::with_capacity(z * el);
                for (b, &d) in depths.iter().enumerate() {
                    let base = (d * z + b) * el;
                    out.extend_from_slice(&v[base..base + el]);
                }
                Data::I64(out)
            }
            Data::Bool(v) => {
                let mut out = Vec::with_capacity(z * el);
                for (b, &d) in depths.iter().enumerate() {
                    let base = (d * z + b) * el;
                    out.extend_from_slice(&v[base..base + el]);
                }
                Data::Bool(out)
            }
        };
        Tensor::new(data, &out_shape)
    }

    /// Stack write: for a stack tensor of shape `[D, Z, ..]`, write row `b`
    /// of `src` (shape `[Z, ..]`) into `self[depths[b], b, ..]` for every
    /// member where `mask[b]` is `true`.
    ///
    /// This is the scatter of Algorithm 2's `PUSH`.
    ///
    /// # Errors
    ///
    /// Returns an error on rank/shape/dtype mismatch or depth out of range.
    pub fn scatter_at_depth(
        &mut self,
        depths: &[usize],
        mask: &[bool],
        src: &Tensor,
    ) -> Result<()> {
        if self.rank() < 2 {
            return Err(TensorError::InvalidAxis {
                axis: 1,
                rank: self.rank(),
            });
        }
        let d_max = self.shape()[0];
        let z = self.shape()[1];
        if depths.len() != z || mask.len() != z {
            return Err(TensorError::MaskLength {
                expected: z,
                got: depths.len(),
            });
        }
        if src.rank() == 0 || src.shape()[0] != z || src.shape()[1..] != self.shape()[2..] {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().to_vec(),
                rhs: src.shape().to_vec(),
                op: "scatter_at_depth",
            });
        }
        let el: usize = self.shape()[2..].iter().product();
        for (b, &d) in depths.iter().enumerate() {
            if mask[b] && d >= d_max {
                return Err(TensorError::IndexOutOfBounds {
                    index: d,
                    len: d_max,
                    op: "scatter_at_depth",
                });
            }
        }
        match (self.dtype(), src.data()) {
            (_, Data::F64(s)) => {
                let dst = self.as_f64_mut()?;
                for (b, (&d, &m)) in depths.iter().zip(mask).enumerate() {
                    if m {
                        let base = (d * z + b) * el;
                        dst[base..base + el].copy_from_slice(&s[b * el..(b + 1) * el]);
                    }
                }
            }
            (_, Data::I64(s)) => {
                let dst = self.as_i64_mut()?;
                for (b, (&d, &m)) in depths.iter().zip(mask).enumerate() {
                    if m {
                        let base = (d * z + b) * el;
                        dst[base..base + el].copy_from_slice(&s[b * el..(b + 1) * el]);
                    }
                }
            }
            (_, Data::Bool(s)) => {
                let dst = self.as_bool_mut()?;
                for (b, (&d, &m)) in depths.iter().zip(mask).enumerate() {
                    if m {
                        let base = (d * z + b) * el;
                        dst[base..base + el].copy_from_slice(&s[b * el..(b + 1) * el]);
                    }
                }
            }
        }
        Ok(())
    }

    /// Extract one row along axis 0, dropping that axis.
    ///
    /// # Errors
    ///
    /// Returns an error for rank-0 tensors or out-of-range rows.
    pub fn row(&self, index: usize) -> Result<Tensor> {
        let gathered = self.gather_rows(&[index])?;
        let shape = gathered.shape()[1..].to_vec();
        gathered.reshape(&shape)
    }

    /// Stack `n` copies of `self` along a new leading axis.
    pub fn broadcast_rows(&self, n: usize) -> Tensor {
        let mut out_shape = Vec::with_capacity(self.rank() + 1);
        out_shape.push(n);
        out_shape.extend_from_slice(self.shape());
        let data = match self.data() {
            Data::F64(v) => {
                let mut out = Vec::with_capacity(n * v.len());
                for _ in 0..n {
                    out.extend_from_slice(v);
                }
                Data::F64(out)
            }
            Data::I64(v) => {
                let mut out = Vec::with_capacity(n * v.len());
                for _ in 0..n {
                    out.extend_from_slice(v);
                }
                Data::I64(out)
            }
            Data::Bool(v) => {
                let mut out = Vec::with_capacity(n * v.len());
                for _ in 0..n {
                    out.extend_from_slice(v);
                }
                Data::Bool(out)
            }
        };
        Tensor::new(data, &out_shape).expect("volume matches by construction")
    }

    /// Append `extra` zero rows along axis 0: `[Z, ..] -> [Z + extra, ..]`.
    ///
    /// This is the growth primitive of dynamic batch admission — newly
    /// admitted members land in freshly zeroed lanes, exactly the state a
    /// fresh batch would start from.
    ///
    /// # Errors
    ///
    /// Returns an error for rank-0 tensors.
    pub fn pad_rows(&self, extra: usize) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::InvalidAxis { axis: 0, rank: 0 });
        }
        let mut shape = self.shape().to_vec();
        shape[0] = extra;
        Tensor::concat_rows(&[self.clone(), Tensor::zeros(self.dtype(), &shape)])
    }

    /// Append `extra` zero columns along axis 1:
    /// `[D, Z, ..] -> [D, Z + extra, ..]`.
    ///
    /// Grows a stack-storage tensor when members are admitted into an
    /// in-flight batch; every depth level gains zeroed lanes.
    ///
    /// # Errors
    ///
    /// Returns an error for tensors of rank < 2.
    pub fn pad_axis1(&self, extra: usize) -> Result<Tensor> {
        if self.rank() < 2 {
            return Err(TensorError::InvalidAxis {
                axis: 1,
                rank: self.rank(),
            });
        }
        let d = self.shape()[0];
        let z = self.shape()[1];
        let el: usize = self.shape()[2..].iter().product();
        let mut out_shape = self.shape().to_vec();
        out_shape[1] = z + extra;
        let data = match self.data() {
            Data::F64(v) => {
                let mut out = vec![0.0; d * (z + extra) * el];
                for depth in 0..d {
                    out[depth * (z + extra) * el..depth * (z + extra) * el + z * el]
                        .copy_from_slice(&v[depth * z * el..(depth + 1) * z * el]);
                }
                Data::F64(out)
            }
            Data::I64(v) => {
                let mut out = vec![0; d * (z + extra) * el];
                for depth in 0..d {
                    out[depth * (z + extra) * el..depth * (z + extra) * el + z * el]
                        .copy_from_slice(&v[depth * z * el..(depth + 1) * z * el]);
                }
                Data::I64(out)
            }
            Data::Bool(v) => {
                let mut out = vec![false; d * (z + extra) * el];
                for depth in 0..d {
                    out[depth * (z + extra) * el..depth * (z + extra) * el + z * el]
                        .copy_from_slice(&v[depth * z * el..(depth + 1) * z * el]);
                }
                Data::Bool(out)
            }
        };
        Tensor::new(data, &out_shape)
    }

    /// Select columns along axis 1: `[D, Z, ..] -> [D, indices.len(), ..]`
    /// with `out[d, j, ..] = self[d, indices[j], ..]`.
    ///
    /// Compacts a stack-storage tensor when members retire from an
    /// in-flight batch (the surviving lanes are gathered together).
    ///
    /// # Errors
    ///
    /// Returns an error for tensors of rank < 2 or out-of-range indices.
    pub fn select_axis1(&self, indices: &[usize]) -> Result<Tensor> {
        if self.rank() < 2 {
            return Err(TensorError::InvalidAxis {
                axis: 1,
                rank: self.rank(),
            });
        }
        let d = self.shape()[0];
        let z = self.shape()[1];
        let el: usize = self.shape()[2..].iter().product();
        for &i in indices {
            if i >= z {
                return Err(TensorError::IndexOutOfBounds {
                    index: i,
                    len: z,
                    op: "select_axis1",
                });
            }
        }
        let mut out_shape = self.shape().to_vec();
        out_shape[1] = indices.len();
        let data = match self.data() {
            Data::F64(v) => {
                let mut out = Vec::with_capacity(d * indices.len() * el);
                for depth in 0..d {
                    for &i in indices {
                        let base = (depth * z + i) * el;
                        out.extend_from_slice(&v[base..base + el]);
                    }
                }
                Data::F64(out)
            }
            Data::I64(v) => {
                let mut out = Vec::with_capacity(d * indices.len() * el);
                for depth in 0..d {
                    for &i in indices {
                        let base = (depth * z + i) * el;
                        out.extend_from_slice(&v[base..base + el]);
                    }
                }
                Data::I64(out)
            }
            Data::Bool(v) => {
                let mut out = Vec::with_capacity(d * indices.len() * el);
                for depth in 0..d {
                    for &i in indices {
                        let base = (depth * z + i) * el;
                        out.extend_from_slice(&v[base..base + el]);
                    }
                }
                Data::Bool(out)
            }
        };
        Tensor::new(data, &out_shape)
    }

    /// Concatenate tensors along axis 0. All inputs must agree on dtype
    /// and trailing shape.
    ///
    /// # Errors
    ///
    /// Returns an error if `parts` is empty or shapes/dtypes disagree.
    pub fn concat_rows(parts: &[Tensor]) -> Result<Tensor> {
        let first = parts.first().ok_or(TensorError::DataLength {
            expected: 1,
            got: 0,
        })?;
        if first.rank() == 0 {
            return Err(TensorError::InvalidAxis { axis: 0, rank: 0 });
        }
        let mut total = 0;
        for p in parts {
            if p.rank() == 0 || p.shape()[1..] != first.shape()[1..] || p.dtype() != first.dtype() {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.shape().to_vec(),
                    rhs: p.shape().to_vec(),
                    op: "concat_rows",
                });
            }
            total += p.shape()[0];
        }
        let mut out_shape = first.shape().to_vec();
        out_shape[0] = total;
        let data = match first.data() {
            Data::F64(_) => {
                let mut out = Vec::new();
                for p in parts {
                    per_dtype!(p.data(), p.data(), "concat_rows", |a, _b| {
                        let _ = a;
                    });
                    out.extend_from_slice(p.as_f64()?);
                }
                Data::F64(out)
            }
            Data::I64(_) => {
                let mut out = Vec::new();
                for p in parts {
                    out.extend_from_slice(p.as_i64()?);
                }
                Data::I64(out)
            }
            Data::Bool(_) => {
                let mut out = Vec::new();
                for p in parts {
                    out.extend_from_slice(p.as_bool()?);
                }
                Data::Bool(out)
            }
        };
        Tensor::new(data, &out_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_assign_updates_only_active_rows() {
        let mut t = Tensor::from_f64(&[1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let src = Tensor::from_f64(&[9.0, 9.0, 8.0, 8.0], &[2, 2]).unwrap();
        t.masked_assign_rows(&[false, true], &src).unwrap();
        assert_eq!(t.as_f64().unwrap(), &[1.0, 2.0, 8.0, 8.0]);
    }

    #[test]
    fn masked_assign_scalar_rows() {
        let mut t = Tensor::from_i64(&[1, 2, 3], &[3]).unwrap();
        let src = Tensor::from_i64(&[7, 7, 7], &[3]).unwrap();
        t.masked_assign_rows(&[true, false, true], &src).unwrap();
        assert_eq!(t.as_i64().unwrap(), &[7, 2, 7]);
    }

    #[test]
    fn masked_assign_checks_mask_len() {
        let mut t = Tensor::from_f64(&[1.0, 2.0], &[2]).unwrap();
        let src = t.clone();
        assert!(t.masked_assign_rows(&[true], &src).is_err());
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let t = Tensor::from_f64(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0], &[3, 2]).unwrap();
        let g = t.gather_rows(&[2, 0]).unwrap();
        assert_eq!(g.as_f64().unwrap(), &[4.0, 5.0, 0.0, 1.0]);
        let mut dst = Tensor::zeros(crate::DType::F64, &[3, 2]);
        dst.scatter_rows(&[2, 0], &g).unwrap();
        assert_eq!(dst.as_f64().unwrap(), &[0.0, 1.0, 0.0, 0.0, 4.0, 5.0]);
    }

    #[test]
    fn gather_rows_bounds_check() {
        let t = Tensor::from_f64(&[1.0], &[1]).unwrap();
        assert!(t.gather_rows(&[1]).is_err());
    }

    #[test]
    fn depth_gather_scatter() {
        // Stack of shape [D=2, Z=3] with distinct values.
        let mut stack = Tensor::from_f64(&[0.0, 1.0, 2.0, 10.0, 11.0, 12.0], &[2, 3]).unwrap();
        let top = stack.gather_at_depth(&[0, 1, 0]).unwrap();
        assert_eq!(top.as_f64().unwrap(), &[0.0, 11.0, 2.0]);
        let src = Tensor::from_f64(&[7.0, 8.0, 9.0], &[3]).unwrap();
        stack
            .scatter_at_depth(&[1, 0, 1], &[true, true, false], &src)
            .unwrap();
        assert_eq!(stack.as_f64().unwrap(), &[0.0, 8.0, 2.0, 7.0, 11.0, 12.0]);
    }

    #[test]
    fn depth_gather_with_element_shape() {
        // Stack [D=2, Z=2, 2].
        let stack =
            Tensor::from_f64(&[0.0, 1.0, 2.0, 3.0, 10.0, 11.0, 12.0, 13.0], &[2, 2, 2]).unwrap();
        let top = stack.gather_at_depth(&[1, 0]).unwrap();
        assert_eq!(top.shape(), &[2, 2]);
        assert_eq!(top.as_f64().unwrap(), &[10.0, 11.0, 2.0, 3.0]);
    }

    #[test]
    fn depth_bounds_only_checked_for_active() {
        let mut stack = Tensor::zeros(crate::DType::F64, &[1, 2]);
        let src = Tensor::zeros(crate::DType::F64, &[2]);
        // Depth 5 out of range but masked off: fine.
        stack
            .scatter_at_depth(&[0, 5], &[true, false], &src)
            .unwrap();
        // Active out-of-range: error.
        assert!(stack
            .scatter_at_depth(&[0, 5], &[true, true], &src)
            .is_err());
    }

    #[test]
    fn row_and_broadcast_rows() {
        let t = Tensor::from_f64(&[1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let r = t.row(1).unwrap();
        assert_eq!(r.shape(), &[2]);
        assert_eq!(r.as_f64().unwrap(), &[3.0, 4.0]);
        let b = r.broadcast_rows(3);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.as_f64().unwrap(), &[3.0, 4.0, 3.0, 4.0, 3.0, 4.0]);
    }

    #[test]
    fn pad_rows_appends_zero_lanes() {
        let t = Tensor::from_f64(&[1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let p = t.pad_rows(2).unwrap();
        assert_eq!(p.shape(), &[4, 2]);
        assert_eq!(
            p.as_f64().unwrap(),
            &[1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0]
        );
        assert!(Tensor::scalar(1.0).pad_rows(1).is_err());
    }

    #[test]
    fn pad_axis1_grows_every_depth_level() {
        // Stack [D=2, Z=2]: depths keep their values, new lanes are zero.
        let t = Tensor::from_i64(&[1, 2, 10, 20], &[2, 2]).unwrap();
        let p = t.pad_axis1(1).unwrap();
        assert_eq!(p.shape(), &[2, 3]);
        assert_eq!(p.as_i64().unwrap(), &[1, 2, 0, 10, 20, 0]);
        assert!(Tensor::from_i64(&[1], &[1]).unwrap().pad_axis1(1).is_err());
    }

    #[test]
    fn select_axis1_compacts_lanes() {
        // Stack [D=2, Z=3, 1].
        let t = Tensor::from_f64(&[0.0, 1.0, 2.0, 10.0, 11.0, 12.0], &[2, 3, 1]).unwrap();
        let s = t.select_axis1(&[2, 0]).unwrap();
        assert_eq!(s.shape(), &[2, 2, 1]);
        assert_eq!(s.as_f64().unwrap(), &[2.0, 0.0, 12.0, 10.0]);
        assert!(t.select_axis1(&[3]).is_err());
        // Empty selection shrinks to zero lanes.
        assert_eq!(t.select_axis1(&[]).unwrap().shape(), &[2, 0, 1]);
    }

    #[test]
    fn pad_then_select_roundtrip() {
        let t = Tensor::from_f64(&[1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let grown = t.pad_axis1(3).unwrap();
        let back = grown.select_axis1(&[0, 1]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn concat_rows_joins() {
        let a = Tensor::from_i64(&[1, 2], &[2]).unwrap();
        let b = Tensor::from_i64(&[3], &[1]).unwrap();
        let c = Tensor::concat_rows(&[a, b]).unwrap();
        assert_eq!(c.as_i64().unwrap(), &[1, 2, 3]);
        assert!(Tensor::concat_rows(&[]).is_err());
    }
}
