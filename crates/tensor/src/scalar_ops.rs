//! The scalar kernel functions behind every elementwise tensor op.
//!
//! This module is the single source of truth for elementwise semantics:
//! the allocating tensor kernels (`Tensor::exp`, `Tensor::add`, …), the
//! in-place and into-buffer variants, and the VM's fused elementwise
//! fast path all call these exact functions, so a fused chain is
//! bit-identical to per-kernel execution by construction — there is no
//! second implementation to drift.
//!
//! Integer semantics mirror a masked-lane accelerator: arithmetic wraps,
//! division by zero yields `0` (inactive lanes must not fault), and
//! `pow` routes through `f64` like the batched kernel does.

/// `-x`.
pub fn neg_f64(x: f64) -> f64 {
    -x
}
/// `|x|`.
pub fn abs_f64(x: f64) -> f64 {
    x.abs()
}
/// `e^x`.
pub fn exp_f64(x: f64) -> f64 {
    x.exp()
}
/// `ln x`.
pub fn ln_f64(x: f64) -> f64 {
    x.ln()
}
/// `√x`.
pub fn sqrt_f64(x: f64) -> f64 {
    x.sqrt()
}
/// `x²`.
pub fn square_f64(x: f64) -> f64 {
    x * x
}
/// Logistic sigmoid `1 / (1 + e^{-x})`.
pub fn sigmoid_f64(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}
/// Stable `log(1 + e^x)`.
pub fn softplus_f64(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}
/// `⌊x⌋`.
pub fn floor_f64(x: f64) -> f64 {
    x.floor()
}
/// `sin x`.
pub fn sin_f64(x: f64) -> f64 {
    x.sin()
}
/// `cos x`.
pub fn cos_f64(x: f64) -> f64 {
    x.cos()
}
/// `tanh x`.
pub fn tanh_f64(x: f64) -> f64 {
    x.tanh()
}
/// Identity.
pub fn id_f64(x: f64) -> f64 {
    x
}

/// `a + b`.
pub fn add_f64(a: f64, b: f64) -> f64 {
    a + b
}
/// `a - b`.
pub fn sub_f64(a: f64, b: f64) -> f64 {
    a - b
}
/// `a × b`.
pub fn mul_f64(a: f64, b: f64) -> f64 {
    a * b
}
/// `a / b`.
pub fn div_f64(a: f64, b: f64) -> f64 {
    a / b
}
/// `max(a, b)`.
pub fn max2_f64(a: f64, b: f64) -> f64 {
    a.max(b)
}
/// `min(a, b)`.
pub fn min2_f64(a: f64, b: f64) -> f64 {
    a.min(b)
}
/// `a^b`.
pub fn pow_f64(a: f64, b: f64) -> f64 {
    a.powf(b)
}

/// Integer negation.
pub fn neg_i64(x: i64) -> i64 {
    -x
}
/// Identity.
pub fn id_i64(x: i64) -> i64 {
    x
}
/// Wrapping `a + b`.
pub fn add_i64(a: i64, b: i64) -> i64 {
    a.wrapping_add(b)
}
/// Wrapping `a - b`.
pub fn sub_i64(a: i64, b: i64) -> i64 {
    a.wrapping_sub(b)
}
/// Wrapping `a × b`.
pub fn mul_i64(a: i64, b: i64) -> i64 {
    a.wrapping_mul(b)
}
/// Truncating division; division by zero yields `0` (masked-lane
/// semantics: inactive data must not fault).
pub fn div_i64(a: i64, b: i64) -> i64 {
    if b == 0 {
        0
    } else {
        a.wrapping_div(b)
    }
}
/// `max(a, b)`.
pub fn max2_i64(a: i64, b: i64) -> i64 {
    a.max(b)
}
/// `min(a, b)`.
pub fn min2_i64(a: i64, b: i64) -> i64 {
    a.min(b)
}
/// Saturating power through `f64`, matching the batched kernel.
pub fn pow_i64(a: i64, b: i64) -> i64 {
    (a as f64).powf(b as f64) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_division_by_zero_is_masked() {
        assert_eq!(div_i64(7, 0), 0);
        assert_eq!(div_i64(7, 2), 3);
        assert_eq!(div_i64(-7, 2), -3);
    }

    #[test]
    fn softplus_matches_stable_branches() {
        assert_eq!(softplus_f64(1000.0), 1000.0);
        assert_eq!(softplus_f64(-1000.0), 0.0);
        assert!((softplus_f64(0.0) - 2f64.ln()).abs() < 1e-12);
    }
}
