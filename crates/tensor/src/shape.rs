//! Shape arithmetic: volumes, strides, and NumPy-style broadcasting.

use crate::error::{Result, TensorError};

/// Product of the dimensions, i.e. the number of elements a shape holds.
pub fn volume(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major strides for a shape.
///
/// `strides(&[2, 3, 4]) == [12, 4, 1]`.
pub fn strides(shape: &[usize]) -> Vec<usize> {
    let mut out = vec![1; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        out[i] = out[i + 1] * shape[i + 1];
    }
    out
}

/// Compute the NumPy-style broadcast of two shapes.
///
/// Shapes are aligned at their trailing dimensions; each pair of aligned
/// dimensions must be equal or one of them must be `1`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes are not
/// broadcast-compatible.
pub fn broadcast_shapes(lhs: &[usize], rhs: &[usize], op: &'static str) -> Result<Vec<usize>> {
    let rank = lhs.len().max(rhs.len());
    let mut out = vec![0; rank];
    for i in 0..rank {
        let l = dim_from_end(lhs, i);
        let r = dim_from_end(rhs, i);
        let d = if l == r {
            l
        } else if l == 1 {
            r
        } else if r == 1 {
            l
        } else {
            return Err(TensorError::ShapeMismatch {
                lhs: lhs.to_vec(),
                rhs: rhs.to_vec(),
                op,
            });
        };
        out[rank - 1 - i] = d;
    }
    Ok(out)
}

fn dim_from_end(shape: &[usize], i: usize) -> usize {
    if i < shape.len() {
        shape[shape.len() - 1 - i]
    } else {
        1
    }
}

/// An iterator-free mapping from output linear indices to input linear
/// indices under broadcasting.
///
/// Precomputes, for an input shape broadcast to an output shape, the
/// "effective strides": stride 0 wherever the input dimension is 1 (or
/// missing), so that walking the output in row-major order can locate the
/// corresponding input element with one dot product.
#[derive(Debug, Clone)]
pub struct BroadcastMap {
    out_shape: Vec<usize>,
    eff_strides: Vec<usize>,
}

impl BroadcastMap {
    /// Build the map taking `in_shape` to `out_shape`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `in_shape` does not
    /// broadcast to `out_shape`.
    pub fn new(in_shape: &[usize], out_shape: &[usize]) -> Result<BroadcastMap> {
        if in_shape.len() > out_shape.len() {
            return Err(TensorError::ShapeMismatch {
                lhs: in_shape.to_vec(),
                rhs: out_shape.to_vec(),
                op: "broadcast",
            });
        }
        let in_strides = strides(in_shape);
        let rank = out_shape.len();
        let mut eff = vec![0usize; rank];
        for i in 0..rank {
            let od = out_shape[rank - 1 - i];
            let id = dim_from_end(in_shape, i);
            if id == od {
                if i < in_shape.len() {
                    eff[rank - 1 - i] = in_strides[in_shape.len() - 1 - i];
                }
            } else if id == 1 {
                eff[rank - 1 - i] = 0;
            } else {
                return Err(TensorError::ShapeMismatch {
                    lhs: in_shape.to_vec(),
                    rhs: out_shape.to_vec(),
                    op: "broadcast",
                });
            }
        }
        Ok(BroadcastMap {
            out_shape: out_shape.to_vec(),
            eff_strides: eff,
        })
    }

    /// Whether the mapping is the identity (no actual broadcasting).
    pub fn is_identity(&self) -> bool {
        self.eff_strides == strides(&self.out_shape)
    }

    /// Map an output linear index to the corresponding input linear index.
    #[inline]
    pub fn map(&self, mut out_linear: usize) -> usize {
        let mut in_linear = 0;
        // Walk dimensions from the last to the first, peeling off
        // coordinates of the output index.
        for d in (0..self.out_shape.len()).rev() {
            let dim = self.out_shape[d];
            let coord = out_linear % dim;
            out_linear /= dim;
            in_linear += coord * self.eff_strides[d];
        }
        in_linear
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_strides() {
        assert_eq!(volume(&[2, 3, 4]), 24);
        assert_eq!(volume(&[]), 1);
        assert_eq!(strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides(&[5]), vec![1]);
        assert_eq!(strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_compatible_shapes() {
        assert_eq!(broadcast_shapes(&[4], &[4], "t").unwrap(), vec![4]);
        assert_eq!(broadcast_shapes(&[3, 1], &[1, 4], "t").unwrap(), vec![3, 4]);
        assert_eq!(broadcast_shapes(&[], &[2, 2], "t").unwrap(), vec![2, 2]);
        assert_eq!(
            broadcast_shapes(&[5, 1, 3], &[7, 1], "t").unwrap(),
            vec![5, 7, 3]
        );
    }

    #[test]
    fn broadcast_incompatible_shapes() {
        assert!(broadcast_shapes(&[3], &[4], "t").is_err());
        assert!(broadcast_shapes(&[2, 3], &[3, 2], "t").is_err());
    }

    #[test]
    fn broadcast_map_identity() {
        let m = BroadcastMap::new(&[2, 3], &[2, 3]).unwrap();
        assert!(m.is_identity());
        for i in 0..6 {
            assert_eq!(m.map(i), i);
        }
    }

    #[test]
    fn broadcast_map_scalar() {
        let m = BroadcastMap::new(&[], &[2, 2]).unwrap();
        for i in 0..4 {
            assert_eq!(m.map(i), 0);
        }
    }

    #[test]
    fn broadcast_map_column() {
        // Shape [2, 1] broadcast to [2, 3]: rows repeat along columns.
        let m = BroadcastMap::new(&[2, 1], &[2, 3]).unwrap();
        assert_eq!(
            (0..6).map(|i| m.map(i)).collect::<Vec<_>>(),
            vec![0, 0, 0, 1, 1, 1]
        );
    }

    #[test]
    fn broadcast_map_missing_leading_dim() {
        // Shape [3] broadcast to [2, 3]: whole vector repeats per row.
        let m = BroadcastMap::new(&[3], &[2, 3]).unwrap();
        assert_eq!(
            (0..6).map(|i| m.map(i)).collect::<Vec<_>>(),
            vec![0, 1, 2, 0, 1, 2]
        );
    }

    #[test]
    fn broadcast_map_rejects_bad_shapes() {
        assert!(BroadcastMap::new(&[4], &[2, 3]).is_err());
        assert!(BroadcastMap::new(&[2, 3], &[3]).is_err());
    }
}
