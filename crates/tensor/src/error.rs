//! Error types for tensor operations.

use std::fmt;

use crate::dtype::DType;

/// Errors produced by tensor operations.
///
/// Every fallible operation in this crate returns [`TensorError`] rather
/// than panicking, so that the virtual machines built on top can surface
/// shape and type violations in user programs as recoverable diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match (or broadcast) did not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// An operation received a dtype it does not support.
    DTypeMismatch {
        /// The dtype that was provided.
        got: DType,
        /// Human-readable description of what was expected.
        expected: &'static str,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// An axis argument was out of range for the tensor's rank.
    InvalidAxis {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// An index was out of bounds along some axis.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The length of the axis being indexed.
        len: usize,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// The raw data length disagreed with the product of the shape.
    DataLength {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements provided.
        got: usize,
    },
    /// A mask tensor had the wrong length for the axis it masks.
    MaskLength {
        /// Expected mask length.
        expected: usize,
        /// Provided mask length.
        got: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in `{op}`: {lhs:?} vs {rhs:?}")
            }
            TensorError::DTypeMismatch { got, expected, op } => {
                write!(
                    f,
                    "dtype mismatch in `{op}`: got {got}, expected {expected}"
                )
            }
            TensorError::InvalidAxis { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::IndexOutOfBounds { index, len, op } => {
                write!(
                    f,
                    "index {index} out of bounds for axis of length {len} in `{op}`"
                )
            }
            TensorError::DataLength { expected, got } => {
                write!(
                    f,
                    "data length {got} does not match shape volume {expected}"
                )
            }
            TensorError::MaskLength { expected, got } => {
                write!(f, "mask length {got} does not match axis length {expected}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::ShapeMismatch {
            lhs: vec![2, 3],
            rhs: vec![4],
            op: "add",
        };
        let s = e.to_string();
        assert!(s.contains("add"));
        assert!(s.contains("[2, 3]"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<TensorError>();
    }
}
