//! Element types and raw storage for tensors.

use std::fmt;

/// The element type of a [`Tensor`](crate::Tensor).
///
/// The autobatching runtimes manipulate floating-point data (model state),
/// integer data (counters, RNG state, recursion bookkeeping) and boolean
/// data (branch conditions, masks), so those are the three supported
/// element types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DType {
    /// 64-bit IEEE-754 float.
    F64,
    /// 64-bit signed integer.
    I64,
    /// Boolean.
    Bool,
}

impl DType {
    /// Size of one element in bytes, as used by the accelerator cost model.
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F64 | DType::I64 => 8,
            DType::Bool => 1,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DType::F64 => write!(f, "f64"),
            DType::I64 => write!(f, "i64"),
            DType::Bool => write!(f, "bool"),
        }
    }
}

/// Dense element storage for a tensor.
///
/// Stored in row-major (C) order relative to the owning tensor's shape.
#[derive(Debug, Clone, PartialEq)]
pub enum Data {
    /// Floating-point payload.
    F64(Vec<f64>),
    /// Integer payload.
    I64(Vec<i64>),
    /// Boolean payload.
    Bool(Vec<bool>),
}

impl Data {
    /// The dtype of this storage.
    pub fn dtype(&self) -> DType {
        match self {
            Data::F64(_) => DType::F64,
            Data::I64(_) => DType::I64,
            Data::Bool(_) => DType::Bool,
        }
    }

    /// Number of elements stored.
    pub fn len(&self) -> usize {
        match self {
            Data::F64(v) => v.len(),
            Data::I64(v) => v.len(),
            Data::Bool(v) => v.len(),
        }
    }

    /// Whether the storage is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocate zero-initialized storage of the given dtype and length.
    ///
    /// Zeros are `0.0`, `0`, and `false` respectively.
    pub fn zeros(dtype: DType, len: usize) -> Data {
        match dtype {
            DType::F64 => Data::F64(vec![0.0; len]),
            DType::I64 => Data::I64(vec![0; len]),
            DType::Bool => Data::Bool(vec![false; len]),
        }
    }
}

/// A single scalar element of any supported dtype.
///
/// Used for `full`-style constructors and for extracting individual
/// elements when inspecting VM state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    /// A float scalar.
    F64(f64),
    /// An integer scalar.
    I64(i64),
    /// A boolean scalar.
    Bool(bool),
}

impl Scalar {
    /// The dtype of this scalar.
    pub fn dtype(self) -> DType {
        match self {
            Scalar::F64(_) => DType::F64,
            Scalar::I64(_) => DType::I64,
            Scalar::Bool(_) => DType::Bool,
        }
    }

    /// View as `f64` if the dtype matches.
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Scalar::F64(x) => Some(x),
            _ => None,
        }
    }

    /// View as `i64` if the dtype matches.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Scalar::I64(x) => Some(x),
            _ => None,
        }
    }

    /// View as `bool` if the dtype matches.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Scalar::Bool(x) => Some(x),
            _ => None,
        }
    }
}

impl From<f64> for Scalar {
    fn from(x: f64) -> Scalar {
        Scalar::F64(x)
    }
}

impl From<i64> for Scalar {
    fn from(x: i64) -> Scalar {
        Scalar::I64(x)
    }
}

impl From<bool> for Scalar {
    fn from(x: bool) -> Scalar {
        Scalar::Bool(x)
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::F64(x) => write!(f, "{x}"),
            Scalar::I64(x) => write!(f, "{x}"),
            Scalar::Bool(x) => write!(f, "{x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F64.size_bytes(), 8);
        assert_eq!(DType::I64.size_bytes(), 8);
        assert_eq!(DType::Bool.size_bytes(), 1);
    }

    #[test]
    fn zeros_allocates_correct_len_and_dtype() {
        for dt in [DType::F64, DType::I64, DType::Bool] {
            let d = Data::zeros(dt, 7);
            assert_eq!(d.len(), 7);
            assert_eq!(d.dtype(), dt);
        }
    }

    #[test]
    fn scalar_conversions() {
        assert_eq!(Scalar::from(1.5).as_f64(), Some(1.5));
        assert_eq!(Scalar::from(3i64).as_i64(), Some(3));
        assert_eq!(Scalar::from(true).as_bool(), Some(true));
        assert_eq!(Scalar::from(1.5).as_i64(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(DType::F64.to_string(), "f64");
        assert_eq!(Scalar::Bool(false).to_string(), "false");
    }
}
