//! Elementwise kernels: unary maps, broadcasting binary ops, comparisons,
//! logical ops, `select`, and dtype casts.
//!
//! These are the "primitive kernels" of the simulated accelerator: every
//! one of them processes whole arrays at a time, which is exactly the
//! SIMD contract the autobatching transformation relies on.

use crate::dtype::{DType, Data};
use crate::error::{Result, TensorError};
use crate::shape::{broadcast_shapes, volume, BroadcastMap};
use crate::tensor::Tensor;

// ---------------------------------------------------------------------------
// Unary ops
// ---------------------------------------------------------------------------

macro_rules! unary_f64 {
    ($(#[$doc:meta])* $name:ident, $f:expr) => {
        $(#[$doc])*
        ///
        /// # Errors
        ///
        /// Returns [`TensorError::DTypeMismatch`] unless the dtype is `f64`.
        pub fn $name(&self) -> Result<Tensor> {
            let f: fn(f64) -> f64 = $f;
            self.map_f64(f)
        }
    };
}

impl Tensor {
    unary_f64!(
        /// Elementwise negation.
        neg, crate::scalar_ops::neg_f64
    );
    unary_f64!(
        /// Elementwise absolute value.
        abs, crate::scalar_ops::abs_f64
    );
    unary_f64!(
        /// Elementwise exponential.
        exp, crate::scalar_ops::exp_f64
    );
    unary_f64!(
        /// Elementwise natural logarithm.
        ln, crate::scalar_ops::ln_f64
    );
    unary_f64!(
        /// Elementwise square root.
        sqrt, crate::scalar_ops::sqrt_f64
    );
    unary_f64!(
        /// Elementwise sine.
        sin, crate::scalar_ops::sin_f64
    );
    unary_f64!(
        /// Elementwise cosine.
        cos, crate::scalar_ops::cos_f64
    );
    unary_f64!(
        /// Elementwise hyperbolic tangent.
        tanh, crate::scalar_ops::tanh_f64
    );
    unary_f64!(
        /// Elementwise logistic sigmoid `1 / (1 + exp(-x))`.
        sigmoid, crate::scalar_ops::sigmoid_f64
    );
    unary_f64!(
        /// Elementwise `log(1 + exp(x))`, computed stably.
        softplus, crate::scalar_ops::softplus_f64
    );
    unary_f64!(
        /// Elementwise floor.
        floor, crate::scalar_ops::floor_f64
    );
    unary_f64!(
        /// Elementwise square.
        square, crate::scalar_ops::square_f64
    );

    /// Elementwise integer negation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] unless the dtype is `i64`.
    pub fn neg_i64(&self) -> Result<Tensor> {
        let v = self.as_i64()?;
        self.like(Data::I64(
            v.iter().map(|&x| crate::scalar_ops::neg_i64(x)).collect(),
        ))
    }

    /// Elementwise logical NOT.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] unless the dtype is `bool`.
    pub fn not(&self) -> Result<Tensor> {
        let v = self.as_bool()?;
        self.like(Data::Bool(v.iter().map(|&x| !x).collect()))
    }
}

// ---------------------------------------------------------------------------
// Binary ops with broadcasting
// ---------------------------------------------------------------------------

fn binary_zip<T: Copy, U, F: Fn(T, T) -> U>(
    lhs: &[T],
    rhs: &[T],
    lmap: &BroadcastMap,
    rmap: &BroadcastMap,
    n: usize,
    f: F,
) -> Vec<U> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(f(lhs[lmap.map(i)], rhs[rmap.map(i)]));
    }
    out
}

/// Dispatch table entry describing how to combine two tensors elementwise.
struct BinPlan {
    out_shape: Vec<usize>,
    lmap: BroadcastMap,
    rmap: BroadcastMap,
    n: usize,
}

fn plan(lhs: &Tensor, rhs: &Tensor, op: &'static str) -> Result<BinPlan> {
    let out_shape = broadcast_shapes(lhs.shape(), rhs.shape(), op)?;
    let lmap = BroadcastMap::new(lhs.shape(), &out_shape)?;
    let rmap = BroadcastMap::new(rhs.shape(), &out_shape)?;
    let n = volume(&out_shape);
    Ok(BinPlan {
        out_shape,
        lmap,
        rmap,
        n,
    })
}

macro_rules! binary_arith {
    ($(#[$doc:meta])* $name:ident, $ff:expr, $fi:expr) => {
        $(#[$doc])*
        ///
        /// Operands broadcast NumPy-style and must share a numeric dtype.
        ///
        /// # Errors
        ///
        /// Returns an error on dtype disagreement or non-broadcastable shapes.
        pub fn $name(&self, rhs: &Tensor) -> Result<Tensor> {
            let p = plan(self, rhs, stringify!($name))?;
            match (self.data(), rhs.data()) {
                (Data::F64(a), Data::F64(b)) => {
                    let ff: fn(f64, f64) -> f64 = $ff;
                    let out = Data::F64(binary_zip(a, b, &p.lmap, &p.rmap, p.n, ff));
                    if self.shape() == p.out_shape {
                        self.like(out)
                    } else {
                        Tensor::new(out, &p.out_shape)
                    }
                }
                (Data::I64(a), Data::I64(b)) => {
                    let fi: fn(i64, i64) -> i64 = $fi;
                    let out = Data::I64(binary_zip(a, b, &p.lmap, &p.rmap, p.n, fi));
                    if self.shape() == p.out_shape {
                        self.like(out)
                    } else {
                        Tensor::new(out, &p.out_shape)
                    }
                }
                _ => Err(TensorError::DTypeMismatch {
                    got: rhs.dtype(),
                    expected: "both operands f64 or both i64",
                    op: stringify!($name),
                }),
            }
        }
    };
}

macro_rules! binary_cmp {
    ($(#[$doc:meta])* $name:ident, $ff:expr, $fi:expr) => {
        $(#[$doc])*
        ///
        /// Operands broadcast NumPy-style; the result dtype is `bool`.
        ///
        /// # Errors
        ///
        /// Returns an error on dtype disagreement or non-broadcastable shapes.
        pub fn $name(&self, rhs: &Tensor) -> Result<Tensor> {
            let p = plan(self, rhs, stringify!($name))?;
            match (self.data(), rhs.data()) {
                (Data::F64(a), Data::F64(b)) => {
                    let ff: fn(f64, f64) -> bool = $ff;
                    let out = Data::Bool(binary_zip(a, b, &p.lmap, &p.rmap, p.n, ff));
                    if self.shape() == p.out_shape {
                        self.like(out)
                    } else {
                        Tensor::new(out, &p.out_shape)
                    }
                }
                (Data::I64(a), Data::I64(b)) => {
                    let fi: fn(i64, i64) -> bool = $fi;
                    let out = Data::Bool(binary_zip(a, b, &p.lmap, &p.rmap, p.n, fi));
                    if self.shape() == p.out_shape {
                        self.like(out)
                    } else {
                        Tensor::new(out, &p.out_shape)
                    }
                }
                _ => Err(TensorError::DTypeMismatch {
                    got: rhs.dtype(),
                    expected: "both operands f64 or both i64",
                    op: stringify!($name),
                }),
            }
        }
    };
}

macro_rules! binary_logic {
    ($(#[$doc:meta])* $name:ident, $f:expr) => {
        $(#[$doc])*
        ///
        /// Operands broadcast NumPy-style and must both be `bool`.
        ///
        /// # Errors
        ///
        /// Returns an error on dtype disagreement or non-broadcastable shapes.
        pub fn $name(&self, rhs: &Tensor) -> Result<Tensor> {
            let p = plan(self, rhs, stringify!($name))?;
            match (self.data(), rhs.data()) {
                (Data::Bool(a), Data::Bool(b)) => {
                    let f: fn(bool, bool) -> bool = $f;
                    Tensor::new(
                        Data::Bool(binary_zip(a, b, &p.lmap, &p.rmap, p.n, f)),
                        &p.out_shape,
                    )
                }
                _ => Err(TensorError::DTypeMismatch {
                    got: rhs.dtype(),
                    expected: "both operands bool",
                    op: stringify!($name),
                }),
            }
        }
    };
}

impl Tensor {
    binary_arith!(
        /// Elementwise addition.
        add, crate::scalar_ops::add_f64, crate::scalar_ops::add_i64
    );
    binary_arith!(
        /// Elementwise subtraction.
        sub, crate::scalar_ops::sub_f64, crate::scalar_ops::sub_i64
    );
    binary_arith!(
        /// Elementwise multiplication.
        mul, crate::scalar_ops::mul_f64, crate::scalar_ops::mul_i64
    );
    binary_arith!(
        /// Elementwise division (integer division truncates toward zero;
        /// integer division by zero yields `0`, mirroring a masked-lane
        /// accelerator that must not fault on inactive data).
        div, crate::scalar_ops::div_f64, crate::scalar_ops::div_i64
    );
    binary_arith!(
        /// Elementwise maximum.
        max2, crate::scalar_ops::max2_f64, crate::scalar_ops::max2_i64
    );
    binary_arith!(
        /// Elementwise minimum.
        min2, crate::scalar_ops::min2_f64, crate::scalar_ops::min2_i64
    );
    binary_arith!(
        /// Elementwise power (`i64` uses saturating exponent semantics).
        pow, crate::scalar_ops::pow_f64, crate::scalar_ops::pow_i64
    );

    binary_cmp!(
        /// Elementwise `<`.
        lt, |a, b| a < b, |a, b| a < b
    );
    binary_cmp!(
        /// Elementwise `<=`.
        le, |a, b| a <= b, |a, b| a <= b
    );
    binary_cmp!(
        /// Elementwise `>`.
        gt, |a, b| a > b, |a, b| a > b
    );
    binary_cmp!(
        /// Elementwise `>=`.
        ge, |a, b| a >= b, |a, b| a >= b
    );
    binary_cmp!(
        /// Elementwise `==`.
        eq_elem, |a, b| a == b, |a, b| a == b
    );
    binary_cmp!(
        /// Elementwise `!=`.
        ne_elem, |a, b| a != b, |a, b| a != b
    );

    binary_logic!(
        /// Elementwise logical AND.
        and, |a, b| a && b
    );
    binary_logic!(
        /// Elementwise logical OR.
        or, |a, b| a || b
    );
    binary_logic!(
        /// Elementwise logical XOR.
        xor, |a, b| a ^ b
    );

    /// Elementwise select: `cond ? a : b`, with broadcasting.
    ///
    /// `self` must be `bool`; `a` and `b` must share a dtype.
    ///
    /// # Errors
    ///
    /// Returns an error on dtype or broadcast failure.
    pub fn select(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let cond = self.as_bool()?;
        let ab_shape = broadcast_shapes(a.shape(), b.shape(), "select")?;
        let out_shape = broadcast_shapes(self.shape(), &ab_shape, "select")?;
        let cmap = BroadcastMap::new(self.shape(), &out_shape)?;
        let amap = BroadcastMap::new(a.shape(), &out_shape)?;
        let bmap = BroadcastMap::new(b.shape(), &out_shape)?;
        let n = volume(&out_shape);
        match (a.data(), b.data()) {
            (Data::F64(av), Data::F64(bv)) => {
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    out.push(if cond[cmap.map(i)] {
                        av[amap.map(i)]
                    } else {
                        bv[bmap.map(i)]
                    });
                }
                Tensor::new(Data::F64(out), &out_shape)
            }
            (Data::I64(av), Data::I64(bv)) => {
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    out.push(if cond[cmap.map(i)] {
                        av[amap.map(i)]
                    } else {
                        bv[bmap.map(i)]
                    });
                }
                Tensor::new(Data::I64(out), &out_shape)
            }
            (Data::Bool(av), Data::Bool(bv)) => {
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    out.push(if cond[cmap.map(i)] {
                        av[amap.map(i)]
                    } else {
                        bv[bmap.map(i)]
                    });
                }
                Tensor::new(Data::Bool(out), &out_shape)
            }
            _ => Err(TensorError::DTypeMismatch {
                got: b.dtype(),
                expected: "branches of select share a dtype",
                op: "select",
            }),
        }
    }

    // -----------------------------------------------------------------------
    // In-place, into-buffer, and fused kernels (the hot-loop variants)
    // -----------------------------------------------------------------------

    /// Apply a scalar function to every element, allocating the result.
    ///
    /// The allocating unary kernels ([`Tensor::exp`], [`Tensor::neg`], …)
    /// are thin wrappers over this with the matching
    /// [`scalar_ops`](crate::scalar_ops) function.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] unless the dtype is `f64`.
    pub fn map_f64<F: Fn(f64) -> f64>(&self, f: F) -> Result<Tensor> {
        let v = self.as_f64()?;
        self.like(Data::F64(v.iter().map(|&x| f(x)).collect()))
    }

    /// Apply a scalar function to every element **in place**: no
    /// allocation when this tensor's storage is unshared (a shared
    /// copy-on-write buffer is copied once first, never mutated).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] unless the dtype is `f64`.
    pub fn map_f64_inplace<F: Fn(f64) -> f64>(&mut self, f: F) -> Result<()> {
        for x in self.as_f64_mut()? {
            *x = f(*x);
        }
        Ok(())
    }

    /// Integer sibling of [`Tensor::map_f64_inplace`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] unless the dtype is `i64`.
    pub fn map_i64_inplace<F: Fn(i64) -> i64>(&mut self, f: F) -> Result<()> {
        for x in self.as_i64_mut()? {
            *x = f(*x);
        }
        Ok(())
    }

    /// Broadcasting binary combine **into a caller-provided buffer**:
    /// `out = f(self, rhs)` elementwise, reusing `out`'s storage when it
    /// is an unshared `f64` buffer (whatever its previous shape). This
    /// is the scratch-buffer primitive the interpreter's fast paths use
    /// to keep the superstep loop allocation-free.
    ///
    /// Produces bit-identical results to the allocating kernels when
    /// given the same [`scalar_ops`](crate::scalar_ops) function.
    ///
    /// # Errors
    ///
    /// Returns an error unless both operands are `f64` and broadcastable.
    pub fn binary_f64_into<F: Fn(f64, f64) -> f64>(
        &self,
        rhs: &Tensor,
        f: F,
        out: &mut Tensor,
    ) -> Result<()> {
        let p = plan(self, rhs, "binary_f64_into")?;
        let (a, b) = (self.as_f64()?, rhs.as_f64()?);
        out.reset_f64(&p.out_shape);
        let o = out.as_f64_mut()?;
        for (i, slot) in o.iter_mut().enumerate() {
            *slot = f(a[p.lmap.map(i)], b[p.rmap.map(i)]);
        }
        Ok(())
    }

    /// Fused elementwise `self × b + c` in a single pass, with
    /// broadcasting. Bit-identical to `self.mul(b)?.add(c)?` — each
    /// element computes the same two-operation expression (this is *not*
    /// a hardware FMA with single rounding) — but never materializes the
    /// product.
    ///
    /// # Errors
    ///
    /// Returns an error unless all operands are `f64` and broadcastable.
    pub fn mul_add(&self, b: &Tensor, c: &Tensor) -> Result<Tensor> {
        let ab_shape = broadcast_shapes(self.shape(), b.shape(), "mul_add")?;
        let out_shape = broadcast_shapes(&ab_shape, c.shape(), "mul_add")?;
        let amap = BroadcastMap::new(self.shape(), &out_shape)?;
        let bmap = BroadcastMap::new(b.shape(), &out_shape)?;
        let cmap = BroadcastMap::new(c.shape(), &out_shape)?;
        let (av, bv, cv) = (self.as_f64()?, b.as_f64()?, c.as_f64()?);
        let n = volume(&out_shape);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(av[amap.map(i)] * bv[bmap.map(i)] + cv[cmap.map(i)]);
        }
        Tensor::new(Data::F64(out), &out_shape)
    }

    /// Fused in-place `self ← self + alpha × x` (BLAS `axpy`) in a
    /// single pass. Both tensors must share a shape exactly.
    ///
    /// # Errors
    ///
    /// Returns an error on dtype or shape mismatch.
    pub fn axpy_inplace(&mut self, alpha: f64, x: &Tensor) -> Result<()> {
        if self.shape() != x.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().to_vec(),
                rhs: x.shape().to_vec(),
                op: "axpy_inplace",
            });
        }
        let xv = x.as_f64()?;
        for (s, &v) in self.as_f64_mut()?.iter_mut().zip(xv) {
            *s += alpha * v;
        }
        Ok(())
    }

    // -----------------------------------------------------------------------
    // Casts
    // -----------------------------------------------------------------------

    /// Cast to `f64` (bools become 0.0/1.0).
    pub fn to_f64(&self) -> Tensor {
        let v: Vec<f64> = match self.data() {
            Data::F64(v) => v.clone(),
            Data::I64(v) => v.iter().map(|&x| x as f64).collect(),
            Data::Bool(v) => v.iter().map(|&x| if x { 1.0 } else { 0.0 }).collect(),
        };
        self.like(Data::F64(v)).expect("cast preserves volume")
    }

    /// Cast to `i64` (floats truncate toward zero; bools become 0/1).
    pub fn to_i64(&self) -> Tensor {
        let v: Vec<i64> = match self.data() {
            Data::F64(v) => v.iter().map(|&x| x as i64).collect(),
            Data::I64(v) => v.clone(),
            Data::Bool(v) => v.iter().map(|&x| i64::from(x)).collect(),
        };
        self.like(Data::I64(v)).expect("cast preserves volume")
    }

    /// Cast to `bool` (nonzero becomes `true`).
    pub fn to_bool(&self) -> Tensor {
        let v: Vec<bool> = match self.data() {
            Data::F64(v) => v.iter().map(|&x| x != 0.0).collect(),
            Data::I64(v) => v.iter().map(|&x| x != 0).collect(),
            Data::Bool(v) => v.clone(),
        };
        self.like(Data::Bool(v)).expect("cast preserves volume")
    }

    /// Cast to an arbitrary dtype.
    pub fn cast(&self, dtype: DType) -> Tensor {
        match dtype {
            DType::F64 => self.to_f64(),
            DType::I64 => self.to_i64(),
            DType::Bool => self.to_bool(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f64]) -> Tensor {
        Tensor::from_f64(v, &[v.len()]).unwrap()
    }

    #[test]
    fn add_same_shape() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[10.0, 20.0]);
        assert_eq!(a.add(&b).unwrap().as_f64().unwrap(), &[11.0, 22.0]);
    }

    #[test]
    fn add_broadcast_scalar() {
        let a = t(&[1.0, 2.0, 3.0]);
        let s = Tensor::scalar(10.0);
        assert_eq!(a.add(&s).unwrap().as_f64().unwrap(), &[11.0, 12.0, 13.0]);
        assert_eq!(s.add(&a).unwrap().as_f64().unwrap(), &[11.0, 12.0, 13.0]);
    }

    #[test]
    fn broadcast_matrix_vector() {
        let m = Tensor::from_f64(&[1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let v = Tensor::from_f64(&[10.0, 20.0], &[2]).unwrap();
        assert_eq!(
            m.add(&v).unwrap().as_f64().unwrap(),
            &[11.0, 22.0, 13.0, 24.0]
        );
    }

    #[test]
    fn int_arith_and_div_by_zero() {
        let a = Tensor::from_i64(&[7, 8], &[2]).unwrap();
        let b = Tensor::from_i64(&[2, 0], &[2]).unwrap();
        assert_eq!(a.div(&b).unwrap().as_i64().unwrap(), &[3, 0]);
        assert_eq!(a.mul(&b).unwrap().as_i64().unwrap(), &[14, 0]);
    }

    #[test]
    fn mixed_dtype_rejected() {
        let a = t(&[1.0]);
        let b = Tensor::from_i64(&[1], &[1]).unwrap();
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn comparisons_produce_bool() {
        let a = t(&[1.0, 5.0]);
        let b = t(&[3.0, 3.0]);
        assert_eq!(a.lt(&b).unwrap().as_bool().unwrap(), &[true, false]);
        assert_eq!(a.ge(&b).unwrap().as_bool().unwrap(), &[false, true]);
        assert_eq!(a.eq_elem(&b).unwrap().as_bool().unwrap(), &[false, false]);
    }

    #[test]
    fn logic_ops() {
        let a = Tensor::from_bool(&[true, true, false], &[3]).unwrap();
        let b = Tensor::from_bool(&[true, false, false], &[3]).unwrap();
        assert_eq!(a.and(&b).unwrap().as_bool().unwrap(), &[true, false, false]);
        assert_eq!(a.or(&b).unwrap().as_bool().unwrap(), &[true, true, false]);
        assert_eq!(a.xor(&b).unwrap().as_bool().unwrap(), &[false, true, false]);
        assert_eq!(a.not().unwrap().as_bool().unwrap(), &[false, false, true]);
    }

    #[test]
    fn select_broadcasts_condition() {
        let cond = Tensor::from_bool(&[true, false], &[2]).unwrap();
        let a = t(&[1.0, 2.0]);
        let b = t(&[-1.0, -2.0]);
        assert_eq!(cond.select(&a, &b).unwrap().as_f64().unwrap(), &[1.0, -2.0]);
    }

    #[test]
    fn select_cond_per_row() {
        // Condition of shape [2, 1] against values of shape [2, 3].
        let cond = Tensor::from_bool(&[true, false], &[2, 1]).unwrap();
        let a = Tensor::full(&[2, 3], 1.0);
        let b = Tensor::full(&[2, 3], 2.0);
        assert_eq!(
            cond.select(&a, &b).unwrap().as_f64().unwrap(),
            &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]
        );
    }

    #[test]
    fn unary_math() {
        let a = t(&[0.0, 1.0]);
        assert_eq!(a.exp().unwrap().as_f64().unwrap()[0], 1.0);
        assert!((a.sigmoid().unwrap().as_f64().unwrap()[0] - 0.5).abs() < 1e-12);
        assert_eq!(a.neg().unwrap().as_f64().unwrap(), &[-0.0, -1.0]);
        assert_eq!(a.square().unwrap().as_f64().unwrap(), &[0.0, 1.0]);
    }

    #[test]
    fn softplus_is_stable() {
        let a = t(&[1000.0, -1000.0, 0.0]);
        let sp = a.softplus().unwrap();
        let v = sp.as_f64().unwrap();
        assert_eq!(v[0], 1000.0);
        assert_eq!(v[1], 0.0);
        assert!((v[2] - 2f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn casts() {
        let a = t(&[1.5, 0.0]);
        assert_eq!(a.to_i64().as_i64().unwrap(), &[1, 0]);
        assert_eq!(a.to_bool().as_bool().unwrap(), &[true, false]);
        let b = Tensor::from_bool(&[true, false], &[2]).unwrap();
        assert_eq!(b.to_f64().as_f64().unwrap(), &[1.0, 0.0]);
        assert_eq!(b.cast(DType::I64).as_i64().unwrap(), &[1, 0]);
    }
}
