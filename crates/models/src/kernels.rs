//! Adapters exposing a [`Model`] as the external kernels (`grad`,
//! `logp`) that autobatched programs call via `extern` declarations.

use std::sync::Arc;

use autobatch_core::{ExternalKernel, KernelRegistry};
use autobatch_ir::Arity;
use autobatch_tensor::Tensor;

use crate::Model;

/// `grad(q: vec) -> (vec)` — the model's log-density gradient, the
/// expensive leaf kernel of the paper's evaluation.
#[derive(Debug, Clone)]
pub struct GradKernel(pub Arc<dyn Model>);

impl ExternalKernel for GradKernel {
    fn arity(&self) -> Arity {
        Arity { ins: 1, outs: 1 }
    }

    fn eval(&self, inputs: &[Tensor]) -> autobatch_tensor::Result<Vec<Tensor>> {
        Ok(vec![self.0.grad(&inputs[0])?])
    }

    fn flops_per_member(&self, _inputs: &[Tensor]) -> f64 {
        self.0.grad_flops()
    }

    fn parallel_per_member(&self, _inputs: &[Tensor]) -> usize {
        self.0.parallel_width()
    }
}

/// `logp(q: vec) -> (float)` — the model's log-density.
#[derive(Debug, Clone)]
pub struct LogpKernel(pub Arc<dyn Model>);

impl ExternalKernel for LogpKernel {
    fn arity(&self) -> Arity {
        Arity { ins: 1, outs: 1 }
    }

    fn eval(&self, inputs: &[Tensor]) -> autobatch_tensor::Result<Vec<Tensor>> {
        Ok(vec![self.0.logp(&inputs[0])?])
    }

    fn flops_per_member(&self, _inputs: &[Tensor]) -> f64 {
        self.0.logp_flops()
    }

    fn parallel_per_member(&self, _inputs: &[Tensor]) -> usize {
        self.0.parallel_width()
    }
}

/// A registry exposing `model` under the conventional kernel names
/// `"grad"` and `"logp"`.
pub fn model_registry(model: Arc<dyn Model>) -> KernelRegistry {
    let mut reg = KernelRegistry::new();
    reg.register("grad", Arc::new(GradKernel(model.clone())));
    reg.register("logp", Arc::new(LogpKernel(model)));
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StdNormal;

    #[test]
    fn registry_exposes_grad_and_logp() {
        let reg = model_registry(Arc::new(StdNormal::new(2)));
        let q = Tensor::from_f64(&[1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let g = reg
            .get("grad")
            .unwrap()
            .eval(std::slice::from_ref(&q))
            .unwrap();
        assert_eq!(g[0].as_f64().unwrap(), &[-1.0, -2.0, -3.0, -4.0]);
        let lp = reg.get("logp").unwrap().eval(&[q]).unwrap();
        assert_eq!(lp[0].shape(), &[2]);
        assert!(reg.get("hessian").is_err());
    }

    #[test]
    fn kernels_report_model_flops() {
        let m = Arc::new(StdNormal::new(8));
        let g = GradKernel(m.clone());
        let l = LogpKernel(m);
        let q = Tensor::zeros(autobatch_tensor::DType::F64, &[1, 8]);
        assert_eq!(g.flops_per_member(std::slice::from_ref(&q)), 8.0);
        assert_eq!(l.flops_per_member(&[q]), 16.0);
    }
}
