//! Cost-model pricing overrides.
//!
//! The figure-regenerating benches run a *scaled-down computation*
//! (smaller design matrices, fewer data points — the interpreter really
//! executes every kernel) while pricing it at the *paper's* problem
//! sizes. [`PricedAs`] wraps a model and overrides only the quantities
//! the analytic cost model reads; the numerical behaviour (and therefore
//! the control flow being batched) is untouched. EXPERIMENTS.md documents
//! this substitution per experiment.

use autobatch_tensor::{Result, Tensor};

use crate::Model;

/// A model whose *cost-model* footprint is overridden.
#[derive(Debug, Clone)]
pub struct PricedAs<M> {
    inner: M,
    logp_flops: f64,
    grad_flops: f64,
    parallel_width: usize,
}

impl<M: Model> PricedAs<M> {
    /// Price `inner` as if its kernels cost the given per-member flop
    /// counts with the given per-member parallel width.
    pub fn new(inner: M, logp_flops: f64, grad_flops: f64, parallel_width: usize) -> PricedAs<M> {
        PricedAs {
            inner,
            logp_flops,
            grad_flops,
            parallel_width,
        }
    }

    /// Price `inner` as the paper's Bayesian logistic regression
    /// (`n = 10,000` data points, `d = 100` regressors).
    pub fn as_paper_logistic(inner: M) -> PricedAs<M> {
        let (n, d) = (10_000.0, 100.0);
        PricedAs {
            inner,
            logp_flops: 2.0 * n * d + 12.0 * n + 2.0 * d,
            grad_flops: 4.0 * n * d + 12.0 * n,
            parallel_width: 10_000,
        }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: Model> Model for PricedAs<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn logp(&self, q: &Tensor) -> Result<Tensor> {
        self.inner.logp(q)
    }

    fn grad(&self, q: &Tensor) -> Result<Tensor> {
        self.inner.grad(q)
    }

    fn logp_flops(&self) -> f64 {
        self.logp_flops
    }

    fn grad_flops(&self) -> f64 {
        self.grad_flops
    }

    fn parallel_width(&self) -> usize {
        self.parallel_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StdNormal;

    #[test]
    fn values_delegate_but_costs_override() {
        let base = StdNormal::new(3);
        let priced = PricedAs::new(StdNormal::new(3), 111.0, 222.0, 4444);
        let q = Tensor::from_f64(&[1.0, 2.0, 3.0], &[1, 3]).unwrap();
        assert_eq!(
            priced.grad(&q).unwrap(),
            base.grad(&q).unwrap(),
            "numerics unchanged"
        );
        assert_eq!(priced.logp_flops(), 111.0);
        assert_eq!(priced.grad_flops(), 222.0);
        assert_eq!(priced.parallel_width(), 4444);
        assert_eq!(priced.dim(), 3);
    }

    #[test]
    fn paper_logistic_pricing() {
        let priced = PricedAs::as_paper_logistic(StdNormal::new(5));
        assert_eq!(
            priced.grad_flops(),
            4.0 * 10_000.0 * 100.0 + 12.0 * 10_000.0
        );
        assert_eq!(priced.parallel_width(), 10_000);
    }
}
