//! Extra targets beyond the paper's two: Neal's funnel and a standard
//! normal. These exercise the example programs on geometries where NUTS'
//! adaptive trajectory lengths vary wildly — the regime where
//! program-counter autobatching's cross-trajectory batching matters most.

use autobatch_tensor::{Result, Tensor, TensorError};

use crate::Model;

/// Neal's funnel: `v ~ N(0, 9)`, `x_i ~ N(0, e^v)` for the remaining
/// `dim − 1` coordinates. Log-density (up to a constant):
/// `−v²/18 − (d−1)·v/2 − e^{−v}·Σx²/2`.
#[derive(Debug, Clone)]
pub struct NealsFunnel {
    dim: usize,
}

impl NealsFunnel {
    /// A funnel over `dim ≥ 2` coordinates (`q[0]` is the neck `v`).
    ///
    /// # Panics
    ///
    /// Panics if `dim < 2`.
    pub fn new(dim: usize) -> NealsFunnel {
        assert!(dim >= 2, "funnel needs at least 2 dimensions");
        NealsFunnel { dim }
    }
}

impl Model for NealsFunnel {
    fn name(&self) -> &'static str {
        "neals-funnel"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn logp(&self, q: &Tensor) -> Result<Tensor> {
        check_shape(q, self.dim)?;
        let v = q.as_f64()?;
        let (z, d) = (q.shape()[0], self.dim);
        let mut out = Vec::with_capacity(z);
        for b in 0..z {
            let row = &v[b * d..(b + 1) * d];
            let neck = row[0];
            let ss: f64 = row[1..].iter().map(|x| x * x).sum();
            out.push(
                -neck * neck / 18.0 - (d as f64 - 1.0) * neck / 2.0 - (-neck).exp() * ss / 2.0,
            );
        }
        Tensor::from_f64(&out, &[z])
    }

    fn grad(&self, q: &Tensor) -> Result<Tensor> {
        check_shape(q, self.dim)?;
        let v = q.as_f64()?;
        let (z, d) = (q.shape()[0], self.dim);
        let mut out = vec![0.0; z * d];
        for b in 0..z {
            let row = &v[b * d..(b + 1) * d];
            let o = &mut out[b * d..(b + 1) * d];
            let neck = row[0];
            let e = (-neck).exp();
            let ss: f64 = row[1..].iter().map(|x| x * x).sum();
            o[0] = -neck / 9.0 - (d as f64 - 1.0) / 2.0 + e * ss / 2.0;
            for i in 1..d {
                o[i] = -row[i] * e;
            }
        }
        Tensor::from_f64(&out, &[z, d])
    }

    fn logp_flops(&self) -> f64 {
        4.0 * self.dim as f64 + 15.0
    }

    fn grad_flops(&self) -> f64 {
        5.0 * self.dim as f64 + 15.0
    }
}

/// An isotropic standard normal — the simplest sanity target.
#[derive(Debug, Clone)]
pub struct StdNormal {
    dim: usize,
}

impl StdNormal {
    /// A `dim`-dimensional standard normal.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> StdNormal {
        assert!(dim > 0, "dim must be positive");
        StdNormal { dim }
    }
}

impl Model for StdNormal {
    fn name(&self) -> &'static str {
        "std-normal"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn logp(&self, q: &Tensor) -> Result<Tensor> {
        check_shape(q, self.dim)?;
        q.dot_last_axis(q)?.mul(&Tensor::scalar(-0.5))
    }

    fn grad(&self, q: &Tensor) -> Result<Tensor> {
        check_shape(q, self.dim)?;
        q.neg()
    }

    fn logp_flops(&self) -> f64 {
        2.0 * self.dim as f64
    }

    fn grad_flops(&self) -> f64 {
        self.dim as f64
    }
}

fn check_shape(q: &Tensor, dim: usize) -> Result<()> {
    if q.rank() != 2 || q.shape()[1] != dim {
        return Err(TensorError::ShapeMismatch {
            lhs: q.shape().to_vec(),
            rhs: vec![0, dim],
            op: "model",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobatch_autodiff::finite_difference;

    #[test]
    fn funnel_gradient_matches_finite_differences() {
        let m = NealsFunnel::new(4);
        let q0 = Tensor::from_f64(&[0.5, 1.0, -0.5, 2.0], &[4]).unwrap();
        let g = m.grad(&q0.reshape(&[1, 4]).unwrap()).unwrap();
        let fd = finite_difference(
            |x| {
                m.logp(&x.reshape(&[1, 4]).unwrap())
                    .unwrap()
                    .as_f64()
                    .unwrap()[0]
            },
            &q0,
            1e-6,
        );
        for (a, b) in g.as_f64().unwrap().iter().zip(fd.as_f64().unwrap()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn std_normal_gradient_is_negated_position() {
        let m = StdNormal::new(3);
        let q = Tensor::from_f64(&[1.0, -2.0, 3.0], &[1, 3]).unwrap();
        assert_eq!(m.grad(&q).unwrap().as_f64().unwrap(), &[-1.0, 2.0, -3.0]);
        assert_eq!(m.logp(&q).unwrap().as_f64().unwrap(), &[-7.0]);
    }

    #[test]
    fn shape_violations_rejected() {
        let m = StdNormal::new(3);
        let bad = Tensor::zeros(autobatch_tensor::DType::F64, &[2, 4]);
        assert!(m.logp(&bad).is_err());
        assert!(m.grad(&bad).is_err());
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn tiny_funnel_panics() {
        NealsFunnel::new(1);
    }
}
