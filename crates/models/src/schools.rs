//! The eight-schools hierarchical meta-analysis (Rubin 1981), in the
//! non-centered parametrization — the canonical "many independent
//! chains" showcase the paper's motivation gestures at: its funnel-like
//! posterior makes NUTS trajectory lengths vary strongly between chains
//! and iterations, which is exactly the divergence-heavy regime
//! program-counter autobatching targets.

use autobatch_tensor::{Result, Tensor, TensorError};

use crate::Model;

/// Eight schools, non-centered: unconstrained parameters
/// `q = [μ, log τ, η₁, …, η_J]` (dimension `J + 2`), with
///
/// - `μ ~ N(0, 5²)` — population mean,
/// - `τ ~ Half-Cauchy(0, 5)` sampled as `log τ` (Jacobian included),
/// - `η_j ~ N(0, 1)`,
/// - observed `y_j ~ N(μ + τ·η_j, σ_j²)`.
#[derive(Debug, Clone)]
pub struct EightSchools {
    y: Vec<f64>,
    sigma: Vec<f64>,
}

impl EightSchools {
    /// The classic data set: treatment effects and standard errors of
    /// eight coaching programs.
    pub fn classic() -> EightSchools {
        EightSchools {
            y: vec![28.0, 8.0, -3.0, 7.0, -1.0, 1.0, 18.0, 12.0],
            sigma: vec![15.0, 10.0, 16.0, 11.0, 9.0, 11.0, 10.0, 18.0],
        }
    }

    /// A schools model over custom observations.
    ///
    /// # Panics
    ///
    /// Panics if the vectors are empty, differ in length, or any standard
    /// error is non-positive.
    pub fn new(y: Vec<f64>, sigma: Vec<f64>) -> EightSchools {
        assert!(!y.is_empty(), "need at least one school");
        assert_eq!(y.len(), sigma.len(), "y and sigma must align");
        assert!(
            sigma.iter().all(|&s| s > 0.0),
            "standard errors must be positive"
        );
        EightSchools { y, sigma }
    }

    /// Number of schools `J`.
    pub fn n_schools(&self) -> usize {
        self.y.len()
    }

    /// Recover the per-school effects `θ_j = μ + τ·η_j` from one
    /// unconstrained draw (shape `[J + 2]`).
    ///
    /// # Errors
    ///
    /// Returns a tensor error if `q` has the wrong shape.
    pub fn effects(&self, q: &Tensor) -> Result<Tensor> {
        let j = self.n_schools();
        if q.shape() != [j + 2] {
            return Err(TensorError::ShapeMismatch {
                lhs: q.shape().to_vec(),
                rhs: vec![j + 2],
                op: "effects",
            });
        }
        let v = q.as_f64()?;
        let (mu, tau) = (v[0], v[1].exp());
        let theta: Vec<f64> = v[2..].iter().map(|eta| mu + tau * eta).collect();
        Tensor::from_f64(&theta, &[j])
    }
}

impl Model for EightSchools {
    fn name(&self) -> &'static str {
        "eight-schools"
    }

    fn dim(&self) -> usize {
        self.n_schools() + 2
    }

    fn logp(&self, q: &Tensor) -> Result<Tensor> {
        check_shape(q, self.dim())?;
        let v = q.as_f64()?;
        let (z, d) = (q.shape()[0], self.dim());
        let j = self.n_schools();
        let mut out = Vec::with_capacity(z);
        for b in 0..z {
            let row = &v[b * d..(b + 1) * d];
            let (mu, lt) = (row[0], row[1]);
            let tau = lt.exp();
            let eta = &row[2..];
            // μ ~ N(0, 25); log τ: half-Cauchy(0,5) + Jacobian; η ~ N(0,1).
            let mut lp = -mu * mu / 50.0 + lt - (1.0 + tau * tau / 25.0).ln();
            for (k, &e) in eta.iter().enumerate().take(j) {
                lp -= e * e / 2.0;
                let r = self.y[k] - mu - tau * e;
                lp -= r * r / (2.0 * self.sigma[k] * self.sigma[k]);
            }
            out.push(lp);
        }
        Tensor::from_f64(&out, &[z])
    }

    fn grad(&self, q: &Tensor) -> Result<Tensor> {
        check_shape(q, self.dim())?;
        let v = q.as_f64()?;
        let (z, d) = (q.shape()[0], self.dim());
        let j = self.n_schools();
        let mut out = vec![0.0; z * d];
        for b in 0..z {
            let row = &v[b * d..(b + 1) * d];
            let o = &mut out[b * d..(b + 1) * d];
            let (mu, lt) = (row[0], row[1]);
            let tau = lt.exp();
            let eta = &row[2..];
            let mut d_mu = -mu / 25.0;
            // d/d(log τ) of [log τ − log(1 + τ²/25)].
            let mut d_lt = 1.0 - 2.0 * tau * tau / (25.0 + tau * tau);
            for k in 0..j {
                let s2 = self.sigma[k] * self.sigma[k];
                let r = (self.y[k] - mu - tau * eta[k]) / s2;
                d_mu += r;
                d_lt += r * eta[k] * tau;
                o[2 + k] = -eta[k] + r * tau;
            }
            o[0] = d_mu;
            o[1] = d_lt;
        }
        Tensor::from_f64(&out, &[z, d])
    }

    fn logp_flops(&self) -> f64 {
        10.0 * self.n_schools() as f64 + 20.0
    }

    fn grad_flops(&self) -> f64 {
        14.0 * self.n_schools() as f64 + 20.0
    }

    fn parallel_width(&self) -> usize {
        self.n_schools()
    }
}

fn check_shape(q: &Tensor, dim: usize) -> Result<()> {
    if q.rank() != 2 || q.shape()[1] != dim {
        return Err(TensorError::ShapeMismatch {
            lhs: q.shape().to_vec(),
            rhs: vec![0, dim],
            op: "model",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobatch_autodiff::finite_difference;

    #[test]
    fn classic_data_has_eight_schools() {
        let m = EightSchools::classic();
        assert_eq!(m.n_schools(), 8);
        assert_eq!(m.dim(), 10);
        assert_eq!(m.name(), "eight-schools");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let m = EightSchools::classic();
        let q0 = Tensor::from_f64(
            &[4.0, 0.8, 0.3, -0.5, 0.2, 1.1, -0.9, 0.0, 0.7, -0.2],
            &[10],
        )
        .unwrap();
        let g = m.grad(&q0.reshape(&[1, 10]).unwrap()).unwrap();
        let fd = finite_difference(
            |x| {
                m.logp(&x.reshape(&[1, 10]).unwrap())
                    .unwrap()
                    .as_f64()
                    .unwrap()[0]
            },
            &q0,
            1e-6,
        );
        for (a, b) in g.as_f64().unwrap().iter().zip(fd.as_f64().unwrap()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn logp_is_batched_and_finite() {
        let m = EightSchools::classic();
        let q = Tensor::zeros(autobatch_tensor::DType::F64, &[3, 10]);
        let lp = m.logp(&q).unwrap();
        assert_eq!(lp.shape(), &[3]);
        assert!(lp.as_f64().unwrap().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn effects_recover_theta() {
        let m = EightSchools::classic();
        let mut q = vec![0.0; 10];
        q[0] = 5.0; // mu
        q[1] = 0.0; // log tau = 0 → tau = 1
        q[2] = 2.0; // eta_1
        let theta = m.effects(&Tensor::from_f64(&q, &[10]).unwrap()).unwrap();
        let t = theta.as_f64().unwrap();
        assert_eq!(t.len(), 8);
        assert!((t[0] - 7.0).abs() < 1e-12); // 5 + 1·2
        assert!((t[1] - 5.0).abs() < 1e-12); // 5 + 1·0
    }

    #[test]
    fn shape_violations_rejected() {
        let m = EightSchools::classic();
        let bad = Tensor::zeros(autobatch_tensor::DType::F64, &[2, 4]);
        assert!(m.logp(&bad).is_err());
        assert!(m.grad(&bad).is_err());
        assert!(m
            .effects(&Tensor::zeros(autobatch_tensor::DType::F64, &[4]))
            .is_err());
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_data_panics() {
        EightSchools::new(vec![1.0], vec![1.0, 2.0]);
    }

    #[test]
    fn larger_tau_pulls_effects_toward_eta() {
        // Monotonicity sanity: gradient wrt eta_k has the data-pull term
        // scaled by tau.
        let m = EightSchools::classic();
        let mut q_small = vec![0.0; 10];
        let mut q_big = q_small.clone();
        q_small[1] = -2.0;
        q_big[1] = 2.0;
        let gs = m
            .grad(
                &Tensor::from_f64(&q_small, &[10])
                    .unwrap()
                    .reshape(&[1, 10])
                    .unwrap(),
            )
            .unwrap();
        let gb = m
            .grad(
                &Tensor::from_f64(&q_big, &[10])
                    .unwrap()
                    .reshape(&[1, 10])
                    .unwrap(),
            )
            .unwrap();
        let (gs, gb) = (gs.as_f64().unwrap(), gb.as_f64().unwrap());
        // η-gradients at η = 0 are r·τ; bigger τ ⇒ bigger magnitude.
        assert!(gb[2].abs() > gs[2].abs());
    }
}
